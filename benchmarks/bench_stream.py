"""Streaming benchmark: incremental maintenance and out-of-core mining.

Two parts, two load-bearing numbers:

**Maintainer.** A planted tensor is mined fresh, then evolved through
two small delta batches — a sliding-window *expiry* (drop the oldest
height slice; dirties nothing, so maintenance is the patch pass alone)
and a *cell-edit* batch confined to one height (re-mines only the
subsets through that height).  Each maintained result is produced by
:func:`repro.stream.maintain` and compared against re-mining the
edited tensor from scratch.  ``--check`` gates the expiry speedup at
``--min-speedup`` (default 2x); the cell-edit speedup is reported
alongside (its theoretical ceiling is ~2x — half the height subsets
contain any given dirty height — so it is informational).

**Out-of-core.** A child process (own address space, so ``ru_maxrss``
means something) builds a tensor whose *packed* representation exceeds
a memory budget — streamed to disk slice-by-slice through
:class:`repro.stream.StreamingSliceWriter`, never holding the tensor —
then mines it with :func:`repro.stream.stream_mine` over the
memory-mapped store and reports its own peak RSS.  ``--check`` asserts
``packed_bytes > budget`` and ``peak_rss < budget``: the miner covered
a file bigger than the memory it was allowed to keep resident.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream.py
    PYTHONPATH=src python benchmarks/bench_stream.py --check \
        --baseline BENCH_stream.json
    PYTHONPATH=src python benchmarks/bench_stream.py --output BENCH_stream.json
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

#: Bump when the report layout changes incompatibly.
SCHEMA = 1

# --- maintainer workload ---------------------------------------------
MAINT_SHAPE = (12, 48, 72)
MAINT_THRESHOLDS = dict(min_h=3, min_r=3, min_c=4)
MAINT_SEED = 23

# --- out-of-core workload --------------------------------------------
OOC_SHAPE = (48, 4096, 16384)
OOC_BLOCK = (48, 24, 48)  # planted all-ones block at the origin
OOC_DENSITY = 0.003
OOC_THRESHOLDS = dict(min_h=47, min_r=8, min_c=12)
OOC_BUDGET_BYTES = 256 * 1024 * 1024
OOC_CHUNK_ROWS = 256
OOC_SEED = 47
GEN_ROWS = 128  # row-chunked slice generation keeps temporaries small


def _maintainer_tensor():
    from repro.datasets import planted_tensor

    planted = planted_tensor(
        MAINT_SHAPE,
        n_blocks=4,
        block_shape=(4, 6, 9),
        background_density=0.08,
        seed=MAINT_SEED,
    )
    return planted.dataset.with_kernel("numpy")


def bench_maintainer(rounds: int) -> dict:
    from repro.api import mine
    from repro.core.constraints import Thresholds
    from repro.obs.metrics import MiningMetrics
    from repro.stream import ClearCell, DropSlice, SetCell, maintain

    dataset = _maintainer_tensor()
    thresholds = Thresholds(**MAINT_THRESHOLDS)
    base = mine(dataset, thresholds, algorithm="rsm")

    batches = {
        "expire": [DropSlice("height", 0)],
        "edit": [SetCell(0, 0, 0), ClearCell(0, 10, 20), SetCell(0, 40, 60)],
    }
    report: dict = {
        "dataset": f"planted_tensor{MAINT_SHAPE}, seed={MAINT_SEED}",
        "thresholds": MAINT_THRESHOLDS,
        "base_cubes": len(base),
    }
    for name, batch in batches.items():
        maintain_best = fresh_best = float("inf")
        for _ in range(rounds):
            metrics = MiningMetrics()
            start = time.perf_counter()
            new_dataset, maintained = maintain(
                dataset, base, batch, thresholds, metrics=metrics
            )
            maintain_best = min(maintain_best, time.perf_counter() - start)
            start = time.perf_counter()
            fresh = mine(new_dataset, thresholds, algorithm="rsm")
            fresh_best = min(fresh_best, time.perf_counter() - start)
        keys = [(c.heights, c.rows, c.columns) for c in maintained.cubes]
        if keys != [(c.heights, c.rows, c.columns) for c in fresh.cubes]:
            raise AssertionError(f"{name}: maintained != fresh mine")
        report[name] = {
            "deltas": len(batch),
            "maintain_seconds": round(maintain_best, 4),
            "fresh_mine_seconds": round(fresh_best, 4),
            "speedup": round(fresh_best / maintain_best, 2),
            "subsets_remined": metrics.subsets_remined,
            "cubes_patched": metrics.cubes_patched,
            "cubes": len(maintained),
        }
    return report


# ----------------------------------------------------------------------
# Out-of-core: child process body
# ----------------------------------------------------------------------
def _slice_bits(
    rng: np.random.Generator, k: int, out: np.ndarray
) -> np.ndarray:
    n, m = out.shape
    for r0 in range(0, n, GEN_ROWS):
        r1 = min(n, r0 + GEN_ROWS)
        out[r0:r1] = rng.random((r1 - r0, m)) < OOC_DENSITY
    bl, br, bc = OOC_BLOCK
    if k < bl:
        out[:br, :bc] = True
    return out


def run_outofcore_child(root: str) -> dict:
    import resource

    from repro.core.constraints import Thresholds
    from repro.obs.metrics import MiningMetrics
    from repro.stream import MmapDatasetStore, stream_mine

    l, n, m = OOC_SHAPE
    rng = np.random.default_rng(OOC_SEED)
    store = MmapDatasetStore(root)

    start = time.perf_counter()
    buffer = np.empty((n, m), dtype=bool)  # one reused slice buffer
    with store.writer(OOC_SHAPE) as writer:
        for k in range(l):
            writer.append_slice(_slice_bits(rng, k, buffer))
        fingerprint = writer.seal()
    write_seconds = time.perf_counter() - start
    packed_bytes = store.path(fingerprint).stat().st_size

    dataset = store.open(fingerprint, kernel="numpy")
    metrics = MiningMetrics()
    start = time.perf_counter()
    result = stream_mine(
        dataset,
        Thresholds(**OOC_THRESHOLDS),
        chunk_rows=OOC_CHUNK_ROWS,
        metrics=metrics,
    )
    mine_seconds = time.perf_counter() - start
    return {
        "shape": list(OOC_SHAPE),
        "packed_bytes": int(packed_bytes),
        "budget_bytes": OOC_BUDGET_BYTES,
        "peak_rss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        * 1024,
        "cubes": len(result),
        "chunks_read": metrics.stream_chunks_read,
        "chunk_rows": OOC_CHUNK_ROWS,
        "write_seconds": round(write_seconds, 2),
        "mine_seconds": round(mine_seconds, 2),
    }


def bench_outofcore() -> dict:
    """Run the out-of-core workload in a fresh process and collect it."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-stream-") as root:
        proc = subprocess.run(
            [sys.executable, __file__, "--outofcore-child", "--dir", root],
            capture_output=True,
            text=True,
            timeout=1800,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"out-of-core child failed:\n{proc.stdout}\n{proc.stderr}"
            )
        leftovers = list(Path(root).glob(".stream-*.tmp.npy"))
        if leftovers:
            raise RuntimeError(f"writer leaked temp files: {leftovers}")
        return json.loads(proc.stdout)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_bench(rounds: int, skip_outofcore: bool = False) -> dict:
    report = {"schema": SCHEMA, "maintainer": bench_maintainer(rounds)}
    if not skip_outofcore:
        report["outofcore"] = bench_outofcore()
    return report


def check(report: dict, min_speedup: float) -> list[str]:
    failures = []
    expire = report["maintainer"]["expire"]
    if expire["speedup"] < min_speedup:
        failures.append(
            f"expiry maintenance speedup {expire['speedup']}x "
            f"< required {min_speedup}x"
        )
    ooc = report.get("outofcore")
    if ooc is not None:
        if ooc["packed_bytes"] <= ooc["budget_bytes"]:
            failures.append(
                f"packed file ({ooc['packed_bytes']}) does not exceed the "
                f"budget ({ooc['budget_bytes']}) — workload too small"
            )
        if ooc["peak_rss_bytes"] >= ooc["budget_bytes"]:
            failures.append(
                f"peak RSS {ooc['peak_rss_bytes']} exceeded the budget "
                f"{ooc['budget_bytes']}"
            )
        if ooc["cubes"] < 1:
            failures.append("out-of-core mine found no cubes (expected >=1)")
    return failures


def _print(report: dict) -> None:
    maint = report["maintainer"]
    print("stream benchmark")
    print(f"  dataset             : {maint['dataset']}")
    print(f"  base cubes          : {maint['base_cubes']}")
    for name in ("expire", "edit"):
        row = maint[name]
        print(
            f"  {name:<7} maintain    : {row['maintain_seconds']}s vs fresh "
            f"{row['fresh_mine_seconds']}s -> {row['speedup']}x "
            f"({row['subsets_remined']} subsets re-mined, "
            f"{row['cubes_patched']} cubes patched)"
        )
    ooc = report.get("outofcore")
    if ooc is not None:
        mib = 1024 * 1024
        print(
            f"  out-of-core         : packed {ooc['packed_bytes'] // mib} MiB"
            f" > budget {ooc['budget_bytes'] // mib} MiB,"
            f" peak RSS {ooc['peak_rss_bytes'] // mib} MiB"
        )
        print(
            f"    write {ooc['write_seconds']}s, mine {ooc['mine_seconds']}s,"
            f" {ooc['cubes']} cube(s), {ooc['chunks_read']} chunks read"
        )


def sweep() -> None:
    """Entry point for ``run_all.py``."""
    _print(run_bench(rounds=1))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write the report as JSON to this path")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the speedup and RSS gates hold")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--rounds", type=int, default=3,
                        help="best-of rounds for the maintainer timings")
    parser.add_argument("--skip-outofcore", action="store_true",
                        help="maintainer part only (fast)")
    parser.add_argument("--outofcore-child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--dir", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.outofcore_child:
        json.dump(run_outofcore_child(args.dir), sys.stdout)
        return 0

    report = run_bench(args.rounds, skip_outofcore=args.skip_outofcore)
    _print(report)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.check:
        failures = check(report, args.min_speedup)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("all stream checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
