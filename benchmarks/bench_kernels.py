"""Kernel backend comparison on the Figure 3-5 workloads.

Runs every registered kernel backend (``python-int``, ``numpy``,
``native`` when the C extension is built) over representative points of
the paper's Figure 3 minC sweeps and the Figure 4/5 minH/minR settings,
for both CubeMiner and RSM.  Each point asserts that all backends
return the *identical* cube list (the differential test suite proves
the full contract; the assertion here guards the benchmark itself
against drift) and records per-kernel wall times.

A fold microbench isolates the primitive the miners spend their time
in — ``intersect_rows`` (per-row AND over a height selection) plus
``popcounts`` on the elutriation-scale grid — away from enumeration
overhead, which is where a backend's raw speed shows before it is
diluted by tree bookkeeping.

Standalone runs write ``BENCH_kernels.json`` at the repo root — the
machine-readable perf trajectory for the backend layer::

    python benchmarks/bench_kernels.py [--output BENCH_kernels.json]

``--check`` replays the fold microbench and enforces the native floor
committed with the native backend: native must hold >= 1.5x over numpy
on the fold microbench (interleaved timing, best-of-rounds median) and
every backend must produce bit-identical cube lists.  CI's native legs
run this; without the extension ``--check`` fails unless
``--skip-missing`` declares the narrowing instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import pytest

from common import (
    SweepSkipped,
    cdc15_bench,
    elutriation_bench,
    print_series_table,
    scale_minc,
    timed,
)
from repro.core.constraints import Thresholds
from repro.core.kernels import available_kernels, get_kernel
from repro.cubeminer import cubeminer_mine
from repro.rsm import rsm_mine

KERNELS = list(available_kernels())

#: The committed perf floor: native over numpy on the fold microbench.
NATIVE_FOLD_FLOOR = 1.5

_DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _cubeminer(dataset, thresholds):
    return cubeminer_mine(dataset, thresholds)


def _rsm(dataset, thresholds):
    return rsm_mine(dataset, thresholds, base_axis="row")


#: (name, figure, dataset factory, dataset label, algorithm runner,
#:  algorithm label, thresholds) — one benchmark point each.
def _workloads():
    elu_fig3 = [scale_minc(v, 7161) for v in (900, 1100, 1300)]
    cdc_fig3 = [scale_minc(v, 7761) for v in (1000, 1400)]
    points = []
    for min_c in elu_fig3:
        t = Thresholds(3, 3, min_c)
        points.append((f"fig3a-elu-cubeminer-minC={min_c}", "fig3a",
                       elutriation_bench, "elutriation", _cubeminer, "cubeminer", t))
        points.append((f"fig3a-elu-rsm_r-minC={min_c}", "fig3a",
                       elutriation_bench, "elutriation", _rsm, "rsm-r", t))
    for min_c in cdc_fig3:
        t = Thresholds(3, 3, min_c)
        points.append((f"fig3b-cdc15-cubeminer-minC={min_c}", "fig3b",
                       cdc15_bench, "cdc15", _cubeminer, "cubeminer", t))
        points.append((f"fig3b-cdc15-rsm_r-minC={min_c}", "fig3b",
                       cdc15_bench, "cdc15", _rsm, "rsm-r", t))
    elu_minc = scale_minc(1000, 7161)
    for min_h in (5, 7):  # Figure 4 points (minR=3)
        t = Thresholds(min_h, 3, elu_minc)
        points.append((f"fig4a-elu-cubeminer-minH={min_h}", "fig4a",
                       elutriation_bench, "elutriation", _cubeminer, "cubeminer", t))
        points.append((f"fig4a-elu-rsm_r-minH={min_h}", "fig4a",
                       elutriation_bench, "elutriation", _rsm, "rsm-r", t))
    for min_r in (4, 6):  # Figure 5 points (minH=3)
        t = Thresholds(3, min_r, elu_minc)
        points.append((f"fig5a-elu-cubeminer-minR={min_r}", "fig5a",
                       elutriation_bench, "elutriation", _cubeminer, "cubeminer", t))
        points.append((f"fig5a-elu-rsm_r-minR={min_r}", "fig5a",
                       elutriation_bench, "elutriation", _rsm, "rsm-r", t))
    return points


WORKLOADS = _workloads()


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize(
    "point", WORKLOADS[:6], ids=lambda p: p[0]  # fig3a sweep; full set via sweep()
)
def test_kernel_point(benchmark, kernel, point):
    _name, _fig, factory, _ds, runner, _alg, thresholds = point
    dataset = factory().with_kernel(kernel)
    benchmark.pedantic(runner, args=(dataset, thresholds), rounds=1, iterations=1)


# ----------------------------------------------------------------------
# Fold microbench: the raw intersect-and-count primitive
# ----------------------------------------------------------------------

def _fold_selections(l: int) -> list[int]:
    """A deterministic spread of height-subset bitmasks over ``l`` slices."""
    selections = []
    for size in (2, 3, 4, l - 1, l):
        base = (1 << size) - 1
        for shift in range(0, l - size + 1, 2):
            selections.append(base << shift)
    return selections


def fold_microbench(kernels: list[str], repeats: int = 25) -> dict[str, float]:
    """Seconds per kernel for the intersect_rows + popcounts fold loop.

    Timing is interleaved (one full pass per kernel, alternating) so
    machine noise hits every backend equally; the caller aggregates
    across rounds.
    """
    dataset = elutriation_bench()
    _l, _n, m = dataset.shape
    selections = _fold_selections(dataset.shape[0])
    grids = {
        name: get_kernel(name).pack_grid_from_tensor(dataset.data)
        for name in kernels
    }
    totals = dict.fromkeys(kernels, 0.0)
    for _ in range(repeats):
        for name in kernels:
            kernel = get_kernel(name)
            grid = grids[name]

            def one_pass(kernel=kernel, grid=grid):
                for heights in selections:
                    folded = kernel.intersect_rows(grid, heights, m)
                    kernel.popcounts(folded)

            t, _ = timed(one_pass)
            totals[name] += t
    return totals


# ----------------------------------------------------------------------
# Sweeps and gates
# ----------------------------------------------------------------------

def sweep(output: Path | None = None, fold_repeats: int = 25) -> dict:
    """Time every workload under every kernel; optionally write JSON."""
    records = []
    series: dict[str, list[float]] = {name: [] for name in KERNELS}
    labels: list[str] = []
    counts: list[int] = []
    for name, figure, factory, ds_label, runner, alg, thresholds in WORKLOADS:
        seconds: dict[str, float] = {}
        cubes: set | None = None
        n_cubes = 0
        for kernel in KERNELS:
            dataset = factory().with_kernel(kernel)
            t, result = timed(runner, dataset, thresholds)
            seconds[kernel] = round(t, 4)
            found = {(c.heights, c.rows, c.columns) for c in result.cubes}
            if cubes is None:
                cubes = found
                n_cubes = len(found)
            elif found != cubes:
                raise AssertionError(
                    f"{name}: kernel {kernel!r} mined a different cube set "
                    f"({len(found)} cubes vs {n_cubes}); backends must be "
                    f"bit-identical"
                )
            series[kernel].append(t)
        labels.append(name)
        counts.append(n_cubes)
        records.append({
            "name": name,
            "figure": figure,
            "dataset": ds_label,
            "algorithm": alg,
            "thresholds": [thresholds.min_h, thresholds.min_r, thresholds.min_c],
            "n_cubes": n_cubes,
            "seconds": seconds,
        })
    print_series_table(
        "Kernel backends on Figure 3-5 workloads",
        "workload", labels, series, counts=counts,
    )
    fold = fold_microbench(KERNELS, repeats=fold_repeats)
    print("\n== Fold microbench (intersect_rows + popcounts, elutriation grid) ==")
    for name in KERNELS:
        line = f"{name:>12}: {fold[name]:.4f}s"
        if name != "python-int" and fold.get("python-int"):
            line += f"  ({fold['python-int'] / fold[name]:.2f}x over python-int)"
        print(line)
    payload = {
        "kernels": KERNELS,
        "fold_microbench": {
            "repeats": fold_repeats,
            "seconds": {name: round(fold[name], 4) for name in KERNELS},
            "native_floor_over_numpy": NATIVE_FOLD_FLOOR,
        },
        "workloads": records,
    }
    if output is not None:
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nper-kernel wall times written to {output}")
    return payload


def sweep_skips() -> list[str]:
    """Environmental narrowings of this module's sweep, for run_all.py."""
    if "native" not in KERNELS:
        from repro.core.kernels import native_import_error

        return [
            "native kernel series omitted: the _native C extension is not "
            f"built ({native_import_error() or 'unknown reason'})"
        ]
    return []


def check(rounds: int = 3, fold_repeats: int = 10, skip_missing: bool = False) -> None:
    """Enforce the native perf floor and cross-backend cube identity.

    Raises :class:`AssertionError` on a violated gate, or
    :class:`~common.SweepSkipped` when native is absent and
    ``skip_missing`` declares that narrowing acceptable.
    """
    if "native" not in KERNELS:
        from repro.core.kernels import native_import_error

        message = (
            "native kernel unavailable "
            f"({native_import_error() or 'extension not built'})"
        )
        if skip_missing:
            raise SweepSkipped(f"bench_kernels --check skipped: {message}")
        raise AssertionError(
            f"--check needs the native backend: {message} "
            "(pass --skip-missing to declare this narrowing instead)"
        )

    # Gate 1: bit-identical cube lists on a representative workload mix
    # (one point per figure family, both algorithms).
    for point in (WORKLOADS[0], WORKLOADS[1], WORKLOADS[6], WORKLOADS[11]):
        name, _fig, factory, _ds, runner, _alg, thresholds = point
        cubes = None
        for kernel in KERNELS:
            result = runner(factory().with_kernel(kernel), thresholds)
            found = {(c.heights, c.rows, c.columns) for c in result.cubes}
            if cubes is None:
                cubes = found
            elif found != cubes:
                raise AssertionError(
                    f"{name}: kernel {kernel!r} mined a different cube set"
                )
        print(f"cube identity OK across {KERNELS}: {name} ({len(cubes or ())} cubes)")

    # Gate 2: the fold floor, best ratio across rounds so one noisy
    # round cannot fail a healthy build.
    ratios = []
    for _ in range(max(1, rounds)):
        fold = fold_microbench(["numpy", "native"], repeats=fold_repeats)
        ratios.append(fold["numpy"] / fold["native"])
    best = max(ratios)
    print(
        f"fold microbench: native {best:.2f}x over numpy "
        f"(rounds: {', '.join(f'{r:.2f}x' for r in ratios)}; "
        f"floor {NATIVE_FOLD_FLOOR}x)"
    )
    if best < NATIVE_FOLD_FLOOR:
        raise AssertionError(
            f"native kernel is only {best:.2f}x over numpy on the fold "
            f"microbench; the committed floor is {NATIVE_FOLD_FLOOR}x"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "output", nargs="?", type=Path, default=_DEFAULT_OUTPUT,
        help="JSON output path for the sweep (default: BENCH_kernels.json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="enforce the native>=1.5x fold floor and cross-backend cube "
             "identity instead of running the full sweep",
    )
    parser.add_argument(
        "--skip-missing", action="store_true",
        help="with --check: declare a skip (exit 0) when the native "
             "extension is not built, instead of failing",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="--check timing rounds; the best round must clear the floor",
    )
    parser.add_argument(
        "--fold-repeats", type=int, default=10,
        help="fold-microbench passes per kernel per round",
    )
    args = parser.parse_args(argv)
    if args.check:
        try:
            check(
                rounds=args.rounds,
                fold_repeats=args.fold_repeats,
                skip_missing=args.skip_missing,
            )
        except SweepSkipped as skip:
            print(skip)
            return 0
        return 0
    sweep(args.output, fold_repeats=max(args.fold_repeats, 25))
    return 0


if __name__ == "__main__":
    sys.exit(main())
