"""Kernel backend comparison on the Figure 3-5 workloads.

Runs every registered kernel backend (``python-int``, ``numpy``, plus
any future registrations) over representative points of the paper's
Figure 3 minC sweeps and the Figure 4/5 minH/minR settings, for both
CubeMiner and RSM.  Each point asserts that all backends return the
same number of cubes (the differential test suite proves full
equality; the assertion here guards the benchmark itself against
drift) and records per-kernel wall times.

Standalone runs additionally write ``BENCH_kernels.json`` at the repo
root — the machine-readable perf trajectory for the backend layer::

    python benchmarks/bench_kernels.py [output.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from common import cdc15_bench, elutriation_bench, print_series_table, scale_minc, timed
from repro.core.constraints import Thresholds
from repro.core.kernels import available_kernels
from repro.cubeminer import cubeminer_mine
from repro.rsm import rsm_mine

KERNELS = list(available_kernels())

_DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _cubeminer(dataset, thresholds):
    return cubeminer_mine(dataset, thresholds)


def _rsm(dataset, thresholds):
    return rsm_mine(dataset, thresholds, base_axis="row")


#: (name, figure, dataset factory, dataset label, algorithm runner,
#:  algorithm label, thresholds) — one benchmark point each.
def _workloads():
    elu_fig3 = [scale_minc(v, 7161) for v in (900, 1100, 1300)]
    cdc_fig3 = [scale_minc(v, 7761) for v in (1000, 1400)]
    points = []
    for min_c in elu_fig3:
        t = Thresholds(3, 3, min_c)
        points.append((f"fig3a-elu-cubeminer-minC={min_c}", "fig3a",
                       elutriation_bench, "elutriation", _cubeminer, "cubeminer", t))
        points.append((f"fig3a-elu-rsm_r-minC={min_c}", "fig3a",
                       elutriation_bench, "elutriation", _rsm, "rsm-r", t))
    for min_c in cdc_fig3:
        t = Thresholds(3, 3, min_c)
        points.append((f"fig3b-cdc15-cubeminer-minC={min_c}", "fig3b",
                       cdc15_bench, "cdc15", _cubeminer, "cubeminer", t))
        points.append((f"fig3b-cdc15-rsm_r-minC={min_c}", "fig3b",
                       cdc15_bench, "cdc15", _rsm, "rsm-r", t))
    elu_minc = scale_minc(1000, 7161)
    for min_h in (5, 7):  # Figure 4 points (minR=3)
        t = Thresholds(min_h, 3, elu_minc)
        points.append((f"fig4a-elu-cubeminer-minH={min_h}", "fig4a",
                       elutriation_bench, "elutriation", _cubeminer, "cubeminer", t))
        points.append((f"fig4a-elu-rsm_r-minH={min_h}", "fig4a",
                       elutriation_bench, "elutriation", _rsm, "rsm-r", t))
    for min_r in (4, 6):  # Figure 5 points (minH=3)
        t = Thresholds(3, min_r, elu_minc)
        points.append((f"fig5a-elu-cubeminer-minR={min_r}", "fig5a",
                       elutriation_bench, "elutriation", _cubeminer, "cubeminer", t))
        points.append((f"fig5a-elu-rsm_r-minR={min_r}", "fig5a",
                       elutriation_bench, "elutriation", _rsm, "rsm-r", t))
    return points


WORKLOADS = _workloads()


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize(
    "point", WORKLOADS[:6], ids=lambda p: p[0]  # fig3a sweep; full set via sweep()
)
def test_kernel_point(benchmark, kernel, point):
    _name, _fig, factory, _ds, runner, _alg, thresholds = point
    dataset = factory().with_kernel(kernel)
    benchmark.pedantic(runner, args=(dataset, thresholds), rounds=1, iterations=1)


def sweep(output: Path | None = _DEFAULT_OUTPUT) -> dict:
    """Time every workload under every kernel; optionally write JSON."""
    records = []
    series: dict[str, list[float]] = {name: [] for name in KERNELS}
    labels: list[str] = []
    counts: list[int] = []
    for name, figure, factory, ds_label, runner, alg, thresholds in WORKLOADS:
        seconds: dict[str, float] = {}
        n_cubes: int | None = None
        for kernel in KERNELS:
            dataset = factory().with_kernel(kernel)
            t, result = timed(runner, dataset, thresholds)
            seconds[kernel] = round(t, 4)
            if n_cubes is None:
                n_cubes = len(result)
            elif len(result) != n_cubes:
                raise AssertionError(
                    f"{name}: kernel {kernel!r} found {len(result)} cubes, "
                    f"expected {n_cubes}"
                )
            series[kernel].append(t)
        labels.append(name)
        counts.append(n_cubes or 0)
        records.append({
            "name": name,
            "figure": figure,
            "dataset": ds_label,
            "algorithm": alg,
            "thresholds": [thresholds.min_h, thresholds.min_r, thresholds.min_c],
            "n_cubes": n_cubes,
            "seconds": seconds,
        })
    print_series_table(
        "Kernel backends on Figure 3-5 workloads",
        "workload", labels, series, counts=counts,
    )
    payload = {"kernels": KERNELS, "workloads": records}
    if output is not None:
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nper-kernel wall times written to {output}")
    return payload


if __name__ == "__main__":
    sweep(Path(sys.argv[1]) if len(sys.argv) > 1 else _DEFAULT_OUTPUT)
