"""Benchmark-suite configuration.

Makes the ``benchmarks`` directory importable as a package root so the
modules can ``import common``, and keeps pytest-benchmark runs short:
every benchmark here uses ``benchmark.pedantic(..., rounds=N)`` with a
small N — the quantities of interest are coarse relative timings
(factors of 2x-100x between algorithms), not nanosecond precision.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
