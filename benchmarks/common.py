"""Shared infrastructure for the benchmark harness.

Every figure of the paper's evaluation (Section 7) has one
``bench_figN_*.py`` module.  Each module provides:

* pytest-benchmark tests — one per (series, parameter) point, so
  ``pytest benchmarks/ --benchmark-only`` regenerates the figure's
  series as the benchmark table (test ids encode series and point);
* a ``sweep()`` function printing the series as aligned text the way
  the paper reports them, runnable standalone
  (``python benchmarks/bench_figN_*.py``) — EXPERIMENTS.md embeds that
  output.

Workloads are scaled-down substitutes of the paper's (see DESIGN.md):
the gene axis of the microarray substitutes and the column axis of the
synthetic tensors are reduced so a pure-Python run of the entire
harness finishes in minutes, with every threshold translated
proportionally.  The *relative* curves (who wins, where the crossover
falls, monotone trends) are the reproduction target.
"""

from __future__ import annotations

import time
from functools import lru_cache

from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.datasets import cdc15_like, elutriation_like, planted_tensor


class SweepSkipped(Exception):
    """A sweep declined to run for an environmental reason.

    Raised by a module's ``sweep()`` (e.g. the native-kernel series when
    the C extension is not built on this interpreter).  ``run_all.py``
    reports these as declared skips — visible in the summary, but not
    failures — instead of silently narrowing the sweep.
    """

# ----------------------------------------------------------------------
# Benchmark datasets (cached — built once per session)
# ----------------------------------------------------------------------

#: Gene count for the microarray substitutes.  The paper uses 7161/7761;
#: thresholds below are scaled by GENES / 7161 (resp. 7761).
GENES = 250


@lru_cache(maxsize=None)
def elutriation_bench(seed: int = 0) -> Dataset3D:
    """Elutriation substitute: 14 x 9 x GENES (paper: 14 x 9 x 7161)."""
    return elutriation_like(GENES, seed=seed)


@lru_cache(maxsize=None)
def cdc15_bench(seed: int = 1) -> Dataset3D:
    """CDC15 substitute: 19 x 9 x GENES (paper: 19 x 9 x 7761)."""
    return cdc15_like(GENES, seed=seed)


def scale_minc(paper_minc: int, paper_genes: int) -> int:
    """Translate a paper minC (on 7161/7761 genes) to the bench scale."""
    return max(1, round(paper_minc * GENES / paper_genes))


@lru_cache(maxsize=None)
def synthetic_heights_bench(n_heights: int, seed: int | None = None) -> Dataset3D:
    """Figure 7 substitute: n_heights x 12 x 250 at 30% background
    density with planted correlated blocks (paper: h x 20 x 1000, IBM
    generator).  ``seed`` defaults to ``n_heights`` so each sweep point
    draws a distinct but reproducible tensor."""
    planted = planted_tensor(
        (n_heights, 12, 250),
        n_blocks=6,
        block_shape=(min(4, n_heights), 5, 20),
        background_density=0.30,
        seed=n_heights if seed is None else seed,
    )
    return planted.dataset


@lru_cache(maxsize=None)
def skewed_slices_bench(seed: int = 3) -> Dataset3D:
    """A 12 x 9 x 250 tensor whose height slices have very different
    densities (8%..85%) plus planted blocks.

    The zero-ordering heuristic of Figure 2 is a *slice-skew* effect:
    it pays off when some slices carry far more zeros than others (as
    in real cell-cycle time courses, where activity varies by phase).
    The microarray substitute's slices are nearly uniform, which damps
    the effect, so this deliberately skewed dataset accompanies it.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    l, n, m = 12, 9, 250
    densities = np.linspace(0.08, 0.85, l)
    rng.shuffle(densities)
    data = np.stack([rng.random((n, m)) < d for d in densities])
    for _ in range(4):
        hs = rng.choice(l, 5, replace=False)
        rs = rng.choice(n, 4, replace=False)
        cs = rng.choice(m, 30, replace=False)
        data[np.ix_(hs, rs, cs)] = True
    return Dataset3D(data)


@lru_cache(maxsize=None)
def large_synthetic_bench(seed: int = 99) -> Dataset3D:
    """Figure 8 substitute: 24 x 24 x 400 at 10% background density with
    planted blocks (paper: 100 x 100 x 10000, IBM generator)."""
    planted = planted_tensor(
        (24, 24, 400),
        n_blocks=8,
        block_shape=(8, 8, 40),
        background_density=0.10,
        seed=seed,
    )
    return planted.dataset


# ----------------------------------------------------------------------
# Sweep helpers
# ----------------------------------------------------------------------


def timed(fn, *args, **kwargs) -> tuple[float, object]:
    """Run ``fn`` once, returning (elapsed_seconds, result)."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - t0, result


def print_series_table(
    title: str,
    x_label: str,
    x_values: list,
    series: dict[str, list[float]],
    *,
    counts: list[int] | None = None,
) -> None:
    """Print one figure's series as an aligned text table."""
    print(f"\n== {title} ==")
    header = f"{x_label:>12} | " + " | ".join(f"{name:>18}" for name in series)
    if counts is not None:
        header += " | " + f"{'#FCCs':>7}"
    print(header)
    print("-" * len(header))
    for idx, x in enumerate(x_values):
        row = f"{x!s:>12} | " + " | ".join(
            f"{values[idx]:>17.3f}s" for values in series.values()
        )
        if counts is not None:
            row += f" | {counts[idx]:>7}"
        print(row)


def thresholds_for(dataset: Dataset3D, min_h: int, min_r: int, min_c: int) -> Thresholds:
    """Build thresholds, clamping to the dataset shape (guards sweeps)."""
    l, n, m = dataset.shape
    return Thresholds(min(min_h, l), min(min_r, n), min(min_c, m))
