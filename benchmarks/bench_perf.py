"""Hot-path performance guard: closure memoization and slice folding.

The performance layer makes two machine-portable promises:

* **CubeMiner memoization** — the zero-witness closure cache
  (:class:`repro.core.closure.ClosureCache`) must keep the memoized run
  at least ``memo_speedup_floor`` times faster than the same run with
  the cache disabled, while producing the *bit-identical* cube list
  (the bench asserts equality on every pair);
* **RSM prefix folding** — the incremental per-size slice enumeration
  (:func:`repro.rsm.slices.iter_size_slices`) must stay at least
  ``fold_speedup_floor`` times faster than the one-shot fold of
  :func:`repro.rsm.slices.iter_representative_slices` over the same
  subsets.

Absolute seconds vary wildly across CI runners, so the committed
baseline (``BENCH_perf.json``) gates only quantities that do not:

* **work counters** (nodes visited, leaves, cubes, cache hits/misses,
  slices mined, 2D patterns) are exact-matched — they are functions of
  the seeded workload alone, identical on every machine and kernel, so
  any drift means the algorithm changed and the baseline must be
  refreshed deliberately (``--update-baseline``);
* **speedup ratios** are measured as the median over interleaved
  pairs on the CPU clock (the two configurations of a pair share
  machine conditions, so load bursts cancel) and compared against the
  floors and the baseline ratios with ``--tolerance`` percent slack;
  with ``--check`` the measurement is retried up to ``--rounds`` times
  and only a run that fails every round fails the build.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py
    PYTHONPATH=src python benchmarks/bench_perf.py --check \
        --baseline BENCH_perf.json --tolerance 25
    PYTHONPATH=src python benchmarks/bench_perf.py --update-baseline \
        --baseline BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import pickle
import statistics
import sys
import time

from common import large_synthetic_bench, synthetic_heights_bench, thresholds_for
from repro.core.constraints import Thresholds
from repro.core.kernels import available_kernels
from repro.cubeminer.algorithm import cubeminer_mine
from repro.parallel import ShmManager, attach_dataset, publish_dataset
from repro.rsm.algorithm import rsm_mine
from repro.rsm.slices import iter_representative_slices, iter_size_slices

#: Bump when the file layout changes incompatibly; ``--check`` refuses
#: to compare baselines with a different version.
SCHEMA_VERSION = 1

#: Ratio gates: machine-portable floors the measured speedups must
#: clear (before tolerance is applied to the baseline ratios).
MEMO_SPEEDUP_FLOOR = 1.3
FOLD_SPEEDUP_FLOOR = 1.2
#: The shared-memory hand-off must beat the pickled-dataset hand-off.
#: Attach latency is far more machine-variable than the algorithmic
#: ratios (it is dominated by page mapping and hashing, not mining), so
#: this workload gates on the floor alone (``baseline_relative: false``)
#: and keeps the baseline ratio as documentation.
SHM_SPEEDUP_FLOOR = 1.05

#: Inner iterations per timed hand-off sample (one hand-off is
#: sub-millisecond; batching keeps the clock resolution honest).
_SHM_BATCH = 10

_CUBEMINER_THRESHOLDS = Thresholds(8, 8, 10)
_RSM_MIN_H = 4


def _default_kernel() -> str:
    kernels = available_kernels()
    return "numpy" if "numpy" in kernels else kernels[0]


def _cubeminer_workload(kernel: str):
    dataset = large_synthetic_bench().with_kernel(kernel)
    dataset.ones_grid()  # pre-pack so timing excludes one-time setup
    return dataset, _CUBEMINER_THRESHOLDS


def _rsm_workload(kernel: str):
    dataset = synthetic_heights_bench(12).with_kernel(kernel)
    dataset.ones_grid()
    return dataset, thresholds_for(dataset, _RSM_MIN_H, 4, 20)


def _measure_cubeminer(kernel: str, repeats: int) -> dict:
    """Interleaved uncached/cached CubeMiner pairs; asserts parity."""
    dataset, thresholds = _cubeminer_workload(kernel)

    def run(cache_spec):
        start = time.process_time()
        result = cubeminer_mine(dataset, thresholds, closure_cache=cache_spec)
        return time.process_time() - start, result

    run(0)  # warm both paths
    run(None)
    off_times, on_times, ratios = [], [], []
    reference = None
    for _ in range(repeats):
        off_seconds, off_result = run(0)
        on_seconds, on_result = run(None)
        if off_result.cubes != on_result.cubes:
            raise AssertionError(
                "memoized CubeMiner produced a different cube list"
            )
        reference = on_result
        off_times.append(off_seconds)
        on_times.append(on_seconds)
        ratios.append(off_seconds / on_seconds)
    metrics = reference.stats.metrics
    return {
        "counters": {
            "nodes_visited": metrics.nodes_visited,
            "leaves_emitted": metrics.leaves_emitted,
            "n_cubes": len(reference),
            "closure_cache_hits": metrics.closure_cache_hits,
            "closure_cache_misses": metrics.closure_cache_misses,
        },
        "uncached_seconds": min(off_times),
        "cached_seconds": min(on_times),
        "memo_speedup": statistics.median(ratios),
    }


def _measure_rsm(kernel: str, repeats: int) -> dict:
    """One-shot vs incremental slice folding, plus a full-run counter set."""
    dataset, thresholds = _rsm_workload(kernel)
    min_h = thresholds.min_h

    def fold_oneshot():
        start = time.process_time()
        n = sum(1 for _ in iter_representative_slices(dataset, min_h))
        return time.process_time() - start, n

    def fold_incremental():
        start = time.process_time()
        n = 0
        for size in range(min_h, dataset.n_heights + 1):
            for _ in iter_size_slices(dataset, size):
                n += 1
        return time.process_time() - start, n

    fold_oneshot()  # warm up
    fold_incremental()
    one_times, inc_times, ratios = [], [], []
    for _ in range(repeats):
        one_seconds, n_one = fold_oneshot()
        inc_seconds, n_inc = fold_incremental()
        if n_one != n_inc:
            raise AssertionError("slice enumeration count mismatch")
        one_times.append(one_seconds)
        inc_times.append(inc_seconds)
        ratios.append(one_seconds / inc_seconds)
    start = time.process_time()
    result = rsm_mine(dataset, thresholds)
    mine_seconds = time.process_time() - start
    metrics = result.stats.metrics
    return {
        "counters": {
            "rs_slices_mined": metrics.rs_slices_mined,
            "fcp_patterns": metrics.fcp_patterns,
            "postprune_checked": metrics.postprune_checked,
            "n_cubes": len(result),
        },
        "oneshot_seconds": min(one_times),
        "incremental_seconds": min(inc_times),
        "mine_seconds": mine_seconds,
        "fold_speedup": statistics.median(ratios),
    }


def _measure_shm(kernel: str, repeats: int) -> dict:
    """Pickled-dataset vs shared-memory worker hand-off; asserts parity.

    The copy path models the legacy pool initializer (pickle the whole
    dataset, unpickle in the worker, re-pack the ones-grid); the shm
    path models the new one (attach to the published segment, verify the
    fingerprint, adopt/unpack the word grid).  The per-worker tensor
    payloads are exact-match counters: the copy path ships every cell,
    the shm path ships zero — only an O(1) ref crosses the pickle
    boundary (asserted under 512 bytes).  Mining the attached dataset
    must yield the bit-identical cube list.
    """
    dataset, thresholds = _cubeminer_workload(kernel)
    l, n, m = dataset.shape

    def copy_handoff():
        start = time.process_time()
        for _ in range(_SHM_BATCH):
            clone = pickle.loads(pickle.dumps(dataset))
            clone.ones_grid()
        return time.process_time() - start

    with ShmManager() as manager:
        ref = publish_dataset(dataset, manager)
        ref_bytes = len(pickle.dumps(ref))
        if ref_bytes >= 512:
            raise AssertionError(
                f"ShmDatasetRef pickles to {ref_bytes} bytes; the hand-off "
                "is supposed to be O(1)"
            )

        def shm_handoff():
            start = time.process_time()
            for _ in range(_SHM_BATCH):
                attachment = attach_dataset(ref)
                attachment.dataset.ones_grid()
                attachment.close()
            return time.process_time() - start

        copy_handoff()  # warm both paths
        shm_handoff()
        copy_times, shm_times, ratios = [], [], []
        for _ in range(repeats):
            copy_seconds = copy_handoff()
            shm_seconds = shm_handoff()
            copy_times.append(copy_seconds)
            shm_times.append(shm_seconds)
            ratios.append(copy_seconds / shm_seconds)
        attachment = attach_dataset(ref)
        shm_result = cubeminer_mine(attachment.dataset, thresholds)
        direct_result = cubeminer_mine(dataset, thresholds)
        attachment.close()
    if shm_result.cubes != direct_result.cubes:
        raise AssertionError(
            "mining an shm-attached dataset produced a different cube list"
        )
    return {
        "counters": {
            "tensor_payload_bytes_copy": l * n * m,
            "tensor_payload_bytes_shm": 0,
            "n_cubes": len(shm_result),
        },
        "copy_seconds": min(copy_times) / _SHM_BATCH,
        "shm_seconds": min(shm_times) / _SHM_BATCH,
        "shm_handoff_speedup": statistics.median(ratios),
    }


def measure(kernel: str, repeats: int) -> dict:
    """All perf series for one kernel."""
    return {
        "cubeminer-memoization": _measure_cubeminer(kernel, repeats),
        "rsm-prefix-fold": _measure_rsm(kernel, repeats),
        "parallel-shm": _measure_shm(kernel, repeats),
    }


def make_baseline(repeats: int, kernels: list[str] | None = None) -> dict:
    """Measure every kernel and build the committed baseline payload.

    The counter sets must agree across kernels (they are functions of
    the workload, not the backend) — a mismatch is a correctness bug
    and refuses to produce a baseline.
    """
    kernels = kernels or available_kernels()
    per_kernel = {kernel: measure(kernel, repeats) for kernel in kernels}
    counters = None
    for kernel, series in per_kernel.items():
        observed = {name: data["counters"] for name, data in series.items()}
        if counters is None:
            counters = observed
        elif observed != counters:
            raise AssertionError(
                f"work counters differ between kernels ({kernel} deviates); "
                "refusing to write a baseline over a correctness bug"
            )
    return {
        "schema_version": SCHEMA_VERSION,
        "generator": "benchmarks/bench_perf.py",
        "workloads": {
            "cubeminer-memoization": {
                "dataset": "large_synthetic_bench()",
                "thresholds": list(_CUBEMINER_THRESHOLDS.as_tuple()),
                "counters": counters["cubeminer-memoization"],
                "gates": {"memo_speedup_floor": MEMO_SPEEDUP_FLOOR},
                # The cache trades a dict lookup for a closure
                # computation; under the native backend the closure is
                # cheaper than the lookup, so the ratio promise only
                # holds where memoization is actually profitable (the
                # native backend's own floor lives in bench_kernels.py:
                # >= 1.5x over numpy on the raw fold primitive).
                "gate_kernels": ["numpy", "python-int"],
            },
            "rsm-prefix-fold": {
                "dataset": "synthetic_heights_bench(12)",
                "min_h": _RSM_MIN_H,
                "counters": counters["rsm-prefix-fold"],
                "gates": {"fold_speedup_floor": FOLD_SPEEDUP_FLOOR},
                # Same story: incremental folding amortizes per-slice
                # AND cost, which the native backend has already driven
                # below the bookkeeping overhead.
                "gate_kernels": ["numpy", "python-int"],
            },
            "parallel-shm": {
                "dataset": "large_synthetic_bench()",
                "thresholds": list(_CUBEMINER_THRESHOLDS.as_tuple()),
                "counters": counters["parallel-shm"],
                "gates": {"shm_handoff_speedup_floor": SHM_SPEEDUP_FLOOR},
                # Attach latency varies with the machine far more than
                # the mining ratios do; gate on the floor alone.
                "baseline_relative": False,
                # Only the zero-copy (words-native) kernels promise a
                # faster hand-off; python-int's copy fallback is ~parity.
                "gate_kernels": [
                    k for k in ("numpy", "native") if k in available_kernels()
                ],
            },
        },
        "kernels": {
            kernel: {
                "cubeminer-memoization": {
                    "uncached_seconds": round(s["cubeminer-memoization"]["uncached_seconds"], 4),
                    "cached_seconds": round(s["cubeminer-memoization"]["cached_seconds"], 4),
                    "memo_speedup": round(s["cubeminer-memoization"]["memo_speedup"], 3),
                },
                "rsm-prefix-fold": {
                    "oneshot_seconds": round(s["rsm-prefix-fold"]["oneshot_seconds"], 4),
                    "incremental_seconds": round(s["rsm-prefix-fold"]["incremental_seconds"], 4),
                    "mine_seconds": round(s["rsm-prefix-fold"]["mine_seconds"], 4),
                    "fold_speedup": round(s["rsm-prefix-fold"]["fold_speedup"], 3),
                },
                "parallel-shm": {
                    "copy_seconds": round(s["parallel-shm"]["copy_seconds"], 6),
                    "shm_seconds": round(s["parallel-shm"]["shm_seconds"], 6),
                    "shm_handoff_speedup": round(s["parallel-shm"]["shm_handoff_speedup"], 3),
                },
            }
            for kernel, s in per_kernel.items()
        },
    }


def check_against_baseline(
    series: dict, baseline: dict, kernel: str, tolerance: float
) -> list[str]:
    """Return the gate failures of one measurement round (empty = pass)."""
    failures: list[str] = []
    if baseline.get("schema_version") != SCHEMA_VERSION:
        return [
            f"baseline schema_version {baseline.get('schema_version')!r} != "
            f"{SCHEMA_VERSION}; refresh with --update-baseline"
        ]
    slack = 1.0 - tolerance / 100.0
    kernel_base = baseline.get("kernels", {}).get(kernel, {})
    for name, data in series.items():
        workload = baseline["workloads"].get(name)
        if workload is None:
            failures.append(f"{name}: missing from baseline; refresh it")
            continue
        if data["counters"] != workload["counters"]:
            failures.append(
                f"{name}: work counters drifted from baseline "
                f"(got {data['counters']}, baseline {workload['counters']}); "
                "an intended algorithm change needs --update-baseline"
            )
        gated = workload.get("gate_kernels")
        if gated is not None and kernel not in gated:
            continue  # counters checked above; ratios not promised here
        for gate_name, floor in workload["gates"].items():
            ratio_key = gate_name.removesuffix("_floor")
            measured = data[ratio_key]
            target = floor
            baseline_ratio = kernel_base.get(name, {}).get(ratio_key)
            if not workload.get("baseline_relative", True):
                baseline_ratio = None  # floor-only gate
            if baseline_ratio is not None:
                target = max(target, baseline_ratio * slack)
            if measured < target:
                failures.append(
                    f"{name}: {ratio_key} {measured:.2f}x below gate "
                    f"{target:.2f}x (floor {floor:g}x, baseline "
                    f"{baseline_ratio if baseline_ratio is not None else 'n/a'}, "
                    f"tolerance {tolerance:g}%)"
                )
    return failures


def _print_series(kernel: str, series: dict) -> None:
    cm = series["cubeminer-memoization"]
    rsm = series["rsm-prefix-fold"]
    print(f"[{kernel}] cubeminer : uncached {cm['uncached_seconds'] * 1e3:8.1f} ms"
          f" cached {cm['cached_seconds'] * 1e3:8.1f} ms"
          f" memo speedup {cm['memo_speedup']:.2f}x"
          f" ({cm['counters']['nodes_visited']} nodes,"
          f" {cm['counters']['n_cubes']} cubes,"
          f" {cm['counters']['closure_cache_hits']} cache hits)")
    print(f"[{kernel}] rsm       : one-shot {rsm['oneshot_seconds'] * 1e3:8.1f} ms"
          f" incremental {rsm['incremental_seconds'] * 1e3:8.1f} ms"
          f" fold speedup {rsm['fold_speedup']:.2f}x"
          f" ({rsm['counters']['rs_slices_mined']} slices,"
          f" {rsm['counters']['n_cubes']} cubes)")
    shm = series["parallel-shm"]
    print(f"[{kernel}] shm       : pickled {shm['copy_seconds'] * 1e3:8.1f} ms"
          f" shm {shm['shm_seconds'] * 1e3:8.1f} ms"
          f" hand-off speedup {shm['shm_handoff_speedup']:.2f}x"
          f" ({shm['counters']['tensor_payload_bytes_copy']} payload bytes -> "
          f"{shm['counters']['tensor_payload_bytes_shm']},"
          f" {shm['counters']['n_cubes']} cubes)")


def sweep() -> None:
    """Standalone report for run_all.py: one measurement per kernel."""
    for kernel in available_kernels():
        _print_series(kernel, measure(kernel, repeats=3))


def sweep_skips() -> list[str]:
    """Environmental narrowings of this module's sweep, for run_all.py."""
    if "native" not in available_kernels():
        from repro.core.kernels import native_import_error

        return [
            "native kernel series omitted: the _native C extension is not "
            f"built ({native_import_error() or 'unknown reason'})"
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved measurement pairs per series")
    parser.add_argument("--rounds", type=int, default=3,
                        help="max measurement rounds for --check; the gate "
                             "passes as soon as one round passes")
    parser.add_argument("--kernel", choices=available_kernels(),
                        default=_default_kernel(),
                        help="bitset backend to measure (default: numpy "
                             "when available)")
    parser.add_argument("--baseline", default="BENCH_perf.json", metavar="PATH",
                        help="committed baseline file (default BENCH_perf.json)")
    parser.add_argument("--tolerance", type=float, default=25.0,
                        help="allowed percent regression of the speedup "
                             "ratios relative to the baseline ratios")
    parser.add_argument("--check", action="store_true",
                        help="compare against --baseline and exit 1 on "
                             "regression")
    parser.add_argument("--update-baseline", action="store_true",
                        help="measure every kernel and rewrite --baseline")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write this run's measurements as JSON")
    args = parser.parse_args(argv)

    if args.update_baseline:
        payload = make_baseline(args.repeats)
        with open(args.baseline, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        for kernel in payload["kernels"]:
            print(f"{kernel}: "
                  f"memo {payload['kernels'][kernel]['cubeminer-memoization']['memo_speedup']}x, "
                  f"fold {payload['kernels'][kernel]['rsm-prefix-fold']['fold_speedup']}x")
        print(f"baseline written to {args.baseline}")
        return 0

    series = None
    if args.check:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        rounds = max(1, args.rounds)
        failures: list[str] = []
        for attempt in range(1, rounds + 1):
            series = measure(args.kernel, args.repeats)
            _print_series(args.kernel, series)
            failures = check_against_baseline(
                series, baseline, args.kernel, args.tolerance
            )
            if not failures:
                print(f"perf gates pass on the {args.kernel} kernel")
                break
            if attempt < rounds:
                print(f"round {attempt}/{rounds} failed — re-measuring")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
    else:
        series = measure(args.kernel, args.repeats)
        _print_series(args.kernel, series)

    if args.json:
        with open(args.json, "w") as handle:
            json.dump({"kernel": args.kernel, "series": series}, handle, indent=2)
            handle.write("\n")
        print(f"json in {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
