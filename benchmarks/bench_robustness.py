"""Robustness: noise tolerance, fault recovery, service availability.

Not a paper figure.  Three sweeps:

1. **Dropout** — the paper mines exact all-ones cubes, and this bench
   quantifies the practical consequence: how quickly recovery of
   planted ground truth degrades as one-cells drop out (measurement
   dropout being the dominant noise in binarized microarray data).
   The relevance score (average best-match Jaccard of each planted
   block, see :mod:`repro.analysis.recovery`) falls steeply with even
   a few percent dropout — the motivation the later noise-tolerant
   triclustering literature cites.
2. **Fault recovery** — the wall-clock premium the parallel
   supervisor pays to recover from k injected worker faults
   (alternating exceptions and hard crashes) relative to a clean run,
   with result parity asserted at every point.  See
   docs/robustness.md.
3. **Availability under storage faults** — the hardened service
   runtime (:mod:`repro.service`) driven by a seeded-random
   :class:`repro.chaos.ChaosPlan` injecting ENOSPC/EIO/torn
   writes/bit flips/stale temps under every store, at increasing
   rates.  Every request must end in a typed outcome (no unhandled
   crashes, ever), every served result must be bit-identical to a
   clean mine, and the data directory must fsck clean after
   ``--repair``.  ``--check`` re-runs this sweep and enforces those
   gates against the recorded series — CI's chaos job runs it.

All series are recorded in ``BENCH_robustness.json``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from common import print_series_table, timed
from repro.analysis.recovery import recovery_report
from repro.api import mine
from repro.chaos import ChaosPlan, ChaosShim, fsck_data_dir
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.datasets import drop_ones, planted_tensor, random_tensor
from repro.parallel import (
    Fault,
    FaultPlan,
    parallel_cubeminer_mine,
    parallel_rsm_mine,
)

_DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_robustness.json"

DROPOUT_LEVELS = [0.0, 0.02, 0.05, 0.10, 0.20]
THRESHOLDS = Thresholds(2, 2, 3)

FAULT_COUNTS = [0, 1, 2, 4]
FAULT_THRESHOLDS = Thresholds(2, 2, 2)
FAULT_DRIVERS = [
    ("parallel-rsm", parallel_rsm_mine),
    ("parallel-cubeminer", parallel_cubeminer_mine),
]


def _planted():
    return planted_tensor(
        (6, 10, 60), n_blocks=5, block_shape=(3, 4, 10),
        background_density=0.05, seed=41,
    )


def _fault_dataset():
    return random_tensor((6, 12, 30), 0.3, seed=7)


def _fault_plan(n_faults: int) -> FaultPlan | None:
    """k faults on the first k chunks, alternating exception / crash."""
    if n_faults == 0:
        return None
    kinds = ("exception", "crash")
    return FaultPlan(
        {chunk: Fault(kinds[chunk % 2]) for chunk in range(n_faults)}
    )


@pytest.mark.parametrize(
    "dropout", DROPOUT_LEVELS, ids=lambda v: f"dropout={v:.2f}"
)
def test_robustness_mining_under_dropout(benchmark, dropout):
    planted = _planted()
    noisy = (
        planted.dataset
        if dropout == 0.0
        else drop_ones(planted.dataset, dropout, seed=42)
    )
    result = benchmark.pedantic(mine, args=(noisy, THRESHOLDS), rounds=1, iterations=1)
    report = recovery_report(planted.planted, result)
    if dropout == 0.0:
        assert report.relevance > 0.9


@pytest.mark.parametrize("n_faults", FAULT_COUNTS, ids=lambda k: f"faults={k}")
@pytest.mark.parametrize("name,driver", FAULT_DRIVERS, ids=lambda v: str(v))
def test_recovery_overhead_point(benchmark, name, driver, n_faults):
    dataset = _fault_dataset()
    result = benchmark.pedantic(
        driver,
        args=(dataset, FAULT_THRESHOLDS),
        kwargs={"n_workers": 2, "backoff": 0.01, "fault_plan": _fault_plan(n_faults)},
        rounds=1, iterations=1,
    )
    assert len(result) > 0


def _dropout_sweep() -> list[dict]:
    planted = _planted()
    series: dict[str, list[float]] = {
        "mine time": [], "relevance": [], "specificity": [],
    }
    counts: list[int] = []
    records: list[dict] = []
    for dropout in DROPOUT_LEVELS:
        noisy = (
            planted.dataset
            if dropout == 0.0
            else drop_ones(planted.dataset, dropout, seed=42)
        )
        elapsed, result = timed(mine, noisy, THRESHOLDS)
        report = recovery_report(planted.planted, result)
        series["mine time"].append(elapsed)
        series["relevance"].append(report.relevance)
        series["specificity"].append(report.specificity)
        counts.append(len(result))
        records.append({
            "dropout": dropout,
            "seconds": round(elapsed, 4),
            "n_cubes": len(result),
            "relevance": round(report.relevance, 4),
            "specificity": round(report.specificity, 4),
        })
    print_series_table(
        "Robustness: planted-block recovery vs dropout "
        "(6x10x60, 5 blocks, minH=2 minR=2 minC=3)",
        "dropout", DROPOUT_LEVELS, series, counts=counts,
    )
    print(
        "  note: relevance/specificity columns are scores in [0,1], "
        "not seconds."
    )
    return records


def _recovery_sweep() -> list[dict]:
    dataset = _fault_dataset()
    series: dict[str, list[float]] = {name: [] for name, _ in FAULT_DRIVERS}
    counts: list[int] = []
    records: list[dict] = []
    for name, driver in FAULT_DRIVERS:
        clean = None
        for n_faults in FAULT_COUNTS:
            elapsed, result = timed(
                driver, dataset, FAULT_THRESHOLDS,
                n_workers=2, backoff=0.01, fault_plan=_fault_plan(n_faults),
            )
            if clean is None:
                clean = result
            elif list(result) != list(clean):
                raise AssertionError(
                    f"{name}: {n_faults} injected faults changed the "
                    f"result ({len(result)} cubes vs {len(clean)})"
                )
            series[name].append(elapsed)
            recovery = result.stats.extra.get("recovery", {})
            records.append({
                "driver": name,
                "n_faults": n_faults,
                "seconds": round(elapsed, 4),
                "n_cubes": len(result),
                "recovery": recovery,
            })
        counts.append(len(clean))
    print_series_table(
        "Fault-recovery overhead: clean run vs k injected faults "
        "(6x12x30, 2 workers, alternating exception/crash)",
        "faults", FAULT_COUNTS, series,
    )
    return records


#: Per-operation storage fault rates for the availability sweep.
AVAILABILITY_RATES = [0.0, 0.05, 0.1, 0.2]
AVAILABILITY_JOBS = 6
AVAILABILITY_THRESHOLDS = Thresholds(1, 2, 2)
#: Storage-layer faults only — worker crash/hang have their own sweep
#: above, and transport resets are the client-retry tests' subject.
AVAILABILITY_KINDS = ("enospc", "eio", "torn-write", "bit-flip", "stale-tmp")
AVAILABILITY_SITES = ("registry", "cache", "jobs")


def _availability_dataset() -> Dataset3D:
    rng = np.random.default_rng(11)
    return Dataset3D(rng.random((3, 6, 6)) < 0.5)


def _availability_point(rate: float, seed: int = 23) -> dict:
    """Drive one daemon under seeded storage faults; classify outcomes.

    Every submitted job must land in exactly one bucket: ``served``
    (done, result fetched, bit-identical to a clean mine), ``typed``
    (a typed HTTP error or a terminal failed/quarantined status), or
    ``unhandled`` (an exception escaped the service — the bucket that
    must stay empty).
    """
    from repro.service import Request, ServiceApp

    dataset = _availability_dataset()
    clean = sorted(
        (c.heights, c.rows, c.columns)
        for c in mine(dataset, AVAILABILITY_THRESHOLDS)
    )
    shim = None
    if rate > 0.0:
        shim = ChaosShim(
            ChaosPlan.random(
                seed, rate=rate, kinds=AVAILABILITY_KINDS,
                sites=AVAILABILITY_SITES,
            )
        )
    data_dir = Path(tempfile.mkdtemp(prefix="repro-bench-chaos-"))
    app = ServiceApp(
        data_dir, max_workers=1, start_method="fork",
        max_retries=3, retry_backoff=0.05, io=shim,
    )
    served = typed = unhandled = 0
    start = time.perf_counter()
    try:
        fingerprint = None
        for _ in range(6):  # registration itself runs under the shim
            try:
                fingerprint = app.registry.register(dataset).fingerprint
                break
            except OSError:
                continue
        if fingerprint is None:
            typed = AVAILABILITY_JOBS  # rejected, but rejected *typed*
        else:
            for _ in range(AVAILABILITY_JOBS):
                try:
                    response = app.handle(Request(
                        method="POST", path="/v1/jobs",
                        body=json.dumps({
                            "dataset": fingerprint,
                            "thresholds": AVAILABILITY_THRESHOLDS.to_dict(),
                            # Force a fresh worker mine per job: the
                            # point is the pipeline, not the cache.
                            "use_cache": False,
                        }).encode(),
                    ))
                    if response.status not in (200, 202):
                        typed += 1
                        continue
                    job_id = response.payload["id"]
                    deadline = time.monotonic() + 120
                    record = None
                    while time.monotonic() < deadline:
                        record = app.jobs.get(job_id)
                        if record.terminal:
                            break
                        time.sleep(0.05)
                    if record is None or record.status != "done":
                        typed += 1
                        continue
                    result = app.handle(Request(
                        method="GET", path=f"/v1/jobs/{job_id}/result",
                    ))
                    if result.status != 200:
                        typed += 1
                        continue
                    cubes = sorted(
                        (int(h), int(r), int(c))
                        for h, r, c in result.payload["result"]["cubes"]
                    )
                    if cubes == clean:
                        served += 1
                    else:  # silent cube loss — counts as a crash
                        unhandled += 1
                except ConnectionResetError:
                    typed += 1  # a transport reset is a typed outcome
                except Exception:  # noqa: BLE001 - the bucket under test
                    unhandled += 1
        chaos = app.chaos.as_dict()
        faults_fired = shim.plan.fired() if shim is not None else 0
    finally:
        app.close()
    elapsed = time.perf_counter() - start
    fsck_data_dir(data_dir, repair=True)
    post_repair_clean = fsck_data_dir(data_dir).clean
    shutil.rmtree(data_dir, ignore_errors=True)
    return {
        "rate": rate,
        "jobs": AVAILABILITY_JOBS,
        "served": served,
        "typed": typed,
        "unhandled": unhandled,
        "availability": round(served / AVAILABILITY_JOBS, 4),
        "faults_fired": faults_fired,
        "seconds": round(elapsed, 4),
        "fsck_clean_after_repair": post_repair_clean,
        "chaos": chaos,
    }


def _gate_availability(records: list[dict]) -> None:
    """The CI gates: typed outcomes always, full service when clean."""
    for record in records:
        rate = record["rate"]
        if record["unhandled"]:
            raise AssertionError(
                f"rate={rate}: {record['unhandled']} request(s) ended in "
                "an unhandled crash or silent cube loss"
            )
        if not record["fsck_clean_after_repair"]:
            raise AssertionError(
                f"rate={rate}: data dir does not fsck clean after --repair"
            )
        if rate == 0.0 and record["availability"] != 1.0:
            raise AssertionError(
                f"clean run served {record['served']}/{record['jobs']} jobs"
            )
        if rate <= 0.1 and record["served"] == 0:
            raise AssertionError(
                f"rate={rate}: retry budget absorbed nothing "
                f"(0/{record['jobs']} served)"
            )


def _availability_sweep() -> list[dict]:
    records = [_availability_point(rate) for rate in AVAILABILITY_RATES]
    series = {
        "availability": [r["availability"] for r in records],
        "faults fired": [float(r["faults_fired"]) for r in records],
        "wall time": [r["seconds"] for r in records],
    }
    print_series_table(
        "Service availability under seeded storage faults "
        f"(3x6x6, {AVAILABILITY_JOBS} jobs/rate, 1 worker, retry budget 3)",
        "rate", AVAILABILITY_RATES, series,
        counts=[r["served"] for r in records],
    )
    print(
        "  note: availability is the served-bit-identical fraction; "
        "n is jobs served."
    )
    _gate_availability(records)
    return records


def sweep(output: Path | None = _DEFAULT_OUTPUT) -> dict:
    dropout_records = _dropout_sweep()
    print()
    recovery_records = _recovery_sweep()
    print()
    availability_records = _availability_sweep()
    payload = {
        "dropout": dropout_records,
        "fault_recovery": recovery_records,
        "availability": availability_records,
    }
    if output is not None:
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nrobustness series written to {output}")
    return payload


def check(recorded: Path = _DEFAULT_OUTPUT) -> int:
    """CI gate: re-run the availability sweep, enforce its invariants.

    Also verifies the recorded series covers the same rates — a stale
    ``BENCH_robustness.json`` fails here instead of drifting silently.
    """
    try:
        baseline = json.loads(recorded.read_text())
    except (OSError, ValueError) as error:
        print(f"FAIL: cannot read {recorded}: {error}", file=sys.stderr)
        return 1
    recorded_rates = [r.get("rate") for r in baseline.get("availability", [])]
    if recorded_rates != AVAILABILITY_RATES:
        print(
            f"FAIL: {recorded} availability series covers {recorded_rates}, "
            f"expected {AVAILABILITY_RATES} — regenerate with "
            "'python benchmarks/bench_robustness.py'",
            file=sys.stderr,
        )
        return 1
    try:
        _availability_sweep()
    except AssertionError as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print("availability gates hold")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "output", nargs="?", type=Path, default=_DEFAULT_OUTPUT,
        help="where to write the series JSON",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="re-run only the availability sweep and enforce its CI gates "
        "against the recorded series",
    )
    cli_args = parser.parse_args()
    if cli_args.check:
        raise SystemExit(check(cli_args.output))
    sweep(cli_args.output)
