"""Noise robustness: recovery of planted blocks under dropout.

Not a paper figure — the paper mines exact all-ones cubes, and this
bench quantifies the practical consequence: how quickly recovery of
planted ground truth degrades as one-cells drop out (measurement
dropout being the dominant noise in binarized microarray data).  The
relevance score (average best-match Jaccard of each planted block,
see :mod:`repro.analysis.recovery`) falls steeply with even a few
percent dropout — the motivation the later noise-tolerant
triclustering literature cites.
"""

from __future__ import annotations

import pytest

from common import print_series_table, timed
from repro.analysis.recovery import recovery_report
from repro.api import mine
from repro.core.constraints import Thresholds
from repro.datasets import drop_ones, planted_tensor

DROPOUT_LEVELS = [0.0, 0.02, 0.05, 0.10, 0.20]
THRESHOLDS = Thresholds(2, 2, 3)


def _planted():
    return planted_tensor(
        (6, 10, 60), n_blocks=5, block_shape=(3, 4, 10),
        background_density=0.05, seed=41,
    )


@pytest.mark.parametrize(
    "dropout", DROPOUT_LEVELS, ids=lambda v: f"dropout={v:.2f}"
)
def test_robustness_mining_under_dropout(benchmark, dropout):
    planted = _planted()
    noisy = (
        planted.dataset
        if dropout == 0.0
        else drop_ones(planted.dataset, dropout, seed=42)
    )
    result = benchmark.pedantic(mine, args=(noisy, THRESHOLDS), rounds=1, iterations=1)
    report = recovery_report(planted.planted, result)
    if dropout == 0.0:
        assert report.relevance > 0.9


def sweep() -> None:
    planted = _planted()
    series: dict[str, list[float]] = {
        "mine time": [], "relevance": [], "specificity": [],
    }
    counts: list[int] = []
    for dropout in DROPOUT_LEVELS:
        noisy = (
            planted.dataset
            if dropout == 0.0
            else drop_ones(planted.dataset, dropout, seed=42)
        )
        elapsed, result = timed(mine, noisy, THRESHOLDS)
        report = recovery_report(planted.planted, result)
        series["mine time"].append(elapsed)
        series["relevance"].append(report.relevance)
        series["specificity"].append(report.specificity)
        counts.append(len(result))
    print_series_table(
        "Robustness: planted-block recovery vs dropout "
        "(6x10x60, 5 blocks, minH=2 minR=2 minC=3)",
        "dropout", DROPOUT_LEVELS, series, counts=counts,
    )
    print(
        "  note: relevance/specificity columns are scores in [0,1], "
        "not seconds."
    )


if __name__ == "__main__":
    sweep()
