"""Robustness: noise tolerance and fault-recovery overhead.

Not a paper figure.  Two sweeps:

1. **Dropout** — the paper mines exact all-ones cubes, and this bench
   quantifies the practical consequence: how quickly recovery of
   planted ground truth degrades as one-cells drop out (measurement
   dropout being the dominant noise in binarized microarray data).
   The relevance score (average best-match Jaccard of each planted
   block, see :mod:`repro.analysis.recovery`) falls steeply with even
   a few percent dropout — the motivation the later noise-tolerant
   triclustering literature cites.
2. **Fault recovery** — the wall-clock premium the parallel
   supervisor pays to recover from k injected worker faults
   (alternating exceptions and hard crashes) relative to a clean run,
   with result parity asserted at every point.  See
   docs/robustness.md.

Both series are recorded in ``BENCH_robustness.json``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from common import print_series_table, timed
from repro.analysis.recovery import recovery_report
from repro.api import mine
from repro.core.constraints import Thresholds
from repro.datasets import drop_ones, planted_tensor, random_tensor
from repro.parallel import (
    Fault,
    FaultPlan,
    parallel_cubeminer_mine,
    parallel_rsm_mine,
)

_DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_robustness.json"

DROPOUT_LEVELS = [0.0, 0.02, 0.05, 0.10, 0.20]
THRESHOLDS = Thresholds(2, 2, 3)

FAULT_COUNTS = [0, 1, 2, 4]
FAULT_THRESHOLDS = Thresholds(2, 2, 2)
FAULT_DRIVERS = [
    ("parallel-rsm", parallel_rsm_mine),
    ("parallel-cubeminer", parallel_cubeminer_mine),
]


def _planted():
    return planted_tensor(
        (6, 10, 60), n_blocks=5, block_shape=(3, 4, 10),
        background_density=0.05, seed=41,
    )


def _fault_dataset():
    return random_tensor((6, 12, 30), 0.3, seed=7)


def _fault_plan(n_faults: int) -> FaultPlan | None:
    """k faults on the first k chunks, alternating exception / crash."""
    if n_faults == 0:
        return None
    kinds = ("exception", "crash")
    return FaultPlan(
        {chunk: Fault(kinds[chunk % 2]) for chunk in range(n_faults)}
    )


@pytest.mark.parametrize(
    "dropout", DROPOUT_LEVELS, ids=lambda v: f"dropout={v:.2f}"
)
def test_robustness_mining_under_dropout(benchmark, dropout):
    planted = _planted()
    noisy = (
        planted.dataset
        if dropout == 0.0
        else drop_ones(planted.dataset, dropout, seed=42)
    )
    result = benchmark.pedantic(mine, args=(noisy, THRESHOLDS), rounds=1, iterations=1)
    report = recovery_report(planted.planted, result)
    if dropout == 0.0:
        assert report.relevance > 0.9


@pytest.mark.parametrize("n_faults", FAULT_COUNTS, ids=lambda k: f"faults={k}")
@pytest.mark.parametrize("name,driver", FAULT_DRIVERS, ids=lambda v: str(v))
def test_recovery_overhead_point(benchmark, name, driver, n_faults):
    dataset = _fault_dataset()
    result = benchmark.pedantic(
        driver,
        args=(dataset, FAULT_THRESHOLDS),
        kwargs={"n_workers": 2, "backoff": 0.01, "fault_plan": _fault_plan(n_faults)},
        rounds=1, iterations=1,
    )
    assert len(result) > 0


def _dropout_sweep() -> list[dict]:
    planted = _planted()
    series: dict[str, list[float]] = {
        "mine time": [], "relevance": [], "specificity": [],
    }
    counts: list[int] = []
    records: list[dict] = []
    for dropout in DROPOUT_LEVELS:
        noisy = (
            planted.dataset
            if dropout == 0.0
            else drop_ones(planted.dataset, dropout, seed=42)
        )
        elapsed, result = timed(mine, noisy, THRESHOLDS)
        report = recovery_report(planted.planted, result)
        series["mine time"].append(elapsed)
        series["relevance"].append(report.relevance)
        series["specificity"].append(report.specificity)
        counts.append(len(result))
        records.append({
            "dropout": dropout,
            "seconds": round(elapsed, 4),
            "n_cubes": len(result),
            "relevance": round(report.relevance, 4),
            "specificity": round(report.specificity, 4),
        })
    print_series_table(
        "Robustness: planted-block recovery vs dropout "
        "(6x10x60, 5 blocks, minH=2 minR=2 minC=3)",
        "dropout", DROPOUT_LEVELS, series, counts=counts,
    )
    print(
        "  note: relevance/specificity columns are scores in [0,1], "
        "not seconds."
    )
    return records


def _recovery_sweep() -> list[dict]:
    dataset = _fault_dataset()
    series: dict[str, list[float]] = {name: [] for name, _ in FAULT_DRIVERS}
    counts: list[int] = []
    records: list[dict] = []
    for name, driver in FAULT_DRIVERS:
        clean = None
        for n_faults in FAULT_COUNTS:
            elapsed, result = timed(
                driver, dataset, FAULT_THRESHOLDS,
                n_workers=2, backoff=0.01, fault_plan=_fault_plan(n_faults),
            )
            if clean is None:
                clean = result
            elif list(result) != list(clean):
                raise AssertionError(
                    f"{name}: {n_faults} injected faults changed the "
                    f"result ({len(result)} cubes vs {len(clean)})"
                )
            series[name].append(elapsed)
            recovery = result.stats.extra.get("recovery", {})
            records.append({
                "driver": name,
                "n_faults": n_faults,
                "seconds": round(elapsed, 4),
                "n_cubes": len(result),
                "recovery": recovery,
            })
        counts.append(len(clean))
    print_series_table(
        "Fault-recovery overhead: clean run vs k injected faults "
        "(6x12x30, 2 workers, alternating exception/crash)",
        "faults", FAULT_COUNTS, series,
    )
    return records


def sweep(output: Path | None = _DEFAULT_OUTPUT) -> dict:
    dropout_records = _dropout_sweep()
    print()
    recovery_records = _recovery_sweep()
    payload = {
        "dropout": dropout_records,
        "fault_recovery": recovery_records,
    }
    if output is not None:
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nrobustness series written to {output}")
    return payload


if __name__ == "__main__":
    sweep(Path(sys.argv[1]) if len(sys.argv) > 1 else _DEFAULT_OUTPUT)
