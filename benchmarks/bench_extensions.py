"""Benchmarks for the extension layers (not paper figures).

Covers the post-mining tooling so performance regressions there are
visible: 3D rule derivation, the FCC classifier's fit/predict path,
greedy-cover summarization, result verification, and the rank-4
hyper-cube miner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    FCCClassifier,
    derive_rules,
    greedy_cover,
    threshold_profile,
)
from repro.api import mine
from repro.core import verify_result
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.datasets import planted_tensor
from repro.ndim import mine_nd


@pytest.fixture(scope="module")
def workload():
    """A planted tensor plus its mined result, shared by the benches."""
    planted = planted_tensor(
        (8, 12, 80), n_blocks=6, block_shape=(3, 4, 10),
        background_density=0.12, seed=17,
    )
    thresholds = Thresholds(2, 3, 4)
    result = mine(planted.dataset, thresholds)
    return planted.dataset, thresholds, result


def test_ext_derive_rules(benchmark, workload):
    dataset, _thresholds, result = workload
    rules = benchmark.pedantic(
        derive_rules, args=(dataset, result),
        kwargs={"min_confidence": 0.8, "max_antecedent": 1},
        rounds=1, iterations=1,
    )
    assert isinstance(rules, list)


def test_ext_greedy_cover(benchmark, workload):
    dataset, _thresholds, result = workload
    steps = benchmark.pedantic(
        greedy_cover, args=(dataset, result), kwargs={"max_cubes": 10},
        rounds=1, iterations=1,
    )
    assert steps


def test_ext_verify_result(benchmark, workload):
    dataset, thresholds, result = workload
    report = benchmark.pedantic(
        verify_result, args=(dataset, result, thresholds),
        rounds=1, iterations=1,
    )
    assert report.ok


def test_ext_classifier_fit(benchmark):
    rng = np.random.default_rng(23)
    l, m, n_per = 6, 40, 10
    data = rng.random((l, 2 * n_per, m)) < 0.1
    data[np.ix_([0, 1, 2], range(n_per), range(10))] = True
    data[np.ix_([3, 4, 5], range(n_per, 2 * n_per), range(20, 30))] = True
    dataset = Dataset3D(data)
    labels = ["A"] * n_per + ["B"] * n_per

    def fit():
        return FCCClassifier(Thresholds(2, 4, 4), min_confidence=0.7).fit(
            dataset, labels
        )

    clf = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert clf.score(dataset, labels) == 1.0


def test_ext_threshold_profile(benchmark, workload):
    dataset, thresholds, _result = workload
    points = benchmark.pedantic(
        threshold_profile,
        args=(dataset, thresholds),
        kwargs={"axis": "min_c", "values": [4, 6, 8]},
        rounds=1, iterations=1,
    )
    counts = [p.n_cubes for p in points]
    assert counts == sorted(counts, reverse=True)


def test_ext_mine_nd_rank4(benchmark):
    rng = np.random.default_rng(29)
    data = rng.random((5, 5, 6, 40)) < 0.25
    data[np.ix_([0, 1, 2], [0, 1], [0, 1, 2], range(8))] = True
    result = benchmark.pedantic(
        mine_nd, args=(data, (2, 2, 2, 3)), rounds=1, iterations=1
    )
    assert len(result) >= 1
