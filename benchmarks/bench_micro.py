"""Micro-benchmarks for the hot kernels under the miners.

Not paper figures — these isolate the primitive operations the
algorithms spend their time in, so a regression in any of them is
visible before it shows up (amplified) in the figure benches:

* mask construction (`Dataset3D` packbits path),
* the three closure operators,
* the Lemma-4/5 checks,
* cutter-list construction,
* representative-slice generation,
* one 2D D-Miner call on a dense slice,
* the CubeMiner hot path with and without a no-op event sink (the
  instrumentation premium ``benchmarks/bench_overhead.py`` gates in CI).
"""

from __future__ import annotations

import pytest

from common import elutriation_bench
from repro.core.bitset import full_mask, mask_of
from repro.core.closure import column_support, height_support, row_support
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.cubeminer.algorithm import cubeminer_mine
from repro.cubeminer.checks import height_set_closed, row_set_closed
from repro.cubeminer.cutter import HeightOrder, build_cutters
from repro.datasets import random_tensor
from repro.fcp import dminer_mine
from repro.obs import null_sink
from repro.rsm.slices import representative_slice


@pytest.fixture(scope="module")
def dataset():
    ds = elutriation_bench()
    ds.ones_mask(0, 0)  # force mask construction outside the benches
    return ds


def test_micro_mask_construction(benchmark):
    source = elutriation_bench()

    def build():
        fresh = Dataset3D(source.data.copy())
        fresh.ones_mask(0, 0)
        return fresh

    benchmark(build)


def test_micro_column_support(benchmark, dataset):
    heights = mask_of(range(5))
    rows = mask_of(range(6))
    result = benchmark(column_support, dataset, heights, rows)
    assert result >= 0


def test_micro_height_support(benchmark, dataset):
    rows = mask_of(range(4))
    columns = mask_of(range(0, 40, 2))
    benchmark(height_support, dataset, rows, columns)


def test_micro_row_support(benchmark, dataset):
    heights = mask_of(range(4))
    columns = mask_of(range(0, 40, 2))
    benchmark(row_support, dataset, heights, columns)


def test_micro_height_check(benchmark, dataset):
    heights = mask_of(range(3))
    rows = full_mask(dataset.n_rows)
    columns = mask_of(range(0, 60, 3))
    benchmark(height_set_closed, dataset, heights, rows, columns)


def test_micro_row_check(benchmark, dataset):
    heights = full_mask(dataset.n_heights)
    rows = mask_of(range(4))
    columns = mask_of(range(0, 60, 3))
    benchmark(row_set_closed, dataset, heights, rows, columns)


@pytest.mark.parametrize("order", list(HeightOrder), ids=lambda o: o.value)
def test_micro_build_cutters(benchmark, dataset, order):
    cutters = benchmark(build_cutters, dataset, order)
    assert len(cutters) == dataset.n_heights * dataset.n_rows


def test_micro_representative_slice(benchmark, dataset):
    heights = mask_of(range(0, dataset.n_heights, 2))
    rs = benchmark(representative_slice, dataset, heights)
    assert rs.n_columns == dataset.n_columns


def test_micro_dminer_dense_slice(benchmark, dataset):
    rs = representative_slice(dataset, mask_of([0, 1, 2]))
    patterns = benchmark.pedantic(
        dminer_mine, args=(rs, 3, 20), rounds=3, iterations=1
    )
    assert isinstance(patterns, list)


@pytest.fixture(scope="module")
def hotpath_dataset():
    """Small-but-busy tensor for whole-run instrumentation benches."""
    return random_tensor((6, 10, 32), 0.45, seed=11)


@pytest.mark.parametrize("sink", [None, null_sink], ids=["no-sink", "null-sink"])
def test_micro_cubeminer_hot_path(benchmark, hotpath_dataset, sink):
    """CubeMiner end to end; the null-sink variant prices the event stream."""
    result = benchmark.pedantic(
        cubeminer_mine,
        args=(hotpath_dataset, Thresholds(2, 2, 2)),
        kwargs={"on_event": sink},
        rounds=3,
        iterations=1,
    )
    assert result.stats["nodes_visited"] > 0
