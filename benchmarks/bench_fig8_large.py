"""Figure 8 — large synthetic dataset: CubeMiner vs P-CubeMiner(8).

Paper setup: 100 x 100 x 10000 synthetic data at 10% density.
Panel (a): minC=100 fixed, minH=minR swept 5..30;
panel (b): minH=minR=30 fixed, minC swept 100..600.
RSM is omitted — the paper reports it "failed to finish processing
after long hours" with 100 heights to enumerate.

Expected shape: both curves fall as thresholds rise; the 8-processor
parallel version sits well below sequential CubeMiner throughout.

Scaled substitute: 24 x 24 x 400 with planted blocks in 10% background
noise; minH=minR swept 4..10, minC swept 10..60.  P-CubeMiner(8) is
reconstructed via the task-time scheduler simulation (and validated by
real multiprocessing at the core counts this machine has), as in
Figure 6.
"""

from __future__ import annotations

import pytest

from common import large_synthetic_bench, print_series_table, timed
from repro.core.constraints import Thresholds
from repro.cubeminer import cubeminer_mine
from repro.parallel import (
    CommunicationModel,
    measure_cubeminer_task_times,
    parallel_cubeminer_mine,
    simulate_response_times,
)

MINHR_VALUES = [4, 6, 8, 10]
MINC_VALUES = [10, 20, 30, 45, 60]
FIXED_MINC = 10
FIXED_MINHR = 8
N_PROCESSORS = 8
BROADCAST_FRACTION = 0.004


def _cubeminer(thresholds: Thresholds):
    return cubeminer_mine(large_synthetic_bench(), thresholds)


def _simulated_parallel(thresholds: Thresholds) -> float:
    times = measure_cubeminer_task_times(
        large_synthetic_bench(), thresholds, min_tasks=64
    )
    comm = CommunicationModel(
        broadcast_seconds_per_processor=sum(times) * BROADCAST_FRACTION
    )
    return simulate_response_times(times, [N_PROCESSORS], communication=comm)[
        N_PROCESSORS
    ]


@pytest.mark.parametrize("min_hr", MINHR_VALUES, ids=lambda v: f"minHR={v}")
def test_fig8a_cubeminer(benchmark, min_hr):
    benchmark.pedantic(
        _cubeminer, args=(Thresholds(min_hr, min_hr, FIXED_MINC),),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("min_c", MINC_VALUES, ids=lambda v: f"minC={v}")
def test_fig8b_cubeminer(benchmark, min_c):
    benchmark.pedantic(
        _cubeminer, args=(Thresholds(FIXED_MINHR, FIXED_MINHR, min_c),),
        rounds=1, iterations=1,
    )


def test_fig8_real_parallel_8_workers(benchmark):
    """Real multiprocessing spot-check of the simulated P-CubeMiner(8)."""
    benchmark.pedantic(
        parallel_cubeminer_mine,
        args=(large_synthetic_bench(), Thresholds(FIXED_MINHR, FIXED_MINHR, FIXED_MINC)),
        kwargs={"n_workers": N_PROCESSORS},
        rounds=1,
        iterations=1,
    )


def sweep() -> None:
    series_a: dict[str, list[float]] = {"CubeMiner": [], "P-CubeMiner(8)": []}
    counts_a: list[int] = []
    for min_hr in MINHR_VALUES:
        thresholds = Thresholds(min_hr, min_hr, FIXED_MINC)
        t, result = timed(_cubeminer, thresholds)
        series_a["CubeMiner"].append(t)
        series_a["P-CubeMiner(8)"].append(_simulated_parallel(thresholds))
        counts_a.append(len(result))
    print_series_table(
        f"Figure 8(a): 24x24x400 synthetic, vary minH=minR (minC={FIXED_MINC})",
        "minH=minR", MINHR_VALUES, series_a, counts=counts_a,
    )

    series_b: dict[str, list[float]] = {"CubeMiner": [], "P-CubeMiner(8)": []}
    counts_b: list[int] = []
    for min_c in MINC_VALUES:
        thresholds = Thresholds(FIXED_MINHR, FIXED_MINHR, min_c)
        t, result = timed(_cubeminer, thresholds)
        series_b["CubeMiner"].append(t)
        series_b["P-CubeMiner(8)"].append(_simulated_parallel(thresholds))
        counts_b.append(len(result))
    print_series_table(
        f"Figure 8(b): 24x24x400 synthetic, vary minC (minH=minR={FIXED_MINHR})",
        "minC", MINC_VALUES, series_b, counts=counts_b,
    )


if __name__ == "__main__":
    sweep()
