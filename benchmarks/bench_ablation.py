"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the individual design
decisions the paper argues for qualitatively:

* **2D substrate choice** — RSM's phase 2 with each of the four 2D
  miners (the paper picks D-Miner; here the claim is testable);
* **task granularity** — parallel CubeMiner with different
  ``min_tasks`` frontier sizes (too few tasks -> stragglers, too many
  -> dispatch overhead);
* **base-dimension choice** — RSM enumerating each axis of the same
  dataset (the paper's "pick the smallest dimension" heuristic);
* **auto-transpose** — CubeMiner with and without the canonical
  transpose on a tensor whose largest axis is *not* the column axis.
"""

from __future__ import annotations

import pytest

from common import elutriation_bench, print_series_table, scale_minc, timed
from repro.api import mine
from repro.core.constraints import Thresholds
from repro.fcp import FCP_MINERS
from repro.parallel import parallel_cubeminer_mine
from repro.rsm import rsm_mine

MINC = scale_minc(1000, 7161)
THRESHOLDS = Thresholds(3, 3, MINC)


def _substrate_case():
    """A 14x9x100 microarray substitute for the substrate comparison.

    Dense representative slices are exactly the regime the paper picked
    D-Miner for; the feature-enumeration (CbO/CHARM) and pattern-growth
    (CLOSET) baselines degrade by 5x-30x here, and far worse as the
    column count grows, so the workload is kept small enough that every
    substrate finishes in under a second.
    """
    from repro.datasets import elutriation_like

    return elutriation_like(100, seed=0), Thresholds(3, 3, 14)


@pytest.mark.parametrize("miner_name", sorted(FCP_MINERS))
def test_ablation_fcp_substrate(benchmark, miner_name):
    dataset, thresholds = _substrate_case()
    result = benchmark.pedantic(
        rsm_mine,
        args=(dataset, thresholds),
        kwargs={"base_axis": "row", "fcp_miner": miner_name},
        rounds=1,
        iterations=1,
    )
    assert result is not None


@pytest.mark.parametrize("min_tasks", [1, 8, 64, 256], ids=lambda v: f"tasks>={v}")
def test_ablation_task_granularity(benchmark, min_tasks):
    benchmark.pedantic(
        parallel_cubeminer_mine,
        args=(elutriation_bench(), THRESHOLDS),
        kwargs={"n_workers": 4, "min_tasks": min_tasks},
        rounds=1,
        iterations=1,
    )


def _base_axis_case():
    """An 8x10x12 planted tensor: every axis is small enough to
    enumerate (2^8 / 2^10 / 2^12 representative slices), so the cost of
    picking the wrong base dimension is measurable without being
    astronomically slow.  RSM's enumeration is exponential in the base
    dimension — base_axis='column' on the 250-gene bench dataset would
    mean 2^250 subsets, which is why this ablation gets its own shape."""
    from repro.datasets import planted_tensor

    planted = planted_tensor(
        (8, 10, 12), n_blocks=4, block_shape=(3, 4, 5),
        background_density=0.25, seed=5,
    )
    return planted.dataset, Thresholds(2, 2, 2)


@pytest.mark.parametrize("base_axis", ["height", "row", "column"])
def test_ablation_base_axis(benchmark, base_axis):
    dataset, thresholds = _base_axis_case()
    benchmark.pedantic(
        rsm_mine,
        args=(dataset, thresholds),
        kwargs={"base_axis": base_axis},
        rounds=1,
        iterations=1,
    )


def _transposed_case():
    """A 120x9x14 tensor: the largest axis lands on heights, the worst
    orientation for the cutter count (120*9 cutters vs 9*14 after the
    canonical transpose).  Scaled so the un-transposed arm stays under
    a second."""
    from repro.datasets import elutriation_like

    dataset = elutriation_like(120, seed=0).transpose((2, 1, 0))
    thresholds = Thresholds(3, 3, 17).permute((2, 1, 0))
    return dataset, thresholds


@pytest.mark.parametrize("auto_transpose", [False, True], ids=["as-is", "transposed"])
def test_ablation_auto_transpose(benchmark, auto_transpose):
    dataset, thresholds = _transposed_case()
    benchmark.pedantic(
        mine,
        args=(dataset, thresholds),
        kwargs={"auto_transpose": auto_transpose},
        rounds=1,
        iterations=1,
    )


def sweep() -> None:
    sub_dataset, sub_thresholds = _substrate_case()
    names = sorted(FCP_MINERS)
    substrate_times = []
    for name in names:
        t, _ = timed(
            rsm_mine, sub_dataset, sub_thresholds, base_axis="row", fcp_miner=name
        )
        substrate_times.append(t)
    print_series_table(
        "Ablation: RSM-R phase-2 substrate choice (14x9x100, dense slices)",
        "miner", names, {"RSM_R time": substrate_times},
    )

    axis_dataset, axis_thresholds = _base_axis_case()
    axes = ["height", "row", "column"]
    axis_times = []
    for axis in axes:
        t, _ = timed(rsm_mine, axis_dataset, axis_thresholds, base_axis=axis)
        axis_times.append(t)
    print_series_table(
        "Ablation: RSM base-dimension choice (shape 8x10x12)",
        "base axis", axes, {"RSM time": axis_times},
    )

    transposed, permuted = _transposed_case()
    times = []
    for flag in (False, True):
        t, _ = timed(mine, transposed, permuted, auto_transpose=flag)
        times.append(t)
    print_series_table(
        "Ablation: CubeMiner canonical transpose (120x9x14 input)",
        "auto_transpose", ["off", "on"], {"CubeMiner time": times},
    )


if __name__ == "__main__":
    sweep()
