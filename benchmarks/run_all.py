"""Run every figure sweep and write the outputs to files.

Usage::

    python benchmarks/run_all.py [output_dir] [--json]

Executes the standalone ``sweep()`` of every bench module in paper
order and tees each table both to stdout and to
``<output_dir>/<module>.txt`` (default ``benchmarks/results/``).
These text tables are the measured data EXPERIMENTS.md records.

With ``--json``, additionally writes ``<output_dir>/results.json``
holding, per module, the wall-clock seconds of its sweep and the table
text split into lines — a machine-readable record downstream tooling
can diff across runs without re-parsing aligned columns.

With ``--metrics`` (implies ``--json``), results.json also gains a
``metrics`` section: instrumented reference runs of CubeMiner and RSM
on the standard bench datasets, recording the full
:class:`repro.obs.MiningMetrics` counter set (per-lemma prune hits,
sons, kernel ops) so the BENCH record captures prune-rule
effectiveness alongside timings.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
import time
import traceback
from pathlib import Path

import bench_ablation
import bench_kernels
import bench_perf
import bench_robustness
import bench_stream
import bench_fig2_ordering
import bench_fig3_vary_minc
import bench_fig4_vary_minh
import bench_fig5_vary_minr
import bench_fig6_parallel
import bench_fig7_vary_heights
import bench_fig8_large
from common import SweepSkipped

MODULES = [
    bench_fig2_ordering,
    bench_fig3_vary_minc,
    bench_fig4_vary_minh,
    bench_fig5_vary_minr,
    bench_fig6_parallel,
    bench_fig7_vary_heights,
    bench_fig8_large,
    bench_ablation,
    bench_robustness,
    bench_kernels,
    bench_perf,
    bench_stream,
]


def _collect_metrics() -> dict[str, dict]:
    """Instrumented reference runs recording prune-rule effectiveness."""
    from common import cdc15_bench, elutriation_bench, scale_minc
    from repro.api import mine
    from repro.core.constraints import Thresholds

    runs = {
        "elutriation-cubeminer": ("cubeminer", elutriation_bench(),
                                  Thresholds(4, 4, scale_minc(40, 7161))),
        "elutriation-rsm": ("rsm", elutriation_bench(),
                            Thresholds(4, 4, scale_minc(40, 7161))),
        "cdc15-cubeminer": ("cubeminer", cdc15_bench(),
                            Thresholds(5, 4, scale_minc(40, 7761))),
    }
    section: dict[str, dict] = {}
    for name, (algorithm, dataset, thresholds) in runs.items():
        result = mine(dataset, thresholds, algorithm=algorithm)
        section[name] = {
            "algorithm": result.algorithm,
            "n_cubes": len(result),
            "elapsed_seconds": round(result.elapsed_seconds, 3),
            "stats": result.stats.to_dict(),
        }
    return section


def main(
    output_dir: str | None = None,
    write_json: bool = False,
    with_metrics: bool = False,
) -> int:
    out_root = Path(output_dir or Path(__file__).parent / "results")
    out_root.mkdir(parents=True, exist_ok=True)
    grand_start = time.perf_counter()
    records: dict[str, dict] = {}
    failed: list[str] = []
    skipped: list[str] = []
    narrowed: list[str] = []
    for module in MODULES:
        name = module.__name__
        print(f"\n### {name} ###")
        start = time.perf_counter()
        buffer = io.StringIO()
        try:
            with contextlib.redirect_stdout(buffer):
                module.sweep()
        except SweepSkipped as skip:
            # A declared environmental skip (e.g. the native kernel is
            # not built): reported in the summary, not a failure.
            skipped.append(name)
            text = buffer.getvalue()
            print(text, end="")
            print(f"### {name} SKIPPED: {skip} ###")
            records[name] = {
                "elapsed_seconds": round(time.perf_counter() - start, 3),
                "table_lines": text.splitlines(),
                "skipped": str(skip),
            }
            continue
        except Exception:
            # A broken sweep must not hide the remaining figures, but
            # the run as a whole reports failure (non-zero exit).
            failed.append(name)
            text = buffer.getvalue()
            print(text, end="")
            print(f"### {name} FAILED ###", file=sys.stderr)
            traceback.print_exc()
            records[name] = {
                "elapsed_seconds": round(time.perf_counter() - start, 3),
                "table_lines": text.splitlines(),
                "error": traceback.format_exc().splitlines()[-1],
            }
            continue
        text = buffer.getvalue()
        print(text, end="")
        elapsed = time.perf_counter() - start
        print(f"### {name} done in {elapsed:.1f}s ###")
        (out_root / f"{name}.txt").write_text(text)
        records[name] = {
            "elapsed_seconds": round(elapsed, 3),
            "table_lines": text.splitlines(),
        }
        # Sweeps may narrow themselves for environmental reasons (a
        # backend series omitted); surface every declared narrowing so
        # a partial sweep cannot pass for a complete one.
        narrowings = getattr(module, "sweep_skips", lambda: [])()
        for reason in narrowings:
            narrowed.append(f"{name}: {reason}")
            print(f"### {name} NARROWED: {reason} ###")
        if narrowings:
            records[name]["narrowed"] = list(narrowings)
    total = time.perf_counter() - grand_start
    if write_json or with_metrics:
        payload = {
            "total_seconds": round(total, 3),
            "modules": records,
        }
        if with_metrics:
            print("### collecting instrumentation metrics ###")
            payload["metrics"] = _collect_metrics()
        json_path = out_root / "results.json"
        json_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"json results in {json_path}")
    if skipped:
        print(f"\n{len(skipped)} sweep(s) skipped (declared, not failures): "
              f"{', '.join(skipped)}")
    if narrowed:
        print(f"{len(narrowed)} sweep narrowing(s):")
        for line in narrowed:
            print(f"  - {line}")
    if failed:
        print(f"\n{len(failed)} sweep(s) FAILED: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    done = len(MODULES) - len(skipped)
    print(f"\n{done}/{len(MODULES)} sweeps done in {total:.1f}s; "
          f"tables in {out_root}/")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output_dir", nargs="?", default=None,
                        help="where to write the tables (default benchmarks/results/)")
    parser.add_argument("--json", action="store_true",
                        help="also write machine-readable results.json")
    parser.add_argument("--metrics", action="store_true",
                        help="add instrumented prune-rule counters to "
                             "results.json (implies --json)")
    args = parser.parse_args()
    sys.exit(main(args.output_dir, write_json=args.json, with_metrics=args.metrics))
