"""Figure 3 — vary minC: CubeMiner vs RSM-H vs RSM-R.

Paper setup: minH=minR=3; minC swept on both real datasets.
Panel (a) Elutriation 14x9x7161, series CubeMiner / RSM_H / RSM_R;
panel (b) CDC15 19x9x7761, series CubeMiner / RSM_R.

Expected shape: RSM-R far faster than RSM-H (|R|=9 < |H|=14/19 —
enumerating the smallest dimension wins); RSM-R beats CubeMiner at low
minC; CubeMiner catches up as minC rises and overtakes at high minC
(RSM pays the fixed representative-slice enumeration cost even when
slices yield nothing).

Scaled substitute: minC fractions of the paper's 900-1300 / 7161 and
1000-1400 / 7761 ranges, extended upward to keep the crossover visible.
"""

from __future__ import annotations

import pytest

from common import cdc15_bench, elutriation_bench, print_series_table, scale_minc, timed
from repro.core.constraints import Thresholds
from repro.cubeminer import cubeminer_mine
from repro.rsm import rsm_mine

ELU_MINC = [scale_minc(v, 7161) for v in (900, 1000, 1100, 1200, 1300, 1450, 1600)]
CDC_MINC = [scale_minc(v, 7761) for v in (1000, 1100, 1200, 1300, 1400, 1550, 1700)]


def _cubeminer(dataset, min_c):
    return cubeminer_mine(dataset, Thresholds(3, 3, min_c))


def _rsm(dataset, min_c, base_axis):
    return rsm_mine(dataset, Thresholds(3, 3, min_c), base_axis=base_axis)


@pytest.mark.parametrize("min_c", ELU_MINC, ids=lambda v: f"minC={v}")
def test_fig3a_elutriation_cubeminer(benchmark, min_c):
    benchmark.pedantic(_cubeminer, args=(elutriation_bench(), min_c),
                       rounds=1, iterations=1)


@pytest.mark.parametrize("min_c", ELU_MINC, ids=lambda v: f"minC={v}")
def test_fig3a_elutriation_rsm_h(benchmark, min_c):
    benchmark.pedantic(_rsm, args=(elutriation_bench(), min_c, "height"),
                       rounds=1, iterations=1)


@pytest.mark.parametrize("min_c", ELU_MINC, ids=lambda v: f"minC={v}")
def test_fig3a_elutriation_rsm_r(benchmark, min_c):
    benchmark.pedantic(_rsm, args=(elutriation_bench(), min_c, "row"),
                       rounds=1, iterations=1)


@pytest.mark.parametrize("min_c", CDC_MINC, ids=lambda v: f"minC={v}")
def test_fig3b_cdc15_cubeminer(benchmark, min_c):
    benchmark.pedantic(_cubeminer, args=(cdc15_bench(), min_c),
                       rounds=1, iterations=1)


@pytest.mark.parametrize("min_c", CDC_MINC, ids=lambda v: f"minC={v}")
def test_fig3b_cdc15_rsm_r(benchmark, min_c):
    benchmark.pedantic(_rsm, args=(cdc15_bench(), min_c, "row"),
                       rounds=1, iterations=1)


def sweep() -> None:
    """Print both Figure 3 panels as series tables."""
    elu = elutriation_bench()
    series_a: dict[str, list[float]] = {"CubeMiner": [], "RSM_H": [], "RSM_R": []}
    counts_a: list[int] = []
    for min_c in ELU_MINC:
        t, result = timed(_cubeminer, elu, min_c)
        series_a["CubeMiner"].append(t)
        t, _ = timed(_rsm, elu, min_c, "height")
        series_a["RSM_H"].append(t)
        t, _ = timed(_rsm, elu, min_c, "row")
        series_a["RSM_R"].append(t)
        counts_a.append(len(result))
    print_series_table(
        "Figure 3(a): Elutriation, vary minC (minH=minR=3)",
        "minC", ELU_MINC, series_a, counts=counts_a,
    )

    cdc = cdc15_bench()
    series_b: dict[str, list[float]] = {"CubeMiner": [], "RSM_R": []}
    counts_b: list[int] = []
    for min_c in CDC_MINC:
        t, result = timed(_cubeminer, cdc, min_c)
        series_b["CubeMiner"].append(t)
        t, _ = timed(_rsm, cdc, min_c, "row")
        series_b["RSM_R"].append(t)
        counts_b.append(len(result))
    print_series_table(
        "Figure 3(b): CDC15, vary minC (minH=minR=3)",
        "minC", CDC_MINC, series_b, counts=counts_b,
    )


if __name__ == "__main__":
    sweep()
