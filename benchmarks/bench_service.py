"""Service benchmark: cold mining jobs vs threshold-lattice cache hits.

Boots the daemon on an ephemeral port, registers one synthetic
dataset, runs a cold parallel-free mining job at loose thresholds,
then answers a ladder of element-wise tighter queries from the cache.
Reports the daemon's own counters (jobs run, cache hits/misses,
filtered serves, cubes filtered) and the cold-vs-cached latency split.

The counters are deterministic functions of the seeded workload; the
latencies are informational (wall clock varies across machines).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py \
        --output BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time

from repro.core.constraints import Thresholds
from repro.datasets import cdc15_like
from repro.service import ServiceApp, ServiceClient, serve

#: The loose anchor job plus the tighter queries the cache must absorb.
LOOSE = Thresholds(2, 2, 10)
TIGHTER = [
    Thresholds(2, 2, 14),
    Thresholds(2, 3, 14),
    Thresholds(3, 3, 14),
    Thresholds(3, 3, 18, min_volume=200),
    Thresholds(3, 4, 22, min_volume=400),
]


def run_bench() -> dict:
    dataset = cdc15_like(150, seed=1)
    data_dir = tempfile.mkdtemp(prefix="repro-bench-service-")
    app = ServiceApp(data_dir, max_workers=2)
    server = serve(app, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        entry = client.register_dataset(dataset)

        start = time.perf_counter()
        cold = client.mine(entry.fingerprint, LOOSE, timeout=600)
        cold_seconds = time.perf_counter() - start
        assert not cold.cache_hit

        cached_seconds = []
        cubes_filtered = 0
        for thresholds in TIGHTER:
            start = time.perf_counter()
            served = client.mine(entry.fingerprint, thresholds, timeout=600)
            cached_seconds.append(time.perf_counter() - start)
            assert served.cache_hit, f"expected cache hit at {thresholds}"
            note = served.result.stats.extra["cache"]
            cubes_filtered += note["cubes_filtered"]

        health = client.health()
        cached_median = statistics.median(cached_seconds)
        return {
            "schema": 1,
            "workload": {
                "dataset": "cdc15_like(150, seed=1)",
                "shape": list(dataset.shape),
                "loose_thresholds": LOOSE.to_dict(),
                "n_tighter_queries": len(TIGHTER),
            },
            "counters": {
                "jobs_run": health["jobs"]["jobs_run"],
                "jobs_done": health["jobs"]["done"],
                "cache_entries": health["cache"]["entries"],
                "cache_hits": health["cache"]["hits"],
                "cache_misses": health["cache"]["misses"],
                "filtered_served": health["cache"]["filtered_served"],
                "cubes_mined_cold": len(cold.result),
                "cubes_filtered_total": cubes_filtered,
            },
            "latency_informational": {
                "cold_job_seconds": round(cold_seconds, 4),
                "cached_query_seconds_median": round(cached_median, 4),
                "cold_over_cached": round(cold_seconds / cached_median, 1),
            },
        }
    finally:
        server.shutdown()
        server.server_close()
        app.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=None, help="write the report as JSON to this path"
    )
    args = parser.parse_args(argv)

    report = run_bench()
    counters = report["counters"]
    latency = report["latency_informational"]
    print("service benchmark")
    print(f"  dataset               : {report['workload']['dataset']}")
    print(f"  jobs run (workers)    : {counters['jobs_run']}")
    print(f"  cache hits / misses   : {counters['cache_hits']} / {counters['cache_misses']}")
    print(f"  filtered serves       : {counters['filtered_served']}")
    print(f"  cubes mined cold      : {counters['cubes_mined_cold']}")
    print(f"  cubes filtered total  : {counters['cubes_filtered_total']}")
    print(f"  cold job latency      : {latency['cold_job_seconds']}s")
    print(f"  cached query latency  : {latency['cached_query_seconds_median']}s (median)")
    print(f"  cold / cached         : {latency['cold_over_cached']}x")
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
