"""Figure 4 — vary minH: CubeMiner vs RSM.

Paper setup: minR=3; minC=1000 (Elutriation) / 1100 (CDC15), chosen so
both algorithms start near parity; minH swept 5..9 (Elutriation) and
5..10 (CDC15).  RSM enumerates the smallest dimension (RSM-R).

Expected shape: both curves fall as minH rises (a larger threshold
prunes more); the relative order of RSM and CubeMiner persists across
the sweep (paper: "the relative performance remains largely the same").
"""

from __future__ import annotations

import pytest

from common import cdc15_bench, elutriation_bench, print_series_table, scale_minc, timed
from repro.core.constraints import Thresholds
from repro.cubeminer import cubeminer_mine
from repro.rsm import rsm_mine

ELU_MINC = scale_minc(1000, 7161)
CDC_MINC = scale_minc(1100, 7761)
ELU_MINH = [5, 6, 7, 8, 9]
CDC_MINH = [5, 6, 7, 8, 9, 10]


def _cubeminer(dataset, min_h, min_c):
    return cubeminer_mine(dataset, Thresholds(min_h, 3, min_c))


def _rsm(dataset, min_h, min_c):
    return rsm_mine(dataset, Thresholds(min_h, 3, min_c), base_axis="auto")


@pytest.mark.parametrize("min_h", ELU_MINH, ids=lambda v: f"minH={v}")
def test_fig4a_elutriation_cubeminer(benchmark, min_h):
    benchmark.pedantic(_cubeminer, args=(elutriation_bench(), min_h, ELU_MINC),
                       rounds=1, iterations=1)


@pytest.mark.parametrize("min_h", ELU_MINH, ids=lambda v: f"minH={v}")
def test_fig4a_elutriation_rsm(benchmark, min_h):
    benchmark.pedantic(_rsm, args=(elutriation_bench(), min_h, ELU_MINC),
                       rounds=1, iterations=1)


@pytest.mark.parametrize("min_h", CDC_MINH, ids=lambda v: f"minH={v}")
def test_fig4b_cdc15_cubeminer(benchmark, min_h):
    benchmark.pedantic(_cubeminer, args=(cdc15_bench(), min_h, CDC_MINC),
                       rounds=1, iterations=1)


@pytest.mark.parametrize("min_h", CDC_MINH, ids=lambda v: f"minH={v}")
def test_fig4b_cdc15_rsm(benchmark, min_h):
    benchmark.pedantic(_rsm, args=(cdc15_bench(), min_h, CDC_MINC),
                       rounds=1, iterations=1)


def sweep() -> None:
    for title, dataset, minh_values, min_c in (
        (f"Figure 4(a): Elutriation, vary minH (minR=3, minC={ELU_MINC})",
         elutriation_bench(), ELU_MINH, ELU_MINC),
        (f"Figure 4(b): CDC15, vary minH (minR=3, minC={CDC_MINC})",
         cdc15_bench(), CDC_MINH, CDC_MINC),
    ):
        series: dict[str, list[float]] = {"CubeMiner": [], "RSM": []}
        counts: list[int] = []
        for min_h in minh_values:
            t, result = timed(_cubeminer, dataset, min_h, min_c)
            series["CubeMiner"].append(t)
            t, _ = timed(_rsm, dataset, min_h, min_c)
            series["RSM"].append(t)
            counts.append(len(result))
        print_series_table(title, "minH", minh_values, series, counts=counts)


if __name__ == "__main__":
    sweep()
