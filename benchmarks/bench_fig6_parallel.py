"""Figure 6 — vary number of processors: parallel RSM-R vs parallel CubeMiner.

Paper setup: CDC15, minH=minR=3, minC=1000, processors 1..32.
Expected shape: both response times fall with the processor count;
parallel RSM-R stays below parallel CubeMiner (this threshold setting
favors RSM, as in the uniprocessor Figure 3); speedup is good up to
about 8 processors and degrades beyond.

Reproduction strategy (see DESIGN.md): the paper ran a 32-node setup we
do not have.  Both parallel schemes execute independent tasks with no
mid-run communication, so the response-time curve is reconstructed
deterministically by measuring real sequential per-task times once and
list-scheduling them onto p virtual processors, plus the paper's
dataset-broadcast cost which grows with p (the source of the
degradation beyond the optimum).  Real ``multiprocessing`` runs at
small p validate the simulation where local cores exist.
"""

from __future__ import annotations

import pytest

from common import cdc15_bench, print_series_table, scale_minc
from repro.core.constraints import Thresholds
from repro.parallel import (
    CommunicationModel,
    measure_cubeminer_task_times,
    measure_rsm_task_times,
    parallel_cubeminer_mine,
    parallel_rsm_mine,
    simulate_response_times,
)

MINC = scale_minc(870, 7761)  # 28: heavier than the 1000-scale point so curves are not noise-bound
PROCESSORS = [1, 2, 4, 8, 16, 24, 32]
#: Dataset broadcast cost per processor, as a fraction of the sequential
#: mining time.  The paper calls the communication overhead "relatively
#: small"; 1.2% per processor keeps it a minor share at the optimum and
#: ~40% of sequential at p=32, which is what bends the curve back up
#: beyond the paper's observed ~8-processor sweet spot.
BROADCAST_FRACTION = 0.012


def _thresholds() -> Thresholds:
    return Thresholds(3, 3, MINC)


@pytest.mark.parametrize("n_workers", [1, 2, 4], ids=lambda v: f"workers={v}")
def test_fig6_real_parallel_rsm(benchmark, n_workers):
    benchmark.pedantic(
        parallel_rsm_mine,
        args=(cdc15_bench(), _thresholds()),
        kwargs={"n_workers": n_workers, "base_axis": "row"},
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("n_workers", [1, 2, 4], ids=lambda v: f"workers={v}")
def test_fig6_real_parallel_cubeminer(benchmark, n_workers):
    benchmark.pedantic(
        parallel_cubeminer_mine,
        args=(cdc15_bench(), _thresholds()),
        kwargs={"n_workers": n_workers},
        rounds=1,
        iterations=1,
    )


def test_fig6_simulated_curves(benchmark):
    """One benchmark wrapping the full measure-and-schedule pipeline."""
    benchmark.pedantic(simulated_series, rounds=1, iterations=1)


def simulated_series() -> dict[str, dict[int, float]]:
    dataset = cdc15_bench()
    thresholds = _thresholds()
    curves: dict[str, dict[int, float]] = {}
    for name, times in (
        ("RSM_R", measure_rsm_task_times(dataset, thresholds, base_axis="row")),
        ("CubeMiner", measure_cubeminer_task_times(dataset, thresholds, min_tasks=128)),
    ):
        sequential = sum(times)
        comm = CommunicationModel(
            broadcast_seconds_per_processor=sequential * BROADCAST_FRACTION
        )
        curves[name] = simulate_response_times(times, PROCESSORS, communication=comm)
    return curves


def sweep() -> None:
    curves = simulated_series()
    series = {
        f"P-{name}": [curve[p] for p in PROCESSORS] for name, curve in curves.items()
    }
    print_series_table(
        f"Figure 6: CDC15, vary processors (minH=minR=3, minC={MINC}, simulated)",
        "processors", PROCESSORS, series,
    )
    for name, curve in curves.items():
        best = min(curve, key=curve.get)
        print(f"  {name}: best processor count = {best}")
    print(
        "  note: P-RSM-R saturates earlier at this scale — its largest\n"
        "  representative-slice task holds ~half the total work (the task\n"
        "  decomposition is per-slice, Section 6), so the straggler bounds\n"
        "  the makespan; the paper's larger workload dilutes that skew."
    )


if __name__ == "__main__":
    sweep()
