"""Instrumentation overhead guard for the CubeMiner hot path.

The observability layer (``repro.obs``) promises near-zero overhead
when no sink is attached: the always-on counters are plain attribute
increments and every event/progress hook hides behind an ``is None``
check, so the default path constructs nothing.  Attaching a sink buys
the full typed event stream (one node event plus the prune events per
tree node) for a bounded premium.

This benchmark measures that premium:

* **base**      — ``cubeminer_mine`` with no sink attached (counters
  only, the default for every user);
* **null-sink** — the same run with a no-op event sink, i.e. the full
  per-node/per-prune event construction cost.

The two configurations are interleaved ``--repeats`` times on the CPU
clock (``time.process_time`` — immune to other processes' load) and
the reported overhead is the *median* of the per-pair ratios: adjacent
runs share machine conditions, so a load burst inflates both sides of
a pair instead of skewing the ratio, and the median discards the pairs
a burst still manages to split.  With ``--check``, the measurement is
repeated up to ``--rounds`` times and the process exits non-zero only
when *every* round exceeds ``--threshold`` percent — a real regression
fails all rounds deterministically, while a one-off scheduler blip
does not fail the build.  CI runs exactly that on the ``numpy``
kernel, the production backend whose per-node closure checks dominate
the event bookkeeping.  On the pure-Python fallback kernel a tree node
itself costs only a few microseconds, so the same absolute event cost
shows up as a larger percentage; pass ``--kernel python-int`` to see
that number (reported, not gated).

Usage::

    PYTHONPATH=src python benchmarks/bench_overhead.py
    PYTHONPATH=src python benchmarks/bench_overhead.py --check --threshold 5
    PYTHONPATH=src python benchmarks/bench_overhead.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.core.constraints import Thresholds
from repro.core.kernels import available_kernels
from repro.cubeminer.algorithm import cubeminer_mine
from repro.datasets import random_tensor
from repro.obs import null_sink


def _default_kernel() -> str:
    kernels = available_kernels()
    return "numpy" if "numpy" in kernels else kernels[0]


def _workload(kernel: str):
    """A CubeMiner run dominated by real mining work.

    Dense-ish mid-size tensor: tens of thousands of tree nodes, each
    doing closure checks over bitmasks — the regime users actually run,
    where per-node bookkeeping must disappear into the kernel cost.
    """
    dataset = random_tensor((8, 12, 48), 0.45, seed=11).with_kernel(kernel)
    thresholds = Thresholds(2, 2, 2)
    return dataset, thresholds


def _time_once(dataset, thresholds, sink) -> float:
    start = time.process_time()
    cubeminer_mine(dataset, thresholds, on_event=sink)
    return time.process_time() - start


def measure(repeats: int, kernel: str) -> dict:
    dataset, thresholds = _workload(kernel)
    # Warm up both paths (imports, kernel handles, branch caches).
    _time_once(dataset, thresholds, None)
    _time_once(dataset, thresholds, null_sink)
    # Interleave the two configurations and judge each adjacent pair on
    # its own: a load burst inflates both halves of a pair, so the
    # per-pair ratio stays honest, and the median drops the pairs a
    # burst still manages to split.
    base_times, sunk_times, ratios = [], [], []
    for _ in range(repeats):
        base = _time_once(dataset, thresholds, None)
        sunk = _time_once(dataset, thresholds, null_sink)
        base_times.append(base)
        sunk_times.append(sunk)
        ratios.append(sunk / base)
    overhead_pct = (statistics.median(ratios) - 1.0) * 100.0
    result = cubeminer_mine(dataset, thresholds)
    return {
        "workload": {
            "shape": list(dataset.shape),
            "kernel": kernel,
            "nodes_visited": result.stats["nodes_visited"],
            "n_cubes": len(result),
        },
        "repeats": repeats,
        "base_seconds": min(base_times),
        "null_sink_seconds": min(sunk_times),
        "pair_overheads_pct": [(r - 1.0) * 100.0 for r in ratios],
        "overhead_pct": overhead_pct,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5,
                        help="interleaved base/null-sink pairs per round")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="max tolerated overhead percent for --check")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when overhead exceeds --threshold in "
                             "every measurement round")
    parser.add_argument("--rounds", type=int, default=3,
                        help="max measurement rounds for --check; the run "
                             "passes as soon as one round is under the "
                             "threshold (without --check, exactly one round "
                             "is measured)")
    parser.add_argument("--kernel", choices=available_kernels(),
                        default=_default_kernel(),
                        help="bitset backend to measure (default: numpy "
                             "when available)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the measurements as JSON")
    args = parser.parse_args(argv)

    rounds = max(1, args.rounds) if args.check else 1
    data = None
    for attempt in range(1, rounds + 1):
        data = measure(args.repeats, args.kernel)
        if attempt == 1:
            print(
                f"workload : cubeminer on "
                f"{'x'.join(map(str, data['workload']['shape']))}"
                f" [{data['workload']['kernel']} kernel]"
                f" ({data['workload']['nodes_visited']} nodes,"
                f" {data['workload']['n_cubes']} cubes)"
            )
        print(f"base     : {data['base_seconds'] * 1e3:8.2f} ms CPU (no sink)")
        print(f"null sink: {data['null_sink_seconds'] * 1e3:8.2f} ms CPU")
        print(f"overhead : {data['overhead_pct']:+.2f}% (median of "
              f"{data['repeats']} interleaved pairs)")
        if not args.check or data["overhead_pct"] <= args.threshold:
            break
        if attempt < rounds:
            print(f"round {attempt}/{rounds} over {args.threshold:g}% — "
                  f"re-measuring")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(data, handle, indent=2)
            handle.write("\n")
        print(f"json in {args.json}")
    if args.check and data["overhead_pct"] > args.threshold:
        print(
            f"FAIL: instrumentation overhead {data['overhead_pct']:.2f}% exceeds "
            f"threshold {args.threshold:g}% on the {args.kernel} kernel "
            f"in all {rounds} rounds",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
