"""Figure 5 — vary minR: CubeMiner vs RSM.

Paper setup: minH=3; minC=1000 (Elutriation) / 1100 (CDC15); minR swept
3..7.  Expected shape: times fall as minR rises; relative order of the
two algorithms persists (same rationale as Figure 4).
"""

from __future__ import annotations

import pytest

from common import cdc15_bench, elutriation_bench, print_series_table, scale_minc, timed
from repro.core.constraints import Thresholds
from repro.cubeminer import cubeminer_mine
from repro.rsm import rsm_mine

ELU_MINC = scale_minc(1000, 7161)
CDC_MINC = scale_minc(1100, 7761)
MINR_VALUES = [3, 4, 5, 6, 7]


def _cubeminer(dataset, min_r, min_c):
    return cubeminer_mine(dataset, Thresholds(3, min_r, min_c))


def _rsm(dataset, min_r, min_c):
    return rsm_mine(dataset, Thresholds(3, min_r, min_c), base_axis="auto")


@pytest.mark.parametrize("min_r", MINR_VALUES, ids=lambda v: f"minR={v}")
def test_fig5a_elutriation_cubeminer(benchmark, min_r):
    benchmark.pedantic(_cubeminer, args=(elutriation_bench(), min_r, ELU_MINC),
                       rounds=1, iterations=1)


@pytest.mark.parametrize("min_r", MINR_VALUES, ids=lambda v: f"minR={v}")
def test_fig5a_elutriation_rsm(benchmark, min_r):
    benchmark.pedantic(_rsm, args=(elutriation_bench(), min_r, ELU_MINC),
                       rounds=1, iterations=1)


@pytest.mark.parametrize("min_r", MINR_VALUES, ids=lambda v: f"minR={v}")
def test_fig5b_cdc15_cubeminer(benchmark, min_r):
    benchmark.pedantic(_cubeminer, args=(cdc15_bench(), min_r, CDC_MINC),
                       rounds=1, iterations=1)


@pytest.mark.parametrize("min_r", MINR_VALUES, ids=lambda v: f"minR={v}")
def test_fig5b_cdc15_rsm(benchmark, min_r):
    benchmark.pedantic(_rsm, args=(cdc15_bench(), min_r, CDC_MINC),
                       rounds=1, iterations=1)


def sweep() -> None:
    for title, dataset, min_c in (
        (f"Figure 5(a): Elutriation, vary minR (minH=3, minC={ELU_MINC})",
         elutriation_bench(), ELU_MINC),
        (f"Figure 5(b): CDC15, vary minR (minH=3, minC={CDC_MINC})",
         cdc15_bench(), CDC_MINC),
    ):
        series: dict[str, list[float]] = {"CubeMiner": [], "RSM": []}
        counts: list[int] = []
        for min_r in MINR_VALUES:
            t, result = timed(_cubeminer, dataset, min_r, min_c)
            series["CubeMiner"].append(t)
            t, _ = timed(_rsm, dataset, min_r, min_c)
            series["RSM"].append(t)
            counts.append(len(result))
        print_series_table(title, "minR", MINR_VALUES, series, counts=counts)


if __name__ == "__main__":
    sweep()
