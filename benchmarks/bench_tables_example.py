"""Tables 1-3 / Figure 1 — micro-benchmarks on the running example.

The paper's tables are worked examples rather than timed experiments;
these benchmarks exercise the code paths that *produce* them (cutter
construction, the traced tree, the RSM walk-through, and each miner on
the 3x4x5 context) so regressions in the core loops show up even at
toy scale.  Correctness of the table *contents* is pinned in
tests/test_paper_example.py.
"""

from __future__ import annotations

import pytest

from repro.core.constraints import Thresholds
from repro.core.reference import reference_mine
from repro.cubeminer import cubeminer_mine
from repro.cubeminer.cutter import HeightOrder, build_cutters
from repro.cubeminer.trace import trace_tree
from repro.datasets import paper_example
from repro.fcp import FCP_MINERS, get_fcp_miner
from repro.fcp.matrix import BinaryMatrix
from repro.rsm import rsm_mine
from repro.rsm.trace import trace_rsm

THRESHOLDS = Thresholds(2, 2, 2)


def test_table3_build_cutters(benchmark):
    dataset = paper_example()
    result = benchmark(build_cutters, dataset, HeightOrder.ORIGINAL)
    assert len(result) == 10


def test_figure1_trace_tree(benchmark):
    dataset = paper_example()
    tree = benchmark.pedantic(
        trace_tree, args=(dataset, THRESHOLDS), rounds=3, iterations=1
    )
    assert len(tree.leaves()) == 5


def test_table2_trace_rsm(benchmark):
    dataset = paper_example()
    traces = benchmark.pedantic(
        trace_rsm, args=(dataset, THRESHOLDS), rounds=3, iterations=1
    )
    assert sum(len(t.kept) for t in traces) == 5


def test_example_cubeminer(benchmark):
    dataset = paper_example()
    result = benchmark(cubeminer_mine, dataset, THRESHOLDS)
    assert len(result) == 5


def test_example_rsm(benchmark):
    dataset = paper_example()
    result = benchmark(rsm_mine, dataset, THRESHOLDS)
    assert len(result) == 5


def test_example_reference(benchmark):
    dataset = paper_example()
    result = benchmark(reference_mine, dataset, THRESHOLDS)
    assert len(result) == 5


@pytest.mark.parametrize("miner_name", sorted(FCP_MINERS))
def test_example_2d_miners_on_slice(benchmark, miner_name):
    """Phase-2 cost per representative slice, per 2D algorithm."""
    dataset = paper_example()
    from repro.core.bitset import mask_of
    from repro.rsm.slices import representative_slice

    rs = representative_slice(dataset, mask_of([1, 2]))
    miner = get_fcp_miner(miner_name)
    patterns = benchmark(miner.mine, rs, 2, 2)
    assert len(patterns) == 3
