"""Figure 7 — vary the size of the height dimension (synthetic data).

Paper setup: synthetic datasets, 30% density, 20 rows, 1000 columns,
heights swept 8..20; minH=minR=3, minC=30; time plotted on a log scale.

Expected shape: both algorithms slow down as heights grow; RSM's time
explodes (the number of representative slices is exponential in the
enumerated dimension) while CubeMiner grows gently, so CubeMiner wins
clearly at larger height counts (a visible crossover).

Scaled substitute: h x 12 x 250 tensors with planted correlated blocks
in 30% background noise (the IBM generator's correlated transactions),
minC=8 ~ the paper's 30/1000 fraction; heights swept 6..16.  RSM here
enumerates the *height* dimension deliberately — that is the dimension
whose growth the figure studies.
"""

from __future__ import annotations

import math

import pytest

from common import print_series_table, synthetic_heights_bench, timed
from repro.core.constraints import Thresholds
from repro.cubeminer import cubeminer_mine
from repro.rsm import rsm_mine

HEIGHTS = [6, 8, 10, 12, 14, 16]
THRESHOLDS = Thresholds(3, 3, 8)


def _cubeminer(n_heights):
    return cubeminer_mine(synthetic_heights_bench(n_heights), THRESHOLDS)


def _rsm(n_heights):
    return rsm_mine(
        synthetic_heights_bench(n_heights), THRESHOLDS, base_axis="height"
    )


@pytest.mark.parametrize("n_heights", HEIGHTS, ids=lambda v: f"heights={v}")
def test_fig7_cubeminer(benchmark, n_heights):
    benchmark.pedantic(_cubeminer, args=(n_heights,), rounds=1, iterations=1)


@pytest.mark.parametrize("n_heights", HEIGHTS, ids=lambda v: f"heights={v}")
def test_fig7_rsm(benchmark, n_heights):
    benchmark.pedantic(_rsm, args=(n_heights,), rounds=1, iterations=1)


def sweep() -> None:
    series: dict[str, list[float]] = {"CubeMiner": [], "RSM": []}
    log_series: dict[str, list[float]] = {"lg CubeMiner": [], "lg RSM": []}
    counts: list[int] = []
    for n_heights in HEIGHTS:
        t_cm, result = timed(_cubeminer, n_heights)
        t_rsm, rsm_result = timed(_rsm, n_heights)
        assert result.same_cubes(rsm_result)
        series["CubeMiner"].append(t_cm)
        series["RSM"].append(t_rsm)
        log_series["lg CubeMiner"].append(math.log10(max(t_cm, 1e-6)))
        log_series["lg RSM"].append(math.log10(max(t_rsm, 1e-6)))
        counts.append(len(result))
    print_series_table(
        "Figure 7: vary heights (R*C=12*250, 30% density, minH=minR=3, minC=8)",
        "heights", HEIGHTS, series, counts=counts,
    )
    print_series_table(
        "Figure 7 (log10 seconds, the paper's presentation)",
        "heights", HEIGHTS, log_series,
    )


if __name__ == "__main__":
    sweep()
