"""Figure 2 — CubeMiner optimization: height-slice ordering.

Paper setup: the Elutriation dataset, CubeMiner run with the original
slice order vs Zero Decreasing Order vs Zero Increasing Order, varying
(a) minH with minR=3, minC=900; (b) minR with minH=3, minC=900;
(c) minC with minH=3, minR=3.

Expected shape (paper Section 7.1.1): zero-decreasing fastest,
zero-increasing slowest, original in between; all orders get faster as
any threshold rises.

Scaled substitute: minC 900/7161 genes -> 31/250 genes.
"""

from __future__ import annotations

import pytest

from common import (
    elutriation_bench,
    print_series_table,
    scale_minc,
    skewed_slices_bench,
    timed,
)
from repro.core.constraints import Thresholds
from repro.cubeminer import HeightOrder, cubeminer_mine

#: Paper minC=900 on 7161 genes -> 31 on the bench scale.
BASE_MINC = scale_minc(900, 7161)
MINH_VALUES = [3, 4, 5, 6, 7, 8]
MINR_VALUES = [3, 4, 5, 6, 7]
MINC_VALUES = [scale_minc(v, 7161) for v in (900, 1000, 1100, 1200, 1300)]
ORDERS = list(HeightOrder)


def _run(order: HeightOrder, thresholds: Thresholds):
    return cubeminer_mine(elutriation_bench(), thresholds, order=order)


@pytest.mark.parametrize("order", ORDERS, ids=lambda o: o.value)
@pytest.mark.parametrize("min_h", MINH_VALUES, ids=lambda v: f"minH={v}")
def test_fig2a_vary_minh(benchmark, order, min_h):
    benchmark.pedantic(
        _run, args=(order, Thresholds(min_h, 3, BASE_MINC)), rounds=1, iterations=1
    )


@pytest.mark.parametrize("order", ORDERS, ids=lambda o: o.value)
@pytest.mark.parametrize("min_r", MINR_VALUES, ids=lambda v: f"minR={v}")
def test_fig2b_vary_minr(benchmark, order, min_r):
    benchmark.pedantic(
        _run, args=(order, Thresholds(3, min_r, BASE_MINC)), rounds=1, iterations=1
    )


@pytest.mark.parametrize("order", ORDERS, ids=lambda o: o.value)
@pytest.mark.parametrize("min_c", MINC_VALUES, ids=lambda v: f"minC={v}")
def test_fig2c_vary_minc(benchmark, order, min_c):
    benchmark.pedantic(
        _run, args=(order, Thresholds(3, 3, min_c)), rounds=1, iterations=1
    )


@pytest.mark.parametrize("order", ORDERS, ids=lambda o: o.value)
def test_fig2_skewed_slices(benchmark, order):
    """The ordering effect isolated on a slice-skewed dataset.

    The microarray substitute's slices are nearly uniform in density,
    which damps the ordering effect to noise level; this dataset has an
    8%-85% per-slice density spread and shows the paper's full
    zero-decreasing < original < zero-increasing separation.
    """
    benchmark.pedantic(
        cubeminer_mine,
        args=(skewed_slices_bench(), Thresholds(3, 3, 25)),
        kwargs={"order": order},
        rounds=1,
        iterations=1,
    )


def sweep() -> None:
    """Print all three Figure 2 panels as series tables."""
    panels = [
        ("Figure 2(a): vary minH (minR=3, minC=%d)" % BASE_MINC, "minH",
         MINH_VALUES, lambda v: Thresholds(v, 3, BASE_MINC)),
        ("Figure 2(b): vary minR (minH=3, minC=%d)" % BASE_MINC, "minR",
         MINR_VALUES, lambda v: Thresholds(3, v, BASE_MINC)),
        ("Figure 2(c): vary minC (minH=3, minR=3)", "minC",
         MINC_VALUES, lambda v: Thresholds(3, 3, v)),
    ]
    for title, x_label, values, make_thresholds in panels:
        series: dict[str, list[float]] = {o.value: [] for o in ORDERS}
        counts: list[int] = []
        for value in values:
            thresholds = make_thresholds(value)
            for order in ORDERS:
                elapsed, result = timed(_run, order, thresholds)
                series[order.value].append(elapsed)
            counts.append(len(result))
        print_series_table(title, x_label, values, series, counts=counts)

    # Supplementary panel: the effect isolated on slice-skewed data.
    skewed = skewed_slices_bench()
    thresholds = Thresholds(3, 3, 25)
    series: dict[str, list[float]] = {}
    nodes: dict[str, int] = {}
    for order in ORDERS:
        elapsed, result = timed(
            cubeminer_mine, skewed, thresholds, order=order
        )
        series[order.value] = [elapsed]
        nodes[order.value] = result.stats["nodes_visited"]
    print_series_table(
        "Figure 2 (supplementary): slice-skewed dataset, minH=minR=3, minC=25",
        "point", ["12x9x250"], series,
    )
    print("  nodes visited:", ", ".join(f"{k}={v}" for k, v in nodes.items()))


if __name__ == "__main__":
    sweep()
