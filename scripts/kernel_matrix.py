"""Run the kernel differential + property suites over every backend.

The CI ``kernel-matrix`` job calls this instead of bare pytest so the
run is *provably complete*:

1. Probe the registry.  Every backend the registry *knows*
   (``known_kernels()``) must actually be runnable here
   (``available_kernels()``) — a known-but-unavailable backend (e.g.
   ``native`` whose extension failed to build) means the job would
   silently exercise fewer kernels than the registry advertises, which
   is exactly the failure mode this job exists to prevent.
2. Run the suites with ``REPRO_REQUIRE_KERNELS`` set to the probed
   list.  The guard test in ``tests/test_kernels.py`` re-asserts the
   availability *inside* the pytest process, so a discrepancy between
   the probe interpreter and the test interpreter also fails.

Usage::

    PYTHONPATH=src python scripts/kernel_matrix.py [--allow-missing native]

``--allow-missing`` downgrades a named backend's absence to a warning —
for local runs without a compiler; CI never passes it.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

SUITES = [
    "tests/test_kernel_differential.py",
    "tests/test_kernel_properties.py",
]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--allow-missing", action="append", default=[], metavar="KERNEL",
        help="tolerate this known backend being unavailable (repeatable)",
    )
    args, pytest_args = parser.parse_known_args(argv)

    from repro.core.kernels import available_kernels, known_kernels

    available = set(available_kernels())
    known = set(known_kernels())
    missing = known - available
    fatal = missing - set(args.allow_missing)
    if fatal:
        from repro.core.kernels import native_import_error

        for name in sorted(fatal):
            reason = (
                native_import_error() if name == "native" else "unavailable"
            )
            print(
                f"ERROR: registry advertises kernel {name!r} but it cannot "
                f"run here ({reason}); the matrix would silently skip it",
                file=sys.stderr,
            )
        return 1
    for name in sorted(missing & set(args.allow_missing)):
        print(f"WARNING: skipping unavailable kernel {name!r} (--allow-missing)")

    exercised = sorted(available)
    print(f"kernel matrix over: {', '.join(exercised)}")
    env = dict(os.environ)
    env["REPRO_REQUIRE_KERNELS"] = ",".join(exercised)
    command = [sys.executable, "-m", "pytest", "-q", *SUITES, *pytest_args]
    return subprocess.call(command, env=env)


if __name__ == "__main__":
    sys.exit(main())
