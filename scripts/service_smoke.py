"""End-to-end smoke test of the mining service daemon.

Boots a daemon on an ephemeral port, then exercises the full client
path the way CI's ``service`` job expects:

1. register a dataset (content-fingerprinted),
2. submit a mining job at loose thresholds and wait for it,
3. re-query at element-wise tighter thresholds and assert the answer
   comes from the threshold-lattice cache (``cache_hit``) and is
   bit-identical to a fresh sequential mine,
4. hit the cache-only ``/v1/query`` endpoint,
5. check the health counters moved,
6. fsck the data directory after shutdown — a clean end-to-end run
   must leave a clean store (no stray temps, no checksum drift).

Exits non-zero on the first broken expectation.
"""

from __future__ import annotations

import sys
import tempfile
import threading

import numpy as np

from repro import mine
from repro.chaos import fsck_data_dir
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.service import ServiceApp, ServiceClient, serve


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)
    print(f"ok: {message}")


def cube_set(result) -> list[tuple[int, int, int]]:
    return sorted((c.heights, c.rows, c.columns) for c in result)


def main() -> int:
    rng = np.random.default_rng(7)
    dataset = Dataset3D(rng.random((4, 10, 10)) < 0.4)

    data_dir = tempfile.mkdtemp(prefix="repro-service-smoke-")
    app = ServiceApp(data_dir, max_workers=2)
    server = serve(app, port=0)
    port = server.server_address[1]
    threading.Thread(target=server.serve_forever, daemon=True).start()

    try:
        client = ServiceClient(f"http://127.0.0.1:{port}")
        check(client.health()["status"] == "ok", "daemon is healthy")

        entry = client.register_dataset(dataset)
        check(len(entry.fingerprint) == 64, "dataset registered by fingerprint")
        again = client.register_dataset(dataset)
        check(
            again.fingerprint == entry.fingerprint,
            "re-registration is idempotent",
        )

        loose = Thresholds(1, 2, 2)
        served = client.mine(entry.fingerprint, loose, timeout=300)
        check(not served.cache_hit, "first mine at loose thresholds is fresh")
        check(len(served.result) > 0, "loose mine found cubes")

        tight = Thresholds(2, 2, 2, min_volume=8)
        cached = client.mine(entry.fingerprint, tight, timeout=300)
        check(cached.cache_hit, "tighter re-query is a cache hit")
        check(len(cached.result) > 0, "tight query still has cubes to compare")
        check(
            cached.filtered_from == loose,
            "provenance names the loose source thresholds",
        )
        fresh = mine(dataset, tight)
        check(
            cube_set(cached.result) == cube_set(fresh),
            "cached+filtered cubes are bit-identical to a fresh mine",
        )

        answer = client.query(entry.fingerprint, Thresholds(2, 2, 2))
        check(
            answer is not None and answer.cache_hit,
            "cache-only /v1/query answers a dominated query",
        )
        miss = client.query(entry.fingerprint, Thresholds(1, 1, 1))
        check(miss is None, "cache-only query misses below the stored lattice")

        health = client.health()
        check(health["cache"]["hits"] >= 2, "health reports cache hits")
        check(health["jobs"]["done"] >= 1, "health reports completed jobs")
    finally:
        server.shutdown()
        server.server_close()
        app.close()

    report = fsck_data_dir(data_dir)
    check(report.clean, f"data dir fscks clean after shutdown ({report.summary()})")

    print("service smoke test passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
