"""Unit tests for the Cube value object."""

from __future__ import annotations

import pytest

from repro.core.cube import Cube


class TestConstruction:
    def test_from_indices(self):
        cube = Cube.from_indices([0, 2], [1], [0, 1, 4])
        assert cube.heights == 0b101
        assert cube.rows == 0b10
        assert cube.columns == 0b10011

    def test_negative_mask_raises(self):
        with pytest.raises(ValueError):
            Cube(-1, 0, 0)

    def test_from_labels(self, paper_ds):
        cube = Cube.from_labels(paper_ds, "h1 h3", "r1 r2 r3", "c1 c2 c3")
        assert cube.height_indices() == (0, 2)
        assert cube.row_indices() == (0, 1, 2)
        assert cube.column_indices() == (0, 1, 2)

    def test_from_labels_list_form(self, paper_ds):
        cube = Cube.from_labels(paper_ds, ["h2"], ["r4"], ["c5"])
        assert (cube.heights, cube.rows, cube.columns) == (0b10, 0b1000, 0b10000)

    def test_from_labels_unknown_raises(self, paper_ds):
        with pytest.raises(KeyError, match="h9"):
            Cube.from_labels(paper_ds, "h9", "r1", "c1")


class TestSupports:
    def test_supports(self):
        cube = Cube.from_indices([0, 1, 2], [0, 1], [3])
        assert (cube.h_support, cube.r_support, cube.c_support) == (3, 2, 1)

    def test_volume(self):
        cube = Cube.from_indices([0, 1], [0, 1, 2], [0, 1, 2, 3])
        assert cube.volume == 24

    def test_empty(self):
        assert Cube(0, 1, 1).is_empty()
        assert Cube(1, 0, 1).is_empty()
        assert Cube(1, 1, 0).is_empty()
        assert not Cube(1, 1, 1).is_empty()


class TestRelations:
    def test_contains_self(self):
        cube = Cube.from_indices([0], [1], [2])
        assert cube.contains(cube)

    def test_contains_subcube(self):
        big = Cube.from_indices([0, 1], [0, 1], [0, 1])
        small = Cube.from_indices([0], [1], [0, 1])
        assert big.contains(small)
        assert not small.contains(big)

    def test_incomparable(self):
        a = Cube.from_indices([0], [0], [0])
        b = Cube.from_indices([1], [0], [0])
        assert not a.contains(b)
        assert not b.contains(a)


class TestOrderingAndEquality:
    def test_frozen_and_hashable(self):
        a = Cube(1, 2, 3)
        b = Cube(1, 2, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
        with pytest.raises(AttributeError):
            a.heights = 5  # type: ignore[misc]

    def test_sort_key_total_order(self):
        cubes = [Cube(2, 1, 1), Cube(1, 2, 1), Cube(1, 1, 2), Cube(1, 1, 1)]
        ordered = sorted(cubes, key=Cube.sort_key)
        assert ordered[0] == Cube(1, 1, 1)
        assert ordered[-1] == Cube(2, 1, 1)


class TestFormatting:
    def test_format_with_dataset(self, paper_ds):
        cube = Cube.from_labels(paper_ds, "h1 h3", "r1 r2 r3", "c1 c2 c3")
        assert cube.format(paper_ds) == "h1h3 : r1r2r3 : c1c2c3, 2:3:3"

    def test_format_without_dataset_uses_one_based(self):
        cube = Cube.from_indices([0], [1], [2])
        assert cube.format() == "h1 : r2 : c3, 1:1:1"

    def test_format_without_supports(self):
        cube = Cube.from_indices([0], [0], [0])
        assert cube.format(with_supports=False) == "h1 : r1 : c1"

    def test_str_and_repr(self):
        cube = Cube.from_indices([1], [2], [3])
        assert "h2" in str(cube)
        assert "rows=(2,)" in repr(cube)
