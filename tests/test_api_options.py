"""Tests for the typed mine() options surface and the algorithm registry."""

from __future__ import annotations

import pytest

import repro.api as api
from repro.api import ALGORITHMS, mine, register_algorithm, unregister_algorithm
from repro.core.result import MiningResult
from repro.cubeminer import HeightOrder
from repro.options import (
    CubeMinerOptions,
    ParallelOptions,
    ReferenceOptions,
    RSMOptions,
)


class TestTypedOptions:
    def test_cubeminer_options(self, paper_ds, paper_thresholds):
        result = mine(
            paper_ds,
            paper_thresholds,
            algorithm="cubeminer",
            options=CubeMinerOptions(order=HeightOrder.ORIGINAL),
        )
        assert result.algorithm == "cubeminer[original]"

    def test_rsm_options(self, paper_ds, paper_thresholds):
        result = mine(
            paper_ds,
            paper_thresholds,
            algorithm="rsm",
            options=RSMOptions(base_axis="row", fcp_miner="dminer"),
        )
        assert result.algorithm == "rsm-r[dminer]"

    def test_parallel_options_select_algorithm_knobs(self):
        kwargs = ParallelOptions(n_workers=3).to_kwargs("parallel-cubeminer")
        assert kwargs["n_workers"] == 3
        assert "order" in kwargs and "fcp_miner" not in kwargs
        kwargs = ParallelOptions(n_workers=3).to_kwargs("parallel-rsm")
        assert "fcp_miner" in kwargs and "order" not in kwargs

    def test_parallel_options_run(self, paper_ds, paper_thresholds):
        result = mine(
            paper_ds,
            paper_thresholds,
            algorithm="parallel-rsm",
            options=ParallelOptions(n_workers=1),
        )
        assert result.stats["n_workers"] == 1

    def test_mismatched_options_class_raises(self, paper_ds, paper_thresholds):
        with pytest.raises(TypeError, match="RSMOptions"):
            mine(
                paper_ds,
                paper_thresholds,
                algorithm="cubeminer",
                options=RSMOptions(),
            )

    def test_non_options_object_raises(self, paper_ds, paper_thresholds):
        with pytest.raises(TypeError, match="to_kwargs"):
            mine(
                paper_ds,
                paper_thresholds,
                algorithm="cubeminer",
                options={"order": HeightOrder.ORIGINAL},
            )

    def test_reference_options_have_no_knobs(self):
        assert ReferenceOptions().to_kwargs("reference") == {}

    def test_options_are_frozen(self):
        with pytest.raises(Exception):
            CubeMinerOptions().order = HeightOrder.ORIGINAL


class TestLooseKwargsRemoved:
    """The pre-2.0 loose-keyword channel is gone: typed options only."""

    def test_loose_kwargs_raise_type_error(self, paper_ds, paper_thresholds):
        with pytest.raises(TypeError):
            mine(
                paper_ds,
                paper_thresholds,
                algorithm="cubeminer",
                order=HeightOrder.ORIGINAL,
            )

    def test_loose_parallel_kwargs_raise_type_error(
        self, paper_ds, paper_thresholds
    ):
        with pytest.raises(TypeError):
            mine(
                paper_ds,
                paper_thresholds,
                algorithm="parallel-cubeminer",
                n_workers=2,
            )

    def test_typed_options_do_not_warn(self, paper_ds, paper_thresholds, recwarn):
        mine(
            paper_ds,
            paper_thresholds,
            options=CubeMinerOptions(order=HeightOrder.ORIGINAL),
        )
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestRegistry:
    def test_algorithms_is_derived_from_registry(self):
        assert set(
            ("cubeminer", "rsm", "reference", "parallel-cubeminer", "parallel-rsm")
        ) <= set(ALGORITHMS)
        assert tuple(api._REGISTRY) == api.ALGORITHMS

    def test_unknown_algorithm_message(self, paper_ds, paper_thresholds):
        with pytest.raises(ValueError, match="unknown algorithm"):
            mine(paper_ds, paper_thresholds, algorithm="nope")

    def test_register_round_trip(self, paper_ds, paper_thresholds):
        def _load():
            def fake_mine(dataset, thresholds, **kwargs):
                return MiningResult(
                    cubes=[],
                    algorithm="fake",
                    thresholds=thresholds,
                    dataset_shape=dataset.shape,
                    elapsed_seconds=0.0,
                )

            return fake_mine

        register_algorithm("fake", _load, description="test stub")
        try:
            assert "fake" in api.ALGORITHMS
            result = mine(paper_ds, paper_thresholds, algorithm="fake")
            assert result.algorithm == "fake"
        finally:
            unregister_algorithm("fake")
        assert "fake" not in api.ALGORITHMS

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("cubeminer", lambda: None)

    def test_replace_allows_override(self):
        spec = api.get_algorithm("cubeminer")
        try:
            register_algorithm(
                "cubeminer", spec.loader, options_type=spec.options_type,
                replace=True,
            )
        finally:
            # Restore the pristine spec (same loader either way).
            api._REGISTRY["cubeminer"] = spec
            api._refresh_names()
        assert "cubeminer" in api.ALGORITHMS


class TestOptionsWireFormat:
    """options_to_dict / options_from_dict are the JSON channel of 2.0."""

    def test_round_trip_every_class(self):
        from repro.options import options_from_dict, options_to_dict

        cases = [
            ("cubeminer", CubeMinerOptions(order=HeightOrder.ZERO_DECREASING)),
            ("rsm", RSMOptions(base_axis="row", fcp_miner="dminer")),
            ("parallel-cubeminer", ParallelOptions(n_workers=3, shards=2)),
            ("reference", ReferenceOptions()),
        ]
        for algorithm, options in cases:
            payload = options_to_dict(options)
            assert options_from_dict(algorithm, payload) == options

    def test_enum_serializes_as_string(self):
        from repro.options import options_to_dict

        payload = options_to_dict(CubeMinerOptions(order=HeightOrder.ORIGINAL))
        assert payload["order"] == "original"

    def test_unknown_key_rejected(self):
        from repro.options import options_from_dict

        with pytest.raises(ValueError, match="unknown option"):
            options_from_dict("cubeminer", {"no_such_knob": 1})

    def test_empty_payload_is_defaults(self):
        from repro.options import options_from_dict

        assert options_from_dict("rsm", {}) == RSMOptions()
