"""Property suite for dataset sharding (hypothesis).

The contract of :mod:`repro.parallel.sharding`: splitting the task
space into shards, mining each independently and merging must be
*exactly* equivalent to the unsharded run — shard ⊕ mine ⊕ merge is
the identity on the closed-cube set — and the merge itself must be
associative and idempotent however shard outputs are grouped,
permuted or duplicated.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import Thresholds
from repro.core.cube import Cube
from repro.core.dataset import Dataset3D
from repro.cubeminer.algorithm import cubeminer_mine
from repro.datasets import random_tensor
from repro.parallel import (
    merge_shard_results,
    parallel_cubeminer_mine,
    parallel_rsm_mine,
    partition_cubeminer_tasks,
    partition_rsm_tasks,
    shard_blocks,
    shard_of_mask,
)
from repro.parallel.tasks import rsm_tasks
from repro.rsm.algorithm import rsm_mine


def cube_triples(result):
    return sorted((c.heights, c.rows, c.columns) for c in result)


@st.composite
def tensors_with_thresholds(draw, max_dim: int = 5):
    l = draw(st.integers(2, max_dim))
    n = draw(st.integers(1, max_dim))
    m = draw(st.integers(1, max_dim))
    cells = draw(st.lists(st.booleans(), min_size=l * n * m, max_size=l * n * m))
    dataset = Dataset3D(np.array(cells, dtype=bool).reshape(l, n, m))
    thresholds = Thresholds(
        draw(st.integers(1, 2)), draw(st.integers(1, 2)), draw(st.integers(1, 2))
    )
    return dataset, thresholds


# ----------------------------------------------------------------------
# Partition primitives
# ----------------------------------------------------------------------
class TestShardBlocks:
    @given(st.integers(1, 64), st.integers(1, 10))
    def test_blocks_cover_and_are_disjoint(self, n, shards):
        blocks = shard_blocks(n, shards)
        covered = [i for start, stop in blocks for i in range(start, stop)]
        assert covered == list(range(n))
        assert 1 <= len(blocks) <= min(shards, n)
        sizes = [stop - start for start, stop in blocks]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_non_positive_shards(self):
        with pytest.raises(ValueError, match="shards"):
            shard_blocks(5, 0)

    @given(st.integers(1, 6), st.lists(st.integers(1, 63), min_size=1, max_size=20))
    def test_every_mask_lands_in_exactly_one_shard(self, shards, masks):
        blocks = shard_blocks(64, shards)
        for mask in masks:
            s = shard_of_mask(mask, blocks)
            start, stop = blocks[s]
            low = (mask & -mask).bit_length() - 1
            assert start <= low < stop

    @given(st.integers(2, 16), st.integers(1, 5), st.integers(1, 4))
    def test_rsm_partition_preserves_the_task_multiset(self, n, min_h, shards):
        tasks = rsm_tasks(n, min_h)
        parts = partition_rsm_tasks(tasks, shard_blocks(n, shards))
        assert sorted(m for part in parts for m in part) == sorted(tasks)

    @given(
        st.lists(st.integers(0, 100), min_size=0, max_size=30), st.integers(1, 6)
    )
    def test_cubeminer_partition_preserves_order_and_multiset(self, tasks, shards):
        parts = partition_cubeminer_tasks(tasks, shards)
        assert [t for part in parts for t in part] == tasks
        if tasks:
            sizes = [len(part) for part in parts]
            assert max(sizes) - min(sizes) <= 1


# ----------------------------------------------------------------------
# shard → mine → merge == unsharded (the tentpole invariant)
# ----------------------------------------------------------------------
class TestShardedMiningExactness:
    @settings(max_examples=25, deadline=None)
    @given(tensors_with_thresholds(), st.integers(2, 4))
    def test_sharded_rsm_equals_sequential(self, case, shards):
        dataset, thresholds = case
        expected = cube_triples(rsm_mine(dataset, thresholds, base_axis="height"))
        sharded = parallel_rsm_mine(
            dataset,
            thresholds,
            n_workers=1,
            base_axis="height",
            shards=shards,
        )
        assert cube_triples(sharded) == expected
        # A correct decomposition never produces boundary violations.
        assert sharded.stats.metrics.shard_merge_dropped == 0

    @settings(max_examples=25, deadline=None)
    @given(tensors_with_thresholds(), st.integers(2, 4))
    def test_sharded_cubeminer_equals_sequential(self, case, shards):
        dataset, thresholds = case
        expected = cube_triples(cubeminer_mine(dataset, thresholds))
        sharded = parallel_cubeminer_mine(
            dataset, thresholds, n_workers=1, shards=shards
        )
        assert cube_triples(sharded) == expected
        assert sharded.stats.metrics.shard_merge_dropped == 0

    def test_pooled_sharded_run_matches_unsharded(self):
        dataset = random_tensor((8, 10, 14), 0.4, seed=5)
        thresholds = Thresholds(2, 2, 2)
        unsharded = parallel_rsm_mine(dataset, thresholds, n_workers=2)
        sharded = parallel_rsm_mine(dataset, thresholds, n_workers=2, shards=3)
        assert cube_triples(sharded) == cube_triples(unsharded)

    def test_shards_beyond_dimension_size_still_exact(self):
        dataset = random_tensor((3, 6, 8), 0.4, seed=9)
        thresholds = Thresholds(1, 2, 2)
        expected = cube_triples(rsm_mine(dataset, thresholds, base_axis="height"))
        sharded = parallel_rsm_mine(
            dataset, thresholds, n_workers=1, base_axis="height", shards=16
        )
        assert cube_triples(sharded) == expected

    def test_shard_dim_must_match_the_enumerated_axis(self):
        dataset = random_tensor((4, 6, 8), 0.4, seed=1)
        with pytest.raises(ValueError, match="base dimension"):
            parallel_rsm_mine(
                dataset,
                Thresholds(2, 2, 2),
                base_axis="height",
                shards=2,
                shard_dim="column",
            )
        with pytest.raises(ValueError, match="frontier"):
            parallel_cubeminer_mine(
                dataset, Thresholds(2, 2, 2), shards=2, shard_dim="height"
            )

    def test_shards_tagged_in_algorithm_and_extra(self):
        dataset = random_tensor((6, 8, 10), 0.4, seed=2)
        result = parallel_rsm_mine(
            dataset, Thresholds(2, 2, 2), n_workers=1, shards=3
        )
        assert result.algorithm.endswith("s3")
        info = result.stats.extra["shards"]
        assert info["shards"] == 3
        assert sum(info["tasks_per_shard"]) == result.stats.extra["n_tasks"]
        assert result.stats.metrics.shard_merges == 1


# ----------------------------------------------------------------------
# Merge algebra: associative, idempotent, order-insensitive
# ----------------------------------------------------------------------
class TestMergeAlgebra:
    @settings(max_examples=25, deadline=None)
    @given(tensors_with_thresholds(), st.data())
    def test_merge_is_associative_and_order_insensitive(self, case, data):
        dataset, thresholds = case
        triples = cube_triples(cubeminer_mine(dataset, thresholds))
        permuted = data.draw(st.permutations(triples))
        split_at = data.draw(st.integers(0, len(permuted)))
        left, right = permuted[:split_at], permuted[split_at:]
        one_pass = merge_shard_results(dataset, thresholds, list(permuted))
        grouped = merge_shard_results(
            dataset,
            thresholds,
            merge_shard_results(dataset, thresholds, left)
            + merge_shard_results(dataset, thresholds, right),
        )
        assert one_pass == grouped == sorted(triples)

    @settings(max_examples=25, deadline=None)
    @given(tensors_with_thresholds())
    def test_merge_is_idempotent_and_deduplicates(self, case):
        dataset, thresholds = case
        triples = cube_triples(cubeminer_mine(dataset, thresholds))
        once = merge_shard_results(dataset, thresholds, triples)
        again = merge_shard_results(dataset, thresholds, once + once)
        assert once == again == sorted(triples)

    def test_merge_drops_planted_violations(self):
        dataset = random_tensor((5, 8, 10), 0.4, seed=7)
        thresholds = Thresholds(2, 2, 2)
        good = cube_triples(cubeminer_mine(dataset, thresholds))
        assert good, "seed must yield at least one cube"
        # An unclosed/over-threshold-violating impostor at the shard
        # boundary must be re-validated away, and counted.
        h, r, c = good[0]
        impostors = [(h, r & -r, c), (0b1, 0b1, 0b1)]
        from repro.obs import MiningMetrics

        metrics = MiningMetrics()
        merged = merge_shard_results(
            dataset, thresholds, good + impostors, metrics=metrics
        )
        survivors = [t for t in impostors if t in merged]
        assert merged == sorted(set(good) | set(survivors))
        assert metrics.shard_merge_dropped == len(impostors) - len(survivors)
        assert metrics.shard_merge_dropped >= 1

    def test_merge_without_revalidation_only_dedupes_and_sorts(self):
        dataset = random_tensor((4, 5, 6), 0.5, seed=3)
        thresholds = Thresholds(2, 2, 2)
        junk = [(1, 1, 1), (3, 3, 3), (1, 1, 1)]
        merged = merge_shard_results(
            dataset, thresholds, junk, revalidate=False
        )
        assert merged == [(1, 1, 1), (3, 3, 3)]


# ----------------------------------------------------------------------
# Checkpoint/resume across shard boundaries
# ----------------------------------------------------------------------
class TestShardedCheckpointResume:
    @pytest.mark.parametrize(
        "driver", [parallel_rsm_mine, parallel_cubeminer_mine]
    )
    def test_resume_crosses_shard_boundaries(self, tmp_path, driver):
        dataset = random_tensor((6, 10, 14), 0.4, seed=13)
        thresholds = Thresholds(2, 2, 2)
        path = tmp_path / "journal.ckpt"
        clean = driver(
            dataset,
            thresholds,
            n_workers=2,
            shards=3,
            checkpoint_path=str(path),
        )
        assert clean.stats.extra["recovery"]["chunks_resumed"] == 0
        # Truncate the journal to its header + first few chunk records,
        # then resume: the remaining chunks — including every chunk of
        # the untouched shards — must re-mine to an identical result.
        lines = path.read_text().splitlines(keepends=True)
        keep = 1 + min(2, len(lines) - 1)
        path.write_text("".join(lines[:keep]))
        resumed = driver(
            dataset,
            thresholds,
            n_workers=2,
            shards=3,
            checkpoint_path=str(path),
            resume=True,
        )
        assert cube_triples(resumed) == cube_triples(clean)
        assert resumed.stats.extra["recovery"]["chunks_resumed"] == keep - 1
        assert (
            resumed.stats.metrics.as_dict() == clean.stats.metrics.as_dict()
        )

    def test_resume_rejects_different_shard_count(self, tmp_path):
        dataset = random_tensor((6, 10, 14), 0.4, seed=13)
        thresholds = Thresholds(2, 2, 2)
        path = tmp_path / "journal.ckpt"
        parallel_rsm_mine(
            dataset,
            thresholds,
            n_workers=2,
            shards=3,
            checkpoint_path=str(path),
        )
        from repro.parallel import CheckpointMismatchError

        with pytest.raises(CheckpointMismatchError):
            parallel_rsm_mine(
                dataset,
                thresholds,
                n_workers=2,
                shards=2,
                checkpoint_path=str(path),
                resume=True,
            )


# ----------------------------------------------------------------------
# Closure sanity on merged output
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(tensors_with_thresholds(), st.integers(2, 3))
def test_every_merged_cube_is_closed_and_frequent(case, shards):
    from repro.core.closure import is_closed_cube

    dataset, thresholds = case
    result = parallel_rsm_mine(
        dataset, thresholds, n_workers=1, base_axis="height", shards=shards
    )
    for cube in result:
        assert thresholds.satisfied_by(cube)
        assert is_closed_cube(dataset, cube)
        assert isinstance(cube, Cube)
