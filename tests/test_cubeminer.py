"""Unit and integration tests for the CubeMiner algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitset import full_mask, mask_of
from repro.core.closure import is_closed_cube
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.core.reference import reference_mine
from repro.cubeminer import CubeMiner, HeightOrder, cubeminer_mine
from repro.cubeminer.checks import height_set_closed, row_set_closed
from tests.conftest import random_dataset


class TestChecks:
    def test_height_closed_positive(self, paper_ds):
        # (h1h3, r1r2r3, c1c2c3) is a closed FCC: Hcheck must pass.
        assert height_set_closed(
            paper_ds, mask_of([0, 2]), mask_of([0, 1, 2]), mask_of([0, 1, 2])
        )

    def test_height_closed_negative(self, paper_ds):
        # (h2h3, r1r3, c1c2c3) is unclosed: h1 also covers r1r3 x c1c2c3.
        assert not height_set_closed(
            paper_ds, mask_of([1, 2]), mask_of([0, 2]), mask_of([0, 1, 2])
        )

    def test_row_closed_positive(self, paper_ds):
        assert row_set_closed(
            paper_ds, mask_of([0, 2]), mask_of([0, 1, 2]), mask_of([0, 1, 2])
        )

    def test_row_closed_negative(self, paper_ds):
        # (h2h3, r1r4, c1c2c3) is unclosed: r3 also covers it (d2, Figure 1).
        assert not row_set_closed(
            paper_ds, mask_of([1, 2]), mask_of([0, 3]), mask_of([0, 1, 2])
        )

    def test_full_height_set_trivially_closed(self, paper_ds):
        assert height_set_closed(paper_ds, full_mask(3), mask_of([0]), mask_of([0]))

    def test_empty_columns_make_everything_cover(self, paper_ds):
        # With no columns constrained, every absent height covers trivially.
        assert not height_set_closed(paper_ds, mask_of([0]), mask_of([0]), 0)


class TestEdgeCases:
    def test_all_ones_tensor_single_fcc(self):
        ds = Dataset3D(np.ones((2, 3, 4), dtype=bool))
        result = cubeminer_mine(ds, Thresholds(1, 1, 1))
        assert len(result) == 1
        assert result.cubes[0].volume == 24

    def test_all_zeros_tensor_no_fcc(self):
        ds = Dataset3D(np.zeros((2, 3, 4), dtype=bool))
        assert len(cubeminer_mine(ds, Thresholds(1, 1, 1))) == 0

    def test_single_cell_one(self):
        ds = Dataset3D(np.ones((1, 1, 1), dtype=bool))
        result = cubeminer_mine(ds, Thresholds(1, 1, 1))
        assert len(result) == 1

    def test_single_cell_zero(self):
        ds = Dataset3D(np.zeros((1, 1, 1), dtype=bool))
        assert len(cubeminer_mine(ds, Thresholds(1, 1, 1))) == 0

    def test_infeasible_thresholds_return_empty(self, paper_ds):
        result = cubeminer_mine(paper_ds, Thresholds(4, 1, 1))
        assert len(result) == 0
        assert result.stats["nodes_visited"] == 0

    def test_thresholds_equal_shape(self):
        ds = Dataset3D(np.ones((2, 2, 2), dtype=bool))
        assert len(cubeminer_mine(ds, Thresholds(2, 2, 2))) == 1

    def test_identity_slices(self):
        # Two identical slices: every FCC spans both heights.
        slice_ = [[1, 1, 0], [0, 1, 1]]
        ds = Dataset3D([slice_, slice_])
        result = cubeminer_mine(ds, Thresholds(2, 1, 1))
        assert all(cube.h_support == 2 for cube in result)
        assert result.same_cubes(reference_mine(ds, Thresholds(2, 1, 1)))


class TestResultProperties:
    def test_all_results_closed_and_frequent(self, rng):
        for _ in range(30):
            ds = random_dataset(rng)
            th = Thresholds(*(int(x) for x in rng.integers(1, 3, size=3)))
            result = cubeminer_mine(ds, th)
            for cube in result:
                assert th.satisfied_by(cube)
                assert is_closed_cube(ds, cube)

    def test_no_duplicates_emitted(self, rng):
        for _ in range(20):
            ds = random_dataset(rng)
            result = cubeminer_mine(ds, Thresholds(1, 1, 1))
            assert len(result.cubes) == len(set(result.cubes))

    def test_matches_reference(self, rng):
        for _ in range(40):
            ds = random_dataset(rng)
            th = Thresholds(*(int(x) for x in rng.integers(1, 4, size=3)))
            assert cubeminer_mine(ds, th).same_cubes(reference_mine(ds, th))


class TestOrderingInvariance:
    """All three height orders must return identical cube sets."""

    def test_orders_agree_on_paper_example(self, paper_ds, paper_thresholds):
        results = [
            cubeminer_mine(paper_ds, paper_thresholds, order=order)
            for order in HeightOrder
        ]
        assert results[0].same_cubes(results[1])
        assert results[1].same_cubes(results[2])

    def test_orders_agree_on_random_data(self, rng):
        for _ in range(20):
            ds = random_dataset(rng)
            th = Thresholds(*(int(x) for x in rng.integers(1, 3, size=3)))
            base = cubeminer_mine(ds, th, order=HeightOrder.ORIGINAL)
            for order in (HeightOrder.ZERO_DECREASING, HeightOrder.ZERO_INCREASING):
                assert cubeminer_mine(ds, th, order=order).same_cubes(base)

    def test_zero_decreasing_prunes_no_later_than_original(self):
        # On a skewed dataset the zero-heavy-first order should visit
        # no more nodes (the paper's optimization rationale).
        rng = np.random.default_rng(42)
        data = rng.random((6, 8, 40)) < 0.6
        data[0] = True  # slice 0 all ones, zeros concentrated elsewhere
        ds = Dataset3D(data)
        th = Thresholds(2, 2, 4)
        dec = cubeminer_mine(ds, th, order=HeightOrder.ZERO_DECREASING)
        inc = cubeminer_mine(ds, th, order=HeightOrder.ZERO_INCREASING)
        assert dec.same_cubes(inc)
        assert dec.stats["nodes_visited"] <= inc.stats["nodes_visited"]


class TestStats:
    def test_stats_present(self, paper_ds, paper_thresholds):
        stats = cubeminer_mine(paper_ds, paper_thresholds).stats
        for key in (
            "n_cutters",
            "nodes_visited",
            "leaves_emitted",
            "pruned_min_h",
            "pruned_left_track",
            "max_stack_depth",
        ):
            assert key in stats

    def test_leaves_match_result_size(self, paper_ds, paper_thresholds):
        result = cubeminer_mine(paper_ds, paper_thresholds)
        assert result.stats["leaves_emitted"] == len(result)

    def test_cutter_count(self, paper_ds, paper_thresholds):
        result = cubeminer_mine(paper_ds, paper_thresholds)
        assert result.stats["n_cutters"] == 10


class TestFacade:
    def test_class_interface(self, paper_ds, paper_thresholds):
        miner = CubeMiner(order=HeightOrder.ORIGINAL)
        result = miner.mine(paper_ds, paper_thresholds)
        assert len(result) == 5
        assert "original" in repr(miner)

    def test_explicit_cutters_override(self, paper_ds, paper_thresholds):
        from repro.cubeminer.cutter import build_cutters

        cutters = build_cutters(paper_ds, HeightOrder.ZERO_INCREASING)
        result = cubeminer_mine(paper_ds, paper_thresholds, cutters=cutters)
        assert len(result) == 5
