"""Byte-exact reproduction of the paper's worked example.

Pins Table 1 (the dataset), Table 3 (the cutter set), Table 2 (RSM's
phase outputs) and the five FCCs of Table 2's last column / Figure 1's
leaves, for every algorithm in the library.
"""

from __future__ import annotations

import pytest

from repro.api import mine
from repro.core.bitset import mask_of
from repro.core.cube import Cube
from repro.core.reference import reference_mine
from repro.cubeminer.cutter import HeightOrder, build_cutters
from repro.datasets import PAPER_EXAMPLE_FCCS, paper_example
from repro.fcp import FCP_MINERS
from repro.options import CubeMinerOptions, RSMOptions
from repro.rsm.trace import trace_rsm


@pytest.fixture
def expected_fccs(paper_ds):
    return {
        Cube.from_labels(paper_ds, h, r, c) for h, r, c in PAPER_EXAMPLE_FCCS
    }


class TestTable1:
    def test_shape(self, paper_ds):
        assert paper_ds.shape == (3, 4, 5)

    def test_spot_cells(self, paper_ds):
        # A handful of cells read directly off Table 1.
        assert paper_ds.cell(0, 0, 4)      # h1, r1, c5 = 1
        assert not paper_ds.cell(0, 0, 3)  # h1, r1, c4 = 0
        assert not paper_ds.cell(1, 1, 0)  # h2, r2, c1 = 0
        assert paper_ds.cell(2, 3, 4)      # h3, r4, c5 = 1
        assert not paper_ds.cell(2, 3, 2)  # h3, r4, c3 = 0

    def test_labels(self, paper_ds):
        assert paper_ds.height_labels == ("h1", "h2", "h3")
        assert paper_ds.column_labels == ("c1", "c2", "c3", "c4", "c5")


class TestTable3Cutters:
    """The 10 cutters of Table 3, in ascending (height, row) order."""

    EXPECTED = [
        ("h1", "r1", "c4"),
        ("h1", "r2", "c4c5"),
        ("h1", "r4", "c1c2c4"),
        ("h2", "r2", "c1c5"),
        ("h2", "r3", "c5"),
        ("h2", "r4", "c4"),
        ("h3", "r1", "c4c5"),
        ("h3", "r2", "c4c5"),
        ("h3", "r3", "c5"),
        ("h3", "r4", "c3"),
    ]

    def test_cutter_count(self, paper_ds):
        assert len(build_cutters(paper_ds)) == 10

    def test_exact_cutters(self, paper_ds):
        cutters = build_cutters(paper_ds, HeightOrder.ORIGINAL)
        rendered = [
            tuple(cutter.format(paper_ds).split(", ")) for cutter in cutters
        ]
        assert rendered == self.EXPECTED

    def test_cutters_cover_all_zeros(self, paper_ds):
        from repro.cubeminer.cutter import total_zero_cells

        cutters = build_cutters(paper_ds)
        assert total_zero_cells(cutters) == 3 * 4 * 5 - paper_ds.count_ones()


class TestFCCs:
    """All algorithms produce exactly the 5 FCCs of Table 2 / Figure 1."""

    def test_reference(self, paper_ds, paper_thresholds, expected_fccs):
        result = reference_mine(paper_ds, paper_thresholds)
        assert result.cube_set() == expected_fccs

    @pytest.mark.parametrize("order", list(HeightOrder))
    def test_cubeminer_every_order(
        self, paper_ds, paper_thresholds, expected_fccs, order
    ):
        result = mine(
            paper_ds, paper_thresholds, options=CubeMinerOptions(order=order)
        )
        assert result.cube_set() == expected_fccs

    @pytest.mark.parametrize("base_axis", ["height", "row", "column", "auto"])
    @pytest.mark.parametrize("fcp_miner", sorted(FCP_MINERS))
    def test_rsm_every_configuration(
        self, paper_ds, paper_thresholds, expected_fccs, base_axis, fcp_miner
    ):
        result = mine(
            paper_ds,
            paper_thresholds,
            algorithm="rsm",
            options=RSMOptions(base_axis=base_axis, fcp_miner=fcp_miner),
        )
        assert result.cube_set() == expected_fccs

    def test_tighter_thresholds_shrink_answer(self, paper_ds):
        from repro.core.constraints import Thresholds

        result = mine(paper_ds, Thresholds(3, 2, 2))
        assert result.cube_set() == {
            Cube.from_labels(paper_ds, "h1 h2 h3", "r1 r3", "c1 c2 c3"),
            Cube.from_labels(paper_ds, "h1 h2 h3", "r1 r2 r3", "c2 c3"),
        }

    def test_counterexample_not_reported(self, paper_ds, paper_thresholds):
        """A' = (h1h3, r2r3, c1c2c3) from Definition 3.3 must not appear."""
        result = mine(paper_ds, paper_thresholds)
        bad = Cube.from_labels(paper_ds, "h1 h3", "r2 r3", "c1 c2 c3")
        assert bad not in result


class TestTable2RSMWalkthrough:
    """Phase-by-phase content of Table 2 (RSM with minH=minR=minC=2)."""

    @pytest.fixture
    def traces(self, paper_ds, paper_thresholds):
        return {
            trace.heights: trace
            for trace in trace_rsm(paper_ds, paper_thresholds)
        }

    def test_four_representative_slices(self, traces):
        assert set(traces) == {
            mask_of([1, 2]),   # {h2, h3}
            mask_of([0, 2]),   # {h1, h3}
            mask_of([0, 1]),   # {h1, h2}
            mask_of([0, 1, 2]),  # {h1, h2, h3}
        }

    def test_h2h3_slice_matrix(self, traces):
        """Row 1 of Table 2: the RS of {h2,h3} is 11100/01100/11110/11001."""
        rs = traces[mask_of([1, 2])].slice_matrix
        rows = [
            "".join("1" if rs.cell(i, j) else "0" for j in range(5))
            for i in range(4)
        ]
        assert rows == ["11100", "01100", "11110", "11001"]

    def test_h1h3_slice_matrix(self, traces):
        rs = traces[mask_of([0, 2])].slice_matrix
        rows = [
            "".join("1" if rs.cell(i, j) else "0" for j in range(5))
            for i in range(4)
        ]
        assert rows == ["11100", "11100", "11110", "00001"]

    def test_h2h3_2d_fcps(self, traces):
        """Row 1 of Table 2 lists exactly 3 FCPs on the {h2,h3} RS."""
        patterns = {str(p) for p in traces[mask_of([1, 2])].patterns}
        assert patterns == {
            "r1r3 : c1c2c3, 2 : 3",
            "r1r3r4 : c1c2, 3 : 2",
            "r1r2r3 : c2c3, 3 : 2",
        }

    def test_h1h2h3_2d_fcps(self, traces):
        patterns = {str(p) for p in traces[mask_of([0, 1, 2])].patterns}
        assert patterns == {
            "r1r3 : c1c2c3, 2 : 3",
            "r1r2r3 : c2c3, 3 : 2",
        }

    def test_h2h3_postpruning(self, traces, paper_ds):
        """'r1r3:c1c2c3' must be pruned from {h2,h3} (also in h1)."""
        trace = traces[mask_of([1, 2])]
        kept = {c.format(paper_ds) for c in trace.kept}
        pruned = {c.format(paper_ds) for c in trace.pruned}
        assert kept == {"h2h3 : r1r3r4 : c1c2, 2:3:2"}
        assert "h2h3 : r1r3 : c1c2c3, 2:2:3" in pruned
        assert "h2h3 : r1r2r3 : c2c3, 2:3:2" in pruned

    def test_kept_fccs_across_slices(self, traces, paper_ds, expected_fccs):
        kept = {cube for trace in traces.values() for cube in trace.kept}
        assert kept == expected_fccs

    def test_each_fcc_from_exactly_one_slice(self, traces):
        seen: list = []
        for trace in traces.values():
            seen.extend(trace.kept)
        assert len(seen) == len(set(seen))
