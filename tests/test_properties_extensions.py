"""Property-based tests (hypothesis) for the extension layers.

Same philosophy as tests/test_properties.py: arbitrary small tensors,
strong invariants — verification must bless every miner output,
serialization must be lossless, incremental maintenance must equal
re-mining, and the N-dimensional miner must agree with the 3D one.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import derive_rules, greedy_cover
from repro.api import mine
from repro.core import verify_result
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.cubeminer import cubeminer_mine
from repro.io import result_from_json, result_to_json
from repro.ndim import mine_nd
from repro.rsm import append_height_slice

# ----------------------------------------------------------------------
# Strategies (kept in sync with tests/test_properties.py)
# ----------------------------------------------------------------------


@st.composite
def tensors(draw, max_dim: int = 5):
    l = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    m = draw(st.integers(1, max_dim))
    cells = draw(st.lists(st.booleans(), min_size=l * n * m, max_size=l * n * m))
    return Dataset3D(np.array(cells, dtype=bool).reshape(l, n, m))


@st.composite
def tensor_with_thresholds(draw):
    ds = draw(tensors())
    th = Thresholds(
        draw(st.integers(1, 3)), draw(st.integers(1, 3)), draw(st.integers(1, 3))
    )
    return ds, th


# ----------------------------------------------------------------------
# Verification closes the loop on every miner
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(tensor_with_thresholds())
def test_verify_blesses_cubeminer_output(case):
    ds, th = case
    result = cubeminer_mine(ds, th)
    report = verify_result(ds, result, th, check_completeness=True)
    assert report.ok, [str(v) for v in report.violations]


@settings(max_examples=30, deadline=None)
@given(tensor_with_thresholds())
def test_verify_catches_injected_corruption(case):
    ds, th = case
    result = cubeminer_mine(ds, th)
    if len(result) == 0:
        return
    # Corrupt the dataset under the first cube: verification must fail.
    cube = result.cubes[0]
    data = ds.data.copy()
    k = cube.height_indices()[0]
    i = cube.row_indices()[0]
    j = cube.column_indices()[0]
    data[k, i, j] = False
    assert not verify_result(Dataset3D(data), result, th).ok


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(tensor_with_thresholds())
def test_json_round_trip_property(case):
    ds, th = case
    result = cubeminer_mine(ds, th)
    rebuilt = result_from_json(result_to_json(result, ds))
    assert rebuilt.same_cubes(result)
    assert rebuilt.thresholds == result.thresholds


# ----------------------------------------------------------------------
# Incremental maintenance == re-mining
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(tensor_with_thresholds(), st.data())
def test_incremental_append_equals_remine(case, data):
    ds, th = case
    old_result = mine(ds, th)
    cells = data.draw(
        st.lists(
            st.booleans(),
            min_size=ds.n_rows * ds.n_columns,
            max_size=ds.n_rows * ds.n_columns,
        )
    )
    new_slice = np.array(cells, dtype=bool).reshape(ds.n_rows, ds.n_columns)
    extended, updated = append_height_slice(ds, old_result, new_slice, th)
    assert updated.same_cubes(mine(extended, th))


# ----------------------------------------------------------------------
# N-dimensional miner agrees with the 3D one at rank 3
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(tensor_with_thresholds())
def test_mine_nd_rank3_equals_cubeminer(case):
    ds, th = case
    nd = mine_nd(ds.data, th.as_tuple())
    primary = cubeminer_mine(ds, th)
    expected = {
        (c.height_indices(), c.row_indices(), c.column_indices())
        for c in primary
    }
    assert {p.indices for p in nd} == expected


# ----------------------------------------------------------------------
# Analysis invariants
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(tensor_with_thresholds())
def test_rules_metrics_in_range(case):
    ds, th = case
    result = cubeminer_mine(ds, th)
    for rule in derive_rules(ds, result, min_confidence=0.01, max_antecedent=2):
        assert 0.0 < rule.support <= 1.0
        assert 0.0 < rule.confidence <= 1.0
        assert rule.antecedent and rule.consequent
        assert rule.antecedent & rule.consequent == 0


@settings(max_examples=30, deadline=None)
@given(tensors())
def test_greedy_cover_invariants(ds):
    result = cubeminer_mine(ds, Thresholds(1, 1, 1))
    steps = greedy_cover(ds, result)
    fractions = [step.cumulative_fraction for step in steps]
    assert all(0.0 < f <= 1.0 + 1e-9 for f in fractions)
    assert fractions == sorted(fractions)
    if ds.count_ones() and result:
        # At (1,1,1) the FCCs cover every one-cell, so greedy finishes
        # the job (it only stops when no cube adds anything).
        assert fractions[-1] == 1.0
