"""Tests for greedy-cover pattern summarization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.coverage import greedy_cover
from repro.api import mine
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.core.result import MiningResult
from repro.datasets import paper_example, planted_tensor


@pytest.fixture
def mined_paper(paper_ds, paper_thresholds):
    return mine(paper_ds, paper_thresholds)


class TestGreedyCover:
    def test_first_pick_is_biggest_gain(self, paper_ds, mined_paper):
        steps = greedy_cover(paper_ds, mined_paper)
        gains = [step.new_cells for step in steps]
        assert gains[0] == max(gains)

    def test_marginal_gains_nonincreasing(self, paper_ds, mined_paper):
        steps = greedy_cover(paper_ds, mined_paper)
        gains = [step.new_cells for step in steps]
        assert all(a >= b for a, b in zip(gains, gains[1:]))

    def test_cumulative_bookkeeping(self, paper_ds, mined_paper):
        steps = greedy_cover(paper_ds, mined_paper)
        running = 0
        for step in steps:
            running += step.new_cells
            assert step.cumulative_cells == running
            assert step.cumulative_fraction == pytest.approx(
                running / paper_ds.count_ones()
            )

    def test_max_cubes_budget(self, paper_ds, mined_paper):
        steps = greedy_cover(paper_ds, mined_paper, max_cubes=2)
        assert len(steps) <= 2

    def test_target_fraction_stops_early(self, paper_ds, mined_paper):
        steps = greedy_cover(paper_ds, mined_paper, target_fraction=0.3)
        assert steps[-1].cumulative_fraction >= 0.3
        if len(steps) > 1:
            assert steps[-2].cumulative_fraction < 0.3

    def test_full_cover_on_all_ones(self):
        ds = Dataset3D(np.ones((2, 2, 2), dtype=bool))
        result = mine(ds, Thresholds(1, 1, 1))
        steps = greedy_cover(ds, result)
        assert len(steps) == 1
        assert steps[0].cumulative_fraction == 1.0

    def test_planted_blocks_found_early(self):
        planted = planted_tensor(
            (5, 8, 25), n_blocks=3, block_shape=(2, 3, 5),
            background_density=0.03, seed=6,
        )
        result = mine(planted.dataset, Thresholds(2, 2, 2))
        steps = greedy_cover(planted.dataset, result, max_cubes=3)
        covered_blocks = sum(
            1
            for block in planted.planted
            if any(step.cube.contains(block) for step in steps)
        )
        assert covered_blocks >= 2

    def test_empty_result(self, paper_ds):
        assert greedy_cover(paper_ds, MiningResult(cubes=[])) == []

    def test_all_zero_dataset(self):
        ds = Dataset3D(np.zeros((2, 2, 2), dtype=bool))
        assert greedy_cover(ds, MiningResult(cubes=[])) == []

    def test_invalid_parameters(self, paper_ds, mined_paper):
        with pytest.raises(ValueError, match="target_fraction"):
            greedy_cover(paper_ds, mined_paper, target_fraction=0.0)
        with pytest.raises(ValueError, match="max_cubes"):
            greedy_cover(paper_ds, mined_paper, max_cubes=0)

    def test_stops_when_no_gain(self, paper_ds, mined_paper):
        # With target 1.0, the loop must stop once remaining cubes add
        # nothing, even if not everything is coverable.
        steps = greedy_cover(paper_ds, mined_paper, target_fraction=1.0)
        assert steps[-1].new_cells > 0
        assert len(steps) <= len(mined_paper)
