"""Tests for dataset generators (synthetic + microarray substitutes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.closure import is_all_ones
from repro.core.constraints import Thresholds
from repro.cubeminer import cubeminer_mine
from repro.datasets import (
    binarize_by_row_mean,
    cdc15_like,
    elutriation_like,
    paper_example,
    planted_tensor,
    random_tensor,
    synthetic_expression,
    tiny_example,
)


class TestExamples:
    def test_paper_example_shape(self):
        assert paper_example().shape == (3, 4, 5)

    def test_tiny_example_all_ones(self):
        assert tiny_example().density == 1.0


class TestRandomTensor:
    def test_shape_and_labels(self):
        ds = random_tensor((3, 4, 5), 0.5, seed=0)
        assert ds.shape == (3, 4, 5)
        assert ds.height_labels == ("h1", "h2", "h3")

    def test_density_statistically_close(self):
        ds = random_tensor((10, 10, 100), 0.3, seed=1)
        assert abs(ds.density - 0.3) < 0.03

    def test_extreme_densities(self):
        assert random_tensor((2, 2, 2), 0.0, seed=0).density == 0.0
        assert random_tensor((2, 2, 2), 1.0, seed=0).density == 1.0

    def test_deterministic_with_seed(self):
        assert random_tensor((3, 3, 3), 0.5, seed=7) == random_tensor(
            (3, 3, 3), 0.5, seed=7
        )

    def test_different_seeds_differ(self):
        assert random_tensor((5, 5, 5), 0.5, seed=1) != random_tensor(
            (5, 5, 5), 0.5, seed=2
        )

    def test_invalid_density(self):
        with pytest.raises(ValueError, match="density"):
            random_tensor((2, 2, 2), 1.5)

    def test_invalid_shape(self):
        with pytest.raises(ValueError, match="shape"):
            random_tensor((2, -1, 2), 0.5)


class TestPlantedTensor:
    def test_blocks_are_all_ones(self):
        planted = planted_tensor((5, 8, 20), n_blocks=4, seed=3)
        for cube in planted.planted:
            assert is_all_ones(planted.dataset, cube)

    def test_planted_blocks_recovered_by_mining(self):
        planted = planted_tensor(
            (5, 8, 20), n_blocks=2, block_shape=(2, 3, 4),
            background_density=0.05, seed=4,
        )
        result = cubeminer_mine(planted.dataset, Thresholds(2, 2, 2))
        for block in planted.planted:
            assert any(cube.contains(block) for cube in result), block

    def test_block_too_large_raises(self):
        with pytest.raises(ValueError, match="exceeds"):
            planted_tensor((2, 2, 2), block_shape=(3, 1, 1))

    def test_block_count(self):
        planted = planted_tensor((4, 6, 10), n_blocks=5, seed=0)
        assert len(planted.planted) == 5


class TestSyntheticExpression:
    def test_shape(self):
        values = synthetic_expression(6, 4, 50, seed=0)
        assert values.shape == (6, 4, 50)

    def test_positive_values(self):
        values = synthetic_expression(4, 3, 30, seed=1)
        assert (values > 0).all()

    def test_modules_raise_expression(self):
        flat = synthetic_expression(5, 4, 100, n_modules=0, seed=2)
        modular = synthetic_expression(5, 4, 100, n_modules=10,
                                       module_strength=5.0, seed=2)
        assert modular.mean() > flat.mean()

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            synthetic_expression(0, 3, 10)


class TestBinarization:
    def test_paper_formula_exact(self):
        """Cell is 1 iff it exceeds the mean of its (k, i) gene row."""
        values = np.array([[[1.0, 2.0, 3.0], [5.0, 5.0, 5.0]]])
        ds = binarize_by_row_mean(values)
        # Row (0,0): mean 2.0 -> only the 3.0 cell is 1.
        assert not ds.cell(0, 0, 0)
        assert not ds.cell(0, 0, 1)
        assert ds.cell(0, 0, 2)
        # Row (0,1): constant row -> strictly-greater test gives all 0.
        assert not ds.cell(0, 1, 0)

    def test_rejects_rank_2(self):
        with pytest.raises(ValueError, match="rank-3"):
            binarize_by_row_mean(np.zeros((2, 2)))

    def test_output_density_moderate(self):
        values = synthetic_expression(8, 5, 200, seed=3)
        ds = binarize_by_row_mean(values)
        assert 0.05 < ds.density < 0.95


class TestMicroarraySubstitutes:
    def test_elutriation_shape_matches_paper(self):
        ds = elutriation_like(120)
        assert ds.shape == (14, 9, 120)
        assert ds.height_labels[0] == "t0"
        assert ds.height_labels[-1] == "t390"

    def test_cdc15_shape_matches_paper(self):
        ds = cdc15_like(100)
        assert ds.shape == (19, 9, 100)
        assert ds.height_labels[0] == "t70"
        assert ds.height_labels[-1] == "t250"

    def test_labels_follow_domains(self):
        ds = elutriation_like(50)
        assert ds.row_labels == tuple(f"s{i}" for i in range(1, 10))
        assert ds.column_labels[0] == "g1"

    def test_deterministic(self):
        assert elutriation_like(60, seed=5) == elutriation_like(60, seed=5)

    def test_minable(self):
        ds = elutriation_like(100, seed=0)
        result = cubeminer_mine(ds, Thresholds(3, 3, 15))
        assert all(Thresholds(3, 3, 15).satisfied_by(c) for c in result)
