"""Differential verification of the hot-path performance primitives.

Three layers ride the perf overhaul and each must be semantically
invisible:

* :class:`repro.cubeminer.cutter.CutterIndex` must agree with a naive
  linear scan and with every kernel's ``first_applicable_cutter`` on
  arbitrary cutter lists, node regions and start offsets;
* the batched kernel primitives (``and_many`` / ``popcount_many`` /
  ``intersect_rows`` / ``grid_slice_rows``) must agree with a Python
  ``int`` model on every registered kernel, including empty selections
  and multi-word universes;
* the incremental prefix-folded slice enumeration must reproduce the
  one-shot :func:`iter_representative_slices` stream exactly —
  same subsets in the same order with equal matrices — and
  :meth:`BinaryMatrix.from_packed` must behave like a from-masks
  matrix everywhere (access, equality, hashing, pickling).
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitset import full_mask
from repro.core.kernels import available_kernels, get_kernel
from repro.cubeminer.cutter import Cutter, CutterIndex, build_cutters
from repro.datasets import paper_example, random_tensor
from repro.fcp.matrix import BinaryMatrix
from repro.rsm.slices import (
    iter_representative_slices,
    iter_size_slices,
    representative_slice,
)

KERNELS = list(available_kernels())


def _naive_first_applicable(cutters, heights, rows, columns, start):
    for index in range(start, len(cutters)):
        cutter = cutters[index]
        if (
            heights >> cutter.height & 1
            and rows >> cutter.row & 1
            and columns & cutter.columns
        ):
            return index
    return len(cutters)


# ----------------------------------------------------------------------
# CutterIndex vs naive scan vs kernel scans
# ----------------------------------------------------------------------
@st.composite
def cutter_scenarios(draw):
    l = draw(st.integers(min_value=1, max_value=5))
    n = draw(st.integers(min_value=1, max_value=5))
    m = draw(st.sampled_from([4, 70]))
    count = draw(st.integers(min_value=0, max_value=12))
    # Deliberately NOT grouped by height: the index must handle
    # arbitrary order (a height split into several runs).
    cutters = [
        Cutter(
            height=draw(st.integers(0, l - 1)),
            row=draw(st.integers(0, n - 1)),
            columns=draw(st.integers(1, full_mask(m))),
        )
        for _ in range(count)
    ]
    heights = draw(st.integers(0, full_mask(l)))
    rows = draw(st.integers(0, full_mask(n)))
    columns = draw(st.integers(0, full_mask(m)))
    start = draw(st.integers(0, count + 1))
    return (l, n, m), cutters, heights, rows, columns, start


@settings(max_examples=150, deadline=None)
@given(cutter_scenarios())
def test_cutter_index_matches_naive_scan(case):
    shape, cutters, heights, rows, columns, start = case
    index = CutterIndex(cutters)
    assert index.first_applicable(heights, rows, columns, start) == (
        _naive_first_applicable(cutters, heights, rows, columns, start)
    )


@pytest.mark.parametrize("kernel", KERNELS)
@settings(max_examples=40, deadline=None)
@given(cutter_scenarios())
def test_cutter_index_matches_kernel_scan(kernel, case):
    shape, cutters, heights, rows, columns, start = case
    backend = get_kernel(kernel)
    handle = backend.pack_cutters(
        [c.height for c in cutters],
        [c.row for c in cutters],
        [c.columns for c in cutters],
        shape,
    )
    start = min(start, len(cutters))
    expected = backend.first_applicable_cutter(handle, heights, rows, columns, start)
    assert CutterIndex(cutters).first_applicable(heights, rows, columns, start) == expected


def test_cutter_index_on_real_cutter_lists():
    dataset = paper_example()
    cutters = build_cutters(dataset)
    index = CutterIndex(cutters)
    l, n, m = dataset.shape
    for heights in range(1 << l):
        expected = _naive_first_applicable(
            cutters, heights, full_mask(n), full_mask(m), 0
        )
        assert index.first_applicable(heights, full_mask(n), full_mask(m), 0) == expected


# ----------------------------------------------------------------------
# Batched kernel primitives vs the python-int model
# ----------------------------------------------------------------------
@st.composite
def mask_pairs(draw):
    n_bits = draw(st.sampled_from([1, 8, 64, 70, 130]))
    size = draw(st.integers(min_value=0, max_value=6))
    universe = full_mask(n_bits)
    a = [draw(st.integers(0, universe)) for _ in range(size)]
    b = [draw(st.integers(0, universe)) for _ in range(size)]
    return n_bits, a, b


@pytest.mark.parametrize("kernel", KERNELS)
@settings(max_examples=60, deadline=None)
@given(mask_pairs())
def test_and_many_matches_elementwise_and(kernel, case):
    n_bits, a, b = case
    backend = get_kernel(kernel)
    out = backend.and_many(
        backend.pack_masks(a, n_bits), backend.pack_masks(b, n_bits), n_bits
    )
    assert backend.unpack_masks(out) == [x & y for x, y in zip(a, b)]


@pytest.mark.parametrize("kernel", KERNELS)
def test_and_many_rejects_length_mismatch(kernel):
    backend = get_kernel(kernel)
    with pytest.raises(ValueError):
        backend.and_many(
            backend.pack_masks([1, 2], 8), backend.pack_masks([1], 8), 8
        )


@pytest.mark.parametrize("kernel", KERNELS)
@settings(max_examples=60, deadline=None)
@given(mask_pairs())
def test_popcount_many_matches_bit_count(kernel, case):
    n_bits, a, _ = case
    backend = get_kernel(kernel)
    assert backend.popcount_many(a, n_bits) == [mask.bit_count() for mask in a]


@st.composite
def grid_cases(draw):
    n_bits = draw(st.sampled_from([1, 8, 70]))
    l = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=1, max_value=4))
    universe = full_mask(n_bits)
    grid = [[draw(st.integers(0, universe)) for _ in range(n)] for _ in range(l)]
    heights = draw(st.integers(0, full_mask(l)))
    return n_bits, grid, heights


@pytest.mark.parametrize("kernel", KERNELS)
@settings(max_examples=60, deadline=None)
@given(grid_cases())
def test_intersect_rows_matches_grid_fold_rows(kernel, case):
    n_bits, grid, heights = case
    backend = get_kernel(kernel)
    handle = backend.pack_grid(grid, n_bits)
    expected = backend.grid_fold_rows(handle, heights, n_bits)
    assert backend.unpack_masks(backend.intersect_rows(handle, heights, n_bits)) == expected


@pytest.mark.parametrize("kernel", KERNELS)
@settings(max_examples=40, deadline=None)
@given(grid_cases())
def test_grid_slice_rows_matches_single_height(kernel, case):
    n_bits, grid, _ = case
    backend = get_kernel(kernel)
    handle = backend.pack_grid(grid, n_bits)
    for height, per_height in enumerate(grid):
        sliced = backend.grid_slice_rows(handle, height, n_bits)
        assert backend.unpack_masks(sliced) == list(per_height)


# ----------------------------------------------------------------------
# from_packed matrices and the incremental slice enumeration
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_from_packed_behaves_like_from_row_masks(kernel):
    backend = get_kernel(kernel)
    masks = [0b1011, 0b0110, 0b1111, 0b0000]
    plain = BinaryMatrix.from_row_masks(masks, 4, kernel=backend)
    packed = BinaryMatrix.from_packed(
        backend.pack_masks(masks, 4), 4, kernel=backend
    )
    assert packed.shape == plain.shape
    assert packed.row_masks() == masks
    assert packed.zeros_mask(1) == plain.zeros_mask(1)
    assert packed.cell(0, 1) == plain.cell(0, 1)
    assert packed.column_rows(2) == plain.column_rows(2)
    assert packed.support_columns(0b101) == plain.support_columns(0b101)
    assert packed.support_rows(0b0011) == plain.support_rows(0b0011)
    assert (packed.to_array() == plain.to_array()).all()
    assert packed == plain
    assert hash(packed) == hash(plain)
    rebuilt = pickle.loads(pickle.dumps(packed))
    assert rebuilt == plain


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize(
    "shape,density,seed", [((5, 4, 12), 0.5, 5), ((6, 3, 70), 0.7, 9)]
)
@pytest.mark.parametrize("min_h", [1, 2, 4])
def test_incremental_enumeration_matches_oneshot(kernel, shape, density, seed, min_h):
    dataset = random_tensor(shape, density, seed=seed).with_kernel(kernel)
    incremental = []
    for size in range(min_h, dataset.n_heights + 1):
        incremental.extend(iter_size_slices(dataset, size))
    oneshot = list(iter_representative_slices(dataset, min_h))
    assert [heights for heights, _ in incremental] == [h for h, _ in oneshot]
    for (_, got), (_, want) in zip(incremental, oneshot):
        assert got == want


@pytest.mark.parametrize("kernel", KERNELS)
def test_representative_slice_matches_manual_fold(kernel):
    dataset = paper_example().with_kernel(kernel)
    for heights in range(1, 1 << dataset.n_heights):
        rs = representative_slice(dataset, heights)
        expected = []
        for i in range(dataset.n_rows):
            mask = full_mask(dataset.n_columns)
            for k in range(dataset.n_heights):
                if heights >> k & 1:
                    mask &= dataset.ones_masks()[k][i]
            expected.append(mask)
        assert rs.row_masks() == expected


def test_iter_size_slices_degenerate_sizes():
    dataset = random_tensor((3, 4, 8), 0.5, seed=1)
    assert list(iter_size_slices(dataset, 0)) == []
    assert list(iter_size_slices(dataset, 4)) == []
    singles = list(iter_size_slices(dataset, 3))
    assert len(singles) == 1
    assert singles[0][0] == full_mask(3)
