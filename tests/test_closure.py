"""Unit tests for the closure operators (Definition 3.1/3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitset import full_mask, mask_of
from repro.core.closure import (
    close,
    column_support,
    height_support,
    is_all_ones,
    is_closed_cube,
    row_support,
)
from repro.core.cube import Cube
from repro.core.dataset import Dataset3D


class TestPaperExamples:
    """The three worked S-contained examples below Table 1."""

    def test_columns_containing_h1_r4(self, paper_ds):
        # C(h1 x r4) = {c3, c5}
        assert column_support(paper_ds, mask_of([0]), mask_of([3])) == mask_of([2, 4])

    def test_rows_containing_h2_c5(self, paper_ds):
        # R(h2 x c5) = {r1, r4}
        assert row_support(paper_ds, mask_of([1]), mask_of([4])) == mask_of([0, 3])

    def test_heights_containing_r2_c1(self, paper_ds):
        # H(r2 x c1) = {h1, h3}
        assert height_support(paper_ds, mask_of([1]), mask_of([0])) == mask_of([0, 2])

    def test_definition_31_example(self, paper_ds):
        # H({r1,r2} x {c1,c2,c3}) = {h1, h3}
        heights = height_support(paper_ds, mask_of([0, 1]), mask_of([0, 1, 2]))
        assert heights == mask_of([0, 2])


class TestSupportOperators:
    def test_column_support_empty_sets_give_universe(self, paper_ds):
        assert column_support(paper_ds, 0, 0) == full_mask(5)

    def test_column_support_shrinks_with_more_rows(self, paper_ds):
        one_row = column_support(paper_ds, mask_of([0]), mask_of([0]))
        two_rows = column_support(paper_ds, mask_of([0]), mask_of([0, 3]))
        assert two_rows & ~one_row == 0

    def test_height_support_empty_rows_gives_all_heights(self, paper_ds):
        assert height_support(paper_ds, 0, full_mask(5)) == full_mask(3)

    def test_row_support_with_empty_columns_gives_all_rows(self, paper_ds):
        assert row_support(paper_ds, full_mask(3), 0) == full_mask(4)

    def test_all_zero_dataset(self):
        ds = Dataset3D(np.zeros((2, 2, 2), dtype=bool))
        assert column_support(ds, 0b11, 0b11) == 0
        assert height_support(ds, 0b11, 0b01) == 0
        assert row_support(ds, 0b11, 0b01) == 0

    def test_all_one_dataset(self):
        ds = Dataset3D(np.ones((2, 3, 4), dtype=bool))
        assert column_support(ds, 0b11, 0b111) == full_mask(4)
        assert height_support(ds, 0b111, full_mask(4)) == 0b11
        assert row_support(ds, 0b11, full_mask(4)) == 0b111


class TestIsAllOnes:
    def test_complete_cube(self, paper_ds):
        cube = Cube.from_labels(paper_ds, "h1 h3", "r1 r2 r3", "c1 c2 c3")
        assert is_all_ones(paper_ds, cube)

    def test_incomplete_cube(self, paper_ds):
        cube = Cube.from_labels(paper_ds, "h1", "r4", "c1")  # O[h1,r4,c1] = 0
        assert not is_all_ones(paper_ds, cube)

    def test_empty_cube_is_vacuously_all_ones(self, paper_ds):
        assert is_all_ones(paper_ds, Cube(0, 0, 0))


class TestIsClosedCube:
    def test_paper_fcc_is_closed(self, paper_ds):
        cube = Cube.from_labels(paper_ds, "h1 h3", "r1 r2 r3", "c1 c2 c3")
        assert is_closed_cube(paper_ds, cube)

    def test_paper_counterexample_not_closed(self, paper_ds):
        # A' = (h1h3, r2r3, c1c2c3) is not closed: r1 extends it.
        cube = Cube.from_labels(paper_ds, "h1 h3", "r2 r3", "c1 c2 c3")
        assert not is_closed_cube(paper_ds, cube)

    def test_incomplete_cube_not_closed(self, paper_ds):
        cube = Cube.from_labels(paper_ds, "h1", "r4", "c1 c3")
        assert not is_closed_cube(paper_ds, cube)

    def test_empty_cube_not_closed(self, paper_ds):
        assert not is_closed_cube(paper_ds, Cube(0, 0, 0))

    def test_full_ones_cube_closed(self):
        ds = Dataset3D(np.ones((2, 2, 2), dtype=bool))
        assert is_closed_cube(ds, Cube(0b11, 0b11, 0b11))
        # Any strict sub-cube of an all-ones tensor is unclosed.
        assert not is_closed_cube(ds, Cube(0b01, 0b11, 0b11))


class TestClose:
    def test_close_expands_to_fcc(self, paper_ds):
        seed = Cube.from_labels(paper_ds, "h1 h3", "r2 r3", "c1 c2 c3")
        closed = close(paper_ds, seed)
        assert closed == Cube.from_labels(paper_ds, "h1 h3", "r1 r2 r3", "c1 c2 c3")

    def test_close_is_idempotent(self, paper_ds):
        seed = Cube.from_labels(paper_ds, "h2", "r4", "c5")
        once = close(paper_ds, seed)
        assert close(paper_ds, once) == once

    def test_close_is_extensive(self, paper_ds):
        seed = Cube.from_labels(paper_ds, "h2", "r1", "c2 c3")
        assert close(paper_ds, seed).contains(seed)

    def test_close_result_is_closed(self, paper_ds):
        for labels in [("h1", "r1", "c1"), ("h3", "r3", "c4"), ("h2", "r4", "c5")]:
            seed = Cube.from_labels(paper_ds, *labels)
            assert is_closed_cube(paper_ds, close(paper_ds, seed))

    def test_close_empty_raises(self, paper_ds):
        with pytest.raises(ValueError, match="empty"):
            close(paper_ds, Cube(0, 1, 1))

    def test_close_incomplete_raises(self, paper_ds):
        with pytest.raises(ValueError, match="zero cells"):
            close(paper_ds, Cube.from_labels(paper_ds, "h1", "r4", "c1"))
