"""Failure injection: malformed inputs and degenerate configurations.

Every public entry point must fail loudly on bad input (never silently
produce wrong answers) and behave sensibly on degenerate-but-valid
input (empty axes, extreme densities, maximal thresholds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import mine
from repro.core.constraints import Thresholds
from repro.core.cube import Cube
from repro.core.dataset import Dataset3D
from repro.cubeminer import cubeminer_mine
from repro.fcp import BinaryMatrix, dminer_mine
from repro.rsm import rsm_mine


class TestMalformedDatasets:
    def test_ragged_input(self):
        with pytest.raises((ValueError, Exception)):
            Dataset3D([[[1, 0], [1]], [[0, 1], [1, 0]]])

    def test_string_cells(self):
        with pytest.raises(ValueError):
            Dataset3D(np.array([[["a", "b"]]]))

    def test_nan_cells(self):
        with pytest.raises(ValueError):
            Dataset3D(np.full((1, 1, 2), np.nan))

    def test_value_two(self):
        with pytest.raises(ValueError, match="0/1"):
            Dataset3D([[[0, 2]]])

    def test_truncated_npz(self, tmp_path):
        bad = tmp_path / "broken.npz"
        bad.write_bytes(b"not an npz file at all")
        with pytest.raises(Exception):
            Dataset3D.load_npz(bad)


class TestDegenerateShapes:
    @pytest.mark.parametrize("shape", [(0, 2, 2), (2, 0, 2), (2, 2, 0)])
    def test_empty_axis_mines_nothing(self, shape):
        ds = Dataset3D(np.ones(shape, dtype=bool))
        assert len(cubeminer_mine(ds, Thresholds(1, 1, 1))) == 0
        assert len(rsm_mine(ds, Thresholds(1, 1, 1))) == 0

    def test_1x1x1_one(self):
        ds = Dataset3D([[[1]]])
        result = cubeminer_mine(ds, Thresholds(1, 1, 1))
        assert result.cubes == [Cube(1, 1, 1)]

    def test_long_thin_tensor(self):
        ds = Dataset3D(np.ones((1, 1, 500), dtype=bool))
        result = cubeminer_mine(ds, Thresholds(1, 1, 500))
        assert len(result) == 1
        assert result.cubes[0].c_support == 500

    def test_tall_thin_tensor(self):
        ds = Dataset3D(np.ones((50, 1, 1), dtype=bool))
        result = rsm_mine(ds, Thresholds(50, 1, 1))
        assert len(result) == 1


class TestDegenerateThresholds:
    def test_maximal_thresholds_all_ones(self):
        ds = Dataset3D(np.ones((3, 3, 3), dtype=bool))
        assert len(mine(ds, Thresholds(3, 3, 3))) == 1

    def test_maximal_thresholds_one_zero_cell(self):
        data = np.ones((3, 3, 3), dtype=bool)
        data[0, 0, 0] = False
        ds = Dataset3D(data)
        assert len(mine(ds, Thresholds(3, 3, 3))) == 0

    def test_thresholds_above_shape(self, paper_ds):
        for th in (Thresholds(4, 1, 1), Thresholds(1, 5, 1), Thresholds(1, 1, 6)):
            assert len(mine(paper_ds, th)) == 0
            assert len(rsm_mine(paper_ds, th)) == 0


class TestSparseDenseExtremes:
    def test_single_one_in_sea_of_zeros(self):
        data = np.zeros((4, 4, 4), dtype=bool)
        data[2, 1, 3] = True
        ds = Dataset3D(data)
        result = mine(ds, Thresholds(1, 1, 1))
        assert result.cubes == [Cube(1 << 2, 1 << 1, 1 << 3)]

    def test_single_zero_in_sea_of_ones(self):
        data = np.ones((3, 3, 3), dtype=bool)
        data[0, 0, 0] = False
        ds = Dataset3D(data)
        result = mine(ds, Thresholds(1, 1, 1))
        ref = mine(ds, Thresholds(1, 1, 1), algorithm="reference")
        assert result.same_cubes(ref)
        assert len(result) == 3  # drop the height, the row, or the column

    def test_checkerboard(self):
        idx = np.indices((4, 4, 4)).sum(axis=0)
        ds = Dataset3D(idx % 2 == 0)
        result = mine(ds, Thresholds(2, 2, 2))
        ref = mine(ds, Thresholds(2, 2, 2), algorithm="reference")
        assert result.same_cubes(ref)


class Test2DMalformed:
    def test_dminer_invalid_thresholds(self):
        matrix = BinaryMatrix.from_array([[1, 0], [0, 1]])
        with pytest.raises(ValueError):
            dminer_mine(matrix, -1, 1)

    def test_matrix_from_ragged(self):
        with pytest.raises((ValueError, Exception)):
            BinaryMatrix.from_array([[1, 0], [1]])

    def test_zero_column_matrix(self):
        matrix = BinaryMatrix.from_row_masks([0, 0], 0)
        assert dminer_mine(matrix, 1, 1) == []


class TestAPIValidation:
    def test_mine_rejects_unknown_kwarg_combination(self, paper_ds):
        # CubeMiner does not accept base_axis; the error must surface.
        with pytest.raises(TypeError):
            mine(paper_ds, Thresholds(1, 1, 1), base_axis="row")

    def test_reference_guard_propagates(self):
        ds = Dataset3D(np.ones((20, 20, 2), dtype=bool))
        with pytest.raises(ValueError, match="too large"):
            mine(ds, Thresholds(1, 1, 1), algorithm="reference")
