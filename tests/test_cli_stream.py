"""CLI surface of the streaming subsystem: ``update`` and ``serve`` flags."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import mine
from repro.cli import EXIT_DATA, build_parser, main
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.io import result_from_json


@pytest.fixture
def workspace(tmp_path):
    rng = np.random.default_rng(17)
    data = rng.random((3, 6, 8)) < 0.45
    data[:2, 1:4, 2:6] = True
    dataset = Dataset3D(data)
    ds_path = tmp_path / "base.npz"
    dataset.save_npz(ds_path)
    thresholds = Thresholds(2, 2, 2)
    assert main([
        "mine", "--input", str(ds_path), "--algorithm", "rsm",
        "--min-h", "2", "--min-r", "2", "--min-c", "2",
        "--out-json", str(tmp_path / "result.json"),
    ]) == 0
    updates = [
        {"op": "set-cell", "height": 0, "row": 0, "column": 0},
        {"op": "drop-slice", "axis": "row", "index": 5},
    ]
    (tmp_path / "updates.json").write_text(json.dumps({"deltas": updates}))
    return tmp_path, dataset, thresholds


class TestHelp:
    @pytest.mark.parametrize("command", ["update", "serve"])
    def test_help_exits_zero(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        assert "--updates" in capsys.readouterr().out or command == "serve"


class TestServeFlags:
    def test_mmap_flag_parses(self):
        parser = build_parser()
        base = ["serve", "--data-dir", "/tmp/x"]
        assert parser.parse_args([*base, "--mmap"]).mmap is True
        assert parser.parse_args([*base, "--in-memory"]).mmap is False
        assert parser.parse_args(base).mmap is False


class TestUpdateLocal:
    def test_local_update_matches_fresh_mine(self, workspace, capsys):
        tmp_path, dataset, thresholds = workspace
        out_npz = tmp_path / "new.npz"
        out_json = tmp_path / "maintained.json"
        assert main([
            "update",
            "--updates", str(tmp_path / "updates.json"),
            "--input", str(tmp_path / "base.npz"),
            "--result", str(tmp_path / "result.json"),
            "--out", str(out_npz),
            "--out-json", str(out_json),
        ]) == 0
        out = capsys.readouterr().out
        assert "2 delta(s) applied" in out

        edited = np.array(dataset.data, dtype=bool)
        edited[0, 0, 0] = True
        edited = np.delete(edited, 5, axis=1)
        new_dataset = Dataset3D.load_npz(out_npz)
        assert np.array_equal(
            np.asarray(new_dataset.data, dtype=bool), edited
        )
        maintained = result_from_json(out_json.read_text())
        fresh = mine(Dataset3D(edited), thresholds, algorithm="rsm")
        assert [
            (c.heights, c.rows, c.columns) for c in maintained.cubes
        ] == [(c.heights, c.rows, c.columns) for c in fresh.cubes]

    def test_missing_modes_is_usage_error(self, workspace, capsys):
        tmp_path, _, _ = workspace
        assert main(["update", "--updates", str(tmp_path / "updates.json")]) == 2
        assert "needs either" in capsys.readouterr().err

    def test_missing_updates_file(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["update", "--updates", str(tmp_path / "absent.json")])


class TestUpdateBadInput:
    @pytest.mark.parametrize(
        "content",
        [
            "{not json",
            json.dumps({"deltas": []}),
            json.dumps({"deltas": [{"op": "warp"}]}),
            json.dumps("just a string"),
        ],
    )
    def test_malformed_updates_exit_data(self, tmp_path, content, capsys):
        path = tmp_path / "bad.json"
        path.write_text(content)
        with pytest.raises(SystemExit) as excinfo:
            main(["update", "--updates", str(path), "--dataset", "0" * 64])
        assert excinfo.value.code == EXIT_DATA
        assert "error:" in capsys.readouterr().err

    def test_out_of_range_delta_exits_data(self, workspace, capsys):
        tmp_path, _, _ = workspace
        bad = tmp_path / "oob.json"
        bad.write_text(json.dumps({"deltas": [
            {"op": "set-cell", "height": 99, "row": 0, "column": 0},
        ]}))
        with pytest.raises(SystemExit) as excinfo:
            main([
                "update", "--updates", str(bad),
                "--input", str(tmp_path / "base.npz"),
                "--result", str(tmp_path / "result.json"),
            ])
        assert excinfo.value.code == EXIT_DATA

    def test_bare_list_payload_is_accepted(self, workspace, capsys):
        tmp_path, _, _ = workspace
        flat = tmp_path / "flat.json"
        flat.write_text(json.dumps([
            {"op": "clear-cell", "height": 0, "row": 1, "column": 2},
        ]))
        assert main([
            "update", "--updates", str(flat),
            "--input", str(tmp_path / "base.npz"),
            "--result", str(tmp_path / "result.json"),
        ]) == 0
        assert "1 delta(s) applied" in capsys.readouterr().out
