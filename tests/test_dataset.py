"""Unit tests for Dataset3D."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.dataset import Dataset3D


class TestConstruction:
    def test_from_nested_lists(self):
        ds = Dataset3D([[[1, 0], [0, 1]], [[1, 1], [0, 0]]])
        assert ds.shape == (2, 2, 2)

    def test_from_bool_array(self):
        ds = Dataset3D(np.ones((2, 3, 4), dtype=bool))
        assert ds.shape == (2, 3, 4)
        assert ds.density == 1.0

    def test_from_int_array(self):
        ds = Dataset3D(np.zeros((1, 1, 1), dtype=int))
        assert ds.density == 0.0

    def test_rejects_rank_2(self):
        with pytest.raises(ValueError, match="rank-3"):
            Dataset3D(np.zeros((2, 2)))

    def test_rejects_rank_4(self):
        with pytest.raises(ValueError, match="rank-3"):
            Dataset3D(np.zeros((2, 2, 2, 2)))

    def test_rejects_non_binary_values(self):
        with pytest.raises(ValueError, match="0/1"):
            Dataset3D(np.full((1, 1, 2), 3))

    def test_rejects_float_values(self):
        with pytest.raises(ValueError, match="0/1"):
            Dataset3D(np.full((1, 1, 2), 0.5))

    def test_data_is_read_only(self):
        ds = Dataset3D(np.zeros((1, 2, 3), dtype=bool))
        with pytest.raises(ValueError):
            ds.data[0, 0, 0] = True

    def test_from_cells(self):
        ds = Dataset3D.from_cells((2, 2, 2), [(0, 0, 0), (1, 1, 1)])
        assert ds.cell(0, 0, 0) and ds.cell(1, 1, 1)
        assert ds.count_ones() == 2

    def test_from_slices(self):
        ds = Dataset3D.from_slices([[[1]], [[0]]])
        assert ds.shape == (2, 1, 1)


class TestLabels:
    def test_default_labels_follow_paper_convention(self):
        ds = Dataset3D(np.zeros((2, 3, 4), dtype=bool))
        assert ds.height_labels == ("h1", "h2")
        assert ds.row_labels == ("r1", "r2", "r3")
        assert ds.column_labels == ("c1", "c2", "c3", "c4")

    def test_custom_labels(self):
        ds = Dataset3D(
            np.zeros((1, 1, 2), dtype=bool),
            height_labels=["t0"],
            row_labels=["sampleA"],
            column_labels=["geneX", "geneY"],
        )
        assert ds.labels_for_axis("column") == ("geneX", "geneY")
        assert ds.labels_for_axis(0) == ("t0",)

    def test_wrong_label_count_raises(self):
        with pytest.raises(ValueError, match="length"):
            Dataset3D(np.zeros((2, 1, 1), dtype=bool), height_labels=["only-one"])

    def test_duplicate_labels_raise(self):
        with pytest.raises(ValueError, match="unique"):
            Dataset3D(np.zeros((2, 1, 1), dtype=bool), height_labels=["x", "x"])

    def test_unknown_axis_raises(self):
        ds = Dataset3D(np.zeros((1, 1, 1), dtype=bool))
        with pytest.raises(ValueError, match="unknown axis"):
            ds.labels_for_axis("depth")
        with pytest.raises(ValueError, match="axis index"):
            ds.labels_for_axis(3)


class TestMasks:
    def test_ones_mask_matches_cells(self, paper_ds):
        for k in range(paper_ds.n_heights):
            for i in range(paper_ds.n_rows):
                mask = paper_ds.ones_mask(k, i)
                for j in range(paper_ds.n_columns):
                    assert bool(mask >> j & 1) == paper_ds.cell(k, i, j)

    def test_zeros_mask_is_complement(self, paper_ds):
        full = (1 << paper_ds.n_columns) - 1
        for k in range(paper_ds.n_heights):
            for i in range(paper_ds.n_rows):
                assert paper_ds.ones_mask(k, i) ^ paper_ds.zeros_mask(k, i) == full

    def test_slice_row_masks(self, paper_ds):
        masks = paper_ds.slice_row_masks(0)
        assert masks == [paper_ds.ones_mask(0, i) for i in range(paper_ds.n_rows)]

    def test_ones_masks_returns_copies(self, paper_ds):
        masks = paper_ds.ones_masks()
        masks[0][0] = 0
        assert paper_ds.ones_mask(0, 0) != 0

    def test_wide_matrix_masks(self):
        # Columns beyond 64 bits exercise the packbits int conversion.
        data = np.zeros((1, 1, 130), dtype=bool)
        data[0, 0, 0] = data[0, 0, 64] = data[0, 0, 129] = True
        ds = Dataset3D(data)
        assert ds.ones_mask(0, 0) == (1 << 0) | (1 << 64) | (1 << 129)


class TestStatistics:
    def test_density(self):
        ds = Dataset3D(np.array([[[1, 0], [0, 0]]]))
        assert ds.density == 0.25

    def test_zeros_in_height(self, paper_ds):
        # Table 1 / Table 3: h1's cutters cover 6 zeros, h2's 4, h3's 6.
        assert paper_ds.zeros_in_height(0) == 6
        assert paper_ds.zeros_in_height(1) == 4
        assert paper_ds.zeros_in_height(2) == 6

    def test_count_ones(self, paper_ds):
        assert paper_ds.count_ones() == 3 * 4 * 5 - 16


class TestTranspose:
    def test_transpose_by_names(self, paper_ds):
        swapped = paper_ds.transpose(("row", "height", "column"))
        assert swapped.shape == (4, 3, 5)
        assert swapped.cell(1, 0, 4) == paper_ds.cell(0, 1, 4)
        assert swapped.height_labels == paper_ds.row_labels

    def test_transpose_by_indices(self, paper_ds):
        moved = paper_ds.transpose((2, 0, 1))
        assert moved.shape == (5, 3, 4)
        assert moved.cell(4, 0, 1) == paper_ds.cell(0, 1, 4)

    def test_transpose_invalid_permutation(self, paper_ds):
        with pytest.raises(ValueError, match="permutation"):
            paper_ds.transpose((0, 0, 1))

    def test_canonical_transpose_orders_sizes(self):
        ds = Dataset3D(np.zeros((5, 2, 3), dtype=bool))
        canon = ds.canonical_transpose()
        assert canon.shape == (2, 3, 5)

    def test_canonical_transpose_identity_returns_self(self):
        ds = Dataset3D(np.zeros((1, 2, 3), dtype=bool))
        assert ds.canonical_transpose() is ds

    def test_double_transpose_round_trip(self, paper_ds):
        order = (2, 0, 1)
        inverse = (1, 2, 0)
        assert paper_ds.transpose(order).transpose(inverse) == paper_ds


class TestReorderHeights:
    def test_reorder(self, paper_ds):
        reordered = paper_ds.reorder_heights([2, 0, 1])
        assert reordered.height_labels == ("h3", "h1", "h2")
        assert reordered.cell(0, 3, 2) == paper_ds.cell(2, 3, 2)

    def test_reorder_invalid(self, paper_ds):
        with pytest.raises(ValueError, match="permutation"):
            paper_ds.reorder_heights([0, 0, 1])


class TestSerialization:
    def test_text_round_trip(self, paper_ds):
        assert Dataset3D.from_text(paper_ds.to_text()) == paper_ds

    def test_text_header(self, paper_ds):
        assert paper_ds.to_text().splitlines()[0] == "3 4 5"

    def test_from_text_bad_header(self):
        with pytest.raises(ValueError, match="header"):
            Dataset3D.from_text("1 2")

    def test_from_text_wrong_cell_count(self):
        with pytest.raises(ValueError, match="cells"):
            Dataset3D.from_text("1 1 3\n1 0")

    def test_npz_round_trip(self, paper_ds, tmp_path):
        path = tmp_path / "ds.npz"
        paper_ds.save_npz(path)
        assert Dataset3D.load_npz(path) == paper_ds

    def test_npz_preserves_labels(self, tmp_path):
        ds = Dataset3D(
            np.ones((1, 1, 1), dtype=bool),
            height_labels=["T"],
            row_labels=["S"],
            column_labels=["G"],
        )
        path = tmp_path / "labeled.npz"
        ds.save_npz(path)
        assert Dataset3D.load_npz(path).column_labels == ("G",)

    def test_pickle_round_trip(self, paper_ds):
        paper_ds.ones_mask(0, 0)  # populate caches first
        clone = pickle.loads(pickle.dumps(paper_ds))
        assert clone == paper_ds
        assert clone.ones_mask(2, 3) == paper_ds.ones_mask(2, 3)


class TestFromPackedGrid:
    """The zero-copy constructor behind shared-memory attach."""

    def _words(self, ds):
        from repro.core.kernels import words_from_tensor

        return words_from_tensor(ds.data)

    def test_round_trip(self, paper_ds):
        clone = Dataset3D.from_packed_grid(
            self._words(paper_ds), paper_ds.shape
        )
        assert clone == paper_ds

    def test_numpy_kernel_adopts_without_copy(self, paper_ds):
        words = self._words(paper_ds)
        clone = Dataset3D.from_packed_grid(
            words, paper_ds.shape, kernel="numpy"
        )
        assert np.shares_memory(np.asarray(clone.ones_grid()), words)
        assert np.array_equal(clone.data, paper_ds.data)

    def test_wrong_shape_rejected(self, paper_ds):
        from repro.core.kernels import PackedBufferError

        with pytest.raises(PackedBufferError):
            Dataset3D.from_packed_grid(self._words(paper_ds), (3, 4, 999))

    def test_stray_bits_rejected(self, paper_ds):
        from repro.core.kernels import PackedBufferError

        words = self._words(paper_ds).copy()
        words[0, 0] |= np.uint64(1) << np.uint64(63)
        with pytest.raises(PackedBufferError, match="stray"):
            Dataset3D.from_packed_grid(words, paper_ds.shape)

    def test_wrong_dtype_rejected(self, paper_ds):
        from repro.core.kernels import PackedBufferError

        with pytest.raises(PackedBufferError):
            Dataset3D.from_packed_grid(
                self._words(paper_ds).astype(np.int64), paper_ds.shape
            )

    def test_negative_dimension_rejected(self, paper_ds):
        with pytest.raises(ValueError):
            Dataset3D.from_packed_grid(self._words(paper_ds), (3, -4, 5))

    def test_mining_on_reconstructed_dataset(self, paper_ds):
        from repro.api import mine
        from repro.core.constraints import Thresholds

        clone = Dataset3D.from_packed_grid(
            self._words(paper_ds), paper_ds.shape, kernel="numpy"
        )
        expected = mine(paper_ds, Thresholds(2, 2, 2))
        got = mine(clone, Thresholds(2, 2, 2))
        assert got.same_cubes(expected)


class TestDunder:
    def test_eq_and_hash(self, paper_ds):
        other = Dataset3D(paper_ds.data.copy())
        assert other == paper_ds
        assert hash(other) == hash(paper_ds)

    def test_neq_different_data(self, paper_ds):
        data = paper_ds.data.copy()
        data[0, 0, 0] = not data[0, 0, 0]
        assert Dataset3D(data) != paper_ds

    def test_neq_different_labels(self, paper_ds):
        relabeled = Dataset3D(
            paper_ds.data.copy(), height_labels=["a", "b", "c"]
        )
        assert relabeled != paper_ds

    def test_eq_other_type(self, paper_ds):
        assert paper_ds != "not a dataset"

    def test_repr(self, paper_ds):
        assert "3x4x5" in repr(paper_ds)
