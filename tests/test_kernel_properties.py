"""Property-based verification of every kernel backend.

For each registered kernel, hypothesis checks that the batch operations
agree with an independent Python-``set`` model: pack/unpack round-trips,
AND/OR folds, popcounts, superset scans, grid closure queries,
representative-slice folding and the cutter scan.  Universes above 64
bits are drawn deliberately so packed-word backends exercise multi-word
masks, and empty/full selections pin the empty-intersection
conventions.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitset import full_mask, indices, mask_of
from repro.core.kernels import available_kernels, get_kernel

KERNELS = list(available_kernels())

# Universe widths straddling the 64-bit word boundary.
_WIDTHS = [0, 1, 3, 17, 63, 64, 65, 70, 128, 130]


def _masks(n_bits: int) -> st.SearchStrategy[int]:
    universe = full_mask(n_bits)
    return st.one_of(
        st.just(0), st.just(universe), st.integers(min_value=0, max_value=universe)
    )


@st.composite
def mask_arrays(draw):
    n_bits = draw(st.sampled_from(_WIDTHS))
    masks = draw(st.lists(_masks(n_bits), min_size=0, max_size=6))
    return n_bits, masks


@st.composite
def grids(draw):
    """(n_bits, l x n column-mask grid) with l, n >= 1."""
    n_bits = draw(st.sampled_from([1, 4, 33, 64, 70]))
    l = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=1, max_value=4))
    grid = [
        [draw(_masks(n_bits)) for _ in range(n)] for _ in range(l)
    ]
    return n_bits, grid


@st.composite
def cutter_scans(draw):
    l = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.sampled_from([3, 70]))
    count = draw(st.integers(min_value=0, max_value=8))
    heights = draw(st.lists(st.integers(0, l - 1), min_size=count, max_size=count))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=count, max_size=count))
    columns = draw(st.lists(_masks(m), min_size=count, max_size=count))
    node = (draw(_masks(l)), draw(_masks(n)), draw(_masks(m)))
    start = draw(st.integers(0, count))
    return (l, n, m), heights, rows, columns, node, start


def _sets(masks):
    return [set(indices(mask)) for mask in masks]


# ----------------------------------------------------------------------
# Mask arrays
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel_name", KERNELS)
class TestMaskArrays:
    @settings(max_examples=60, deadline=None)
    @given(data=mask_arrays())
    def test_pack_unpack_round_trip(self, kernel_name, data):
        n_bits, masks = data
        kernel = get_kernel(kernel_name)
        handle = kernel.pack_masks(masks, n_bits)
        assert kernel.unpack_masks(handle) == masks

    @settings(max_examples=60, deadline=None)
    @given(data=mask_arrays(), use_select=st.booleans(), select_bits=st.integers(0))
    def test_fold_and_matches_set_model(self, kernel_name, data, use_select, select_bits):
        n_bits, masks = data
        kernel = get_kernel(kernel_name)
        handle = kernel.pack_masks(masks, n_bits)
        select = select_bits & full_mask(len(masks)) if use_select else None
        chosen = (
            _sets(masks)
            if select is None
            else [set(indices(masks[i])) for i in indices(select)]
        )
        expected = set(range(n_bits))  # empty AND-fold = full universe
        for s in chosen:
            expected &= s
        assert kernel.fold_and(handle, n_bits, select) == mask_of(expected)

    @settings(max_examples=60, deadline=None)
    @given(data=mask_arrays(), use_select=st.booleans(), select_bits=st.integers(0))
    def test_fold_or_matches_set_model(self, kernel_name, data, use_select, select_bits):
        n_bits, masks = data
        kernel = get_kernel(kernel_name)
        handle = kernel.pack_masks(masks, n_bits)
        select = select_bits & full_mask(len(masks)) if use_select else None
        chosen = (
            _sets(masks)
            if select is None
            else [set(indices(masks[i])) for i in indices(select)]
        )
        expected: set[int] = set()  # empty OR-fold = empty set
        for s in chosen:
            expected |= s
        assert kernel.fold_or(handle, n_bits, select) == mask_of(expected)

    @settings(max_examples=60, deadline=None)
    @given(data=mask_arrays())
    def test_popcounts_match_set_sizes(self, kernel_name, data):
        n_bits, masks = data
        kernel = get_kernel(kernel_name)
        handle = kernel.pack_masks(masks, n_bits)
        assert kernel.popcounts(handle) == [len(s) for s in _sets(masks)]

    @settings(max_examples=60, deadline=None)
    @given(data=mask_arrays(), sub_bits=st.integers(0))
    def test_supersets_of_matches_set_model(self, kernel_name, data, sub_bits):
        n_bits, masks = data
        kernel = get_kernel(kernel_name)
        handle = kernel.pack_masks(masks, n_bits)
        sub = sub_bits & full_mask(n_bits)
        sub_set = set(indices(sub))
        expected = mask_of(
            i for i, s in enumerate(_sets(masks)) if sub_set <= s
        )
        assert kernel.supersets_of(handle, sub) == expected

    def test_empty_handle_conventions(self, kernel_name):
        kernel = get_kernel(kernel_name)
        handle = kernel.pack_masks([], 70)
        assert kernel.unpack_masks(handle) == []
        assert kernel.fold_and(handle, 70) == full_mask(70)
        assert kernel.fold_or(handle, 70) == 0
        assert kernel.popcounts(handle) == []
        assert kernel.supersets_of(handle, 0b1) == 0

    def test_empty_selection_conventions(self, kernel_name):
        kernel = get_kernel(kernel_name)
        handle = kernel.pack_masks([0b101, 0], 70)
        assert kernel.fold_and(handle, 70, select=0) == full_mask(70)
        assert kernel.fold_or(handle, 70, select=0) == 0

    def test_zero_bit_universe(self, kernel_name):
        kernel = get_kernel(kernel_name)
        handle = kernel.pack_masks([0, 0, 0], 0)
        assert kernel.fold_and(handle, 0) == 0
        assert kernel.fold_or(handle, 0) == 0
        assert kernel.supersets_of(handle, 0) == 0b111


# ----------------------------------------------------------------------
# Grids
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel_name", KERNELS)
class TestGrids:
    @settings(max_examples=60, deadline=None)
    @given(data=grids(), h_bits=st.integers(0), r_bits=st.integers(0))
    def test_grid_fold_and_matches_set_model(self, kernel_name, data, h_bits, r_bits):
        n_bits, grid = data
        kernel = get_kernel(kernel_name)
        handle = kernel.pack_grid(grid, n_bits)
        heights = h_bits & full_mask(len(grid))
        rows = r_bits & full_mask(len(grid[0]))
        expected = set(range(n_bits))
        for k in indices(heights):
            for i in indices(rows):
                expected &= set(indices(grid[k][i]))
        assert kernel.grid_fold_and(handle, heights, rows, n_bits) == mask_of(expected)

    @settings(max_examples=60, deadline=None)
    @given(data=grids(), h_bits=st.integers(0))
    def test_grid_fold_rows_matches_set_model(self, kernel_name, data, h_bits):
        n_bits, grid = data
        kernel = get_kernel(kernel_name)
        handle = kernel.pack_grid(grid, n_bits)
        heights = h_bits & full_mask(len(grid))
        expected = []
        for i in range(len(grid[0])):
            acc = set(range(n_bits))
            for k in indices(heights):
                acc &= set(indices(grid[k][i]))
            expected.append(mask_of(acc))
        assert kernel.grid_fold_rows(handle, heights, n_bits) == expected

    @settings(max_examples=60, deadline=None)
    @given(
        data=grids(),
        r_bits=st.integers(0),
        c_bits=st.integers(0),
        cand_bits=st.one_of(st.none(), st.integers(0)),
    )
    def test_grid_supporting_heights_matches_set_model(
        self, kernel_name, data, r_bits, c_bits, cand_bits
    ):
        n_bits, grid = data
        kernel = get_kernel(kernel_name)
        handle = kernel.pack_grid(grid, n_bits)
        rows = r_bits & full_mask(len(grid[0]))
        columns = c_bits & full_mask(n_bits)
        candidates = (
            None if cand_bits is None else cand_bits & full_mask(len(grid))
        )
        pool = range(len(grid)) if candidates is None else indices(candidates)
        col_set = set(indices(columns))
        expected = mask_of(
            k
            for k in pool
            if all(col_set <= set(indices(grid[k][i])) for i in indices(rows))
        )
        assert (
            kernel.grid_supporting_heights(handle, rows, columns, candidates)
            == expected
        )

    @settings(max_examples=60, deadline=None)
    @given(
        data=grids(),
        h_bits=st.integers(0),
        c_bits=st.integers(0),
        cand_bits=st.one_of(st.none(), st.integers(0)),
    )
    def test_grid_supporting_rows_matches_set_model(
        self, kernel_name, data, h_bits, c_bits, cand_bits
    ):
        n_bits, grid = data
        kernel = get_kernel(kernel_name)
        handle = kernel.pack_grid(grid, n_bits)
        heights = h_bits & full_mask(len(grid))
        columns = c_bits & full_mask(n_bits)
        candidates = (
            None if cand_bits is None else cand_bits & full_mask(len(grid[0]))
        )
        pool = range(len(grid[0])) if candidates is None else indices(candidates)
        col_set = set(indices(columns))
        expected = mask_of(
            i
            for i in pool
            if all(col_set <= set(indices(grid[k][i])) for k in indices(heights))
        )
        assert (
            kernel.grid_supporting_rows(handle, heights, columns, candidates)
            == expected
        )

    def test_tensor_and_mask_packing_agree(self, kernel_name):
        import numpy as np

        rng = np.random.default_rng(42)
        data = rng.random((3, 4, 70)) < 0.5
        kernel = get_kernel(kernel_name)
        grid_masks = [
            [mask_of(np.flatnonzero(data[k, i]).tolist()) for i in range(4)]
            for k in range(3)
        ]
        from_tensor = kernel.pack_grid_from_tensor(data)
        from_masks = kernel.pack_grid(grid_masks, 70)
        for heights in (0, 0b1, 0b101, 0b111):
            assert kernel.grid_fold_rows(from_tensor, heights, 70) == kernel.grid_fold_rows(
                from_masks, heights, 70
            )


# ----------------------------------------------------------------------
# Cutter scans
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel_name", KERNELS)
class TestCutters:
    @settings(max_examples=80, deadline=None)
    @given(data=cutter_scans())
    def test_first_applicable_matches_naive_scan(self, kernel_name, data):
        shape, heights, rows, columns, node, start = data
        kernel = get_kernel(kernel_name)
        handle = kernel.pack_cutters(heights, rows, columns, shape)
        node_h, node_r, node_c = node
        expected = len(heights)
        for j in range(start, len(heights)):
            if (
                node_h >> heights[j] & 1
                and node_r >> rows[j] & 1
                and node_c & columns[j]
            ):
                expected = j
                break
        assert (
            kernel.first_applicable_cutter(handle, node_h, node_r, node_c, start)
            == expected
        )

    def test_empty_cutter_list(self, kernel_name):
        kernel = get_kernel(kernel_name)
        handle = kernel.pack_cutters([], [], [], (2, 2, 2))
        assert kernel.first_applicable_cutter(handle, 0b11, 0b11, 0b11, 0) == 0
