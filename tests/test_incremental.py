"""Tests for incremental FCC maintenance under height appends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import mine
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.rsm.incremental import append_height_slice
from tests.conftest import random_dataset


class TestCorrectness:
    def test_equals_full_remine_on_paper_example(self, paper_ds, paper_thresholds):
        # Treat h3 as the "new" slice arriving on top of h1+h2.
        old = Dataset3D(paper_ds.data[:2].copy())
        old_result = mine(old, paper_thresholds)
        extended, updated = append_height_slice(
            old, old_result, paper_ds.data[2], paper_thresholds
        )
        assert np.array_equal(extended.data, paper_ds.data)
        assert updated.same_cubes(mine(paper_ds, paper_thresholds))
        assert len(updated) == 5

    def test_equals_full_remine_random(self, rng):
        for _ in range(30):
            ds = random_dataset(rng, max_dim=5)
            if ds.n_heights < 1:
                continue
            th = Thresholds(*(int(x) for x in rng.integers(1, 3, size=3)))
            old_result = mine(ds, th)
            new_slice = rng.random((ds.n_rows, ds.n_columns)) < rng.uniform(0.2, 0.9)
            extended, updated = append_height_slice(ds, old_result, new_slice, th)
            full = mine(extended, th)
            assert updated.same_cubes(full), (ds.shape, th)

    def test_all_ones_slice_extends_every_cube(self, paper_ds, paper_thresholds):
        old_result = mine(paper_ds, paper_thresholds)
        ones = np.ones((4, 5), dtype=bool)
        extended, updated = append_height_slice(
            paper_ds, old_result, ones, paper_thresholds
        )
        assert updated.same_cubes(mine(extended, paper_thresholds))
        new_bit = 1 << 3
        # The all-ones slice covers everything: every cube gains it.
        assert all(cube.heights & new_bit for cube in updated)

    def test_all_zero_slice_changes_nothing(self, paper_ds, paper_thresholds):
        old_result = mine(paper_ds, paper_thresholds)
        zeros = np.zeros((4, 5), dtype=bool)
        _extended, updated = append_height_slice(
            paper_ds, old_result, zeros, paper_thresholds
        )
        assert updated.same_cubes(old_result)

    def test_slice_unlocks_min_h(self, rng):
        """A pattern one height short of minH becomes frequent."""
        data = np.zeros((2, 3, 4), dtype=bool)
        data[np.ix_([0, 1], [0, 1], [0, 1])] = True
        ds = Dataset3D(data)
        th = Thresholds(3, 2, 2)
        old_result = mine(ds, th)
        assert len(old_result) == 0
        new_slice = np.zeros((3, 4), dtype=bool)
        new_slice[np.ix_([0, 1], [0, 1])] = True
        extended, updated = append_height_slice(ds, old_result, new_slice, th)
        assert updated.same_cubes(mine(extended, th))
        assert len(updated) == 1


class TestMetadataAndValidation:
    def test_extended_labels(self, paper_ds, paper_thresholds):
        old_result = mine(paper_ds, paper_thresholds)
        extended, _ = append_height_slice(
            paper_ds, old_result, np.ones((4, 5), dtype=bool),
            paper_thresholds, slice_label="t-new",
        )
        assert extended.height_labels == ("h1", "h2", "h3", "t-new")

    def test_default_label(self, paper_ds, paper_thresholds):
        old_result = mine(paper_ds, paper_thresholds)
        extended, _ = append_height_slice(
            paper_ds, old_result, np.ones((4, 5), dtype=bool), paper_thresholds
        )
        assert extended.height_labels[-1] == "h4"

    def test_duplicate_label_rejected(self, paper_ds, paper_thresholds):
        old_result = mine(paper_ds, paper_thresholds)
        with pytest.raises(ValueError, match="already exists"):
            append_height_slice(
                paper_ds, old_result, np.ones((4, 5), dtype=bool),
                paper_thresholds, slice_label="h2",
            )

    def test_wrong_slice_shape(self, paper_ds, paper_thresholds):
        old_result = mine(paper_ds, paper_thresholds)
        with pytest.raises(ValueError, match="shape"):
            append_height_slice(
                paper_ds, old_result, np.ones((2, 2), dtype=bool), paper_thresholds
            )

    def test_thresholds_from_result(self, paper_ds, paper_thresholds):
        old_result = mine(paper_ds, paper_thresholds)
        _extended, updated = append_height_slice(
            paper_ds, old_result, np.ones((4, 5), dtype=bool)
        )
        assert updated.thresholds == paper_thresholds

    def test_missing_thresholds_raise(self, paper_ds):
        from repro.core.result import MiningResult

        with pytest.raises(ValueError, match="thresholds"):
            append_height_slice(
                paper_ds, MiningResult(cubes=[]), np.ones((4, 5), dtype=bool)
            )

    def test_stats_recorded(self, paper_ds, paper_thresholds):
        old_result = mine(paper_ds, paper_thresholds)
        _extended, updated = append_height_slice(
            paper_ds, old_result, np.ones((4, 5), dtype=bool), paper_thresholds
        )
        assert updated.stats["old_cubes"] == 5
        assert updated.stats["slices_mined"] > 0
        assert updated.algorithm.startswith("incremental[")


class TestChainedAppends:
    def test_slice_by_slice_reconstruction(self, paper_ds, paper_thresholds):
        """Build the paper tensor one slice at a time; at every step the
        incrementally-maintained result equals a fresh mine."""
        current = Dataset3D(paper_ds.data[:1].copy())
        result = mine(current, paper_thresholds)
        for k in range(1, paper_ds.n_heights):
            current, result = append_height_slice(
                current, result, paper_ds.data[k], paper_thresholds
            )
            assert result.same_cubes(mine(current, paper_thresholds)), k
