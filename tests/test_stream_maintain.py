"""The incremental maintainer must be bit-identical to a fresh mine.

The hypothesis differential below is the subsystem's load-bearing
guarantee: for arbitrary small tensors and arbitrary *valid* delta
sequences — cell flips plus slice appends/drops on every axis —
patching the old result through :func:`repro.stream.maintain` yields
exactly the cube list a fresh RSM mine of the edited tensor returns,
on both kernels.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import mine
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.obs.metrics import MiningMetrics
from repro.stream import (
    AppendSlice,
    ClearCell,
    DropSlice,
    IncrementalMaintainer,
    SetCell,
    maintain,
)

KERNELS = ("python-int", "numpy")


def _keys(result):
    return [(c.heights, c.rows, c.columns) for c in result.cubes]


# ----------------------------------------------------------------------
# Strategies: delta sequences valid against the evolving shape
# ----------------------------------------------------------------------
@st.composite
def tensor_and_deltas(draw, max_dim: int = 4, max_deltas: int = 4):
    l = draw(st.integers(2, max_dim))
    n = draw(st.integers(2, max_dim))
    m = draw(st.integers(2, max_dim))
    cells = draw(
        st.lists(st.booleans(), min_size=l * n * m, max_size=l * n * m)
    )
    tensor = np.array(cells, dtype=bool).reshape(l, n, m)

    shape = [l, n, m]
    deltas = []
    for _ in range(draw(st.integers(1, max_deltas))):
        kind = draw(st.sampled_from(("set", "clear", "append", "drop")))
        axis = draw(st.integers(0, 2))
        if kind in ("set", "clear"):
            coords = [draw(st.integers(0, shape[a] - 1)) for a in range(3)]
            cls = SetCell if kind == "set" else ClearCell
            deltas.append(cls(*coords))
        elif kind == "append":
            rest = tuple(d for a, d in enumerate(shape) if a != axis)
            count = rest[0] * rest[1]
            bits = draw(
                st.lists(st.booleans(), min_size=count, max_size=count)
            )
            values = np.array(bits, dtype=int).reshape(rest)
            deltas.append(AppendSlice(axis, values))
            shape[axis] += 1
        else:
            if shape[axis] == 1:
                continue  # never drop the last slice
            deltas.append(DropSlice(axis, draw(st.integers(0, shape[axis] - 1))))
            shape[axis] -= 1
    return Dataset3D(tensor), deltas


@settings(max_examples=40, deadline=None)
@given(data=tensor_and_deltas())
@pytest.mark.parametrize("kernel", KERNELS)
def test_maintain_equals_fresh_mine(kernel, data):
    dataset, deltas = data
    dataset = dataset.with_kernel(kernel)
    thresholds = Thresholds(2, 2, 2)
    base = mine(dataset, thresholds, algorithm="rsm")
    new_dataset, maintained = maintain(dataset, base, deltas, thresholds)
    fresh = mine(new_dataset, thresholds, algorithm="rsm")
    assert _keys(maintained) == _keys(fresh)
    assert maintained.thresholds == thresholds
    assert maintained.dataset_shape == new_dataset.shape


@settings(max_examples=20, deadline=None)
@given(data=tensor_and_deltas(max_deltas=3))
def test_maintain_with_volume_constraint(data):
    dataset, deltas = data
    thresholds = Thresholds(1, 2, 1, min_volume=4)
    base = mine(dataset, thresholds, algorithm="rsm")
    new_dataset, maintained = maintain(dataset, base, deltas, thresholds)
    fresh = mine(new_dataset, thresholds, algorithm="rsm")
    assert _keys(maintained) == _keys(fresh)


# ----------------------------------------------------------------------
# Directed cases
# ----------------------------------------------------------------------
def planted() -> Dataset3D:
    rng = np.random.default_rng(11)
    data = rng.random((4, 8, 10)) < 0.35
    data[:3, 1:5, 2:7] = True
    return Dataset3D(data)


@pytest.mark.parametrize("kernel", KERNELS)
def test_single_cell_edit_each_axis_slice(kernel):
    ds = planted().with_kernel(kernel)
    th = Thresholds(2, 2, 2)
    base = mine(ds, th, algorithm="rsm")
    for delta in (SetCell(0, 0, 0), ClearCell(1, 2, 3), SetCell(3, 7, 9)):
        new_ds, maintained = maintain(ds, base, [delta], th)
        assert _keys(maintained) == _keys(mine(new_ds, th, algorithm="rsm"))


@pytest.mark.parametrize("axis", ("height", "row", "column"))
def test_append_then_drop_on_every_axis(axis):
    ds = planted()
    th = Thresholds(2, 2, 2)
    base = mine(ds, th, algorithm="rsm")
    rest = tuple(
        d
        for a, d in enumerate(ds.shape)
        if a != ("height", "row", "column").index(axis)
    )
    deltas = [
        AppendSlice(axis, np.ones(rest, dtype=int)),
        DropSlice(axis, 0),
    ]
    new_ds, maintained = maintain(ds, base, deltas, th)
    assert _keys(maintained) == _keys(mine(new_ds, th, algorithm="rsm"))


def test_maintainer_carries_state_across_batches():
    ds = planted()
    th = Thresholds(2, 2, 2)
    maintainer = IncrementalMaintainer(ds, mine(ds, th, algorithm="rsm"), th)
    batches = [
        [SetCell(0, 0, 0)],
        [AppendSlice("height", np.zeros((8, 10), dtype=int))],
        [DropSlice("row", 3), ClearCell(0, 0, 5)],
    ]
    for batch in batches:
        maintained = maintainer.apply(batch)
        fresh = mine(maintainer.dataset, th, algorithm="rsm")
        assert _keys(maintained) == _keys(fresh)
    assert maintainer.result is maintained


def test_thresholds_default_from_base_result():
    ds = planted()
    th = Thresholds(2, 2, 2)
    base = mine(ds, th, algorithm="rsm")
    _, maintained = maintain(ds, base, [SetCell(0, 0, 0)])
    assert maintained.thresholds == th


def test_metrics_counters_and_stream_extra():
    ds = planted()
    th = Thresholds(2, 2, 2)
    base = mine(ds, th, algorithm="rsm")
    metrics = MiningMetrics()
    _, maintained = maintain(
        ds, base, [SetCell(0, 0, 0)], th, metrics=metrics
    )
    assert metrics.deltas_applied == 1
    assert metrics.cubes_patched >= 1
    assert metrics.subsets_remined >= 1
    stream = maintained.stats.extra["stream"]
    assert stream["deltas_applied"] == 1
    assert stream["dirty_heights"] == 1
    assert stream["cubes_patched"] == metrics.cubes_patched
    assert stream["subsets_remined"] == metrics.subsets_remined
    # Counters survive the serialization round-trip.
    restored = MiningMetrics.from_dict(metrics.to_dict())
    assert restored.deltas_applied == 1


def test_algorithm_tag_does_not_nest():
    ds = planted()
    th = Thresholds(2, 2, 2)
    maintainer = IncrementalMaintainer(ds, mine(ds, th, algorithm="rsm"), th)
    maintainer.apply([SetCell(0, 0, 0)])
    second = maintainer.apply([ClearCell(0, 0, 0)])
    assert second.algorithm.count("stream[") == 1


def test_maintain_without_thresholds_anywhere_raises():
    ds = planted()
    base = mine(ds, Thresholds(2, 2, 2), algorithm="rsm")
    stripped = type(base)(
        cubes=list(base.cubes), algorithm=base.algorithm, thresholds=None
    )
    with pytest.raises(ValueError):
        maintain(ds, stripped, [SetCell(0, 0, 0)])
