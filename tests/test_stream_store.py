"""The mmap dataset store and out-of-core mining.

The differentials here close the loop the out-of-core backend promises:
a memory-mapped dataset mines bit-identically to its in-memory twin,
the streaming writer's incremental fingerprint equals the canonical
:func:`repro.io.dataset_fingerprint`, and :func:`stream_mine` — with
and without the diamond-dicing prefilter — returns exactly what plain
RSM returns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import mine
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.core.kernels import PackedBufferError, release_mapped_pages
from repro.io import dataset_fingerprint
from repro.obs.metrics import MiningMetrics
from repro.stream import (
    MmapDatasetStore,
    StreamingSliceWriter,
    diamond_dice,
    stream_mine,
)

KERNELS = ("python-int", "numpy")


def _keys(result):
    return [(c.heights, c.rows, c.columns) for c in result.cubes]


def random_dataset(seed: int = 5, shape=(4, 9, 70)) -> Dataset3D:
    rng = np.random.default_rng(seed)
    return Dataset3D(rng.random(shape) < 0.45)


# ----------------------------------------------------------------------
# Store round-trips
# ----------------------------------------------------------------------
def test_put_open_round_trip(tmp_path):
    ds = random_dataset()
    store = MmapDatasetStore(tmp_path)
    fp = store.put(ds)
    assert fp == dataset_fingerprint(ds)
    assert fp in store
    assert store.list() == [fp]
    opened = store.open(fp)
    assert opened.shape == ds.shape
    assert np.array_equal(
        np.asarray(opened.data, dtype=bool), np.asarray(ds.data, dtype=bool)
    )
    assert list(opened.height_labels) == list(ds.height_labels)
    meta = store.meta(fp)
    assert meta["n_ones"] == int(np.asarray(ds.data).sum())


def test_put_is_idempotent(tmp_path):
    ds = random_dataset()
    store = MmapDatasetStore(tmp_path)
    assert store.put(ds) == store.put(ds)
    assert len(store) == 1


def test_open_unknown_fingerprint_raises(tmp_path):
    with pytest.raises(KeyError):
        MmapDatasetStore(tmp_path).open("f" * 64)


def test_open_mmap_rejects_stray_tail_bits(tmp_path):
    # Columns not a multiple of 64: a corrupt file with bits set past
    # the last column must be refused, chunked validation or not.
    ds = random_dataset(shape=(2, 3, 70))
    store = MmapDatasetStore(tmp_path)
    fp = store.put(ds)
    words = np.load(store.path(fp))
    words[1, 2, -1] |= np.uint64(1) << np.uint64(63)
    np.save(store.path(fp), words)
    with pytest.raises(PackedBufferError):
        store.open(fp)


# ----------------------------------------------------------------------
# Streaming writer
# ----------------------------------------------------------------------
def test_streaming_writer_matches_canonical_fingerprint(tmp_path):
    ds = random_dataset(seed=9, shape=(5, 7, 33))
    store = MmapDatasetStore(tmp_path)
    with store.writer(ds.shape) as writer:
        for k in range(ds.n_heights):
            writer.append_slice(np.asarray(ds.data[k], dtype=int))
        fp = writer.seal()
    assert fp == dataset_fingerprint(ds)
    opened = store.open(fp)
    assert np.array_equal(
        np.asarray(opened.data, dtype=bool), np.asarray(ds.data, dtype=bool)
    )


def test_streaming_writer_validates(tmp_path):
    store = MmapDatasetStore(tmp_path)
    writer = store.writer((2, 3, 4))
    with pytest.raises(ValueError):
        writer.append_slice(np.zeros((9, 9)))
    with pytest.raises(ValueError):
        writer.seal()  # only 0 of 2 slices written
    writer.abort()
    with pytest.raises(RuntimeError):
        writer.append_slice(np.zeros((3, 4)))
    with pytest.raises(ValueError):
        StreamingSliceWriter(store, (0, 3, 4))


def test_aborted_writer_leaves_no_temp_files(tmp_path):
    store = MmapDatasetStore(tmp_path)
    with store.writer((2, 3, 4)) as writer:
        writer.append_slice(np.ones((3, 4)))
        # leaving the block unsealed aborts
    leftovers = list(tmp_path.glob(".stream-*.tmp.npy"))
    assert leftovers == []
    assert len(store) == 0


# ----------------------------------------------------------------------
# mmap vs in-memory mining differential
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("seed", (1, 2, 3))
def test_mmap_mines_identically(tmp_path, kernel, seed):
    ds = random_dataset(seed=seed, shape=(3, 8, 66)).with_kernel(kernel)
    th = Thresholds(2, 2, 2)
    store = MmapDatasetStore(tmp_path)
    mapped = store.open(store.put(ds), kernel=kernel)
    assert _keys(mine(mapped, th, algorithm="rsm")) == _keys(
        mine(ds, th, algorithm="rsm")
    )


# ----------------------------------------------------------------------
# stream_mine and diamond dicing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("dice", (False, True))
def test_stream_mine_equals_rsm(tmp_path, kernel, dice):
    for seed in (1, 4, 8):
        ds = random_dataset(seed=seed, shape=(4, 10, 40)).with_kernel(kernel)
        th = Thresholds(2, 2, 2)
        fresh = mine(ds, th, algorithm="rsm")
        streamed = stream_mine(ds, th, dice=dice, chunk_rows=3)
        assert _keys(streamed) == _keys(fresh)
        assert streamed.stats.extra["stream"]["chunks_read"] > 0


def test_stream_mine_over_mapped_store(tmp_path):
    ds = random_dataset(seed=6, shape=(4, 12, 80)).with_kernel("numpy")
    th = Thresholds(2, 3, 3)
    store = MmapDatasetStore(tmp_path)
    mapped = store.open(store.put(ds), kernel="numpy")
    metrics = MiningMetrics()
    streamed = stream_mine(mapped, th, chunk_rows=4, metrics=metrics)
    assert _keys(streamed) == _keys(mine(ds, th, algorithm="rsm"))
    assert metrics.stream_chunks_read > 0
    assert streamed.algorithm == "stream-rsm"


def test_stream_mine_with_volume_constraint():
    ds = random_dataset(seed=13, shape=(3, 7, 30))
    th = Thresholds(2, 2, 2, min_volume=12)
    assert _keys(stream_mine(ds, th)) == _keys(mine(ds, th, algorithm="rsm"))


def test_stream_mine_infeasible_thresholds_is_empty():
    ds = random_dataset(shape=(2, 3, 4))
    result = stream_mine(ds, Thresholds(5, 5, 5))
    assert len(result) == 0


def test_diamond_dice_never_prunes_a_surviving_cube():
    rng = np.random.default_rng(3)
    data = rng.random((4, 12, 20)) < 0.15
    data[:3, 2:7, 4:12] = True  # plant a dense block
    ds = Dataset3D(data)
    th = Thresholds(3, 4, 6)
    region = diamond_dice(ds, th, chunk_rows=5)
    fresh = mine(ds, th, algorithm="rsm")
    for cube in fresh:
        for k in range(ds.n_heights):
            if cube.heights >> k & 1:
                assert region.heights[k]
        for i in range(ds.n_rows):
            if cube.rows >> i & 1:
                assert region.rows[i]
        for j in range(ds.n_columns):
            if cube.columns >> j & 1:
                assert region.columns[j]
    assert region.shape <= ds.shape


def test_diamond_dice_prunes_pure_noise_around_block():
    data = np.zeros((4, 10, 10), dtype=bool)
    data[:3, :4, :4] = True
    data[3, 9, 9] = True  # lone cell far from the block
    region = diamond_dice(Dataset3D(data), Thresholds(2, 2, 2))
    assert not region.heights[3]
    assert not region.rows[9]
    assert not region.columns[9]
    assert region.shape == (3, 4, 4)


def test_dice_result_maps_back_to_original_indices():
    data = np.zeros((3, 6, 6), dtype=bool)
    data[1:, 2:5, 3:6] = True
    ds = Dataset3D(data)
    th = Thresholds(2, 2, 2)
    result = stream_mine(ds, th, dice=True)
    assert _keys(result) == _keys(mine(ds, th, algorithm="rsm"))
    assert result.algorithm == "stream-rsm[dice]"
    assert result.stats.extra["stream"]["dice_kept_shape"] == [2, 3, 3]


def test_release_mapped_pages_is_safe_everywhere(tmp_path):
    # Plain arrays: a no-op returning False; mapped arrays: True.
    assert release_mapped_pages(np.zeros((4, 4))) is False
    ds = random_dataset(shape=(2, 4, 8))
    store = MmapDatasetStore(tmp_path)
    mapped = np.load(store.path(store.put(ds)), mmap_mode="r")
    assert release_mapped_pages(mapped) is True
    assert release_mapped_pages(mapped[0]) is True  # view chains resolve
