"""Tests for the instrumentation layer (repro.obs).

Covers the acceptance criteria of the observability redesign:

* always-on ``MiningMetrics`` prune counters agree with ``trace_tree``'s
  ``PruneReason`` tallies (paper Figure 1 example + random datasets);
* the typed event stream is consistent with the counters;
* progress callbacks, cooperative cancellation and deadlines work for
  CubeMiner, RSM, the reference oracle and both parallel variants, with
  partial results attached to ``MiningCancelled``;
* ``MiningStats`` keeps dict-style access and round-trips through JSON;
* the CLI surfaces ``--deadline`` (exit 124) and ``--metrics-json``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from tests.conftest import random_dataset
from repro.api import mine
from repro.core.constraints import Thresholds
from repro.core.result import MiningResult, MiningStats
from repro.options import ParallelOptions
from repro.cubeminer import HeightOrder, cubeminer_mine, prune_counts, trace_tree
from repro.obs import (
    CollectingSink,
    MiningCancelled,
    MiningMetrics,
    ProgressController,
)
from repro.rsm.algorithm import rsm_mine

ALL_MINERS = ("cubeminer", "rsm", "reference", "parallel-cubeminer", "parallel-rsm")


# ----------------------------------------------------------------------
# Metrics parity with the traced tree
# ----------------------------------------------------------------------
class TestTraceParity:
    def test_paper_example_prune_counts(self, paper_ds, paper_thresholds):
        """Per-lemma counters match Figure 1's tree, rule by rule."""
        result = cubeminer_mine(
            paper_ds, paper_thresholds, order=HeightOrder.ORIGINAL
        )
        traced = prune_counts(trace_tree(paper_ds, paper_thresholds))
        assert result.stats.metrics.prune_counts() == traced

    def test_paper_example_nodes_and_leaves(self, paper_ds, paper_thresholds):
        result = cubeminer_mine(
            paper_ds, paper_thresholds, order=HeightOrder.ORIGINAL
        )
        root = trace_tree(paper_ds, paper_thresholds)
        live_nodes = [n for n in root.iter_nodes() if n.pruned is None]
        assert result.stats["nodes_visited"] == len(live_nodes)
        assert result.stats["leaves_emitted"] == len(root.leaves())
        assert result.stats["leaves_emitted"] == len(result)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_datasets_prune_counts(self, seed):
        rng = np.random.default_rng(1000 + seed)
        dataset = random_dataset(rng, max_dim=5)
        thresholds = Thresholds(1, 1, 1)
        result = cubeminer_mine(dataset, thresholds, order=HeightOrder.ORIGINAL)
        traced = prune_counts(trace_tree(dataset, thresholds))
        assert result.stats.metrics.prune_counts() == traced

    def test_total_pruned_sums_the_prune_fields(self, paper_ds, paper_thresholds):
        metrics = cubeminer_mine(paper_ds, paper_thresholds).stats.metrics
        assert metrics.total_pruned() == sum(metrics.prune_counts().values())


# ----------------------------------------------------------------------
# Event stream
# ----------------------------------------------------------------------
class TestEvents:
    def test_cubeminer_event_stream(self, paper_ds, paper_thresholds):
        sink = CollectingSink()
        result = cubeminer_mine(paper_ds, paper_thresholds, on_event=sink)
        assert sink.events[0].kind == "start"
        assert sink.events[-1].kind == "done"
        assert sink.events[-1].cancelled is False
        assert sink.events[-1].n_cubes == len(result)
        metrics = result.stats.metrics
        assert len(sink.of_kind("node")) == metrics.nodes_visited
        assert len(sink.of_kind("prune")) == metrics.total_pruned()
        leaf_nodes = [e for e in sink.of_kind("node") if e.is_leaf]
        assert len(leaf_nodes) == metrics.leaves_emitted

    def test_prune_events_tally_by_reason(self, paper_ds, paper_thresholds):
        sink = CollectingSink()
        result = cubeminer_mine(paper_ds, paper_thresholds, on_event=sink)
        by_reason: dict[str, int] = {}
        for event in sink.of_kind("prune"):
            by_reason[event.reason] = by_reason.get(event.reason, 0) + 1
        expected = {
            k: v for k, v in result.stats.metrics.prune_counts().items() if v
        }
        assert by_reason == expected

    def test_rsm_slice_events(self, paper_ds, paper_thresholds):
        sink = CollectingSink()
        result = rsm_mine(paper_ds, paper_thresholds, on_event=sink)
        slices = sink.of_kind("slice")
        # minH=2 over 3 heights: {h1h2} {h1h3} {h2h3} {h1h2h3}.
        assert len(slices) == 4
        assert result.stats["representative_slices"] == 4
        assert sum(e.n_kept for e in slices) == len(result)

    @pytest.mark.parametrize("algorithm", ALL_MINERS)
    def test_every_algorithm_emits_start_and_done(
        self, algorithm, paper_ds, paper_thresholds
    ):
        sink = CollectingSink()
        mine(paper_ds, paper_thresholds, algorithm=algorithm, on_event=sink)
        assert sink.events[0].kind == "start"
        assert sink.events[-1].kind == "done"
        # The start event records the full threshold tuple incl. volume.
        assert sink.events[0].thresholds == (2, 2, 2, 1)


# ----------------------------------------------------------------------
# Progress, cancellation, deadlines
# ----------------------------------------------------------------------
class TestCancellation:
    @pytest.mark.parametrize("algorithm", ALL_MINERS)
    def test_zero_deadline_cancels_any_algorithm(
        self, algorithm, paper_ds, paper_thresholds
    ):
        with pytest.raises(MiningCancelled) as excinfo:
            mine(paper_ds, paper_thresholds, algorithm=algorithm, deadline=0)
        exc = excinfo.value
        assert "deadline" in str(exc)
        assert isinstance(exc.partial, MiningResult)
        assert len(exc.partial) == 0
        assert isinstance(exc.metrics, MiningMetrics)
        assert exc.partial.stats.metrics is exc.metrics

    def test_cancel_from_progress_callback_keeps_partial(self):
        rng = np.random.default_rng(7)
        dataset = random_dataset(rng, max_dim=6, density_range=(0.6, 0.8))
        thresholds = Thresholds(1, 1, 1)
        full = cubeminer_mine(dataset, thresholds)
        assert len(full) >= 3, "workload too small for a mid-run cancel"

        updates = []

        def cancel_at_two(update):
            updates.append(update)
            if update.metrics.leaves_emitted >= 2:
                controller.cancel()

        controller = ProgressController(
            on_progress=cancel_at_two, check_every=1, min_interval=0
        )
        with pytest.raises(MiningCancelled) as excinfo:
            cubeminer_mine(dataset, thresholds, progress=controller)
        exc = excinfo.value
        assert exc.reason == "cancelled by caller"
        assert len(exc.partial) == 2
        assert exc.metrics.nodes_visited > 0
        assert updates, "progress callback never ran"

    def test_progress_updates_carry_phase_and_metrics(
        self, paper_ds, paper_thresholds
    ):
        updates = []
        controller = ProgressController(
            on_progress=updates.append, check_every=1, min_interval=0
        )
        cubeminer_mine(paper_ds, paper_thresholds, progress=controller)
        assert updates
        assert all(u.phase == "cubeminer" for u in updates)
        assert updates[-1].metrics.nodes_visited > 0
        assert "cubeminer" in updates[-1].format()

    def test_rsm_cancel_mid_slices(self, paper_ds, paper_thresholds):
        def cancel_after_first_slice(update):
            if update.metrics.rs_slices_mined >= 1:
                controller.cancel()

        controller = ProgressController(
            on_progress=cancel_after_first_slice, check_every=1, min_interval=0
        )
        with pytest.raises(MiningCancelled) as excinfo:
            rsm_mine(paper_ds, paper_thresholds, progress=controller)
        exc = excinfo.value
        assert exc.partial is not None
        assert exc.metrics.rs_slices_mined >= 1

    def test_parallel_pool_deadline(self):
        rng = np.random.default_rng(42)
        dataset = random_dataset(rng, max_dim=6, density_range=(0.5, 0.7))
        with pytest.raises(MiningCancelled) as excinfo:
            mine(
                dataset,
                Thresholds(1, 1, 1),
                algorithm="parallel-cubeminer",
                deadline=0,
                options=ParallelOptions(n_workers=2),
            )
        assert excinfo.value.partial is not None
        assert "n_tasks" in excinfo.value.partial.stats

    def test_controller_reuse_counts_both_runs(self, paper_ds, paper_thresholds):
        metrics = MiningMetrics()
        cubeminer_mine(paper_ds, paper_thresholds, metrics=metrics)
        once = metrics.nodes_visited
        cubeminer_mine(paper_ds, paper_thresholds, metrics=metrics)
        assert metrics.nodes_visited == 2 * once


# ----------------------------------------------------------------------
# Parallel metric aggregation
# ----------------------------------------------------------------------
class TestParallelAggregation:
    def test_pool_counters_match_sequential(self):
        rng = np.random.default_rng(3)
        dataset = random_dataset(rng, max_dim=6, density_range=(0.5, 0.7))
        thresholds = Thresholds(1, 1, 1)
        seq = mine(dataset, thresholds, algorithm="cubeminer")
        par = mine(
            dataset,
            thresholds,
            algorithm="parallel-cubeminer",
            options=ParallelOptions(n_workers=2),
        )
        assert set(par.cubes) == set(seq.cubes)
        # Expansion nodes + worker nodes == the sequential tree, exactly.
        assert par.stats["nodes_visited"] == seq.stats["nodes_visited"]
        assert par.stats["leaves_emitted"] == seq.stats["leaves_emitted"]

    def test_pool_rsm_aggregates_slices(self):
        rng = np.random.default_rng(5)
        dataset = random_dataset(rng, max_dim=6, density_range=(0.5, 0.7))
        thresholds = Thresholds(1, 1, 1)
        par = mine(
            dataset,
            thresholds,
            algorithm="parallel-rsm",
            options=ParallelOptions(n_workers=2),
        )
        if par.stats["n_tasks"] > 1:
            assert par.stats["workers_merged"] > 0
        assert par.stats["rs_slices_mined"] == par.stats["n_tasks"]


# ----------------------------------------------------------------------
# MiningStats: mapping protocol + JSON schema
# ----------------------------------------------------------------------
class TestMiningStats:
    def test_dict_style_access(self, paper_ds, paper_thresholds):
        stats = cubeminer_mine(paper_ds, paper_thresholds).stats
        assert stats["nodes_visited"] > 0
        assert "nodes_visited" in stats
        assert dict(stats)["leaves_emitted"] == stats["leaves_emitted"]
        with pytest.raises(KeyError):
            stats["no_such_counter"]

    def test_round_trip(self, paper_ds, paper_thresholds):
        stats = rsm_mine(paper_ds, paper_thresholds).stats
        clone = MiningStats.from_dict(stats.to_dict())
        assert clone.to_dict() == stats.to_dict()
        assert clone["representative_slices"] == stats["representative_slices"]
        assert clone.metrics.rs_slices_mined == stats.metrics.rs_slices_mined

    def test_legacy_flat_dict_coerced(self):
        stats = MiningStats.from_dict({"n_tasks": 7, "n_workers": 2})
        assert stats["n_tasks"] == 7
        assert stats.metrics is None
        assert stats.to_dict()["extra"] == {"n_tasks": 7, "n_workers": 2}

    def test_json_io_preserves_metrics(self, paper_ds, paper_thresholds, tmp_path):
        from repro.io import result_from_json, result_to_json

        result = cubeminer_mine(paper_ds, paper_thresholds)
        payload = result_to_json(result, paper_ds)
        loaded = result_from_json(payload)
        assert loaded.stats["nodes_visited"] == result.stats["nodes_visited"]
        assert loaded.stats.metrics.prune_counts() == (
            result.stats.metrics.prune_counts()
        )

    def test_metrics_merge_sums_and_maxes(self):
        a = MiningMetrics(nodes_visited=3, max_stack_depth=5)
        b = MiningMetrics(nodes_visited=4, max_stack_depth=2)
        a.merge(b)
        assert a.nodes_visited == 7
        assert a.max_stack_depth == 5


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestCLI:
    @pytest.fixture
    def dataset_path(self, paper_ds, tmp_path):
        path = tmp_path / "paper.npz"
        paper_ds.save_npz(str(path))
        return str(path)

    def test_metrics_json_flag(self, dataset_path, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "metrics.json"
        code = main(
            ["mine", "--input", dataset_path, "--show", "0",
             "--metrics-json", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["algorithm"].startswith("cubeminer")
        assert payload["stats"]["metrics"]["nodes_visited"] > 0

    def test_deadline_exits_124_with_partial_metrics(
        self, dataset_path, tmp_path, capsys
    ):
        from repro.cli import main

        out = tmp_path / "metrics.json"
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["mine", "--input", dataset_path, "--show", "0",
                 "--deadline", "0", "--metrics-json", str(out)]
            )
        assert excinfo.value.code == 124
        assert "cancelled" in capsys.readouterr().err
        payload = json.loads(out.read_text())
        assert payload["n_cubes"] == 0

    def test_progress_flag_prints_to_stderr(self, dataset_path, capsys):
        from repro.cli import main

        code = main(
            ["mine", "--input", dataset_path, "--show", "0", "--progress"]
        )
        assert code == 0
        assert "[progress]" in capsys.readouterr().err
