"""Tests for the N-dimensional generalization (recursive slice mining)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import mine
from repro.core.constraints import Thresholds
from repro.datasets import paper_example
from repro.ndim import (
    DatasetND,
    PatternND,
    axis_support,
    is_closed_nd,
    mine_nd,
    oracle_mine_nd,
)


class TestDatasetND:
    def test_construction(self):
        ds = DatasetND(np.ones((2, 3, 4, 5), dtype=bool))
        assert ds.ndim == 4
        assert ds.shape == (2, 3, 4, 5)
        assert ds.density == 1.0

    def test_rejects_rank_1(self):
        with pytest.raises(ValueError, match="rank"):
            DatasetND([1, 0, 1])

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="0/1"):
            DatasetND(np.full((2, 2), 7))

    def test_default_labels(self):
        ds = DatasetND(np.zeros((2, 3), dtype=bool))
        assert ds.axis_labels[0] == ("x0_1", "x0_2")
        assert ds.axis_labels[1] == ("x1_1", "x1_2", "x1_3")

    def test_custom_labels_validated(self):
        with pytest.raises(ValueError, match="labels"):
            DatasetND(np.zeros((2, 2), dtype=bool), axis_labels=[["a"], ["x", "y"]])
        with pytest.raises(ValueError, match="unique"):
            DatasetND(
                np.zeros((2, 2), dtype=bool), axis_labels=[["a", "a"], ["x", "y"]]
            )

    def test_select(self):
        ds = DatasetND(np.arange(8).reshape(2, 2, 2) % 2)
        picked = ds.select(2, [1])
        assert picked.shape == (2, 2, 1)
        assert picked.data.all()

    def test_collapse_all(self):
        data = np.ones((3, 2, 2), dtype=bool)
        data[1, 0, 0] = False
        ds = DatasetND(data)
        collapsed = ds.collapse_all(0, [0, 1])
        assert collapsed.shape == (2, 2)
        assert not collapsed[0, 0]
        assert collapsed[1, 1]

    def test_collapse_empty_raises(self):
        ds = DatasetND(np.ones((2, 2), dtype=bool))
        with pytest.raises(ValueError):
            ds.collapse_all(0, [])

    def test_eq_hash(self):
        a = DatasetND(np.ones((2, 2), dtype=bool))
        b = DatasetND(np.ones((2, 2), dtype=bool))
        assert a == b and hash(a) == hash(b)
        assert a != "nope"


class TestPatternND:
    def test_normalization(self):
        p = PatternND(((2, 0, 2), (1,)))
        assert p.indices == ((0, 2), (1,))

    def test_supports_volume(self):
        p = PatternND(((0, 1), (0, 1, 2), (4,)))
        assert p.supports == (2, 3, 1)
        assert p.volume == 6

    def test_contains(self):
        big = PatternND(((0, 1), (0, 1)))
        small = PatternND(((0,), (1,)))
        assert big.contains(small)
        assert not small.contains(big)
        assert not big.contains(PatternND(((0,), (0,), (0,))))  # rank differs

    def test_format_with_labels(self):
        ds = DatasetND(
            np.ones((2, 2), dtype=bool),
            axis_labels=[["t1", "t2"], ["g1", "g2"]],
        )
        assert PatternND(((0, 1), (1,))).format(ds) == "t1t2 : g2, 2:1"

    def test_axis_support(self):
        data = np.array([[1, 1], [1, 0], [1, 1]], dtype=bool)
        p = PatternND(((0, 2), (0, 1)))
        assert axis_support(data, 0, p) == (0, 2)
        assert axis_support(data, 1, p) == (0, 1)

    def test_is_closed_nd(self):
        data = np.array([[1, 1], [1, 0]], dtype=bool)
        ds = DatasetND(data)
        assert is_closed_nd(ds, PatternND(((0,), (0, 1))))
        assert is_closed_nd(ds, PatternND(((0, 1), (0,))))
        assert not is_closed_nd(ds, PatternND(((0,), (0,))))  # extendable
        assert not is_closed_nd(ds, PatternND(((0, 1), (0, 1))))  # has a zero


class TestMineND:
    def test_rank2_reduces_to_fcp(self):
        data = np.array([[1, 1, 0], [1, 1, 1]], dtype=bool)
        result = mine_nd(data, (1, 2))
        assert PatternND(((0, 1), (0, 1))) in result.pattern_set()

    def test_rank3_matches_primary_3d_miner(self):
        ds3 = paper_example()
        nd = mine_nd(ds3.data, (2, 2, 2))
        primary = mine(ds3, Thresholds(2, 2, 2))
        expected = {
            (c.height_indices(), c.row_indices(), c.column_indices())
            for c in primary
        }
        assert {p.indices for p in nd} == expected

    def test_rank3_matches_oracle_random(self, rng):
        for _ in range(15):
            shape = tuple(int(x) for x in rng.integers(2, 5, size=3))
            data = rng.random(shape) < rng.uniform(0.3, 0.9)
            sizes = tuple(int(x) for x in rng.integers(1, 3, size=3))
            assert mine_nd(data, sizes).pattern_set() == oracle_mine_nd(
                data, sizes
            ).pattern_set()

    def test_rank4_matches_oracle_random(self, rng):
        for _ in range(10):
            shape = tuple(int(x) for x in rng.integers(2, 4, size=4))
            data = rng.random(shape) < rng.uniform(0.4, 0.9)
            sizes = tuple(int(x) for x in rng.integers(1, 3, size=4))
            assert mine_nd(data, sizes).pattern_set() == oracle_mine_nd(
                data, sizes
            ).pattern_set()

    def test_rank5_all_ones(self):
        data = np.ones((2, 2, 2, 2, 2), dtype=bool)
        result = mine_nd(data, (1, 1, 1, 1, 1))
        assert len(result) == 1
        assert result.patterns[0].volume == 32

    def test_all_results_closed(self, rng):
        data = rng.random((3, 3, 3, 3)) < 0.7
        ds = DatasetND(data)
        for pattern in mine_nd(ds, (1, 1, 1, 1)):
            assert is_closed_nd(ds, pattern)

    def test_every_pattern_once(self, rng):
        data = rng.random((3, 4, 4)) < 0.6
        result = mine_nd(data, (1, 1, 1))
        assert len(result.patterns) == len(set(result.patterns))

    def test_infeasible_sizes(self):
        data = np.ones((2, 2, 2), dtype=bool)
        assert len(mine_nd(data, (3, 1, 1))) == 0

    def test_wrong_size_count(self):
        with pytest.raises(ValueError, match="per axis"):
            mine_nd(np.ones((2, 2, 2), dtype=bool), (1, 1))

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            mine_nd(np.ones((2, 2), dtype=bool), (0, 1))

    def test_huge_enumerated_axis_rejected(self):
        data = np.ones((25, 2, 2), dtype=bool)
        with pytest.raises(ValueError, match="transpose"):
            mine_nd(data, (1, 1, 1))

    def test_stats(self):
        result = mine_nd(paper_example().data, (2, 2, 2))
        assert result.stats["slices_enumerated"] == 4
        assert result.stats["postprune_pruned"] == 4


class TestOracleND:
    def test_guard(self):
        data = np.ones((15, 15, 2), dtype=bool)
        with pytest.raises(ValueError, match="oracle"):
            oracle_mine_nd(data, (1, 1, 1))

    def test_rank2(self):
        data = np.eye(3, dtype=bool)
        result = oracle_mine_nd(data, (1, 1))
        assert {p.indices for p in result} == {((i,), (i,)) for i in range(3)}
