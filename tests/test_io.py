"""Tests for the interchange formats (triples, JSON, CSV)."""

from __future__ import annotations

import csv
import io as _io
import json

import numpy as np
import pytest

from repro.api import mine
from repro.core.dataset import Dataset3D
from repro.io import (
    DatasetFormatError,
    load_triples,
    raw_cubes_from_payload,
    raw_cubes_to_payload,
    result_from_json,
    result_to_csv,
    result_to_json,
    save_triples,
)


class TestTriples:
    def test_round_trip(self, paper_ds, tmp_path):
        path = tmp_path / "paper.triples"
        save_triples(paper_ds, path)
        loaded = load_triples(path)
        assert np.array_equal(loaded.data, paper_ds.data)

    def test_header_line(self, paper_ds, tmp_path):
        path = tmp_path / "paper.triples"
        save_triples(paper_ds, path)
        assert path.read_text().splitlines()[0] == "3 4 5"

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "sparse.triples"
        path.write_text(
            "# a comment\n\n2 2 2\n0 0 0  # trailing comment\n\n1 1 1\n"
        )
        ds = load_triples(path)
        assert ds.cell(0, 0, 0) and ds.cell(1, 1, 1)
        assert ds.count_ones() == 2

    def test_out_of_range_cell(self, tmp_path):
        path = tmp_path / "bad.triples"
        path.write_text("2 2 2\n0 0 5\n")
        with pytest.raises(ValueError, match="outside"):
            load_triples(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.triples"
        path.write_text("2 2 2\n0 zero 1\n")
        with pytest.raises(ValueError, match="line 2"):
            load_triples(path)

    def test_short_line(self, tmp_path):
        path = tmp_path / "bad.triples"
        path.write_text("2 2 2\n0 0\n")
        with pytest.raises(ValueError, match="3 integers"):
            load_triples(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "empty.triples"
        path.write_text("# only comments\n")
        with pytest.raises(ValueError, match="header"):
            load_triples(path)

    def test_empty_tensor(self, tmp_path):
        ds = Dataset3D(np.zeros((2, 3, 4), dtype=bool))
        path = tmp_path / "zeros.triples"
        save_triples(ds, path)
        assert load_triples(path).count_ones() == 0


class TestDatasetFormatError:
    """Every malformation raises the one typed error with a line number."""

    def write(self, tmp_path, text):
        path = tmp_path / "bad.triples"
        path.write_text(text)
        return path

    def test_out_of_range_cell_is_typed(self, tmp_path):
        path = self.write(tmp_path, "2 2 2\n0 0 5\n")
        with pytest.raises(DatasetFormatError) as excinfo:
            load_triples(path)
        assert excinfo.value.line_no == 2
        assert excinfo.value.path == str(path)

    def test_duplicate_cell(self, tmp_path):
        path = self.write(tmp_path, "2 2 2\n0 0 1\n1 1 1\n0 0 1\n")
        with pytest.raises(DatasetFormatError, match="duplicate cell") as excinfo:
            load_triples(path)
        assert excinfo.value.line_no == 4

    def test_truncated_header(self, tmp_path):
        path = self.write(tmp_path, "2 2\n0 0 0\n")
        with pytest.raises(DatasetFormatError, match="header"):
            load_triples(path)

    def test_negative_header(self, tmp_path):
        path = self.write(tmp_path, "2 -2 2\n")
        with pytest.raises(DatasetFormatError, match=">= 0"):
            load_triples(path)

    def test_non_integer_token(self, tmp_path):
        path = self.write(tmp_path, "2 2 2\n0 0.5 1\n")
        with pytest.raises(DatasetFormatError, match="line 2"):
            load_triples(path)

    def test_missing_header_reports_no_line(self, tmp_path):
        path = self.write(tmp_path, "# nothing here\n")
        with pytest.raises(DatasetFormatError, match="header") as excinfo:
            load_triples(path)
        assert excinfo.value.line_no is None

    def test_is_a_value_error(self, tmp_path):
        # Pre-existing `except ValueError` handlers must keep working.
        path = self.write(tmp_path, "2 2 2\n9 9 9\n")
        with pytest.raises(ValueError):
            load_triples(path)

    def test_message_carries_path_and_line(self, tmp_path):
        path = self.write(tmp_path, "2 2 2\nx y z\n")
        with pytest.raises(DatasetFormatError, match="line 2"):
            load_triples(path)


class TestRawCubePayload:
    def test_round_trip_bigints(self):
        raw = [((1 << 200) | 5, 0b1011, 1), (0, 0, 0)]
        assert raw_cubes_from_payload(raw_cubes_to_payload(raw)) == raw

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValueError, match="masks"):
            raw_cubes_from_payload([[1, 2]])


class TestEventCsv:
    CSV = (
        "month,region,item\n"
        "jan,north,coffee\n"
        "jan,north,tea\n"
        "jan,south,coffee\n"
        "feb,north,coffee\n"
        "feb,north,coffee\n"  # duplicate events are idempotent
    )

    @pytest.fixture
    def csv_path(self, tmp_path):
        path = tmp_path / "sales.csv"
        path.write_text(self.CSV)
        return path

    def test_shape_and_labels(self, csv_path):
        from repro.io import load_event_csv

        ds = load_event_csv(
            csv_path, height_column="month", row_column="region",
            column_column="item",
        )
        assert ds.shape == (2, 2, 2)
        assert ds.height_labels == ("jan", "feb")
        assert ds.row_labels == ("north", "south")
        assert ds.column_labels == ("coffee", "tea")

    def test_cells(self, csv_path):
        from repro.io import load_event_csv

        ds = load_event_csv(
            csv_path, height_column="month", row_column="region",
            column_column="item",
        )
        assert ds.cell(0, 0, 0)       # jan/north/coffee
        assert ds.cell(0, 0, 1)       # jan/north/tea
        assert ds.cell(0, 1, 0)       # jan/south/coffee
        assert ds.cell(1, 0, 0)       # feb/north/coffee
        assert not ds.cell(1, 1, 1)   # feb/south/tea never happened
        assert ds.count_ones() == 4

    def test_missing_column(self, csv_path):
        from repro.io import load_event_csv

        with pytest.raises(ValueError, match="'store'"):
            load_event_csv(
                csv_path, height_column="month", row_column="store",
                column_column="item",
            )

    def test_empty_body(self, tmp_path):
        from repro.io import load_event_csv

        path = tmp_path / "empty.csv"
        path.write_text("month,region,item\n")
        with pytest.raises(ValueError, match="no data rows"):
            load_event_csv(
                path, height_column="month", row_column="region",
                column_column="item",
            )

    def test_mined_directly(self, csv_path):
        from repro.core.constraints import Thresholds
        from repro.io import load_event_csv

        ds = load_event_csv(
            csv_path, height_column="month", row_column="region",
            column_column="item",
        )
        result = mine(ds, Thresholds(2, 1, 1))
        # coffee sold to north in both months -> a 2x1x1 FCC exists.
        assert any(
            cube.h_support == 2 and cube.column_indices() == (0,)
            for cube in result
        )


class TestJson:
    @pytest.fixture
    def mined(self, paper_ds, paper_thresholds):
        return mine(paper_ds, paper_thresholds)

    def test_round_trip(self, paper_ds, mined):
        text = result_to_json(mined, paper_ds)
        rebuilt = result_from_json(text)
        assert rebuilt.same_cubes(mined)
        assert rebuilt.thresholds == mined.thresholds
        assert rebuilt.dataset_shape == mined.dataset_shape
        assert rebuilt.algorithm == mined.algorithm

    def test_labels_embedded(self, paper_ds, mined):
        payload = json.loads(result_to_json(mined, paper_ds))
        assert payload["labels"]["columns"] == ["c1", "c2", "c3", "c4", "c5"]

    def test_no_dataset_no_labels(self, mined):
        payload = json.loads(result_to_json(mined))
        assert "labels" not in payload

    def test_minimal_payload(self):
        rebuilt = result_from_json('{"cubes": []}')
        assert len(rebuilt) == 0
        assert rebuilt.thresholds is None


class TestCsv:
    @pytest.fixture
    def mined(self, paper_ds, paper_thresholds):
        return mine(paper_ds, paper_thresholds)

    def test_header_and_rows(self, paper_ds, mined):
        rows = list(csv.reader(_io.StringIO(result_to_csv(mined, paper_ds))))
        assert rows[0] == [
            "h_support", "r_support", "c_support", "heights", "rows", "columns",
        ]
        assert len(rows) == 1 + len(mined)

    def test_label_rendering(self, paper_ds, mined):
        text = result_to_csv(mined, paper_ds)
        assert "h1 h3" in text
        assert "c1 c2 c3" in text

    def test_index_rendering_without_dataset(self, mined):
        rows = list(csv.reader(_io.StringIO(result_to_csv(mined))))
        heights_cell = rows[1][3]
        assert all(token.isdigit() for token in heights_cell.split())

    def test_supports_match(self, paper_ds, mined):
        rows = list(csv.reader(_io.StringIO(result_to_csv(mined, paper_ds))))
        for record, cube in zip(rows[1:], mined):
            assert int(record[0]) == cube.h_support
            assert int(record[1]) == cube.r_support
            assert int(record[2]) == cube.c_support
