"""Tests for 3D association rules and descriptive statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    cube_implication,
    dataset_stats,
    derive_rules,
    result_stats,
)
from repro.api import mine
from repro.core.bitset import mask_of
from repro.core.constraints import Thresholds
from repro.core.cube import Cube
from repro.core.dataset import Dataset3D
from repro.core.result import MiningResult


@pytest.fixture
def mined(paper_ds, paper_thresholds):
    return mine(paper_ds, paper_thresholds)


class TestDeriveRules:
    def test_rules_from_paper_example(self, paper_ds, mined):
        rules = derive_rules(paper_ds, mined, min_confidence=0.5)
        assert rules, "expected some rules from the paper example"
        for rule in rules:
            assert 0.0 < rule.support <= 1.0
            assert 0.5 <= rule.confidence <= 1.0
            assert rule.antecedent & rule.consequent == 0

    def test_confidence_definition(self, paper_ds):
        """Confidence must equal |R(H' x C')| / |R(H' x C1)| exactly."""
        from repro.core.closure import row_support
        from repro.core.bitset import bit_count

        mined = mine(paper_ds, Thresholds(2, 2, 2))
        rules = derive_rules(paper_ds, mined, min_confidence=0.01)
        for rule in rules:
            full = rule.antecedent | rule.consequent
            numerator = bit_count(row_support(paper_ds, rule.heights, full))
            denominator = bit_count(
                row_support(paper_ds, rule.heights, rule.antecedent)
            )
            assert rule.confidence == pytest.approx(numerator / denominator)

    def test_min_confidence_filters(self, paper_ds, mined):
        strict = derive_rules(paper_ds, mined, min_confidence=1.0)
        loose = derive_rules(paper_ds, mined, min_confidence=0.1)
        assert len(strict) <= len(loose)
        assert all(rule.confidence == 1.0 for rule in strict)

    def test_max_antecedent_respected(self, paper_ds, mined):
        from repro.core.bitset import bit_count

        rules = derive_rules(paper_ds, mined, max_antecedent=1)
        assert all(bit_count(rule.antecedent) == 1 for rule in rules)

    def test_sorted_by_confidence(self, paper_ds, mined):
        rules = derive_rules(paper_ds, mined, min_confidence=0.1)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_invalid_parameters(self, paper_ds, mined):
        with pytest.raises(ValueError, match="min_confidence"):
            derive_rules(paper_ds, mined, min_confidence=0.0)
        with pytest.raises(ValueError, match="max_antecedent"):
            derive_rules(paper_ds, mined, max_antecedent=0)

    def test_empty_result_no_rules(self, paper_ds):
        empty = MiningResult(cubes=[])
        assert derive_rules(paper_ds, empty) == []

    def test_format(self, paper_ds, mined):
        rules = derive_rules(paper_ds, mined, min_confidence=0.5)
        text = rules[0].format(paper_ds)
        assert "=>" in text and "confidence=" in text
        assert "c" in text  # column labels present
        plain = str(rules[0])
        assert "=>" in plain


class TestCubeImplication:
    def test_single_rule(self, paper_ds):
        cube = Cube.from_labels(paper_ds, "h1 h3", "r1 r2 r3", "c1 c2 c3")
        rule = cube_implication(paper_ds, cube, mask_of([0]))
        assert rule.consequent == mask_of([1, 2])
        assert rule.confidence == pytest.approx(1.0)

    def test_rejects_bad_antecedent(self, paper_ds):
        cube = Cube.from_labels(paper_ds, "h1 h3", "r1 r2 r3", "c1 c2 c3")
        with pytest.raises(ValueError):
            cube_implication(paper_ds, cube, 0)
        with pytest.raises(ValueError):
            cube_implication(paper_ds, cube, cube.columns)
        with pytest.raises(ValueError):
            cube_implication(paper_ds, cube, mask_of([4]))


class TestDatasetStats:
    def test_paper_example(self, paper_ds):
        stats = dataset_stats(paper_ds)
        assert stats.shape == (3, 4, 5)
        assert stats.n_ones == 44
        assert stats.zeros_per_height == (6, 4, 6)
        assert stats.n_cutters == 10
        assert stats.density == pytest.approx(44 / 60)

    def test_format(self, paper_ds):
        text = dataset_stats(paper_ds).format()
        assert "3 x 4 x 5" in text
        assert "cutters    : 10" in text


class TestResultStats:
    def test_empty_result(self, paper_ds):
        stats = result_stats(paper_ds, MiningResult(cubes=[]))
        assert stats.n_cubes == 0
        assert stats.coverage == 0.0

    def test_paper_example_coverage(self, paper_ds, mined):
        stats = result_stats(paper_ds, mined)
        assert stats.n_cubes == 5
        assert 0.0 < stats.coverage <= 1.0
        assert stats.max_volume == 18  # h1h3 x r1r2r3 x c1c2c3 = 2*3*3

    def test_full_coverage_on_all_ones(self):
        ds = Dataset3D(np.ones((2, 2, 2), dtype=bool))
        result = mine(ds, Thresholds(1, 1, 1))
        stats = result_stats(ds, result)
        assert stats.coverage == 1.0
        assert stats.covered_cells == 8

    def test_format(self, paper_ds, mined):
        text = result_stats(paper_ds, mined).format()
        assert "cubes        : 5" in text
        assert "coverage" in text
