"""Kernel registry, selection precedence, and threading plumbing."""

from __future__ import annotations

import pickle

import pytest

from repro.api import mine
from repro.cli import build_parser
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.core.kernels import (
    DEFAULT_KERNEL,
    KERNEL_ENV_VAR,
    Kernel,
    NumpyKernel,
    PythonIntKernel,
    available_kernels,
    default_kernel_name,
    get_kernel,
    register_kernel,
    resolve_kernel,
)
from repro.datasets import paper_example
from repro.fcp.matrix import BinaryMatrix
from repro.rsm.slices import representative_slice


class TestRegistry:
    def test_builtin_kernels_registered(self):
        assert "python-int" in available_kernels()
        assert "numpy" in available_kernels()

    def test_get_kernel_returns_shared_instance(self):
        assert get_kernel("numpy") is get_kernel("numpy")

    def test_get_kernel_unknown_name(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("gpu-quantum")

    def test_register_requires_name(self):
        class Nameless(PythonIntKernel):
            name = ""

        with pytest.raises(ValueError, match="non-empty string name"):
            register_kernel(Nameless)

    def test_register_custom_kernel(self):
        class Custom(PythonIntKernel):
            name = "custom-test-kernel"

        try:
            register_kernel(Custom)
            assert "custom-test-kernel" in available_kernels()
            assert isinstance(get_kernel("custom-test-kernel"), Custom)
        finally:
            from repro.core import kernels

            kernels._REGISTRY.pop("custom-test-kernel", None)
            kernels._INSTANCES.pop("custom-test-kernel", None)


class TestSelectionPrecedence:
    def test_default_is_python_int(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert default_kernel_name() == DEFAULT_KERNEL == "python-int"
        assert resolve_kernel(None).name == "python-int"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "numpy")
        assert resolve_kernel(None).name == "numpy"

    def test_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "numpy")
        assert resolve_kernel("python-int").name == "python-int"

    def test_instance_passes_through(self):
        instance = NumpyKernel()
        assert resolve_kernel(instance) is instance

    def test_invalid_env_var_mentions_variable(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "no-such-backend")
        with pytest.raises(ValueError, match=KERNEL_ENV_VAR):
            resolve_kernel(None)

    def test_empty_env_var_falls_back(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "")
        assert resolve_kernel(None).name == DEFAULT_KERNEL


class TestDatasetThreading:
    def test_dataset_resolves_lazily_from_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "numpy")
        dataset = paper_example()
        assert dataset.kernel.name == "numpy"

    def test_with_kernel_shares_data(self):
        dataset = paper_example()
        other = dataset.with_kernel("numpy")
        assert other.kernel.name == "numpy"
        assert other.data is dataset.data
        assert other == dataset  # kernel is not part of identity

    def test_with_kernel_same_backend_returns_self(self):
        dataset = paper_example().with_kernel("numpy")
        assert dataset.with_kernel("numpy") is dataset

    def test_transpose_preserves_kernel(self):
        dataset = paper_example().with_kernel("numpy")
        assert dataset.transpose((1, 0, 2)).kernel.name == "numpy"
        assert dataset.canonical_transpose().kernel.name == "numpy"

    def test_reorder_heights_preserves_kernel(self):
        dataset = paper_example().with_kernel("numpy")
        assert dataset.reorder_heights([2, 1, 0]).kernel.name == "numpy"

    def test_pickle_round_trips_kernel_by_name(self):
        dataset = paper_example().with_kernel("numpy")
        clone = pickle.loads(pickle.dumps(dataset))
        assert clone == dataset
        assert clone.kernel.name == "numpy"

    def test_pickle_keeps_default_selection_dynamic(self, monkeypatch):
        dataset = paper_example()
        payload = pickle.dumps(dataset)
        monkeypatch.setenv(KERNEL_ENV_VAR, "numpy")
        assert pickle.loads(payload).kernel.name == "numpy"

    def test_kernel_instance_pickles_by_name(self):
        dataset = paper_example().with_kernel(NumpyKernel())
        clone = pickle.loads(pickle.dumps(dataset))
        assert clone.kernel.name == "numpy"


class TestMatrixThreading:
    def test_representative_slice_inherits_dataset_kernel(self):
        dataset = paper_example().with_kernel("numpy")
        rs = representative_slice(dataset, 0b011)
        assert rs.kernel.name == "numpy"

    def test_matrix_pickle_drops_native_cache(self):
        matrix = BinaryMatrix([0b101, 0b111], 3, kernel="numpy")
        matrix.packed_rows()
        clone = pickle.loads(pickle.dumps(matrix))
        assert clone == matrix
        assert clone.kernel.name == "numpy"

    def test_matrix_equality_ignores_kernel(self):
        a = BinaryMatrix([0b1], 1, kernel="numpy")
        b = BinaryMatrix([0b1], 1, kernel="python-int")
        assert a == b and hash(a) == hash(b)


class TestApiAndCli:
    def test_mine_kernel_argument(self):
        dataset = paper_example()
        result = mine(dataset, Thresholds(2, 2, 2), kernel="numpy")
        baseline = mine(dataset, Thresholds(2, 2, 2))
        assert result.cubes == baseline.cubes

    def test_mine_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            mine(paper_example(), Thresholds(2, 2, 2), kernel="bogus")

    def test_cli_accepts_kernel_flag(self):
        parser = build_parser()
        args = parser.parse_args(
            ["mine", "--input", "x.npz", "--kernel", "numpy"]
        )
        assert args.kernel == "numpy"

    def test_cli_rejects_unknown_kernel(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["mine", "--input", "x.npz", "--kernel", "bogus"])

    def test_cli_mine_with_kernel_end_to_end(self, tmp_path):
        from repro.cli import main
        from repro.datasets import random_tensor

        path = tmp_path / "ds.npz"
        random_tensor((3, 4, 6), 0.6, seed=7).save_npz(path)
        assert main(
            ["mine", "--input", str(path), "--min-h", "2", "--min-r", "2",
             "--min-c", "2", "--kernel", "numpy"]
        ) == 0
