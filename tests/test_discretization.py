"""Tests for the real-valued binarization schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    binarize_by_quantile,
    binarize_by_row_mean,
    binarize_by_zscore,
    binarize_global_threshold,
    binarize_top_k,
)


@pytest.fixture
def values(rng):
    return rng.normal(loc=5.0, scale=2.0, size=(4, 3, 20))


class TestQuantile:
    def test_fraction_of_ones(self, values):
        ds = binarize_by_quantile(values, q=0.7)
        # Roughly the top 30% of each row is marked.
        assert abs(ds.density - 0.3) < 0.1

    def test_monotone_in_q(self, values):
        low = binarize_by_quantile(values, q=0.3)
        high = binarize_by_quantile(values, q=0.8)
        assert low.count_ones() > high.count_ones()
        # Every high-threshold one is also a low-threshold one.
        assert not (high.data & ~low.data).any()

    def test_invalid_q(self, values):
        with pytest.raises(ValueError, match="q must"):
            binarize_by_quantile(values, q=0.0)
        with pytest.raises(ValueError, match="q must"):
            binarize_by_quantile(values, q=1.0)

    def test_rank_validation(self):
        with pytest.raises(ValueError, match="rank-3"):
            binarize_by_quantile(np.zeros((2, 2)))


class TestZScore:
    def test_z_zero_equals_row_mean_rule(self, values):
        assert binarize_by_zscore(values, z=0.0) == binarize_by_row_mean(values)

    def test_stricter_with_larger_z(self, values):
        loose = binarize_by_zscore(values, z=0.5)
        strict = binarize_by_zscore(values, z=2.0)
        assert strict.count_ones() < loose.count_ones()
        assert not (strict.data & ~loose.data).any()

    def test_constant_rows_all_zero(self):
        values = np.full((2, 2, 5), 3.0)
        ds = binarize_by_zscore(values, z=1.0)
        assert ds.count_ones() == 0

    def test_negative_z_rejected(self, values):
        with pytest.raises(ValueError, match="z must"):
            binarize_by_zscore(values, z=-1.0)


class TestTopK:
    def test_exact_count_per_row(self, values):
        k = 4
        ds = binarize_top_k(values, k=k)
        per_row = ds.data.sum(axis=2)
        assert (per_row == k).all()

    def test_marks_the_largest(self, rng):
        values = np.zeros((1, 1, 6))
        values[0, 0] = [1.0, 9.0, 2.0, 8.0, 3.0, 7.0]
        ds = binarize_top_k(values, k=3)
        assert list(np.flatnonzero(ds.data[0, 0])) == [1, 3, 5]

    def test_k_bounds(self, values):
        with pytest.raises(ValueError, match="k must"):
            binarize_top_k(values, k=0)
        with pytest.raises(ValueError, match="k must"):
            binarize_top_k(values, k=values.shape[2] + 1)

    def test_k_equals_m_all_ones(self, values):
        ds = binarize_top_k(values, k=values.shape[2])
        assert ds.density == 1.0


class TestGlobalThreshold:
    def test_simple(self):
        values = np.array([[[1.0, 5.0, 3.0]]])
        ds = binarize_global_threshold(values, threshold=2.5)
        assert list(ds.data[0, 0]) == [False, True, True]

    def test_extremes(self, values):
        assert binarize_global_threshold(values, values.max()).count_ones() == 0
        below_min = float(values.min()) - 1.0
        assert binarize_global_threshold(values, below_min).density == 1.0

    def test_labels_pass_through(self):
        values = np.ones((1, 1, 2))
        ds = binarize_global_threshold(
            values, 0.5, column_labels=["gA", "gB"]
        )
        assert ds.column_labels == ("gA", "gB")
