"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.datasets import paper_example


@pytest.fixture
def paper_ds() -> Dataset3D:
    """The paper's Table 1 running example (3 x 4 x 5)."""
    return paper_example()


@pytest.fixture
def paper_thresholds() -> Thresholds:
    """The thresholds used throughout the paper's example: all 2."""
    return Thresholds(2, 2, 2)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_dataset(
    rng: np.random.Generator,
    max_dim: int = 6,
    density_range: tuple[float, float] = (0.2, 0.95),
) -> Dataset3D:
    """A small random dataset for oracle comparisons."""
    l, n, m = rng.integers(1, max_dim + 1, size=3)
    density = rng.uniform(*density_range)
    return Dataset3D(rng.random((l, n, m)) < density)
