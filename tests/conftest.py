"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.datasets import paper_example


def pytest_configure(config: pytest.Config) -> None:
    """Fail fast when a required kernel backend cannot run.

    CI legs that exist to exercise a specific backend (the native build
    matrix, the kernel-matrix job) export ``REPRO_REQUIRE_KERNELS`` so
    that a broken extension fails the run loudly instead of letting
    kernel auto-selection degrade to numpy and pass on the wrong
    backend.
    """
    required = os.environ.get("REPRO_REQUIRE_KERNELS", "")
    if not required:
        return
    from repro.core.kernels import available_kernels, native_import_error

    missing = {
        name.strip() for name in required.split(",") if name.strip()
    } - set(available_kernels())
    if missing:
        detail = ""
        if "native" in missing:
            detail = f" (native: {native_import_error() or 'not built'})"
        raise pytest.UsageError(
            f"REPRO_REQUIRE_KERNELS demands unavailable kernel backends "
            f"{sorted(missing)}{detail}; refusing to run the suite on a "
            f"silent fallback"
        )


@pytest.fixture
def paper_ds() -> Dataset3D:
    """The paper's Table 1 running example (3 x 4 x 5)."""
    return paper_example()


@pytest.fixture
def paper_thresholds() -> Thresholds:
    """The thresholds used throughout the paper's example: all 2."""
    return Thresholds(2, 2, 2)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_dataset(
    rng: np.random.Generator,
    max_dim: int = 6,
    density_range: tuple[float, float] = (0.2, 0.95),
) -> Dataset3D:
    """A small random dataset for oracle comparisons."""
    l, n, m = rng.integers(1, max_dim + 1, size=3)
    density = rng.uniform(*density_range)
    return Dataset3D(rng.random((l, n, m)) < density)
