"""Tests for parallel task generation, execution and the simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.core.reference import reference_mine
from repro.cubeminer import cubeminer_mine
from repro.cubeminer.cutter import HeightOrder, build_cutters
from repro.parallel import (
    CommunicationModel,
    cubeminer_tasks,
    measure_cubeminer_task_times,
    measure_rsm_task_times,
    parallel_cubeminer_mine,
    parallel_rsm_mine,
    rsm_tasks,
    schedule_makespan,
    simulate_response_times,
)
from tests.conftest import random_dataset


class TestRSMTasks:
    def test_task_count_matches_subsets(self):
        assert len(rsm_tasks(4, 2)) == 6 + 4 + 1

    def test_tasks_unique(self):
        tasks = rsm_tasks(5, 1)
        assert len(tasks) == len(set(tasks)) == 31


class TestCubeMinerTasks:
    def test_expansion_reaches_min_tasks(self, paper_ds, paper_thresholds):
        cutters = build_cutters(paper_ds)
        tasks, done = cubeminer_tasks(paper_ds, paper_thresholds, cutters, 4)
        assert len(tasks) >= 4 or (len(tasks) == 0 and len(done) > 0)

    def test_replay_equals_sequential(self, rng):
        for _ in range(15):
            ds = random_dataset(rng)
            th = Thresholds(*(int(x) for x in rng.integers(1, 3, size=3)))
            cutters = build_cutters(ds, HeightOrder.ZERO_DECREASING)
            tasks, done = cubeminer_tasks(ds, th, cutters, 6)
            from repro.cubeminer.algorithm import CubeMinerStats, _run

            replayed, _ = _run(
                ds, th, cutters, [t.as_stack_item() for t in tasks], CubeMinerStats()
            )
            combined = set(done) | set(replayed)
            sequential = cubeminer_mine(ds, th).cube_set()
            assert combined == sequential

    def test_infeasible_thresholds_no_tasks(self, paper_ds):
        cutters = build_cutters(paper_ds)
        tasks, done = cubeminer_tasks(paper_ds, Thresholds(9, 9, 9), cutters, 4)
        assert tasks == [] and done == []

    def test_invalid_min_tasks(self, paper_ds, paper_thresholds):
        with pytest.raises(ValueError):
            cubeminer_tasks(paper_ds, paper_thresholds, build_cutters(paper_ds), 0)

    def test_task_round_trip_format(self, paper_ds, paper_thresholds):
        cutters = build_cutters(paper_ds)
        tasks, _ = cubeminer_tasks(paper_ds, paper_thresholds, cutters, 2)
        for task in tasks:
            (masks, index, tl, tm) = task.as_stack_item()
            assert masks == (task.heights, task.rows, task.columns)
            assert (index, tl, tm) == (task.cutter_index, task.track_left, task.track_middle)


class TestParallelExecution:
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_parallel_cubeminer_matches_reference(self, rng, n_workers):
        ds = random_dataset(rng, max_dim=5)
        th = Thresholds(1, 1, 1)
        result = parallel_cubeminer_mine(ds, th, n_workers=n_workers)
        assert result.same_cubes(reference_mine(ds, th))

    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_parallel_rsm_matches_reference(self, rng, n_workers):
        ds = random_dataset(rng, max_dim=5)
        th = Thresholds(1, 1, 1)
        result = parallel_rsm_mine(ds, th, n_workers=n_workers)
        assert result.same_cubes(reference_mine(ds, th))

    def test_parallel_rsm_base_axes(self, paper_ds, paper_thresholds):
        for axis in ("height", "row", "column"):
            result = parallel_rsm_mine(
                paper_ds, paper_thresholds, n_workers=2, base_axis=axis
            )
            assert len(result) == 5

    def test_invalid_worker_count(self, paper_ds, paper_thresholds):
        with pytest.raises(ValueError):
            parallel_rsm_mine(paper_ds, paper_thresholds, n_workers=0)
        with pytest.raises(ValueError):
            parallel_cubeminer_mine(paper_ds, paper_thresholds, n_workers=-1)

    def test_invalid_fcp_name_fails_before_fork(self, paper_ds, paper_thresholds):
        with pytest.raises(ValueError, match="unknown 2D miner"):
            parallel_rsm_mine(
                paper_ds, paper_thresholds, n_workers=2, fcp_miner="bogus"
            )

    def test_stats_recorded(self, paper_ds, paper_thresholds):
        result = parallel_cubeminer_mine(paper_ds, paper_thresholds, n_workers=2)
        assert result.stats["n_workers"] == 2
        assert "n_tasks" in result.stats


class TestScheduler:
    def test_single_processor_sums(self):
        assert schedule_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_many_processors_bounded_by_longest(self):
        assert schedule_makespan([5.0, 1.0, 1.0], 10) == pytest.approx(5.0)

    def test_lpt_classic_instance(self):
        # LPT on {3,3,2,2,2} with 2 procs gives 7 — the textbook instance
        # showing LPT is a 7/6 approximation (optimum is 6).
        assert schedule_makespan([3, 3, 2, 2, 2], 2) == pytest.approx(7.0)

    def test_lpt_perfect_split(self):
        assert schedule_makespan([4, 3, 3, 2], 2) == pytest.approx(6.0)

    def test_fifo_can_be_worse(self):
        times = [1, 1, 1, 1, 4]
        assert schedule_makespan(times, 2, strategy="fifo") >= schedule_makespan(
            times, 2, strategy="lpt"
        )

    def test_empty_tasks(self):
        assert schedule_makespan([], 4) == 0.0

    def test_monotone_in_processors(self):
        times = list(np.random.default_rng(0).uniform(0.1, 2.0, size=40))
        spans = [schedule_makespan(times, p) for p in (1, 2, 4, 8, 16)]
        assert all(a >= b for a, b in zip(spans, spans[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            schedule_makespan([1.0], 0)
        with pytest.raises(ValueError):
            schedule_makespan([-1.0], 2)
        with pytest.raises(ValueError, match="strategy"):
            schedule_makespan([1.0], 2, strategy="magic")


class TestSimulatedResponse:
    def test_saturation_shape(self):
        """Figure 6's shape: gains drop beyond the straggler limit."""
        times = [4.0] + [0.5] * 28
        response = simulate_response_times(times, [1, 2, 4, 8, 16, 32])
        assert response[1] == pytest.approx(18.0)
        assert response[2] < response[1]
        assert response[8] < response[2]
        # Once the 4.0s straggler dominates, more processors do nothing.
        assert response[32] == pytest.approx(response[16])

    def test_communication_cost_degrades_high_p(self):
        times = [0.5] * 16
        comm = CommunicationModel(broadcast_seconds_per_processor=0.1)
        response = simulate_response_times(times, [1, 8, 32], communication=comm)
        assert response[8] < response[1]
        assert response[32] > response[8]  # broadcast overhead dominates

    def test_zero_communication_default(self):
        response = simulate_response_times([1.0], [1, 2])
        assert response[1] == response[2] == pytest.approx(1.0)


class TestTaskTimeMeasurement:
    def test_rsm_task_times_cover_all_slices(self, paper_ds, paper_thresholds):
        times = measure_rsm_task_times(
            paper_ds, paper_thresholds, base_axis="height"
        )
        assert len(times) == 4  # the 4 subsets of Table 2
        assert all(t >= 0 for t in times)

    def test_rsm_infeasible_gives_empty(self, paper_ds):
        assert measure_rsm_task_times(paper_ds, Thresholds(9, 9, 9)) == []

    def test_cubeminer_task_times(self, paper_ds, paper_thresholds):
        times = measure_cubeminer_task_times(
            paper_ds, paper_thresholds, min_tasks=4
        )
        assert all(t >= 0 for t in times)

    def test_simulated_pipeline_end_to_end(self, paper_ds, paper_thresholds):
        times = measure_rsm_task_times(paper_ds, paper_thresholds)
        response = simulate_response_times(times, [1, 2, 4])
        assert response[4] <= response[2] <= response[1]
