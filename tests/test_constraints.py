"""Unit tests for Thresholds."""

from __future__ import annotations

import pytest

from repro.core.constraints import Thresholds
from repro.core.cube import Cube


class TestValidation:
    def test_defaults(self):
        th = Thresholds()
        assert th.as_tuple() == (1, 1, 1)

    def test_zero_raises(self):
        with pytest.raises(ValueError, match="min_h"):
            Thresholds(0, 1, 1)
        with pytest.raises(ValueError, match="min_r"):
            Thresholds(1, 0, 1)
        with pytest.raises(ValueError, match="min_c"):
            Thresholds(1, 1, 0)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            Thresholds(-3, 1, 1)

    def test_non_int_raises(self):
        with pytest.raises(TypeError):
            Thresholds(1.5, 1, 1)  # type: ignore[arg-type]

    def test_frozen(self):
        th = Thresholds(2, 2, 2)
        with pytest.raises(AttributeError):
            th.min_h = 3  # type: ignore[misc]


class TestSatisfiedBy:
    def test_exact_boundary(self):
        th = Thresholds(2, 3, 4)
        cube = Cube.from_indices(range(2), range(3), range(4))
        assert th.satisfied_by(cube)

    def test_one_axis_below(self):
        th = Thresholds(2, 3, 4)
        assert not th.satisfied_by(Cube.from_indices(range(1), range(3), range(4)))
        assert not th.satisfied_by(Cube.from_indices(range(2), range(2), range(4)))
        assert not th.satisfied_by(Cube.from_indices(range(2), range(3), range(3)))

    def test_above(self):
        th = Thresholds(1, 1, 1)
        assert th.satisfied_by(Cube.from_indices(range(5), range(5), range(5)))


class TestPermute:
    def test_identity(self):
        th = Thresholds(2, 3, 4)
        assert th.permute((0, 1, 2)) == th

    def test_swap_first_two(self):
        th = Thresholds(2, 3, 4)
        assert th.permute((1, 0, 2)) == Thresholds(3, 2, 4)

    def test_rotate(self):
        th = Thresholds(2, 3, 4)
        assert th.permute((2, 0, 1)) == Thresholds(4, 2, 3)

    def test_invalid(self):
        with pytest.raises(ValueError, match="permutation"):
            Thresholds(1, 1, 1).permute((0, 0, 1))

    def test_permute_matches_transpose_semantics(self, paper_ds):
        # Thresholds permuted with the same order as a dataset transpose
        # must keep each threshold attached to its original axis data.
        th = Thresholds(3, 4, 5)
        order = (2, 0, 1)
        transposed = paper_ds.transpose(order)
        permuted = th.permute(order)
        assert permuted.min_h == 5 and transposed.n_heights == 5
        assert permuted.min_r == 3 and transposed.n_rows == 3
        assert permuted.min_c == 4 and transposed.n_columns == 4


class TestFeasibility:
    def test_feasible(self):
        assert Thresholds(2, 2, 2).feasible_for_shape((2, 2, 2))

    def test_infeasible_each_axis(self):
        th = Thresholds(3, 3, 3)
        assert not th.feasible_for_shape((2, 5, 5))
        assert not th.feasible_for_shape((5, 2, 5))
        assert not th.feasible_for_shape((5, 5, 2))

    def test_str(self):
        assert str(Thresholds(2, 3, 4)) == "minH=2, minR=3, minC=4"
