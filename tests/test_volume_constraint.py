"""Tests for the minimum-volume constraint (min_volume).

The volume constraint is monotone down CubeMiner's tree (sons only
lose cells), so it prunes branches; RSM applies it as an exact filter.
Every miner must produce the same answer as the oracle under it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import mine
from repro.core.constraints import Thresholds
from repro.core.cube import Cube
from repro.core.dataset import Dataset3D
from repro.core.reference import reference_mine
from repro.cubeminer import cubeminer_mine
from repro.cubeminer.trace import PruneReason, trace_tree
from repro.options import ParallelOptions
from repro.rsm import append_height_slice, rsm_mine
from tests.conftest import random_dataset


class TestThresholdsWithVolume:
    def test_default_is_inert(self):
        assert Thresholds(2, 2, 2).min_volume == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="min_volume"):
            Thresholds(1, 1, 1, min_volume=0)

    def test_satisfied_by_includes_volume(self):
        th = Thresholds(1, 1, 1, min_volume=9)
        assert th.satisfied_by(Cube.from_indices(range(3), range(3), range(1)))
        assert not th.satisfied_by(Cube.from_indices(range(2), range(2), range(2)))

    def test_permute_carries_volume(self):
        th = Thresholds(2, 3, 4, min_volume=30)
        assert th.permute((2, 0, 1)).min_volume == 30

    def test_feasibility_includes_volume(self):
        th = Thresholds(1, 1, 1, min_volume=100)
        assert not th.feasible_for_shape((2, 2, 2))
        assert th.feasible_for_shape((5, 5, 5))

    def test_str_mentions_volume_when_set(self):
        assert "minVolume=8" in str(Thresholds(1, 1, 1, min_volume=8))
        assert "minVolume" not in str(Thresholds(1, 1, 1))


class TestPaperExampleWithVolume:
    def test_volume_filters_small_cubes(self, paper_ds):
        # Volumes of the 5 FCCs: 8, 18, 12, 18, 18.
        result = mine(paper_ds, Thresholds(2, 2, 2, min_volume=13))
        assert {cube.volume for cube in result} == {18}
        assert len(result) == 3

    def test_volume_one_is_identity(self, paper_ds, paper_thresholds):
        plain = mine(paper_ds, paper_thresholds)
        with_volume = mine(paper_ds, Thresholds(2, 2, 2, min_volume=1))
        assert plain.same_cubes(with_volume)

    def test_impossible_volume_empties_answer(self, paper_ds):
        assert len(mine(paper_ds, Thresholds(2, 2, 2, min_volume=61))) == 0


class TestMinerEquivalenceUnderVolume:
    def test_all_miners_match_oracle(self, rng):
        for _ in range(25):
            ds = random_dataset(rng)
            th = Thresholds(
                *(int(x) for x in rng.integers(1, 3, size=3)),
                min_volume=int(rng.integers(1, 15)),
            )
            ref = reference_mine(ds, th)
            assert cubeminer_mine(ds, th).same_cubes(ref)
            assert rsm_mine(ds, th).same_cubes(ref)

    def test_parallel_matches(self, rng):
        ds = random_dataset(rng, max_dim=5)
        th = Thresholds(1, 1, 1, min_volume=6)
        ref = reference_mine(ds, th)
        two_workers = ParallelOptions(n_workers=2)
        assert mine(
            ds, th, algorithm="parallel-cubeminer", options=two_workers
        ).same_cubes(ref)
        assert mine(
            ds, th, algorithm="parallel-rsm", options=two_workers
        ).same_cubes(ref)

    def test_volume_pruning_reduces_search(self):
        rng = np.random.default_rng(2)
        ds = Dataset3D(rng.random((6, 8, 30)) < 0.6)
        plain = cubeminer_mine(ds, Thresholds(2, 2, 2))
        constrained = cubeminer_mine(ds, Thresholds(2, 2, 2, min_volume=40))
        assert constrained.stats["nodes_visited"] <= plain.stats["nodes_visited"]
        assert constrained.stats["pruned_min_volume"] > 0

    def test_incremental_respects_volume(self, rng):
        for _ in range(10):
            ds = random_dataset(rng, max_dim=4)
            th = Thresholds(1, 1, 1, min_volume=int(rng.integers(2, 10)))
            old_result = mine(ds, th)
            new_slice = rng.random((ds.n_rows, ds.n_columns)) < 0.6
            extended, updated = append_height_slice(ds, old_result, new_slice, th)
            assert updated.same_cubes(mine(extended, th))


class TestTraceWithVolume:
    def test_trace_matches_miner(self, paper_ds):
        th = Thresholds(2, 2, 2, min_volume=13)
        tree = trace_tree(paper_ds, th)
        from repro.cubeminer.cutter import HeightOrder

        mined = cubeminer_mine(paper_ds, th, order=HeightOrder.ORIGINAL)
        assert set(tree.leaves()) == mined.cube_set()

    def test_volume_prune_reason_appears(self, paper_ds):
        tree = trace_tree(paper_ds, Thresholds(2, 2, 2, min_volume=13))
        reasons = {node.pruned for node in tree.iter_nodes() if node.pruned}
        assert PruneReason.MIN_VOLUME in reasons
