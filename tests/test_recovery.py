"""Tests for recovery metrics against planted ground truth."""

from __future__ import annotations

import pytest

from repro.analysis.recovery import (
    cube_jaccard,
    recovery_report,
    relevance,
    specificity,
)
from repro.api import mine
from repro.core.constraints import Thresholds
from repro.core.cube import Cube
from repro.core.result import MiningResult
from repro.datasets import drop_ones, planted_tensor


class TestCubeJaccard:
    def test_identical(self):
        cube = Cube.from_indices([0, 1], [0], [0, 1, 2])
        assert cube_jaccard(cube, cube) == 1.0

    def test_disjoint(self):
        a = Cube.from_indices([0], [0], [0])
        b = Cube.from_indices([1], [1], [1])
        assert cube_jaccard(a, b) == 0.0

    def test_partial_overlap(self):
        a = Cube.from_indices([0], [0], [0, 1])     # 2 cells
        b = Cube.from_indices([0], [0], [1, 2])     # 2 cells, 1 shared
        assert cube_jaccard(a, b) == pytest.approx(1 / 3)

    def test_axis_disjoint_means_zero(self):
        # Overlap on two axes but not the third -> empty intersection.
        a = Cube.from_indices([0], [0, 1], [0, 1])
        b = Cube.from_indices([1], [0, 1], [0, 1])
        assert cube_jaccard(a, b) == 0.0

    def test_symmetric(self):
        a = Cube.from_indices([0, 1], [0, 1], [0])
        b = Cube.from_indices([1], [0, 1, 2], [0])
        assert cube_jaccard(a, b) == cube_jaccard(b, a)

    def test_empty_cubes(self):
        assert cube_jaccard(Cube(0, 0, 0), Cube(0, 0, 0)) == 0.0


class TestRecoveryScores:
    @pytest.fixture
    def planted(self):
        return planted_tensor(
            (5, 8, 25), n_blocks=3, block_shape=(2, 3, 6),
            background_density=0.02, seed=12,
        )

    def test_clean_recovery_near_perfect(self, planted):
        result = mine(planted.dataset, Thresholds(2, 2, 2))
        report = recovery_report(planted.planted, result)
        # Clean background: every block is inside some closed cube.
        assert report.relevance > 0.9

    def test_noise_degrades_relevance(self, planted):
        clean = mine(planted.dataset, Thresholds(2, 2, 2))
        noisy_ds = drop_ones(planted.dataset, 0.25, seed=13)
        noisy = mine(noisy_ds, Thresholds(2, 2, 2))
        assert relevance(planted.planted, noisy) < relevance(
            planted.planted, clean
        )

    def test_specificity_of_truth_is_one(self, planted):
        """Scoring the truth against itself is perfect."""
        truth = list(planted.planted)
        assert specificity(truth, truth) == 1.0
        assert relevance(truth, truth) == 1.0

    def test_empty_result_scores_zero(self, planted):
        empty = MiningResult(cubes=[])
        assert relevance(planted.planted, empty) == 0.0
        assert specificity(planted.planted, empty) == 0.0

    def test_f1_harmonic_mean(self):
        report = recovery_report(
            [Cube.from_indices([0], [0], [0])],
            [Cube.from_indices([0], [0], [0])],
        )
        assert report.f1 == 1.0
        empty = recovery_report(
            [Cube.from_indices([0], [0], [0])], MiningResult(cubes=[])
        )
        assert empty.f1 == 0.0

    def test_per_block_matches(self, planted):
        result = mine(planted.dataset, Thresholds(2, 2, 2))
        report = recovery_report(planted.planted, result)
        assert len(report.matches) == 3
        for match in report.matches:
            assert 0.0 <= match.jaccard <= 1.0
            if match.jaccard > 0:
                assert match.matched is not None

    def test_summary(self, planted):
        result = mine(planted.dataset, Thresholds(2, 2, 2))
        text = recovery_report(planted.planted, result).summary()
        assert "relevance=" in text and "f1=" in text

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            relevance([], MiningResult(cubes=[]))
        with pytest.raises(ValueError):
            specificity([], MiningResult(cubes=[]))
        with pytest.raises(ValueError):
            recovery_report([], MiningResult(cubes=[]))
