"""Tests for internal helpers not covered through the main paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.permute import (
    inverse_order,
    map_cube_from_transposed,
    order_moving_axis_first,
)
from repro.core.cube import Cube
from repro.parallel.executor import _chunked


class TestPermuteHelpers:
    def test_inverse_order_round_trips(self):
        for order in [(0, 1, 2), (1, 0, 2), (2, 0, 1), (0, 2, 1), (2, 1, 0), (1, 2, 0)]:
            inv = inverse_order(order)
            for old_axis in range(3):
                assert order[inv[old_axis]] == old_axis

    def test_inverse_order_invalid(self):
        with pytest.raises(ValueError, match="permutation"):
            inverse_order((0, 0, 2))

    def test_map_cube_identity(self):
        cube = Cube(0b1, 0b11, 0b111)
        assert map_cube_from_transposed(cube, (0, 1, 2)) == cube

    def test_map_cube_swap(self):
        # Transposed dataset had (heights, rows) swapped; map back.
        cube = Cube(0b1, 0b11, 0b111)
        mapped = map_cube_from_transposed(cube, (1, 0, 2))
        assert mapped == Cube(0b11, 0b1, 0b111)

    def test_map_cube_rotation(self):
        cube = Cube(0b1, 0b10, 0b100)
        # order (2,0,1): new0=old2, new1=old0, new2=old1.
        mapped = map_cube_from_transposed(cube, (2, 0, 1))
        assert mapped == Cube(0b10, 0b100, 0b1)

    def test_order_moving_axis_first(self):
        assert order_moving_axis_first(0) == (0, 1, 2)
        assert order_moving_axis_first(1) == (1, 0, 2)
        assert order_moving_axis_first(2) == (2, 0, 1)
        with pytest.raises(ValueError):
            order_moving_axis_first(3)

    def test_transpose_then_map_is_identity(self, paper_ds, rng):
        """End-to-end: a cube of the transposed dataset, mapped back,
        addresses the same cells of the original."""
        for order in [(1, 0, 2), (2, 0, 1), (2, 1, 0)]:
            transposed = paper_ds.transpose(order)
            cube_t = Cube.from_indices([0], [1], [2])
            cube_o = map_cube_from_transposed(cube_t, order)
            value_t = transposed.cell(0, 1, 2)
            value_o = paper_ds.cell(
                cube_o.height_indices()[0],
                cube_o.row_indices()[0],
                cube_o.column_indices()[0],
            )
            assert value_t == value_o


class TestChunking:
    def test_even_split(self):
        assert _chunked(list(range(6)), 3) == [[0, 1], [2, 3], [4, 5]]

    def test_uneven_split_front_loads(self):
        chunks = _chunked(list(range(7)), 3)
        assert chunks == [[0, 1, 2], [3, 4], [5, 6]]

    def test_more_chunks_than_items(self):
        chunks = _chunked([1, 2], 5)
        assert chunks == [[1], [2]]

    def test_single_chunk(self):
        assert _chunked([1, 2, 3], 1) == [[1, 2, 3]]

    def test_preserves_order_and_content(self):
        items = list(range(23))
        chunks = _chunked(items, 4)
        flattened = [x for chunk in chunks for x in chunk]
        assert flattened == items


class TestCubeMinerStats:
    def test_total_pruned_sums_all_counters(self):
        from repro.cubeminer import CubeMinerStats

        stats = CubeMinerStats(
            pruned_min_h=1,
            pruned_min_r=2,
            pruned_min_c=3,
            pruned_min_volume=4,
            pruned_left_track=5,
            pruned_middle_track=6,
            pruned_height_unclosed=7,
            pruned_row_unclosed=8,
        )
        assert stats.total_pruned() == 36

    def test_as_dict_round_trip(self):
        from repro.cubeminer import CubeMinerStats

        stats = CubeMinerStats(nodes_visited=5)
        assert stats.as_dict()["nodes_visited"] == 5


class TestRsmTraceGuard:
    def test_subset_guard(self):
        from repro.core.constraints import Thresholds
        from repro.core.dataset import Dataset3D
        from repro.rsm.trace import trace_rsm

        ds = Dataset3D(np.ones((12, 2, 2), dtype=bool))
        with pytest.raises(ValueError, match="guard"):
            trace_rsm(ds, Thresholds(1, 1, 1))

    def test_infeasible_returns_empty(self, paper_ds):
        from repro.core.constraints import Thresholds
        from repro.rsm.trace import trace_rsm

        assert trace_rsm(paper_ds, Thresholds(4, 1, 1)) == []


class TestFCPMinerBase:
    def test_repr(self):
        from repro.fcp import DMiner

        assert repr(DMiner()) == "DMiner()"

    def test_abstract_cannot_instantiate(self):
        from repro.fcp.base import FCPMiner

        with pytest.raises(TypeError):
            FCPMiner()  # type: ignore[abstract]
