"""Differential tests for the shared-memory dataset hand-off.

The acceptance bar: a pooled run that ships workers a
:class:`~repro.parallel.shm.ShmDatasetRef` must be *bit-identical* to
the legacy pickled-dataset run and to the sequential miner — same cube
list, same mining counters — on both kernels, and it must clean up
after itself: after every run (clean, cancelled, or fault-recovered)
the process-wide segment registry is empty and ``/dev/shm`` holds no
``repro-fcc-`` leftovers.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.core.constraints import Thresholds
from repro.core.kernels import available_kernels, get_kernel
from repro.cubeminer.algorithm import cubeminer_mine
from repro.datasets import paper_example, random_tensor
from repro.parallel import (
    SHM_PREFIX,
    FaultPlan,
    ShmDatasetRef,
    ShmError,
    ShmManager,
    active_segments,
    attach_dataset,
    parallel_cubeminer_mine,
    parallel_rsm_mine,
    publish_dataset,
)
from repro.rsm.algorithm import rsm_mine

DRIVERS = [parallel_rsm_mine, parallel_cubeminer_mine]
SEQUENTIAL = {parallel_rsm_mine: rsm_mine, parallel_cubeminer_mine: cubeminer_mine}
KERNELS = available_kernels()

#: Driver-side transport counters — the only metrics allowed to differ
#: between an shm run and a pickled run of the same mining config.
TRANSPORT_FIELDS = ("shm_datasets_published", "shm_copy_fallbacks")


def cube_triples(result):
    return [(c.heights, c.rows, c.columns) for c in result]


def mining_counters(result):
    d = result.stats.metrics.as_dict()
    for name in TRANSPORT_FIELDS:
        d.pop(name)
    return d


def assert_no_leaks():
    assert active_segments() == ()
    if os.path.isdir("/dev/shm"):
        ours = [n for n in os.listdir("/dev/shm") if n.startswith(SHM_PREFIX)]
        assert ours == []


@pytest.fixture(scope="module")
def dataset():
    return random_tensor((6, 12, 18), 0.35, seed=3)


@pytest.fixture(scope="module")
def thresholds():
    return Thresholds(2, 2, 2)


# ----------------------------------------------------------------------
# Publish / attach roundtrip
# ----------------------------------------------------------------------
class TestPublishAttach:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_roundtrip_preserves_every_bit(self, dataset, kernel):
        ds = dataset.with_kernel(kernel)
        with ShmManager() as manager:
            ref = publish_dataset(ds, manager)
            attachment = attach_dataset(ref)
            try:
                assert attachment.dataset.shape == ds.shape
                assert np.array_equal(attachment.dataset.data, ds.data)
                assert attachment.dataset.kernel.name == kernel
                assert attachment.zero_copy == ds.kernel.words_native
            finally:
                attachment.close()
        assert_no_leaks()

    def test_ref_is_tiny_compared_to_the_dataset(self, dataset):
        with ShmManager() as manager:
            ref = publish_dataset(dataset, manager)
            assert len(pickle.dumps(ref)) < 512
            assert len(pickle.dumps(ref)) < len(pickle.dumps(dataset))
        assert_no_leaks()

    def test_attach_can_override_the_kernel(self, dataset):
        with ShmManager() as manager:
            ref = publish_dataset(dataset.with_kernel("numpy"), manager)
            attachment = attach_dataset(ref, kernel="python-int")
            try:
                assert attachment.dataset.kernel.name == "python-int"
                assert not attachment.zero_copy
                assert np.array_equal(attachment.dataset.data, dataset.data)
            finally:
                attachment.close()
        assert_no_leaks()

    def test_fingerprint_tamper_detected(self, dataset):
        with ShmManager() as manager:
            ref = publish_dataset(dataset, manager)
            bad = ShmDatasetRef(
                segment=ref.segment,
                shape=ref.shape,
                nbytes=ref.nbytes,
                fingerprint="0" * 64,
                kernel=ref.kernel,
            )
            # An owned segment short-circuits verification; a fresh
            # attach (forced via a clean registry view) must reject it.
            from repro.parallel import shm as shm_mod

            held = shm_mod._CREATED.pop(ref.segment)
            try:
                with pytest.raises(ShmError, match="fingerprint"):
                    attach_dataset(bad)
                attachment = attach_dataset(ref)
                attachment.close()
            finally:
                shm_mod._CREATED[ref.segment] = held
        assert_no_leaks()

    def test_shape_nbytes_mismatch_rejected(self, dataset):
        with ShmManager() as manager:
            ref = publish_dataset(dataset, manager)
            bad = ShmDatasetRef(
                segment=ref.segment,
                shape=ref.shape,
                nbytes=ref.nbytes + 8,
                fingerprint=ref.fingerprint,
                kernel=ref.kernel,
            )
            with pytest.raises(ShmError, match="bytes"):
                attach_dataset(bad)
        assert_no_leaks()

    def test_attach_after_unlink_raises(self, dataset):
        manager = ShmManager()
        ref = publish_dataset(dataset, manager)
        manager.cleanup()
        with pytest.raises(ShmError, match="does not exist"):
            attach_dataset(ref)
        assert_no_leaks()

    def test_empty_dataset_cannot_publish(self):
        from repro.core.dataset import Dataset3D

        empty = Dataset3D(np.zeros((0, 3, 4), dtype=bool))
        with ShmManager() as manager:
            with pytest.raises(ShmError, match="empty"):
                publish_dataset(empty, manager)
        assert_no_leaks()

    def test_manager_cleanup_is_idempotent(self, dataset):
        manager = ShmManager()
        publish_dataset(dataset, manager)
        assert len(manager.segments) == 1
        manager.cleanup()
        manager.cleanup()
        assert manager.segments == ()
        assert_no_leaks()


# ----------------------------------------------------------------------
# Differential: shm == pickled == sequential
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("driver", DRIVERS)
    def test_shm_pickled_sequential_bit_identical(
        self, dataset, thresholds, driver, kernel
    ):
        seq = SEQUENTIAL[driver](dataset.with_kernel(kernel), thresholds)
        shm_run = driver(
            dataset, thresholds, n_workers=2, kernel=kernel, use_shm=True
        )
        pickled = driver(
            dataset, thresholds, n_workers=2, kernel=kernel, use_shm=False
        )
        assert sorted(cube_triples(shm_run)) == sorted(cube_triples(seq))
        assert cube_triples(shm_run) == cube_triples(pickled)
        # Node-count parity: identical mining work, not just results.
        assert mining_counters(shm_run) == mining_counters(pickled)
        assert shm_run.stats.metrics.shm_datasets_published == 1
        assert pickled.stats.metrics.shm_datasets_published == 0
        assert shm_run.stats.extra["shm"]["enabled"]
        # Packed-word backends (numpy, native) adopt the shm buffer
        # without copying; python-int unpacks and copies.
        assert (
            shm_run.stats.extra["shm"]["zero_copy"]
            == get_kernel(kernel).words_native
        )
        assert not pickled.stats.extra["shm"]["enabled"]
        assert_no_leaks()

    def test_auto_enables_shm_for_pooled_runs(self, dataset, thresholds):
        result = parallel_rsm_mine(dataset, thresholds, n_workers=2)
        assert result.stats.extra["shm"]["enabled"]
        assert result.stats.metrics.shm_datasets_published == 1
        assert_no_leaks()

    def test_inline_run_skips_shm_by_default(self, dataset, thresholds):
        result = parallel_rsm_mine(dataset, thresholds, n_workers=1)
        assert not result.stats.extra["shm"]["enabled"]
        assert result.stats.metrics.shm_datasets_published == 0
        assert_no_leaks()

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_forced_shm_works_inline(self, dataset, thresholds, driver):
        forced = driver(dataset, thresholds, n_workers=1, use_shm=True)
        plain = driver(dataset, thresholds, n_workers=1, use_shm=False)
        assert cube_triples(forced) == cube_triples(plain)
        assert forced.stats.metrics.shm_datasets_published == 1
        assert_no_leaks()

    def test_copy_fallback_counted_on_python_int(self, dataset, thresholds):
        result = parallel_rsm_mine(
            dataset, thresholds, n_workers=2, kernel="python-int", use_shm=True
        )
        assert result.stats.metrics.shm_copy_fallbacks == 1
        numpy_run = parallel_rsm_mine(
            dataset, thresholds, n_workers=2, kernel="numpy", use_shm=True
        )
        assert numpy_run.stats.metrics.shm_copy_fallbacks == 0
        assert_no_leaks()

    def test_paper_example_over_shm(self, thresholds):
        ds = paper_example()
        result = parallel_cubeminer_mine(ds, thresholds, n_workers=2, use_shm=True)
        seq = cubeminer_mine(ds, thresholds)
        assert sorted(cube_triples(result)) == sorted(cube_triples(seq))
        assert_no_leaks()


# ----------------------------------------------------------------------
# Faults: recovery must not change results or leak segments
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestShmUnderFaults:
    @pytest.mark.parametrize("driver", DRIVERS)
    def test_crash_and_exception_recovery_parity(self, dataset, thresholds, driver):
        clean = driver(dataset, thresholds, n_workers=2, use_shm=True)
        plan = FaultPlan.random(8, 3, kinds=("crash", "exception"), seed=11)
        faulty = driver(
            dataset,
            thresholds,
            n_workers=2,
            use_shm=True,
            fault_plan=plan,
            backoff=0.01,
        )
        assert cube_triples(faulty) == cube_triples(clean)
        assert faulty.stats.metrics.as_dict() == clean.stats.metrics.as_dict()
        assert_no_leaks()

    def test_hang_recovery_under_timeout(self, dataset, thresholds):
        clean = parallel_rsm_mine(dataset, thresholds, n_workers=2, use_shm=True)
        plan = FaultPlan.single(1, "hang", seconds=30.0)
        faulty = parallel_rsm_mine(
            dataset,
            thresholds,
            n_workers=2,
            use_shm=True,
            fault_plan=plan,
            task_timeout=0.5,
            backoff=0.01,
        )
        assert cube_triples(faulty) == cube_triples(clean)
        assert faulty.stats.metrics.as_dict() == clean.stats.metrics.as_dict()
        assert_no_leaks()

    def test_permanent_crash_degrades_inline_without_leaks(
        self, dataset, thresholds
    ):
        clean = parallel_rsm_mine(dataset, thresholds, n_workers=2, use_shm=True)
        plan = FaultPlan.single(0, "crash", attempts=None)
        degraded = parallel_rsm_mine(
            dataset,
            thresholds,
            n_workers=2,
            use_shm=True,
            fault_plan=plan,
            backoff=0.01,
        )
        assert cube_triples(degraded) == cube_triples(clean)
        assert degraded.stats.extra["recovery"]["degraded_inline"] is True
        assert_no_leaks()
