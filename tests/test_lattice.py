"""Tests for the cube containment lattice."""

from __future__ import annotations

import pytest

from repro.analysis.lattice import (
    CubeLattice,
    build_containment_dag,
    maximal_cubes,
    minimal_cubes,
)
from repro.api import mine
from repro.core.constraints import Thresholds
from repro.core.cube import Cube


def tower():
    """Three nested cubes plus one incomparable."""
    outer = Cube.from_indices([0, 1, 2], [0, 1, 2], [0, 1, 2])
    middle = Cube.from_indices([0, 1], [0, 1], [0, 1, 2])
    inner = Cube.from_indices([0], [0, 1], [0, 1])
    apart = Cube.from_indices([5], [5], [5])
    return outer, middle, inner, apart


class TestBuildDag:
    def test_hasse_reduction(self):
        outer, middle, inner, apart = tower()
        dag = build_containment_dag([outer, middle, inner, apart])
        # Transitive edge outer->inner must be reduced away.
        assert dag.has_edge(outer, middle)
        assert dag.has_edge(middle, inner)
        assert not dag.has_edge(outer, inner)
        assert dag.degree(apart) == 0

    def test_deduplicates(self):
        cube = Cube.from_indices([0], [0], [0])
        dag = build_containment_dag([cube, cube])
        assert dag.number_of_nodes() == 1

    def test_empty(self):
        assert build_containment_dag([]).number_of_nodes() == 0


class TestMaximalMinimal:
    def test_tower(self):
        outer, middle, inner, apart = tower()
        cubes = [outer, middle, inner, apart]
        assert set(maximal_cubes(cubes)) == {outer, apart}
        assert set(minimal_cubes(cubes)) == {inner, apart}

    def test_single_result_all_incomparable(self, paper_ds, paper_thresholds):
        """FCCs of one run are pairwise incomparable by closedness."""
        result = mine(paper_ds, paper_thresholds)
        assert set(maximal_cubes(result)) == result.cube_set()
        assert set(minimal_cubes(result)) == result.cube_set()


class TestCubeLattice:
    @pytest.fixture
    def lattice(self):
        return CubeLattice(tower())

    def test_len(self, lattice):
        assert len(lattice) == 4

    def test_roots_and_leaves(self, lattice):
        outer, middle, inner, apart = tower()
        assert set(lattice.maximal()) == {outer, apart}
        assert set(lattice.minimal()) == {inner, apart}

    def test_containers_and_contained(self, lattice):
        outer, middle, inner, apart = tower()
        assert set(lattice.containers_of(inner)) == {outer, middle}
        assert set(lattice.contained_in(outer)) == {middle, inner}
        assert lattice.containers_of(apart) == []

    def test_unknown_cube_raises(self, lattice):
        with pytest.raises(KeyError):
            lattice.containers_of(Cube.from_indices([9], [9], [9]))

    def test_height_and_chain(self, lattice):
        outer, middle, inner, _ = tower()
        assert lattice.height() == 3
        assert lattice.longest_chain() == [outer, middle, inner]

    def test_antichain_levels(self, lattice):
        levels = lattice.antichain_levels()
        for level in levels:
            for a in level:
                for b in level:
                    if a != b:
                        assert not a.contains(b)

    def test_empty_lattice(self):
        lattice = CubeLattice([])
        assert lattice.height() == 0
        assert lattice.longest_chain() == []
        assert lattice.antichain_levels() == []

    def test_cross_threshold_nesting(self, paper_ds):
        """Cubes from a tighter run nest inside or equal looser-run cubes."""
        loose = mine(paper_ds, Thresholds(2, 2, 2))
        tight = mine(paper_ds, Thresholds(3, 2, 2))
        lattice = CubeLattice(list(loose) + list(tight))
        # Every tight cube is contained in (or equals) some loose cube.
        for cube in tight:
            containers = (
                lattice.containers_of(cube) if cube in lattice.dag else []
            )
            assert cube in loose.cube_set() or containers
