"""Native backend: availability probe, typed fallback, and zero-copy.

Two halves:

* **Fallback semantics** — simulated on *every* interpreter by
  monkeypatching the import probe, so the suite proves the degradation
  story whether or not the extension is built here: an explicit
  ``mine(kernel="native")`` raises :class:`KernelUnavailableError`,
  while ``REPRO_KERNEL=native`` auto-selection degrades to numpy with
  the ``kernel_fallbacks`` counter incremented and a one-time warning.
* **Built-extension behaviour** — gated on :func:`native_available`:
  feature flags, cube-list identity against the baseline backend, and
  zero-copy shared-memory adoption.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro.core.kernels as kernels_pkg
import repro.core.kernels.native_kernel as native_module
from repro.api import mine
from repro.cli import EXIT_UNAVAILABLE, main as cli_main
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.core.kernels import (
    KernelUnavailableError,
    NativeKernel,
    available_kernels,
    get_kernel,
    kernel_fallback_count,
    known_kernels,
    native_available,
    preferred_words_native_kernel,
)

needs_native = pytest.mark.skipif(
    not native_available(), reason="_native extension not built"
)

_REASON = "simulated: extension import failed"


@pytest.fixture
def no_native(monkeypatch):
    """Make the native backend known-but-unavailable, whatever is built.

    Patches the import probe and the registry the way
    ``kernels/__init__.py`` leaves them when ``import _native`` fails;
    monkeypatch restores every attribute afterwards.
    """
    monkeypatch.setattr(native_module, "_native", None)
    monkeypatch.setattr(native_module, "_IMPORT_ERROR", _REASON)
    monkeypatch.setattr(
        kernels_pkg,
        "_REGISTRY",
        {k: v for k, v in kernels_pkg._REGISTRY.items() if k != "native"},
    )
    monkeypatch.setattr(
        kernels_pkg,
        "_INSTANCES",
        {k: v for k, v in kernels_pkg._INSTANCES.items() if k != "native"},
    )
    monkeypatch.setattr(kernels_pkg, "_UNAVAILABLE", {"native": _REASON})
    monkeypatch.setattr(kernels_pkg, "_WARNED_FALLBACKS", set())


def _dataset(seed: int = 7) -> Dataset3D:
    rng = np.random.default_rng(seed)
    return Dataset3D(rng.random((4, 7, 9)) < 0.5)


# ----------------------------------------------------------------------
# Fallback semantics (simulated missing extension)
# ----------------------------------------------------------------------
class TestFallback:
    def test_native_stays_known_but_not_available(self, no_native):
        assert "native" not in available_kernels()
        assert "native" in known_kernels()
        assert not native_module.native_available()
        assert native_module.native_import_error() == _REASON

    def test_get_kernel_raises_typed_error(self, no_native):
        with pytest.raises(KernelUnavailableError) as excinfo:
            get_kernel("native")
        assert excinfo.value.kernel == "native"
        assert _REASON in excinfo.value.reason
        # Typos still get the plain unknown-name error.
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("nativ")

    def test_instantiating_native_kernel_raises(self, no_native):
        with pytest.raises(KernelUnavailableError):
            NativeKernel()

    def test_native_features_raises(self, no_native):
        with pytest.raises(KernelUnavailableError):
            native_module.native_features()

    def test_explicit_mine_request_raises(self, no_native):
        with pytest.raises(KernelUnavailableError, match="native"):
            mine(_dataset(), Thresholds(1, 2, 2), kernel="native")

    def test_env_auto_selection_degrades_with_counter(
        self, no_native, monkeypatch
    ):
        monkeypatch.setenv("REPRO_KERNEL", "native")
        before = kernel_fallback_count()
        with pytest.warns(RuntimeWarning, match="falling back"):
            result = mine(_dataset(), Thresholds(1, 2, 2))
        assert kernel_fallback_count() > before
        assert result.stats.metrics.kernel_fallbacks >= 1
        # The run degraded, not failed: same cubes as the baseline.
        baseline = mine(_dataset(), Thresholds(1, 2, 2), kernel="python-int")
        assert result.cubes == baseline.cubes

    def test_fallback_counter_attributed_to_passed_metrics(
        self, no_native, monkeypatch
    ):
        from repro.obs import MiningMetrics

        monkeypatch.setenv("REPRO_KERNEL", "native")
        metrics = MiningMetrics()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            mine(_dataset(), Thresholds(1, 2, 2), metrics=metrics)
        assert metrics.kernel_fallbacks >= 1

    def test_fallback_warns_once_per_process(self, no_native, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "native")
        with pytest.warns(RuntimeWarning):
            kernels_pkg.resolve_kernel(None)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            resolved = kernels_pkg.resolve_kernel(None)  # silent now
        assert resolved.name == "numpy"

    def test_explicit_requests_never_increment_counter(self, no_native):
        before = kernel_fallback_count()
        with pytest.raises(KernelUnavailableError):
            kernels_pkg.resolve_kernel("native")
        assert kernel_fallback_count() == before

    def test_preferred_words_native_kernel_degrades(self, no_native):
        assert preferred_words_native_kernel() == "numpy"

    def test_cli_explicit_native_exits_unavailable(
        self, no_native, tmp_path, capsys
    ):
        path = tmp_path / "ds.npz"
        _dataset().save_npz(path)
        with pytest.raises(SystemExit) as excinfo:
            cli_main([
                "mine", "--input", str(path), "--min-h", "1", "--min-r", "2",
                "--min-c", "2", "--kernel", "native",
            ])
        assert excinfo.value.code == EXIT_UNAVAILABLE
        assert "unavailable" in capsys.readouterr().err

    def test_no_fallbacks_counted_on_normal_runs(self):
        result = mine(_dataset(), Thresholds(1, 2, 2), kernel="numpy")
        assert result.stats.metrics.kernel_fallbacks == 0


# ----------------------------------------------------------------------
# Built-extension behaviour
# ----------------------------------------------------------------------
@needs_native
class TestNativeBuilt:
    def test_registered_and_preferred(self):
        assert "native" in available_kernels()
        assert preferred_words_native_kernel() == "native"
        assert native_module.native_import_error() is None

    def test_features_flags(self):
        features = native_module.native_features()
        assert set(features) >= {"popcount", "simd", "big_endian"}
        assert features["popcount"] in ("__builtin_popcountll", "swar")

    def test_mine_explicit_native_matches_baseline(self):
        thresholds = Thresholds(2, 2, 2)
        native = mine(_dataset(), thresholds, kernel="native")
        baseline = mine(_dataset(), thresholds, kernel="python-int")
        assert native.cubes == baseline.cubes
        assert native.stats.metrics.kernel_fallbacks == 0

    def test_env_native_resolves_without_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "native")
        before = kernel_fallback_count()
        result = mine(_dataset(), Thresholds(1, 2, 2))
        assert kernel_fallback_count() == before
        assert result.stats.metrics.kernel_fallbacks == 0

    def test_shm_attach_is_zero_copy(self):
        from repro.parallel import ShmManager, attach_dataset, publish_dataset

        dataset = _dataset().with_kernel("native")
        with ShmManager() as manager:
            ref = publish_dataset(dataset, manager)
            attachment = attach_dataset(ref, kernel="native")
            try:
                assert attachment.zero_copy
                assert attachment.dataset.kernel.name == "native"
                assert np.array_equal(attachment.dataset.data, dataset.data)
            finally:
                attachment.close()

    def test_handles_interchange_with_numpy(self):
        """Native shares NumpyKernel's handle formats bit for bit."""
        native = get_kernel("native")
        numpy_kernel = get_kernel("numpy")
        masks = [0b101101, 0b111000, 0b100101]
        packed_np = numpy_kernel.pack_masks(masks, 70)
        packed_nat = native.pack_masks(masks, 70)
        assert np.array_equal(packed_np, packed_nat)
        # A handle packed by one backend folds identically on the other.
        assert native.fold_and(packed_np, 70) == numpy_kernel.fold_and(
            packed_nat, 70
        )
        assert native.popcounts(packed_np) == numpy_kernel.popcounts(packed_nat)
