"""End-to-end tests for the repro-fcc command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.core.dataset import Dataset3D
from repro.datasets import paper_example


@pytest.fixture
def dataset_file(tmp_path):
    path = tmp_path / "paper.npz"
    paper_example().save_npz(path)
    return str(path)


class TestGenerate:
    def test_random(self, tmp_path, capsys):
        out = str(tmp_path / "random.npz")
        code = main([
            "generate", "--kind", "random", "--shape", "3", "4", "5",
            "--density", "0.4", "--seed", "9", "--out", out,
        ])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert Dataset3D.load_npz(out).shape == (3, 4, 5)

    def test_planted(self, tmp_path):
        out = str(tmp_path / "planted.npz")
        assert main([
            "generate", "--kind", "planted", "--shape", "4", "6", "12",
            "--blocks", "2", "--out", out,
        ]) == 0
        assert Dataset3D.load_npz(out).shape == (4, 6, 12)

    def test_elutriation(self, tmp_path):
        out = str(tmp_path / "elu.npz")
        assert main([
            "generate", "--kind", "elutriation", "--genes", "40", "--out", out,
        ]) == 0
        assert Dataset3D.load_npz(out).shape == (14, 9, 40)

    def test_cdc15(self, tmp_path):
        out = str(tmp_path / "cdc.npz")
        assert main([
            "generate", "--kind", "cdc15", "--genes", "30", "--out", out,
        ]) == 0
        assert Dataset3D.load_npz(out).shape == (19, 9, 30)


class TestStats:
    def test_stats_output(self, dataset_file, capsys):
        assert main(["stats", "--input", dataset_file]) == 0
        out = capsys.readouterr().out
        assert "3 x 4 x 5" in out
        assert "cutters    : 10" in out

    def test_missing_file(self):
        with pytest.raises(SystemExit, match="not found"):
            main(["stats", "--input", "/nonexistent/ds.npz"])


class TestMine:
    def test_default_cubeminer(self, dataset_file, capsys):
        assert main([
            "mine", "--input", dataset_file,
            "--min-h", "2", "--min-r", "2", "--min-c", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "5 FCCs" in out
        assert "h1h2h3 : r1r3 : c1c2c3" in out

    @pytest.mark.parametrize(
        "algorithm", ["cubeminer", "rsm", "reference", "parallel-cubeminer", "parallel-rsm"]
    )
    def test_every_algorithm(self, dataset_file, capsys, algorithm):
        assert main([
            "mine", "--input", dataset_file, "--algorithm", algorithm,
            "--min-h", "2", "--min-r", "2", "--min-c", "2", "--workers", "2",
        ]) == 0
        assert "5 FCCs" in capsys.readouterr().out

    def test_show_limits_output(self, dataset_file, capsys):
        assert main([
            "mine", "--input", dataset_file, "--min-h", "2", "--min-r", "2",
            "--min-c", "2", "--show", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "and 3 more" in out

    def test_show_zero_prints_no_cubes(self, dataset_file, capsys):
        assert main([
            "mine", "--input", dataset_file, "--min-h", "2", "--min-r", "2",
            "--min-c", "2", "--show", "0",
        ]) == 0
        assert " : r" not in capsys.readouterr().out.split("coverage")[1]

    def test_empty_result_is_success(self, dataset_file, capsys):
        assert main([
            "mine", "--input", dataset_file, "--min-h", "3", "--min-r", "4",
            "--min-c", "5",
        ]) == 0
        assert "0 FCCs" in capsys.readouterr().out

    def test_rsm_options(self, dataset_file, capsys):
        assert main([
            "mine", "--input", dataset_file, "--algorithm", "rsm",
            "--base-axis", "row", "--fcp-miner", "charm",
            "--min-h", "2", "--min-r", "2", "--min-c", "2",
        ]) == 0
        assert "rsm-r[charm]" in capsys.readouterr().out


class TestRules:
    def test_rules_output(self, dataset_file, capsys):
        assert main([
            "rules", "--input", dataset_file, "--min-h", "2", "--min-r", "2",
            "--min-c", "2", "--min-confidence", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "rule(s)" in out
        assert "=>" in out


class TestConvert:
    def test_npz_to_triples_and_back(self, dataset_file, tmp_path, capsys):
        triples = str(tmp_path / "paper.triples")
        assert main(["convert", "--input", dataset_file, "--out", triples]) == 0
        back = str(tmp_path / "back.npz")
        assert main(["convert", "--input", triples, "--out", back]) == 0
        import numpy as np

        assert np.array_equal(
            Dataset3D.load_npz(back).data, paper_example().data
        )

    def test_npz_to_dense_text(self, dataset_file, tmp_path):
        dense = str(tmp_path / "paper.txt")
        assert main(["convert", "--input", dataset_file, "--out", dense]) == 0
        with open(dense) as handle:
            assert Dataset3D.from_text(handle.read()).shape == (3, 4, 5)

    def test_dense_text_to_npz(self, tmp_path):
        dense = tmp_path / "in.txt"
        dense.write_text(paper_example().to_text())
        out = str(tmp_path / "out.npz")
        assert main(["convert", "--input", str(dense), "--out", out]) == 0
        assert Dataset3D.load_npz(out).shape == (3, 4, 5)

    def test_missing_input(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["convert", "--input", "/nope.triples",
                  "--out", str(tmp_path / "x.npz")])


class TestTrace:
    def test_tree(self, dataset_file, capsys):
        assert main(["trace", "--input", dataset_file, "--kind", "tree"]) == 0
        out = capsys.readouterr().out
        assert out.count("[FCC]") == 5

    def test_rsm_table(self, dataset_file, capsys):
        assert main(["trace", "--input", dataset_file, "--kind", "rsm"]) == 0
        assert "Height Set" in capsys.readouterr().out

    def test_too_large_dataset_errors_cleanly(self, tmp_path):
        from repro.datasets import random_tensor

        big = tmp_path / "big.npz"
        random_tensor((20, 20, 20), 0.5, seed=0).save_npz(big)
        with pytest.raises(SystemExit, match="guard"):
            main(["trace", "--input", str(big)])


class TestMineExports:
    def test_out_json(self, dataset_file, tmp_path, capsys):
        out = str(tmp_path / "result.json")
        assert main([
            "mine", "--input", dataset_file, "--min-h", "2", "--min-r", "2",
            "--min-c", "2", "--out-json", out,
        ]) == 0
        from repro.io import result_from_json

        with open(out) as handle:
            assert len(result_from_json(handle.read())) == 5

    def test_out_csv(self, dataset_file, tmp_path):
        out = str(tmp_path / "result.csv")
        assert main([
            "mine", "--input", dataset_file, "--min-h", "2", "--min-r", "2",
            "--min-c", "2", "--out-csv", out,
        ]) == 0
        with open(out) as handle:
            assert len(handle.read().strip().splitlines()) == 6


class TestVerify:
    @pytest.fixture
    def result_file(self, dataset_file, tmp_path):
        out = str(tmp_path / "result.json")
        main([
            "mine", "--input", dataset_file, "--min-h", "2", "--min-r", "2",
            "--min-c", "2", "--out-json", out,
        ])
        return out

    def test_clean_result_exits_zero(self, dataset_file, result_file, capsys):
        code = main(["verify", "--input", dataset_file, "--result", result_file])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_completeness_flag(self, dataset_file, result_file, capsys):
        code = main([
            "verify", "--input", dataset_file, "--result", result_file,
            "--complete",
        ])
        assert code == 0
        assert "complete" in capsys.readouterr().out

    def test_wrong_dataset_exits_nonzero(self, result_file, tmp_path, capsys):
        from repro.datasets import random_tensor

        other = tmp_path / "other.npz"
        random_tensor((3, 4, 5), 0.5, seed=99).save_npz(other)
        code = main(["verify", "--input", str(other), "--result", result_file])
        assert code == 1
        assert "violation" in capsys.readouterr().out

    def test_missing_result_file(self, dataset_file):
        with pytest.raises(SystemExit, match="result file not found"):
            main(["verify", "--input", dataset_file, "--result", "/nope.json"])


class TestExplore:
    def test_budget_found(self, dataset_file, capsys):
        code = main([
            "explore", "--input", dataset_file, "--min-h", "2", "--min-r", "2",
            "--max-cubes", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "minC=" in out and "budget 3" in out

    def test_generous_budget_keeps_lower_bound(self, dataset_file, capsys):
        assert main([
            "explore", "--input", dataset_file, "--min-h", "2", "--min-r", "2",
            "--min-c", "2", "--max-cubes", "100",
        ]) == 0
        assert "minC=2" in capsys.readouterr().out


class TestTopK:
    def test_topk_output(self, dataset_file, capsys):
        assert main(["topk", "--input", dataset_file, "-k", "3",
                     "--min-h", "2", "--min-r", "2", "--min-c", "2"]) == 0
        out = capsys.readouterr().out
        assert "top 3 cube(s)" in out
        assert out.count("cells]") == 3

    def test_topk_defaults(self, dataset_file, capsys):
        assert main(["topk", "--input", dataset_file]) == 0
        assert "by volume" in capsys.readouterr().out


class TestMineVolumeFlag:
    def test_min_volume_filters(self, dataset_file, capsys):
        assert main([
            "mine", "--input", dataset_file, "--min-h", "2", "--min-r", "2",
            "--min-c", "2", "--min-volume", "13",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 FCCs" in out
        assert "minVolume=13" not in out  # summary shows counts, not flags


class TestExample:
    def test_example_reproduces_tables(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Figure 1" in out
        assert out.count("[FCC]") == 5
        assert "h1h2h3 : r1r2r3 : c2c3, 3:3:2" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_mine_requires_input(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine"])


class TestRobustnessFlags:
    def test_fault_tolerance_flags_wired_into_options(self, tmp_path):
        from repro.cli import _options_from_args

        checkpoint = str(tmp_path / "run.jsonl")
        args = build_parser().parse_args([
            "mine", "--input", "x.npz", "--algorithm", "parallel-rsm",
            "--retries", "5", "--task-timeout", "7.5", "--backoff", "0.25",
            "--checkpoint", checkpoint, "--resume",
        ])
        options = _options_from_args(args)
        assert options.retries == 5
        assert options.task_timeout == 7.5
        assert options.backoff == 0.25
        assert options.checkpoint_path == checkpoint
        assert options.resume is True
        kwargs = options.to_kwargs("parallel-rsm")
        assert kwargs["retries"] == 5 and kwargs["resume"] is True

    def test_checkpoint_then_resume_flow(self, dataset_file, tmp_path, capsys):
        checkpoint = str(tmp_path / "run.jsonl")
        base = [
            "mine", "--input", dataset_file, "--algorithm", "parallel-rsm",
            "--workers", "2", "--checkpoint", checkpoint,
        ]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert main(base + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "5 FCCs" in first and "5 FCCs" in second

    def test_malformed_triples_exit_65(self, tmp_path, capsys):
        bad = tmp_path / "bad.triples"
        bad.write_text("2 2 2\n0 0 9\n")
        with pytest.raises(SystemExit) as excinfo:
            main([
                "convert", "--input", str(bad),
                "--out", str(tmp_path / "out.npz"),
            ])
        assert excinfo.value.code == 65
        err = capsys.readouterr().err
        assert "line 2" in err and "outside" in err

    def test_duplicate_cell_exit_65(self, tmp_path, capsys):
        bad = tmp_path / "dup.triples"
        bad.write_text("2 2 2\n0 0 1\n0 0 1\n")
        with pytest.raises(SystemExit) as excinfo:
            main([
                "convert", "--input", str(bad),
                "--out", str(tmp_path / "out.npz"),
            ])
        assert excinfo.value.code == 65
        assert "duplicate" in capsys.readouterr().err

    def test_unreadable_npz_exit_65(self, tmp_path, capsys):
        bad = tmp_path / "not-really.npz"
        bad.write_text("this is not a zip archive")
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", "--input", str(bad)])
        assert excinfo.value.code == 65
        assert "not a readable .npz" in capsys.readouterr().err
