"""Tests for the chunk-level checkpoint journal and resume semantics."""

from __future__ import annotations

import json

import pytest

from repro.core.constraints import Thresholds
from repro.datasets import random_tensor
from repro.obs import CheckpointWritten, MiningCancelled, ProgressController
from repro.parallel import (
    CheckpointJournal,
    CheckpointMismatchError,
    load_journal,
    parallel_cubeminer_mine,
    parallel_rsm_mine,
    run_fingerprint,
)

DRIVERS = [parallel_rsm_mine, parallel_cubeminer_mine]


@pytest.fixture(scope="module")
def dataset():
    return random_tensor((6, 12, 18), 0.35, seed=3)


@pytest.fixture(scope="module")
def thresholds():
    return Thresholds(2, 2, 2)


class TestJournalFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fp = run_fingerprint("alg", (2, 3, 4), (1, 1, 1, 1), [[1], [2]])
        with CheckpointJournal.open(
            path, algorithm="alg", fingerprint=fp, n_chunks=2
        ) as journal:
            journal.record(0, [(0b11, 0b101, 0b1)], {"nodes_visited": 7})
            journal.record(1, [], {"nodes_visited": 2})
        header, completed = load_journal(path)
        assert header["fingerprint"] == fp
        assert header["algorithm"] == "alg"
        assert completed[0] == ([(0b11, 0b101, 0b1)], {"nodes_visited": 7})
        assert completed[1] == ([], {"nodes_visited": 2})

    def test_masks_survive_as_exact_bigints(self, tmp_path):
        path = tmp_path / "big.jsonl"
        big = (1 << 300) | 1
        with CheckpointJournal.open(
            path, algorithm="alg", fingerprint="f", n_chunks=1
        ) as journal:
            journal.record(0, [(big, 3, 5)], {})
        _, completed = load_journal(path)
        assert completed[0][0] == [(big, 3, 5)]

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        with CheckpointJournal.open(
            path, algorithm="alg", fingerprint="f", n_chunks=3
        ) as journal:
            journal.record(0, [(1, 1, 1)], {})
            journal.record(1, [(2, 2, 2)], {})
        text = path.read_text()
        path.write_text(text[: len(text) - 9])  # cut into the last record
        header, completed = load_journal(path)
        assert header is not None
        assert set(completed) == {0}  # chunk 1 is simply re-mined

    def test_missing_file_is_empty(self, tmp_path):
        header, completed = load_journal(tmp_path / "absent.jsonl")
        assert header is None and completed == {}

    def test_resume_with_wrong_fingerprint_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        CheckpointJournal.open(
            path, algorithm="alg", fingerprint="aaa", n_chunks=2
        ).close()
        with pytest.raises(CheckpointMismatchError, match="different run"):
            CheckpointJournal.open(
                path, algorithm="alg", fingerprint="bbb", n_chunks=2,
                resume=True,
            )

    def test_resume_drops_out_of_range_chunks(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal.open(
            path, algorithm="alg", fingerprint="f", n_chunks=9
        ) as journal:
            journal.record(8, [(1, 1, 1)], {})
        # Forge a resume against a smaller decomposition but the same
        # fingerprint: the out-of-range chunk must be ignored.
        resumed = CheckpointJournal.open(
            path, algorithm="alg", fingerprint="f", n_chunks=2, resume=True
        )
        try:
            assert resumed.completed == {}
        finally:
            resumed.close()

    def test_open_without_resume_truncates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal.open(
            path, algorithm="alg", fingerprint="f", n_chunks=1
        ) as journal:
            journal.record(0, [(1, 1, 1)], {})
        CheckpointJournal.open(
            path, algorithm="alg", fingerprint="f", n_chunks=1
        ).close()
        _, completed = load_journal(path)
        assert completed == {}

    def test_fingerprint_sensitivity(self):
        base = run_fingerprint("alg", (2, 3, 4), (1, 1, 1, 1), [[1], [2]])
        assert base != run_fingerprint("other", (2, 3, 4), (1, 1, 1, 1), [[1], [2]])
        assert base != run_fingerprint("alg", (2, 3, 5), (1, 1, 1, 1), [[1], [2]])
        assert base != run_fingerprint("alg", (2, 3, 4), (1, 1, 2, 2), [[1], [2]])
        assert base != run_fingerprint("alg", (2, 3, 4), (1, 1, 1, 1), [[1, 2]])
        assert base == run_fingerprint("alg", (2, 3, 4), (1, 1, 1, 1), [[1], [2]])


class TestResume:
    @pytest.mark.parametrize("driver", DRIVERS)
    def test_interrupted_run_resumes_to_identical_result(
        self, tmp_path, dataset, thresholds, driver
    ):
        """Kill a run mid-flight, resume, and compare with a clean run."""
        clean = driver(dataset, thresholds, n_workers=2)
        path = tmp_path / "run.jsonl"
        controller = ProgressController()
        checkpoints = []

        def sink(event):
            if isinstance(event, CheckpointWritten):
                checkpoints.append(event)
                if len(checkpoints) >= 2:
                    controller.cancel()

        with pytest.raises(MiningCancelled):
            driver(
                dataset,
                thresholds,
                n_workers=2,
                checkpoint_path=path,
                on_event=sink,
                progress=controller,
            )
        lines_before = path.read_text().splitlines()
        assert len(lines_before) >= 3  # header + >= 2 chunks

        resumed = driver(
            dataset, thresholds, n_workers=2, checkpoint_path=path, resume=True
        )
        assert list(resumed) == list(clean)
        assert (
            resumed.stats.metrics.as_dict() == clean.stats.metrics.as_dict()
        )
        recovery = resumed.stats.extra["recovery"]
        assert recovery["chunks_resumed"] == len(lines_before) - 1
        # Only the uncompleted chunks were re-mined: the journal grew by
        # exactly the missing chunks, with no duplicate chunk ids.
        _, completed = load_journal(path)
        lines_after = path.read_text().splitlines()
        assert len(lines_after) == 1 + len(completed)
        chunk_ids = [
            json.loads(line)["chunk"] for line in lines_after[1:]
        ]
        assert sorted(chunk_ids) == sorted(set(chunk_ids))

    def test_resume_of_complete_journal_mines_nothing(
        self, tmp_path, dataset, thresholds
    ):
        path = tmp_path / "run.jsonl"
        first = parallel_rsm_mine(
            dataset, thresholds, n_workers=2, checkpoint_path=path
        )
        size = path.stat().st_size
        again = parallel_rsm_mine(
            dataset, thresholds, n_workers=2, checkpoint_path=path, resume=True
        )
        assert list(again) == list(first)
        assert again.stats.metrics.as_dict() == first.stats.metrics.as_dict()
        assert again.stats.extra["recovery"]["chunks_resumed"] > 0
        assert path.stat().st_size == size  # nothing re-recorded

    def test_resume_under_different_thresholds_refuses(
        self, tmp_path, dataset, thresholds
    ):
        path = tmp_path / "run.jsonl"
        parallel_rsm_mine(
            dataset, thresholds, n_workers=2, checkpoint_path=path
        )
        with pytest.raises(CheckpointMismatchError):
            parallel_rsm_mine(
                dataset,
                Thresholds(3, 3, 3),
                n_workers=2,
                checkpoint_path=path,
                resume=True,
            )

    def test_inline_run_checkpoints_too(self, tmp_path, dataset, thresholds):
        path = tmp_path / "run.jsonl"
        inline = parallel_rsm_mine(
            dataset, thresholds, n_workers=1, checkpoint_path=path
        )
        header, completed = load_journal(path)
        assert header is not None
        assert sum(len(raw) for raw, _ in completed.values()) == len(inline)
