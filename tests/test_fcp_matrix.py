"""Unit tests for BinaryMatrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import available_kernels, resolve_kernel
from repro.fcp.matrix import BinaryMatrix, PackedBufferError


@pytest.fixture
def small():
    return BinaryMatrix.from_array([[1, 0, 1], [1, 1, 0], [0, 1, 1]])


class TestConstruction:
    def test_from_array(self, small):
        assert small.shape == (3, 3)
        assert small.row_mask(0) == 0b101
        assert small.row_mask(1) == 0b011
        assert small.row_mask(2) == 0b110

    def test_from_row_masks(self):
        matrix = BinaryMatrix.from_row_masks([0b01, 0b10], 2)
        assert matrix.cell(0, 0) and not matrix.cell(0, 1)
        assert matrix.cell(1, 1) and not matrix.cell(1, 0)

    def test_rejects_rank_1(self):
        with pytest.raises(ValueError, match="rank-2"):
            BinaryMatrix.from_array([1, 0, 1])

    def test_rejects_mask_overflow(self):
        with pytest.raises(ValueError, match="outside"):
            BinaryMatrix.from_row_masks([0b100], 2)

    def test_rejects_negative_mask(self):
        with pytest.raises(ValueError):
            BinaryMatrix.from_row_masks([-1], 2)

    def test_empty_matrix(self):
        matrix = BinaryMatrix.from_row_masks([], 0)
        assert matrix.shape == (0, 0)
        assert matrix.density == 0.0

    def test_wide_matrix(self):
        data = np.zeros((1, 100), dtype=bool)
        data[0, 99] = True
        matrix = BinaryMatrix.from_array(data)
        assert matrix.row_mask(0) == 1 << 99


class TestFromPackedValidation:
    """Regression: ``from_packed`` must validate the handle's geometry
    (row count/words-per-row/stray bits) instead of deferring a
    malformed buffer to a crash — or silent garbage — deep in mining."""

    @pytest.mark.parametrize("kernel", available_kernels())
    def test_valid_handle_accepted(self, kernel, small):
        handle = resolve_kernel(kernel).pack_masks(small.row_masks(), 3)
        packed = BinaryMatrix.from_packed(handle, 3, kernel=kernel)
        assert packed == small
        assert packed.n_rows == 3

    @pytest.mark.parametrize("kernel", available_kernels())
    def test_stray_bits_rejected(self, kernel):
        handle = resolve_kernel(kernel).pack_masks([0b101], 3)
        with pytest.raises(PackedBufferError):
            BinaryMatrix.from_packed(handle, 2, kernel=kernel)

    def test_numpy_wrong_word_count_rejected(self):
        handle = np.zeros((2, 2), dtype="<u8")  # 65+ columns' worth
        with pytest.raises(PackedBufferError, match="word"):
            BinaryMatrix.from_packed(handle, 10, kernel="numpy")

    def test_numpy_wrong_rank_rejected(self):
        with pytest.raises(PackedBufferError):
            BinaryMatrix.from_packed(
                np.zeros(3, dtype="<u8"), 3, kernel="numpy"
            )

    def test_numpy_wrong_dtype_rejected(self):
        with pytest.raises(PackedBufferError):
            BinaryMatrix.from_packed(
                np.zeros((2, 1), dtype=np.int32), 3, kernel="numpy"
            )

    def test_python_int_non_int_row_rejected(self):
        with pytest.raises(PackedBufferError, match="int"):
            BinaryMatrix.from_packed(["0b101"], 3, kernel="python-int")

    def test_error_is_a_value_error(self):
        # Callers that guarded with ValueError keep working.
        assert issubclass(PackedBufferError, ValueError)


class TestAccess:
    def test_zeros_mask(self, small):
        assert small.zeros_mask(0) == 0b010
        assert small.row_mask(0) | small.zeros_mask(0) == 0b111

    def test_column_rows(self, small):
        assert small.column_rows(0) == 0b011  # rows 0, 1 have column 0
        assert small.column_rows(1) == 0b110
        assert small.column_rows(2) == 0b101

    def test_row_masks_copy(self, small):
        masks = small.row_masks()
        masks[0] = 0
        assert small.row_mask(0) != 0

    def test_density(self, small):
        assert small.density == pytest.approx(6 / 9)


class TestSupports:
    def test_support_columns(self, small):
        assert small.support_columns(0b011) == 0b001  # rows 0,1 share col 0
        assert small.support_columns(0b001) == 0b101

    def test_support_columns_empty_rows_gives_universe(self, small):
        assert small.support_columns(0) == 0b111

    def test_support_rows(self, small):
        assert small.support_rows(0b001) == 0b011
        assert small.support_rows(0b111) == 0

    def test_support_rows_empty_columns_gives_all(self, small):
        assert small.support_rows(0) == 0b111

    def test_galois_connection(self, small):
        # rows <= support_rows(support_columns(rows)) for all row sets.
        for rows in range(8):
            closure = small.support_rows(small.support_columns(rows))
            assert rows & ~closure == 0


class TestConversion:
    def test_to_array_round_trip(self, small):
        assert BinaryMatrix.from_array(small.to_array()) == small

    def test_eq_hash(self, small):
        clone = BinaryMatrix.from_row_masks(small.row_masks(), 3)
        assert clone == small
        assert hash(clone) == hash(small)
        assert small != BinaryMatrix.from_row_masks([0, 0, 0], 3)
        assert small != "something else"

    def test_repr(self, small):
        assert "shape=(3, 3)" in repr(small)
