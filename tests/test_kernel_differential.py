"""Differential verification: every kernel backend mines identical cubes.

The python-int backend is the behavioural baseline (it is the original
implementation, verified against the paper's running example and the
exponential reference miner elsewhere in the suite).  Every other
registered kernel must reproduce its canonically-ordered
:class:`MiningResult` exactly — on the paper example and on a grid of
seeded synthetic datasets spanning densities, thresholds and universes
wider than one 64-bit word — for CubeMiner, for RSM under each 2D FCP
miner, and for the inline parallel drivers.  An RSM run whose 2D phase
is the exhaustive ``oracle_mine_2d`` ties the whole stack back to
ground truth.
"""

from __future__ import annotations

import pytest

from repro.core import reference_mine
from repro.core.constraints import Thresholds
from repro.core.kernels import available_kernels
from repro.cubeminer.algorithm import cubeminer_mine
from repro.datasets import paper_example, random_tensor
from repro.fcp import FCP_MINERS, FCPMiner, oracle_mine_2d
from repro.parallel import parallel_cubeminer_mine, parallel_rsm_mine
from repro.rsm.algorithm import rsm_mine

BASELINE = "python-int"
OTHER_KERNELS = [name for name in available_kernels() if name != BASELINE]
ALL_KERNELS = list(available_kernels())

# ----------------------------------------------------------------------
# Seeded synthetic grid: shapes x densities x thresholds, 30 configs.
# Column counts 33 and 70 cross the 64-bit word boundary so the packed
# uint64 kernels exercise multi-word masks, not just the first word.
# ----------------------------------------------------------------------
_SHAPES = [(3, 4, 8), (4, 5, 12), (5, 4, 20), (4, 6, 70), (6, 5, 33)]
_DENSITIES = [0.35, 0.6, 0.85]
_THRESHOLDS = [(1, 1, 1), (2, 2, 2)]

GRID = [
    pytest.param(shape, density, mins, 1000 + i, id=f"g{i:02d}-{shape}-d{density}-t{mins}")
    for i, (shape, density, mins) in enumerate(
        (shape, density, mins)
        for shape in _SHAPES
        for density in _DENSITIES
        for mins in _THRESHOLDS
    )
]
assert len(GRID) == 30

# A cheaper subsample for the quadratic sweeps (every third config).
GRID_SAMPLE = GRID[::3]

_DATASETS: dict = {}
_BASELINES: dict = {}


def _dataset(shape, density, seed):
    key = (shape, density, seed)
    if key not in _DATASETS:
        _DATASETS[key] = random_tensor(shape, density, seed=seed)
    return _DATASETS[key]


def _baseline_cubes(dataset, thresholds, runner, tag):
    """Cubes from the python-int baseline, computed once per workload."""
    key = (id(dataset), thresholds, tag)
    if key not in _BASELINES:
        _BASELINES[key] = runner(dataset.with_kernel(BASELINE)).cubes
    return _BASELINES[key]


class _OracleMiner(FCPMiner):
    """The exhaustive 2D oracle dressed as an FCP miner (tests only)."""

    name = "oracle2d"

    def mine(self, matrix, min_rows=1, min_columns=1):
        return oracle_mine_2d(matrix, min_rows=min_rows, min_columns=min_columns)


# ----------------------------------------------------------------------
# Paper running example: every kernel, every miner, vs ground truth.
# ----------------------------------------------------------------------
class TestPaperExample:
    @pytest.fixture(scope="class")
    def truth(self, request):
        dataset = paper_example()
        thresholds = Thresholds(2, 2, 2)
        return dataset, thresholds, reference_mine(dataset, thresholds).cubes

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_cubeminer(self, truth, kernel):
        dataset, thresholds, expected = truth
        result = cubeminer_mine(dataset.with_kernel(kernel), thresholds)
        assert result.cubes == expected

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    @pytest.mark.parametrize("fcp", sorted(FCP_MINERS))
    def test_rsm_every_fcp_miner(self, truth, kernel, fcp):
        dataset, thresholds, expected = truth
        result = rsm_mine(dataset.with_kernel(kernel), thresholds, fcp_miner=fcp)
        assert result.cubes == expected

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_rsm_oracle_substrate(self, truth, kernel):
        dataset, thresholds, expected = truth
        result = rsm_mine(
            dataset.with_kernel(kernel), thresholds, fcp_miner=_OracleMiner()
        )
        assert result.cubes == expected


# ----------------------------------------------------------------------
# Synthetic grid: non-baseline kernels vs the python-int baseline.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", OTHER_KERNELS)
@pytest.mark.parametrize("shape,density,mins,seed", GRID)
def test_cubeminer_matches_baseline(kernel, shape, density, mins, seed):
    dataset = _dataset(shape, density, seed)
    thresholds = Thresholds(*mins)
    expected = _baseline_cubes(
        dataset, thresholds, lambda ds: cubeminer_mine(ds, thresholds), "cubeminer"
    )
    result = cubeminer_mine(dataset.with_kernel(kernel), thresholds)
    assert result.cubes == expected


@pytest.mark.parametrize("kernel", OTHER_KERNELS)
@pytest.mark.parametrize("shape,density,mins,seed", GRID)
def test_rsm_dminer_matches_baseline(kernel, shape, density, mins, seed):
    dataset = _dataset(shape, density, seed)
    thresholds = Thresholds(*mins)
    expected = _baseline_cubes(
        dataset, thresholds, lambda ds: rsm_mine(ds, thresholds), "rsm-dminer"
    )
    result = rsm_mine(dataset.with_kernel(kernel), thresholds)
    assert result.cubes == expected


@pytest.mark.parametrize("kernel", OTHER_KERNELS)
@pytest.mark.parametrize("fcp", sorted(set(FCP_MINERS) - {"dminer"}))
@pytest.mark.parametrize("shape,density,mins,seed", GRID_SAMPLE)
def test_rsm_other_fcp_miners_match_baseline(kernel, fcp, shape, density, mins, seed):
    dataset = _dataset(shape, density, seed)
    thresholds = Thresholds(*mins)
    expected = _baseline_cubes(
        dataset, thresholds, lambda ds: rsm_mine(ds, thresholds), "rsm-dminer"
    )
    result = rsm_mine(dataset.with_kernel(kernel), thresholds, fcp_miner=fcp)
    assert result.cubes == expected


@pytest.mark.parametrize("kernel", OTHER_KERNELS)
@pytest.mark.parametrize("shape,density,mins,seed", GRID_SAMPLE)
def test_rsm_oracle_matches_baseline(kernel, shape, density, mins, seed):
    dataset = _dataset(shape, density, seed)
    thresholds = Thresholds(*mins)
    expected = _baseline_cubes(
        dataset, thresholds, lambda ds: rsm_mine(ds, thresholds), "rsm-dminer"
    )
    result = rsm_mine(
        dataset.with_kernel(kernel), thresholds, fcp_miner=_OracleMiner()
    )
    assert result.cubes == expected


# ----------------------------------------------------------------------
# CubeMiner and RSM agree with each other under every kernel, and the
# reference miner agrees on the smallest configs (it is exponential).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ALL_KERNELS)
@pytest.mark.parametrize("shape,density,mins,seed", GRID_SAMPLE)
def test_cubeminer_and_rsm_agree(kernel, shape, density, mins, seed):
    dataset = _dataset(shape, density, seed).with_kernel(kernel)
    thresholds = Thresholds(*mins)
    assert (
        cubeminer_mine(dataset, thresholds).cubes
        == rsm_mine(dataset, thresholds).cubes
    )


@pytest.mark.parametrize("kernel", ALL_KERNELS)
@pytest.mark.parametrize("shape,density,mins,seed", GRID[:6])
def test_reference_agrees_on_small_configs(kernel, shape, density, mins, seed):
    dataset = _dataset(shape, density, seed).with_kernel(kernel)
    thresholds = Thresholds(*mins)
    expected = reference_mine(dataset, thresholds).cubes
    assert cubeminer_mine(dataset, thresholds).cubes == expected


# ----------------------------------------------------------------------
# Inline parallel drivers (n_workers=1 avoids process-spawn cost while
# still exercising the worker init + chunk code paths per kernel).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ALL_KERNELS)
@pytest.mark.parametrize("shape,density,mins,seed", GRID_SAMPLE[:4])
def test_parallel_drivers_match_baseline(kernel, shape, density, mins, seed):
    dataset = _dataset(shape, density, seed)
    thresholds = Thresholds(*mins)
    expected = _baseline_cubes(
        dataset, thresholds, lambda ds: cubeminer_mine(ds, thresholds), "cubeminer"
    )
    rsm = parallel_rsm_mine(dataset, thresholds, n_workers=1, kernel=kernel)
    cm = parallel_cubeminer_mine(dataset, thresholds, n_workers=1, kernel=kernel)
    assert rsm.cubes == expected
    assert cm.cubes == expected


@pytest.mark.parametrize("kernel", OTHER_KERNELS)
def test_parallel_two_workers_paper_example(kernel):
    dataset = paper_example()
    thresholds = Thresholds(2, 2, 2)
    expected = cubeminer_mine(dataset.with_kernel(BASELINE), thresholds).cubes
    result = parallel_rsm_mine(dataset, thresholds, n_workers=2, kernel=kernel)
    assert result.cubes == expected
