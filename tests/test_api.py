"""Tests for the top-level mine() dispatcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ALGORITHMS, mine
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.core.reference import reference_mine
from repro.options import ParallelOptions, RSMOptions
from tests.conftest import random_dataset


class TestDispatch:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_on_paper_example(
        self, paper_ds, paper_thresholds, algorithm
    ):
        options = (
            ParallelOptions(n_workers=2)
            if algorithm.startswith("parallel")
            else None
        )
        result = mine(
            paper_ds, paper_thresholds, algorithm=algorithm, options=options
        )
        assert len(result) == 5

    def test_unknown_algorithm(self, paper_ds, paper_thresholds):
        with pytest.raises(ValueError, match="unknown algorithm"):
            mine(paper_ds, paper_thresholds, algorithm="magic")

    def test_default_is_cubeminer(self, paper_ds, paper_thresholds):
        result = mine(paper_ds, paper_thresholds)
        assert result.algorithm.startswith("cubeminer")

    def test_options_forwarded(self, paper_ds, paper_thresholds):
        result = mine(
            paper_ds,
            paper_thresholds,
            algorithm="rsm",
            options=RSMOptions(base_axis="column"),
        )
        assert result.algorithm.startswith("rsm-c")


class TestAutoTranspose:
    def test_identity_shape_untouched(self, paper_ds, paper_thresholds):
        # 3x4x5 is already ascending; transpose must be a no-op.
        result = mine(paper_ds, paper_thresholds, auto_transpose=True)
        assert "transpose" not in result.algorithm
        assert len(result) == 5

    def test_results_in_original_axis_order(self, rng):
        # A dataset where columns are NOT the largest axis.
        data = rng.random((6, 3, 2)) < 0.7
        ds = Dataset3D(data)
        th = Thresholds(1, 1, 1)
        plain = mine(ds, th)
        transposed = mine(ds, th, auto_transpose=True)
        assert transposed.same_cubes(plain)
        assert transposed.thresholds == th
        assert transposed.dataset_shape == ds.shape
        assert "transpose" in transposed.algorithm

    def test_random_equivalence(self, rng):
        for _ in range(20):
            ds = random_dataset(rng)
            th = Thresholds(*(int(x) for x in rng.integers(1, 3, size=3)))
            assert mine(ds, th, auto_transpose=True).same_cubes(
                reference_mine(ds, th)
            )

    def test_transposed_thresholds_follow_axes(self, rng):
        # minH binds the original height axis even after transposition.
        data = np.ones((4, 2, 3), dtype=bool)
        ds = Dataset3D(data)
        result = mine(ds, Thresholds(4, 2, 3), auto_transpose=True)
        assert len(result) == 1
        cube = result.cubes[0]
        assert (cube.h_support, cube.r_support, cube.c_support) == (4, 2, 3)


class TestResultMetadata:
    def test_shape_and_thresholds_recorded(self, paper_ds, paper_thresholds):
        result = mine(paper_ds, paper_thresholds)
        assert result.dataset_shape == (3, 4, 5)
        assert result.thresholds == paper_thresholds
        assert result.elapsed_seconds >= 0.0
