"""Property and unit tests for the threshold-lattice result cache.

The load-bearing claim (Definition 3.3: every FCC constraint is
anti-monotone, and closedness depends only on the dataset): filtering
the result mined at loose thresholds down to element-wise tighter
thresholds is *bit-identical* to mining fresh at the tighter
thresholds.  The hypothesis property drives that across random
datasets and random loose/tight threshold pairs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mine
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.core.result import MiningResult
from repro.io import dataset_fingerprint
from repro.service import ThresholdLatticeCache


def cube_set(result) -> set:
    return {(c.heights, c.rows, c.columns) for c in result}


# ----------------------------------------------------------------------
# Thresholds.dominates / Cube.satisfies
# ----------------------------------------------------------------------
class TestDominates:
    def test_equal_thresholds_dominate(self):
        t = Thresholds(2, 3, 4, min_volume=5)
        assert t.dominates(t)

    def test_looser_dominates_tighter(self):
        loose = Thresholds(1, 2, 2)
        tight = Thresholds(2, 3, 3, min_volume=10)
        assert loose.dominates(tight)
        assert not tight.dominates(loose)

    def test_incomparable_pair(self):
        a = Thresholds(1, 5, 1)
        b = Thresholds(5, 1, 1)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_min_volume_participates(self):
        assert not Thresholds(1, 1, 1, min_volume=9).dominates(
            Thresholds(1, 1, 1, min_volume=8)
        )
        assert Thresholds(1, 1, 1, min_volume=8).dominates(
            Thresholds(1, 1, 1, min_volume=9)
        )


class TestSatisfies:
    def test_satisfies_matches_support_arithmetic(self, paper_ds):
        result = mine(paper_ds, Thresholds(1, 1, 1))
        tight = Thresholds(2, 2, 3, min_volume=12)
        for cube in result:
            expected = (
                cube.h_support >= 2
                and cube.r_support >= 2
                and cube.c_support >= 3
                and cube.volume >= 12
            )
            assert cube.satisfies(tight) == expected


# ----------------------------------------------------------------------
# MiningResult JSON round trip
# ----------------------------------------------------------------------
class TestResultJson:
    def test_round_trip(self, paper_ds, paper_thresholds):
        result = mine(paper_ds, paper_thresholds)
        clone = MiningResult.from_json(result.to_json())
        assert cube_set(clone) == cube_set(result)
        assert clone.algorithm == result.algorithm
        assert clone.thresholds == result.thresholds
        assert clone.dataset_shape == result.dataset_shape
        assert clone.stats.to_dict() == result.stats.to_dict()

    def test_schema_is_versioned(self, paper_ds, paper_thresholds):
        result = mine(paper_ds, paper_thresholds)
        payload = result.to_payload()
        assert payload["schema"] == MiningResult.SCHEMA_VERSION
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            MiningResult.from_payload(payload)


# ----------------------------------------------------------------------
# The cache itself
# ----------------------------------------------------------------------
class TestLatticeCache:
    def test_exact_hit_serves_unfiltered(self, tmp_path, paper_ds):
        cache = ThresholdLatticeCache(tmp_path)
        thresholds = Thresholds(2, 2, 2)
        result = mine(paper_ds, thresholds)
        fp = dataset_fingerprint(paper_ds)
        cache.put(fp, "cubeminer", result)
        answer = cache.lookup(fp, "cubeminer", thresholds)
        assert answer is not None and answer.exact
        assert answer.cubes_filtered == 0
        assert cube_set(answer.result) == cube_set(result)

    def test_dominated_query_filters(self, tmp_path, paper_ds):
        cache = ThresholdLatticeCache(tmp_path)
        loose = Thresholds(1, 1, 1)
        cache.put(fp := dataset_fingerprint(paper_ds), "cubeminer", mine(paper_ds, loose))
        tight = Thresholds(2, 2, 2)
        answer = cache.lookup(fp, "cubeminer", tight)
        assert answer is not None and not answer.exact
        assert answer.filtered_from == loose
        assert cube_set(answer.result) == cube_set(mine(paper_ds, tight))
        provenance = answer.result.stats.extra["cache"]
        assert provenance["hit"] and provenance["filtered_from"] == loose.to_dict()

    def test_tighter_query_than_store_misses(self, tmp_path, paper_ds):
        cache = ThresholdLatticeCache(tmp_path)
        fp = dataset_fingerprint(paper_ds)
        cache.put(fp, "cubeminer", mine(paper_ds, Thresholds(2, 2, 2)))
        assert cache.lookup(fp, "cubeminer", Thresholds(1, 1, 1)) is None
        assert cache.stats()["misses"] == 1

    def test_algorithms_are_separate_lattices(self, tmp_path, paper_ds):
        cache = ThresholdLatticeCache(tmp_path)
        fp = dataset_fingerprint(paper_ds)
        cache.put(fp, "cubeminer", mine(paper_ds, Thresholds(1, 1, 1)))
        assert cache.lookup(fp, "rsm", Thresholds(2, 2, 2)) is None

    def test_persists_across_reopen(self, tmp_path, paper_ds):
        fp = dataset_fingerprint(paper_ds)
        ThresholdLatticeCache(tmp_path).put(
            fp, "cubeminer", mine(paper_ds, Thresholds(1, 1, 1))
        )
        reopened = ThresholdLatticeCache(tmp_path)
        assert len(reopened) == 1
        answer = reopened.lookup(fp, "cubeminer", Thresholds(2, 2, 2))
        assert answer is not None
        assert cube_set(answer.result) == cube_set(mine(paper_ds, Thresholds(2, 2, 2)))

    def test_tightest_dominating_entry_wins(self, tmp_path, paper_ds):
        cache = ThresholdLatticeCache(tmp_path)
        fp = dataset_fingerprint(paper_ds)
        cache.put(fp, "cubeminer", mine(paper_ds, Thresholds(1, 1, 1)))
        cache.put(fp, "cubeminer", mine(paper_ds, Thresholds(2, 2, 1)))
        answer = cache.lookup(fp, "cubeminer", Thresholds(2, 2, 2))
        assert answer is not None
        assert answer.filtered_from == Thresholds(2, 2, 1)

    def test_corrupt_entry_degrades_to_miss(self, tmp_path, paper_ds):
        cache = ThresholdLatticeCache(tmp_path)
        fp = dataset_fingerprint(paper_ds)
        cache.put(fp, "cubeminer", mine(paper_ds, Thresholds(1, 1, 1)))
        for path in (tmp_path / fp / "cubeminer").glob("*.json"):
            path.write_text("{not json")
        assert cache.lookup(fp, "cubeminer", Thresholds(2, 2, 2)) is None
        # The broken entry was evicted: a fresh put works again.
        cache.put(fp, "cubeminer", mine(paper_ds, Thresholds(1, 1, 1)))
        assert cache.lookup(fp, "cubeminer", Thresholds(2, 2, 2)) is not None


# ----------------------------------------------------------------------
# The monotonicity property itself
# ----------------------------------------------------------------------
@st.composite
def dataset_and_threshold_pair(draw):
    l = draw(st.integers(1, 4))
    n = draw(st.integers(1, 6))
    m = draw(st.integers(1, 6))
    bits = draw(
        st.lists(st.booleans(), min_size=l * n * m, max_size=l * n * m)
    )
    data = np.array(bits, dtype=bool).reshape((l, n, m))
    loose = Thresholds(
        draw(st.integers(1, 2)),
        draw(st.integers(1, 2)),
        draw(st.integers(1, 2)),
        min_volume=draw(st.integers(1, 4)),
    )
    tight = Thresholds(
        loose.min_h + draw(st.integers(0, 2)),
        loose.min_r + draw(st.integers(0, 2)),
        loose.min_c + draw(st.integers(0, 2)),
        min_volume=loose.min_volume + draw(st.integers(0, 12)),
    )
    return Dataset3D(data), loose, tight


@settings(max_examples=40, deadline=None)
@given(dataset_and_threshold_pair())
def test_filtered_cache_equals_fresh_mine(case):
    """Filtering the loose result IS the tight result, bit for bit."""
    dataset, loose, tight = case
    assert loose.dominates(tight)
    loose_result = mine(dataset, loose)
    filtered = {
        (c.heights, c.rows, c.columns)
        for c in loose_result
        if c.satisfies(tight)
    }
    fresh = mine(dataset, tight)
    assert filtered == cube_set(fresh)
