"""Correctness of the bounded closure-memoization cache.

The cache must be semantically invisible: every witness-backed closure
check and memoized support query agrees with the fresh computation on
arbitrary datasets and query sequences (hypothesis drives both), a
bounded cache under heavy eviction still yields the bit-identical mined
result, and the miner's cached/uncached paths produce the same cube
list, node counts and leaves on a seeded grid.  The cache counters must
surface through ``MiningResult.stats``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closure import (
    ClosureCache,
    close,
    column_support,
    height_support,
    is_closed_cube,
    resolve_closure_cache,
    row_support,
)
from repro.core.constraints import Thresholds
from repro.core.cube import Cube
from repro.core.dataset import Dataset3D
from repro.core.kernels import available_kernels
from repro.cubeminer.algorithm import cubeminer_mine
from repro.cubeminer.checks import height_set_closed, row_set_closed
from repro.datasets import paper_example, random_tensor

KERNELS = list(available_kernels())


@st.composite
def datasets_and_queries(draw):
    """A small random dataset plus a batch of random region queries."""
    l = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=1, max_value=5))
    m = draw(st.sampled_from([3, 8, 70]))
    density = draw(st.sampled_from([0.2, 0.5, 0.8]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    queries = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << l) - 1),
                st.integers(min_value=0, max_value=(1 << n) - 1),
                st.integers(min_value=0, max_value=(1 << m) - 1),
            ),
            min_size=1,
            max_size=30,
        )
    )
    return (l, n, m), density, seed, queries


@settings(max_examples=60, deadline=None)
@given(datasets_and_queries())
def test_cached_queries_match_fresh_computation(case):
    """Memoized closure work == fresh work over arbitrary query streams.

    The same query can repeat (exercising hits), regions shrink and
    grow arbitrarily (exercising witness revalidation and staleness),
    and a tiny bound (max_entries=2) forces constant eviction in a
    second cache that must still agree.
    """
    shape, density, seed, queries = case
    dataset = random_tensor(shape, density, seed=seed)
    caches = [ClosureCache(), ClosureCache(max_entries=2)]
    for heights, rows, columns in queries:
        expected_h = height_set_closed(dataset, heights, rows, columns)
        expected_r = row_set_closed(dataset, heights, rows, columns)
        expected_hs = height_support(dataset, rows, columns)
        expected_rs = row_support(dataset, heights, columns)
        expected_cs = column_support(dataset, heights, rows)
        for cache in caches:
            assert cache.height_set_closed(dataset, heights, rows, columns) == expected_h
            assert cache.row_set_closed(dataset, heights, rows, columns) == expected_r
            assert cache.height_support(dataset, rows, columns) == expected_hs
            assert cache.row_support(dataset, heights, columns) == expected_rs
            assert cache.column_support(dataset, heights, rows) == expected_cs
            assert len(cache) <= cache.max_entries
    small = caches[1]
    assert small.hits + small.misses > 0


@settings(max_examples=30, deadline=None)
@given(datasets_and_queries())
def test_cached_close_and_predicates_match(case):
    """``close`` and ``is_closed_cube`` agree with their uncached selves."""
    shape, density, seed, queries = case
    dataset = random_tensor(shape, density, seed=seed)
    cache = ClosureCache(max_entries=3)
    for heights, rows, columns in queries:
        cube = Cube(heights, rows, columns)
        assert is_closed_cube(dataset, cube, cache=cache) == is_closed_cube(
            dataset, cube
        )
        if not cube.is_empty():
            try:
                expected = close(dataset, cube)
            except ValueError:
                continue
            assert close(dataset, cube, cache=cache) == expected


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize(
    "shape,density,seed",
    [((4, 5, 12), 0.5, 3), ((5, 4, 20), 0.6, 7), ((4, 6, 70), 0.35, 11)],
)
def test_miner_cached_equals_uncached(kernel, shape, density, seed):
    """The memoized miner reproduces the uncached run bit-for-bit."""
    dataset = random_tensor(shape, density, seed=seed).with_kernel(kernel)
    thresholds = Thresholds(2, 2, 2)
    uncached = cubeminer_mine(dataset, thresholds, closure_cache=0)
    cached = cubeminer_mine(dataset, thresholds)
    assert cached.cubes == uncached.cubes
    assert (
        cached.stats["nodes_visited"] == uncached.stats["nodes_visited"]
    )
    assert (
        cached.stats["leaves_emitted"] == uncached.stats["leaves_emitted"]
    )


@pytest.mark.parametrize("max_entries", [1, 2, 5])
def test_bounded_cache_evicts_without_changing_output(max_entries):
    """Heavy eviction degrades to recomputation, never to wrong cubes."""
    dataset = random_tensor((5, 6, 24), 0.5, seed=19)
    thresholds = Thresholds(2, 2, 2)
    expected = cubeminer_mine(dataset, thresholds, closure_cache=0)
    cache = ClosureCache(max_entries=max_entries)
    bounded = cubeminer_mine(dataset, thresholds, closure_cache=cache)
    assert bounded.cubes == expected.cubes
    assert len(cache) <= max_entries
    assert cache.evictions > 0
    assert bounded.stats["closure_cache_evictions"] == cache.evictions


def test_counters_surface_through_result_stats():
    result = cubeminer_mine(paper_example(), Thresholds(2, 2, 2))
    stats = result.stats
    assert stats["closure_cache_hits"] + stats["closure_cache_misses"] > 0
    assert stats["closure_cache_evictions"] == 0
    serialized = stats.to_dict()["metrics"]
    assert serialized["closure_cache_hits"] == stats["closure_cache_hits"]
    disabled = cubeminer_mine(paper_example(), Thresholds(2, 2, 2), closure_cache=0)
    assert disabled.stats["closure_cache_hits"] == 0
    assert disabled.stats["closure_cache_misses"] == 0


def test_shared_cache_accumulates_and_result_deltas_stay_per_run():
    """A run folds only its own delta into metrics, not the cache total."""
    dataset = paper_example()
    thresholds = Thresholds(2, 2, 2)
    cache = ClosureCache()
    first = cubeminer_mine(dataset, thresholds, closure_cache=cache)
    second = cubeminer_mine(dataset, thresholds, closure_cache=cache)
    assert second.cubes == first.cubes
    total = (
        first.stats["closure_cache_hits"] + second.stats["closure_cache_hits"]
    )
    assert cache.hits == total


def test_cache_rebinds_on_a_different_dataset():
    a = random_tensor((3, 4, 8), 0.5, seed=1)
    b = random_tensor((4, 3, 10), 0.5, seed=2)
    cache = ClosureCache()
    for dataset in (a, b, a):
        for heights in range(1 << dataset.n_heights):
            rows = (1 << dataset.n_rows) - 1
            columns = (1 << dataset.n_columns) - 1
            assert cache.height_set_closed(
                dataset, heights, rows, columns
            ) == height_set_closed(dataset, heights, rows, columns)


def test_resolve_closure_cache_semantics():
    assert resolve_closure_cache(0) is None
    assert resolve_closure_cache(-5) is None
    default = resolve_closure_cache(None)
    assert isinstance(default, ClosureCache)
    bounded = resolve_closure_cache(7)
    assert bounded.max_entries == 7
    existing = ClosureCache(max_entries=3)
    assert resolve_closure_cache(existing) is existing
    with pytest.raises(ValueError):
        ClosureCache(max_entries=0)


def test_options_thread_the_cache_knob():
    from repro.api import mine
    from repro.options import CubeMinerOptions

    dataset = paper_example()
    thresholds = Thresholds(2, 2, 2)
    off = mine(
        dataset, thresholds, algorithm="cubeminer",
        options=CubeMinerOptions(closure_cache_size=0),
    )
    on = mine(dataset, thresholds, algorithm="cubeminer")
    assert off.cubes == on.cubes
    assert off.stats["closure_cache_hits"] == 0
    assert on.stats["closure_cache_hits"] > 0
