"""Property-based tests (hypothesis) on core invariants.

These are the strongest correctness guarantees in the suite: for
arbitrary small tensors the fast miners must agree with the exhaustive
oracle, the closure operators must satisfy the Galois-connection laws,
and serialization must be lossless.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import mine
from repro.core.bitset import bit_count, full_mask
from repro.core.closure import (
    close,
    column_support,
    height_support,
    is_closed_cube,
    row_support,
)
from repro.core.constraints import Thresholds
from repro.core.cube import Cube
from repro.core.dataset import Dataset3D
from repro.core.reference import reference_mine
from repro.cubeminer import HeightOrder, cubeminer_mine
from repro.fcp import (
    BinaryMatrix,
    carpenter_mine,
    cbo_mine,
    charm_mine,
    closet_mine,
    dminer_mine,
    oracle_mine_2d,
)
from repro.rsm import rsm_mine

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def tensors(draw, max_dim: int = 5):
    """Small random 3D binary tensors."""
    l = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    m = draw(st.integers(1, max_dim))
    cells = draw(
        st.lists(st.booleans(), min_size=l * n * m, max_size=l * n * m)
    )
    return Dataset3D(np.array(cells, dtype=bool).reshape(l, n, m))


@st.composite
def matrices(draw, max_rows: int = 7, max_cols: int = 7):
    n = draw(st.integers(1, max_rows))
    m = draw(st.integers(1, max_cols))
    cells = draw(st.lists(st.booleans(), min_size=n * m, max_size=n * m))
    return BinaryMatrix.from_array(np.array(cells, dtype=bool).reshape(n, m))


@st.composite
def tensor_with_thresholds(draw):
    ds = draw(tensors())
    th = Thresholds(
        draw(st.integers(1, 3)), draw(st.integers(1, 3)), draw(st.integers(1, 3))
    )
    return ds, th


# ----------------------------------------------------------------------
# Miner equivalence
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(tensor_with_thresholds())
def test_cubeminer_equals_oracle(case):
    ds, th = case
    assert cubeminer_mine(ds, th).same_cubes(reference_mine(ds, th))


@settings(max_examples=60, deadline=None)
@given(tensor_with_thresholds())
def test_rsm_equals_oracle(case):
    ds, th = case
    assert rsm_mine(ds, th).same_cubes(reference_mine(ds, th))


@settings(max_examples=40, deadline=None)
@given(tensor_with_thresholds(), st.sampled_from(list(HeightOrder)))
def test_cubeminer_order_invariance(case, order):
    ds, th = case
    assert cubeminer_mine(ds, th, order=order).same_cubes(
        cubeminer_mine(ds, th, order=HeightOrder.ORIGINAL)
    )


@settings(max_examples=40, deadline=None)
@given(tensor_with_thresholds(), st.sampled_from(["height", "row", "column"]))
def test_rsm_base_axis_invariance(case, base_axis):
    ds, th = case
    assert rsm_mine(ds, th, base_axis=base_axis).same_cubes(rsm_mine(ds, th))


@settings(max_examples=40, deadline=None)
@given(tensor_with_thresholds())
def test_auto_transpose_invariance(case):
    ds, th = case
    assert mine(ds, th, auto_transpose=True).same_cubes(mine(ds, th))


@settings(max_examples=50, deadline=None)
@given(matrices(), st.integers(1, 3), st.integers(1, 3))
def test_2d_miners_equal_oracle(matrix, min_rows, min_cols):
    truth = set(oracle_mine_2d(matrix, min_rows, min_cols))
    assert set(dminer_mine(matrix, min_rows, min_cols)) == truth
    assert set(cbo_mine(matrix, min_rows, min_cols)) == truth
    assert set(charm_mine(matrix, min_rows, min_cols)) == truth
    assert set(carpenter_mine(matrix, min_rows, min_cols)) == truth
    assert set(closet_mine(matrix, min_rows, min_cols)) == truth


# ----------------------------------------------------------------------
# Closure-operator laws
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(tensors(), st.data())
def test_galois_antitone_and_extensive(ds, data):
    l, n, m = ds.shape
    heights = data.draw(st.integers(0, full_mask(l)))
    rows = data.draw(st.integers(0, full_mask(n)))
    columns = column_support(ds, heights, rows)
    # Every (height,row) pair of the generators contains the support cols.
    back_rows = row_support(ds, heights, columns)
    assert rows & ~back_rows == 0  # extensive on rows
    back_heights = height_support(ds, rows, columns)
    assert heights & ~back_heights == 0  # extensive on heights


@settings(max_examples=60, deadline=None)
@given(tensors(), st.data())
def test_support_antitone_in_generators(ds, data):
    l, n, _m = ds.shape
    heights = data.draw(st.integers(0, full_mask(l)))
    rows_small = data.draw(st.integers(0, full_mask(n)))
    rows_big = rows_small | data.draw(st.integers(0, full_mask(n)))
    # Larger row set -> column support can only shrink.
    small = column_support(ds, heights, rows_small)
    big = column_support(ds, heights, rows_big)
    assert big & ~small == 0


@settings(max_examples=60, deadline=None)
@given(tensors(), st.data())
def test_close_produces_closed_cube(ds, data):
    l, n, m = ds.shape
    one_cells = np.argwhere(ds.data)
    if len(one_cells) == 0:
        return
    idx = data.draw(st.integers(0, len(one_cells) - 1))
    k, i, j = (int(x) for x in one_cells[idx])
    closed = close(ds, Cube(1 << k, 1 << i, 1 << j))
    assert is_closed_cube(ds, closed)
    assert closed.contains(Cube(1 << k, 1 << i, 1 << j))


# ----------------------------------------------------------------------
# Result invariants
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(tensor_with_thresholds())
def test_mined_cubes_pairwise_incomparable(case):
    """No FCC may contain another: closed cubes are maximal."""
    ds, th = case
    cubes = cubeminer_mine(ds, th).cubes
    for a in cubes:
        for b in cubes:
            if a is not b:
                assert not a.contains(b) or a == b


@settings(max_examples=40, deadline=None)
@given(tensors())
def test_every_one_cell_covered_at_min_thresholds(ds):
    """At thresholds (1,1,1) the FCCs cover every 1 in the tensor."""
    result = cubeminer_mine(ds, Thresholds(1, 1, 1))
    covered = np.zeros(ds.shape, dtype=bool)
    for cube in result:
        hs = list(cube.height_indices())
        rs = list(cube.row_indices())
        cs = list(cube.column_indices())
        covered[np.ix_(hs, rs, cs)] = True
    assert (covered >= ds.data).all() or (covered == ds.data).all()
    assert (covered & ~ds.data).sum() == 0  # cubes never cover a zero


@settings(max_examples=40, deadline=None)
@given(tensor_with_thresholds())
def test_threshold_monotonicity(case):
    ds, th = case
    loose = cubeminer_mine(ds, Thresholds(1, 1, 1)).cube_set()
    tight = cubeminer_mine(ds, th).cube_set()
    assert tight <= loose


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(tensors())
def test_text_serialization_round_trip(ds):
    assert Dataset3D.from_text(ds.to_text()) == Dataset3D(ds.data)


@settings(max_examples=30, deadline=None)
@given(tensors())
def test_transpose_involution(ds):
    order = (2, 0, 1)
    inverse = (1, 2, 0)
    assert ds.transpose(order).transpose(inverse) == ds


@settings(max_examples=30, deadline=None)
@given(tensors(), st.data())
def test_bit_count_consistency(ds, data):
    l, n, m = ds.shape
    mask = data.draw(st.integers(0, full_mask(m)))
    assert bit_count(mask) == bin(mask).count("1")
