"""Tests for the FCC-based associative classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.classifier import ClassRule, FCCClassifier
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D


def two_class_dataset(rng, n_per_class=8, noise=0.08):
    """Rows of class A share module (h0-2 x c0-7), class B (h3-5 x c15-22)."""
    l, m = 6, 30

    def make(n, cols, heights):
        rows = rng.random((l, n, m)) < noise
        rows[np.ix_(heights, range(n), cols)] = True
        return rows

    a = make(n_per_class, list(range(0, 8)), [0, 1, 2])
    b = make(n_per_class, list(range(15, 23)), [3, 4, 5])
    data = np.concatenate([a, b], axis=1)
    labels = ["A"] * n_per_class + ["B"] * n_per_class
    return Dataset3D(data), labels


@pytest.fixture
def trained(rng):
    dataset, labels = two_class_dataset(rng)
    clf = FCCClassifier(Thresholds(2, 4, 4), min_confidence=0.7)
    clf.fit(dataset, labels)
    return clf, dataset, labels


class TestFit:
    def test_learns_class_rules(self, trained):
        clf, _, _ = trained
        assert len(clf.rules) >= 2
        assert {rule.label for rule in clf.rules} == {"A", "B"}

    def test_rules_sorted_by_confidence(self, trained):
        clf, _, _ = trained
        confidences = [rule.confidence for rule in clf.rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_default_label_is_majority(self, rng):
        dataset, labels = two_class_dataset(rng, n_per_class=5)
        labels = labels[:-1] + ["A"]  # A majority now
        clf = FCCClassifier(Thresholds(2, 3, 3)).fit(dataset, labels)
        assert clf.default_label == "A"

    def test_label_count_mismatch(self, rng):
        dataset, labels = two_class_dataset(rng)
        clf = FCCClassifier(Thresholds(2, 2, 2))
        with pytest.raises(ValueError, match="labels"):
            clf.fit(dataset, labels[:-1])

    def test_min_confidence_validation(self):
        with pytest.raises(ValueError, match="min_confidence"):
            FCCClassifier(Thresholds(1, 1, 1), min_confidence=0.0)

    def test_fit_returns_self(self, rng):
        dataset, labels = two_class_dataset(rng)
        clf = FCCClassifier(Thresholds(2, 3, 3))
        assert clf.fit(dataset, labels) is clf


class TestPredict:
    def test_training_accuracy(self, trained):
        clf, dataset, labels = trained
        assert clf.score(dataset, labels) == 1.0

    def test_generalizes_to_fresh_rows(self, trained, rng):
        clf, _, _ = trained
        fresh, fresh_labels = two_class_dataset(rng, n_per_class=4)
        assert clf.score(fresh, fresh_labels) >= 0.75

    def test_predict_one_slab(self, trained):
        clf, dataset, labels = trained
        prediction = clf.predict_one(dataset.data[:, 0, :])
        assert prediction == labels[0]

    def test_scores_exposed(self, trained):
        clf, dataset, _ = trained
        label, scores = clf.predict_scores(dataset.data[:, 0, :])
        assert label in scores
        assert scores[label] == max(scores.values())

    def test_unmatched_sample_falls_back(self, trained):
        clf, dataset, _ = trained
        all_zero = np.zeros((dataset.n_heights, dataset.n_columns), dtype=bool)
        label, scores = clf.predict_scores(all_zero)
        assert label == clf.default_label
        assert scores == {}

    def test_unfitted_raises(self):
        clf = FCCClassifier(Thresholds(1, 1, 1))
        with pytest.raises(RuntimeError, match="not fitted"):
            clf.predict_one(np.zeros((2, 2), dtype=bool))

    def test_rank_validation(self, trained):
        clf, _, _ = trained
        with pytest.raises(ValueError, match="rank-2"):
            clf.predict_one(np.zeros((2, 2, 2), dtype=bool))

    def test_score_label_mismatch(self, trained):
        clf, dataset, labels = trained
        with pytest.raises(ValueError, match="labels"):
            clf.score(dataset, labels[:-1])


class TestClassRule:
    def test_matches(self):
        rule = ClassRule(
            heights=0b011, columns=0b101, label="A", confidence=0.9, coverage=0.5
        )
        slab = np.zeros((3, 3), dtype=bool)
        slab[np.ix_([0, 1], [0, 2])] = True
        assert rule.matches(slab)
        slab[1, 2] = False
        assert not rule.matches(slab)

    def test_weight_grows_with_volume(self):
        small = ClassRule(0b1, 0b1, "A", 0.8, 0.5)
        big = ClassRule(0b111, 0b1111, "A", 0.8, 0.5)
        assert big.weight() > small.weight()

    def test_format(self, paper_ds):
        rule = ClassRule(0b011, 0b100, "sick", 0.75, 0.25)
        text = rule.format(paper_ds)
        assert "h1h2 x c3 => 'sick'" in text
        plain = rule.format()
        assert "h1h2 x c3" in plain

    def test_repr_states(self, rng):
        clf = FCCClassifier(Thresholds(1, 1, 1))
        assert "unfitted" in repr(clf)
        dataset, labels = two_class_dataset(rng, n_per_class=4)
        clf = FCCClassifier(Thresholds(2, 3, 3)).fit(dataset, labels)
        assert "rules" in repr(clf)
