"""The chaos battery: injected faults must never cost a cube.

Every test here drives a scripted (or seeded-random)
:class:`~repro.chaos.plan.ChaosPlan` through the
:class:`~repro.chaos.io.ChaosShim` seam and asserts the recovery
contract of ISSUE 9: after the fault, the system either produces a
result **bit-identical** to a clean mine, or surfaces a **typed**
error — never silent cube loss, duplication, an unbounded retry loop,
or a stranded ``running`` job.

Layout mirrors the stack: plan/shim semantics, per-store hardening
(registry, cache, mmap store, delta log, checkpoint journal), the
hardened service runtime (admission control, retry budget, quarantine,
watchdog, drain), restart recovery races, the retrying client, and the
``fsck`` scan/repair cycle with its CLI exit codes.  Worker-process
tests are marked ``slow``, matching the repo convention.
"""

from __future__ import annotations

import io as io_module
import json
import os
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import mine
from repro.chaos import (
    CHAOS_FAULT_KINDS,
    ChaosPlan,
    ChaosRule,
    ChaosShim,
    IOShim,
    StoreCorruptionError,
    fsck_data_dir,
    sha256_bytes,
)
from repro.cli import main as cli_main
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.io import dataset_fingerprint
from repro.obs.metrics import ChaosCounters
from repro.parallel.checkpoint import CheckpointJournal, load_journal
from repro.service import (
    DatasetRegistry,
    JobManager,
    JobSpec,
    Request,
    ServiceApp,
    ServiceClient,
    ServiceClientError,
    ThresholdLatticeCache,
    load_entry_payload,
)
from repro.stream.delta import DeltaLog, SetCell
from repro.stream.store import MmapDatasetStore


def small_dataset(seed: int = 11) -> Dataset3D:
    rng = np.random.default_rng(seed)
    return Dataset3D(rng.random((3, 6, 6)) < 0.5)


def cube_set(result) -> set:
    return {(c.heights, c.rows, c.columns) for c in result}


def post(app: ServiceApp, path: str, payload: dict):
    return app.handle(
        Request(method="POST", path=path, body=json.dumps(payload).encode())
    )


def get(app: ServiceApp, path: str, query: dict | None = None):
    return app.handle(Request(method="GET", path=path, query=query or {}))


def wait_terminal(app_or_jobs, job_id: str, timeout: float = 120.0):
    jobs = getattr(app_or_jobs, "jobs", app_or_jobs)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = jobs.get(job_id)
        if record.terminal:
            return record
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} never finished")


def submit_job(app: ServiceApp, fp: str, thresholds: Thresholds, **extra):
    payload = {"dataset": fp, "thresholds": thresholds.to_dict(), **extra}
    return post(app, "/v1/jobs", payload)


def flip_byte(path, offset: int = 40) -> None:
    data = bytearray(path.read_bytes())
    offset %= max(1, len(data))
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


# ----------------------------------------------------------------------
# ChaosPlan semantics
# ----------------------------------------------------------------------
class TestChaosPlan:
    def test_scripted_rule_fires_on_selected_call_only(self):
        plan = ChaosPlan.single("eio", site="cache", op="write", call=1)
        assert plan.draw("cache", "write", "a.json") is None
        fault = plan.draw("cache", "write", "b.json")
        assert fault is not None and fault.kind == "eio"
        assert plan.draw("cache", "write", "c.json") is None
        assert plan.trace() == [
            {"site": "cache", "op": "write", "path": "b.json", "kind": "eio", "call": 1}
        ]

    def test_counters_are_per_site_op_pair(self):
        plan = ChaosPlan.single("eio", site="cache", op="write", call=0)
        # Draws at other (site, op) pairs do not advance cache/write's
        # counter, so the scripted call index stays addressable.
        assert plan.draw("registry", "write") is None
        assert plan.draw("cache", "read") is None
        assert plan.draw("cache", "write").kind == "eio"

    def test_path_substring_filter(self):
        rule = ChaosRule("eio", site="jobs", path="result.json", calls=None)
        plan = ChaosPlan((rule,))
        assert plan.draw("jobs", "write", "/x/job.json") is None
        assert plan.draw("jobs", "write", "/x/result.json").kind == "eio"

    def test_random_plan_reproducible_from_seed(self):
        sequence = [("cache", "write"), ("jobs", "append"), ("mmap", "finalize")] * 20
        draws = []
        for _ in range(2):
            plan = ChaosPlan.random(seed=7, rate=0.5)
            draws.append(
                [
                    fault.kind if fault else None
                    for fault in (plan.draw(s, o) for s, o in sequence)
                ]
            )
        assert draws[0] == draws[1]
        assert any(draws[0])  # rate=0.5 over 60 draws fires with p ~ 1

    def test_sites_filter_confines_random_faults(self):
        plan = ChaosPlan.random(seed=1, rate=1.0, sites=("cache",))
        assert plan.draw("registry", "write") is None
        assert plan.draw("cache", "write") is not None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ChaosRule("meteor-strike")
        with pytest.raises(ValueError):
            ChaosPlan.random(seed=0, kinds=("eio", "nope"))
        assert "enospc" in CHAOS_FAULT_KINDS


# ----------------------------------------------------------------------
# IOShim fault semantics
# ----------------------------------------------------------------------
class TestIOShim:
    def test_production_shim_atomic_write(self, tmp_path):
        shim = IOShim()
        shim.atomic_write_text("cache", tmp_path / "x.json", '{"a": 1}')
        assert json.loads((tmp_path / "x.json").read_text()) == {"a": 1}
        assert list(tmp_path.glob(".*")) == []

    def test_enospc_rolls_back_temp(self, tmp_path):
        shim = ChaosShim(ChaosPlan.single("enospc", site="cache", op="write"))
        with pytest.raises(OSError):
            shim.atomic_write_text("cache", tmp_path / "x.json", "payload")
        # Neither the destination nor any temp debris survives.
        assert list(tmp_path.iterdir()) == []

    def test_torn_write_commits_prefix(self, tmp_path):
        shim = ChaosShim(ChaosPlan.single("torn-write", site="cache", op="write"))
        shim.atomic_write_bytes("cache", tmp_path / "x.json", b"0123456789")
        assert (tmp_path / "x.json").read_bytes() == b"01234"

    def test_bit_flip_corrupts_one_bit(self, tmp_path):
        data = b"\x00" * 16
        shim = ChaosShim(ChaosPlan.single("bit-flip", site="cache", op="write"))
        shim.atomic_write_bytes("cache", tmp_path / "x.bin", data)
        stored = (tmp_path / "x.bin").read_bytes()
        assert len(stored) == len(data)
        assert sum(bin(b).count("1") for b in stored) == 1

    def test_stale_tmp_commits_then_leaves_debris(self, tmp_path):
        shim = ChaosShim(ChaosPlan.single("stale-tmp", site="cache", op="write"))
        shim.atomic_write_bytes("cache", tmp_path / "x.json", b"ok")
        assert (tmp_path / "x.json").read_bytes() == b"ok"
        assert len(list(tmp_path.glob(".*.tmp"))) == 1

    def test_finalize_failure_unlinks_temp(self, tmp_path):
        shim = ChaosShim(ChaosPlan.single("eio", site="mmap", op="finalize"))
        tmp = tmp_path / ".x.tmp"
        tmp.write_bytes(b"payload")
        with pytest.raises(OSError):
            shim.atomic_finalize("mmap", tmp, tmp_path / "x.npy")
        assert not tmp.exists()
        assert not (tmp_path / "x.npy").exists()

    def test_torn_append_leaves_partial_tail(self, tmp_path):
        shim = ChaosShim(ChaosPlan.single("torn-write", site="delta", op="append"))
        path = tmp_path / "log.jsonl"
        with open(path, "a") as handle:
            with pytest.raises(OSError):
                shim.append_line("delta", handle, json.dumps({"k": "v"}))
        tail = path.read_text()
        assert tail and not tail.endswith("\n")

    def test_read_bit_flip_corrupts_copy_not_file(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(b"\xff" * 8)
        shim = ChaosShim(ChaosPlan.single("bit-flip", site="jobs", op="read"))
        assert shim.read_bytes("jobs", path) != b"\xff" * 8
        assert path.read_bytes() == b"\xff" * 8

    def test_check_raises_typed_faults(self, tmp_path):
        shim = ChaosShim(ChaosPlan.single("reset", site="http", op="handle"))
        with pytest.raises(ConnectionResetError):
            shim.check("http", "handle", "/v1/jobs")

    def test_worker_fault_manifest(self):
        shim = ChaosShim(ChaosPlan.single("crash", site="worker", op="start"))
        assert shim.worker_fault("job1") == {"kind": "crash"}
        assert shim.worker_fault("job2") is None
        hang = ChaosShim(
            ChaosPlan.single("hang", site="worker", op="start", seconds=2.0)
        )
        assert hang.worker_fault("job3") == {"kind": "hang", "seconds": 2.0}


# ----------------------------------------------------------------------
# Store hardening: registry, cache, mmap, delta log, checkpoint journal
# ----------------------------------------------------------------------
class TestRegistryChaos:
    def test_enospc_register_then_retry_succeeds(self, tmp_path):
        shim = ChaosShim(ChaosPlan.single("enospc", site="registry", op="finalize"))
        registry = DatasetRegistry(tmp_path, io=shim)
        dataset = small_dataset()
        with pytest.raises(OSError):
            registry.register(dataset)
        assert list(tmp_path.glob(".*")) == []  # rollback left no temp
        entry = registry.register(dataset)  # fault was call 0 only
        assert entry.fingerprint == dataset_fingerprint(dataset)
        loaded = registry.load(entry.fingerprint)
        assert np.array_equal(loaded.data, dataset.data)

    def test_verify_on_read_catches_corruption(self, tmp_path):
        counters = ChaosCounters()
        registry = DatasetRegistry(tmp_path, chaos=counters)
        fp = registry.register(small_dataset()).fingerprint
        flip_byte(tmp_path / f"{fp}.npz", offset=100)
        with pytest.raises(StoreCorruptionError):
            registry.load(fp)
        assert counters.corruption_detected == 1


class TestCacheChaos:
    def _result(self):
        dataset = small_dataset()
        return dataset, mine(dataset, Thresholds(1, 2, 2))

    def test_envelope_roundtrip(self, tmp_path):
        dataset, result = self._result()
        cache = ThresholdLatticeCache(tmp_path)
        cache.put("fp", "cubeminer", result)
        answer = cache.lookup("fp", "cubeminer", Thresholds(1, 2, 2))
        assert answer is not None and answer.exact
        assert cube_set(answer.result) == cube_set(result)
        # The stored file is a checksummed envelope.
        path = next(tmp_path.glob("fp/cubeminer/*.json"))
        doc = json.loads(path.read_text())
        assert doc["schema"] == 1
        assert doc["sha256"] == sha256_bytes(json.dumps(doc["payload"]).encode())

    def test_corrupt_entry_degrades_to_miss_and_evicts(self, tmp_path):
        dataset, result = self._result()
        counters = ChaosCounters()
        cache = ThresholdLatticeCache(tmp_path, chaos=counters)
        cache.put("fp", "cubeminer", result)
        path = next(tmp_path.glob("fp/cubeminer/*.json"))
        flip_byte(path, offset=len(path.read_bytes()) // 2)
        assert cache.lookup("fp", "cubeminer", Thresholds(1, 2, 2)) is None
        assert counters.corruption_detected == 1
        assert counters.corruption_evicted == 1
        assert not path.exists()  # a restart cannot resurrect the entry
        # The store still accepts a fresh result afterwards.
        cache.put("fp", "cubeminer", result)
        assert cache.lookup("fp", "cubeminer", Thresholds(1, 2, 2)) is not None

    def test_legacy_plain_payload_still_parses(self, tmp_path):
        dataset, result = self._result()
        cache = ThresholdLatticeCache(tmp_path)
        entry_dir = tmp_path / "fp" / "cubeminer"
        entry_dir.mkdir(parents=True)
        key = (
            f"{result.thresholds.min_h}-{result.thresholds.min_r}-"
            f"{result.thresholds.min_c}-{result.thresholds.min_volume}"
        )
        (entry_dir / f"{key}.json").write_text(json.dumps(result.to_payload()))
        fresh = ThresholdLatticeCache(tmp_path)
        answer = fresh.lookup("fp", "cubeminer", result.thresholds)
        assert answer is not None
        assert cube_set(answer.result) == cube_set(result)

    def test_load_entry_payload_raises_typed(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text(
            json.dumps({"schema": 1, "sha256": "0" * 64, "payload": {"x": 1}})
        )
        with pytest.raises(StoreCorruptionError):
            load_entry_payload(path)


class TestMmapStoreChaos:
    def test_verify_catches_bit_rot(self, tmp_path):
        counters = ChaosCounters()
        store = MmapDatasetStore(tmp_path, chaos=counters)
        fp = store.put(small_dataset())
        store.verify(fp)  # clean
        flip_byte(store.path(fp), offset=200)
        with pytest.raises(StoreCorruptionError):
            store.verify(fp)
        assert counters.corruption_detected == 1

    def test_stale_temp_swept_on_open(self, tmp_path):
        store = MmapDatasetStore(tmp_path)
        store.put(small_dataset())
        debris = tmp_path / ".deadbeef.tmp.npy"
        debris.write_bytes(b"\x00" * 32)
        past = time.time() - 3600
        os.utime(debris, (past, past))
        counters = ChaosCounters()
        MmapDatasetStore(tmp_path, chaos=counters)
        assert not debris.exists()
        assert counters.stale_temps_swept == 1

    def test_no_baseline_no_sweep(self, tmp_path):
        # Without any committed entry, a temp might be an in-flight
        # writer: it must survive the open.
        debris = tmp_path / ".inflight.tmp.npy"
        tmp_path.mkdir(exist_ok=True)
        debris.write_bytes(b"\x00")
        MmapDatasetStore(tmp_path)
        assert debris.exists()


class TestJournalChaos:
    def test_delta_log_survives_torn_append(self, tmp_path):
        dataset = small_dataset()
        path = tmp_path / "log.jsonl"
        log = DeltaLog.open(path, dataset=dataset)
        log.append([SetCell(0, 0, 0)], fingerprint="f" * 64)
        torn = DeltaLog.open(
            path,
            dataset=dataset,
            io=ChaosShim(ChaosPlan.single("torn-write", site="delta", op="append")),
        )
        with pytest.raises(OSError):
            torn.append([SetCell(1, 1, 1)], fingerprint="e" * 64)
        # Committed batches replay; the torn tail is dropped, typed, gone.
        recovered = DeltaLog.open(path, dataset=dataset)
        assert len(recovered) == 1
        assert recovered.tip_fingerprint() == "f" * 64

    def test_checkpoint_journal_survives_eio_append(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        shim = ChaosShim(
            ChaosPlan.single("eio", site="checkpoint", op="append", call=1)
        )
        with CheckpointJournal.open(
            path, algorithm="parallel-cubeminer", fingerprint="fp", n_chunks=3, io=shim
        ) as journal:
            journal.record(0, [(1, 2, 3)], {"n": 1})
            with pytest.raises(OSError):
                journal.record(1, [(4, 5, 6)], {"n": 1})
        header, completed = load_journal(path)
        assert header is not None
        assert set(completed) == {0}  # chunk 0 committed, chunk 1 cleanly absent


# ----------------------------------------------------------------------
# Hardened service runtime (in-process routing; no workers)
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_429_with_retry_after(self, tmp_path, monkeypatch):
        app = ServiceApp(tmp_path / "data", max_workers=1, max_queued=1)
        try:
            monkeypatch.setattr(app.jobs, "max_workers", 0)  # stall dispatch
            fp = app.registry.register(small_dataset()).fingerprint
            first = submit_job(app, fp, Thresholds(1, 2, 2))
            assert first.status == 202
            second = submit_job(app, fp, Thresholds(2, 2, 2))
            assert second.status == 429
            assert second.payload["error"]["code"] == "over-capacity"
            assert float(second.payload["error"]["retry_after"]) > 0
            assert float(second.headers["Retry-After"]) > 0
            assert app.chaos.jobs_rejected == 1
            assert get(app, "/health").payload["chaos"]["jobs_rejected"] == 1
        finally:
            app.close()

    def test_probes(self, tmp_path, monkeypatch):
        app = ServiceApp(tmp_path / "data", max_workers=1, max_queued=1)
        try:
            assert get(app, "/healthz").payload == {"status": "ok"}
            assert get(app, "/readyz").status == 200
            monkeypatch.setattr(app.jobs, "max_workers", 0)
            fp = app.registry.register(small_dataset()).fingerprint
            submit_job(app, fp, Thresholds(1, 2, 2))
            ready = get(app, "/readyz")
            assert ready.status == 503
            assert ready.payload["status"] == "over-capacity"
            assert get(app, "/healthz").status == 200  # liveness unaffected
        finally:
            app.close()

    def test_draining_rejects_submissions(self, tmp_path):
        app = ServiceApp(tmp_path / "data", max_workers=1)
        try:
            fp = app.registry.register(small_dataset()).fingerprint
            assert app.drain(timeout=5.0)
            ready = get(app, "/readyz")
            assert ready.status == 503
            assert ready.payload["status"] == "draining"
            rejected = submit_job(app, fp, Thresholds(1, 2, 2))
            assert rejected.status == 503
            assert rejected.payload["error"]["code"] == "draining"
        finally:
            app.close()

    def test_injected_reset_propagates_to_transport(self, tmp_path):
        shim = ChaosShim(
            ChaosPlan.single("reset", site="http", op="handle", path="/health")
        )
        app = ServiceApp(tmp_path / "data", max_workers=1, io=shim)
        try:
            with pytest.raises(ConnectionResetError):
                get(app, "/health")
            assert get(app, "/health").status == 200  # next call is clean
        finally:
            app.close()

    def test_storage_fault_under_handler_is_503(self, tmp_path):
        app = ServiceApp(tmp_path / "data", max_workers=1)
        try:
            fp = app.registry.register(small_dataset()).fingerprint
            shim = ChaosShim(
                ChaosPlan((ChaosRule("enospc", site="jobs", op="write", calls=None),))
            )
            app.jobs.io = shim
            response = submit_job(app, fp, Thresholds(1, 2, 2))
            assert response.status == 503
            assert response.payload["error"]["code"] == "storage-unavailable"
        finally:
            app.jobs.io = IOShim()
            app.close()


# ----------------------------------------------------------------------
# Restart recovery races (no real workers: _start is stubbed)
# ----------------------------------------------------------------------
class TestRecoverRaces:
    def _seed_running_job(self, data_dir, status="running"):
        registry = DatasetRegistry(data_dir / "datasets")
        cache = ThresholdLatticeCache(data_dir / "cache")
        dataset = small_dataset()
        fp = registry.register(dataset).fingerprint
        spec = JobSpec(dataset=fp, thresholds=Thresholds(1, 2, 2))
        job_id = "deadbeef0001"
        job_dir = data_dir / "jobs" / job_id
        job_dir.mkdir(parents=True)
        record = {
            "schema": 1,
            "id": job_id,
            "spec": spec.to_dict(),
            "status": status,
            "created": time.time() - 10,
            "started": time.time() - 5,
        }
        (job_dir / "job.json").write_text(json.dumps(record))
        return registry, cache, dataset, job_id, job_dir

    def test_recover_races_live_event_journal(self, tmp_path, monkeypatch):
        data = tmp_path / "data"
        registry, cache, _dataset, job_id, job_dir = self._seed_running_job(data)
        starts: list[str] = []
        monkeypatch.setattr(
            JobManager, "_start", lambda self, record: starts.append(record.id)
        )
        stop = threading.Event()

        def appender() -> None:
            # A worker orphaned by the dead daemon is still appending
            # heartbeats while the new daemon recovers the tree.
            with open(job_dir / "events.jsonl", "a") as handle:
                while not stop.is_set():
                    handle.write(json.dumps({"kind": "heartbeat"}) + "\n")
                    handle.flush()
                    time.sleep(0.001)

        thread = threading.Thread(target=appender, daemon=True)
        thread.start()
        try:
            manager = JobManager(data / "jobs", registry, cache, max_workers=1)
            try:
                deadline = time.monotonic() + 10
                while not starts and time.monotonic() < deadline:
                    time.sleep(0.01)
                # Requeued and dispatched exactly once, despite the race.
                assert starts == [job_id]
                assert manager.recover() == 0  # idempotent: already loaded
                assert starts == [job_id]
            finally:
                manager.shutdown()
        finally:
            stop.set()
            thread.join(timeout=5)

    def test_recover_finalizes_completed_running_job(self, tmp_path, monkeypatch):
        # The worker wrote result.json + sidecar right as the old daemon
        # died with the record still 'running': recovery must finalize,
        # not re-run.
        data = tmp_path / "data"
        registry, cache, dataset, job_id, job_dir = self._seed_running_job(data)
        result = mine(dataset, Thresholds(1, 2, 2))
        payload = json.dumps(result.to_payload()).encode()
        (job_dir / "result.sha256").write_text(sha256_bytes(payload))
        (job_dir / "result.json").write_bytes(payload)
        monkeypatch.setattr(
            JobManager,
            "_start",
            lambda self, record: pytest.fail("finalized job must not re-run"),
        )
        manager = JobManager(data / "jobs", registry, cache, max_workers=1)
        try:
            record = manager.get(job_id)
            assert record.status == "done"
            assert record.n_cubes == len(result)
            served = manager.result_payload(job_id)
            assert served["stats"]["extra"]["chaos"] == manager.chaos.as_dict()
            # The finalized result also re-entered the lattice cache.
            assert cache.lookup(record.spec.dataset, "cubeminer", Thresholds(1, 2, 2))
        finally:
            manager.shutdown()

    def test_recover_with_corrupt_result_requeues_once(self, tmp_path, monkeypatch):
        data = tmp_path / "data"
        registry, cache, dataset, job_id, job_dir = self._seed_running_job(data)
        (job_dir / "result.sha256").write_text("0" * 64)
        (job_dir / "result.json").write_bytes(b'{"not": "a result"}')
        starts: list[str] = []
        monkeypatch.setattr(
            JobManager, "_start", lambda self, record: starts.append(record.id)
        )
        manager = JobManager(data / "jobs", registry, cache, max_workers=1)
        try:
            deadline = time.monotonic() + 10
            while not starts and time.monotonic() < deadline:
                time.sleep(0.01)
            assert starts == [job_id]
            assert manager.chaos.corruption_detected >= 1
        finally:
            manager.shutdown()

    def test_quarantined_jobs_stay_contained_across_restart(self, tmp_path):
        data = tmp_path / "data"
        registry, cache, _dataset, job_id, job_dir = self._seed_running_job(
            data, status="running"
        )
        # Relocate the seeded job into quarantine, as _quarantine would.
        quarantine = data / "jobs" / "quarantined" / job_id
        quarantine.parent.mkdir(parents=True)
        job_dir.rename(quarantine)
        manager = JobManager(data / "jobs", registry, cache, max_workers=1)
        try:
            record = manager.get(job_id)
            assert record.status == "quarantined"
            assert record.terminal
            assert manager.queue_depth() == 0
            assert manager.counts()["quarantined"] == 1
        finally:
            manager.shutdown()


# ----------------------------------------------------------------------
# The retrying client (no sockets: urlopen is stubbed)
# ----------------------------------------------------------------------
class _FakeResponse:
    def __init__(self, payload: dict) -> None:
        self._data = json.dumps(payload).encode()

    def read(self) -> bytes:
        return self._data

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


class TestClientRetries:
    def test_idempotent_get_retries_transient_faults(self, monkeypatch):
        calls = {"n": 0}

        def flaky(request, timeout=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ConnectionResetError(104, "reset by peer")
            if calls["n"] == 2:
                raise urllib.error.URLError(OSError(111, "refused"))
            return _FakeResponse({"status": "ok"})

        monkeypatch.setattr(urllib.request, "urlopen", flaky)
        client = ServiceClient("http://daemon", retries=3, retry_backoff=0.001)
        assert client.health() == {"status": "ok"}
        assert calls["n"] == 3

    def test_post_is_never_retried(self, monkeypatch):
        calls = {"n": 0}

        def always_reset(request, timeout=None):
            calls["n"] += 1
            raise ConnectionResetError(104, "reset by peer")

        monkeypatch.setattr(urllib.request, "urlopen", always_reset)
        client = ServiceClient("http://daemon", retries=5, retry_backoff=0.001)
        with pytest.raises(ServiceClientError) as err:
            client._request("POST", "/v1/jobs", payload={})
        assert err.value.code == "unreachable"
        assert calls["n"] == 1  # a resubmitted job is a duplicate job

    def test_get_exhausts_budget_with_typed_error(self, monkeypatch):
        calls = {"n": 0}

        def always_reset(request, timeout=None):
            calls["n"] += 1
            raise ConnectionResetError(104, "reset by peer")

        monkeypatch.setattr(urllib.request, "urlopen", always_reset)
        client = ServiceClient("http://daemon", retries=2, retry_backoff=0.001)
        with pytest.raises(ServiceClientError) as err:
            client.health()
        assert err.value.code == "unreachable"
        assert calls["n"] == 3  # 1 try + 2 retries, bounded

    def test_http_errors_never_retried_and_carry_retry_after(self, monkeypatch):
        calls = {"n": 0}
        detail = {"error": {"code": "over-capacity", "message": "full",
                            "retry_after": 2.5}}

        def rejected(request, timeout=None):
            calls["n"] += 1
            raise urllib.error.HTTPError(
                "http://daemon/health", 429, "Too Many Requests", None,
                io_module.BytesIO(json.dumps(detail).encode()),
            )

        monkeypatch.setattr(urllib.request, "urlopen", rejected)
        client = ServiceClient("http://daemon", retries=5, retry_backoff=0.001)
        with pytest.raises(ServiceClientError) as err:
            client.health()
        assert calls["n"] == 1  # the daemon answered; honor the answer
        assert err.value.status == 429
        assert err.value.code == "over-capacity"
        assert err.value.retry_after == 2.5


# ----------------------------------------------------------------------
# fsck: scan, repair, exit codes
# ----------------------------------------------------------------------
class TestFsck:
    def _populated_data_dir(self, tmp_path):
        data = tmp_path / "data"
        registry = DatasetRegistry(data / "datasets")
        cache = ThresholdLatticeCache(data / "cache")
        store = MmapDatasetStore(data / "mmap")
        dataset = small_dataset()
        fp = registry.register(dataset).fingerprint
        cache.put(fp, "cubeminer", mine(dataset, Thresholds(1, 2, 2)))
        store.put(dataset)
        DeltaLog.open(data / "deltas" / f"{fp}.jsonl", dataset=dataset)
        return data, fp

    def test_clean_tree_reports_clean(self, tmp_path):
        data, _fp = self._populated_data_dir(tmp_path)
        report = fsck_data_dir(data)
        assert report.clean
        assert report.scanned["datasets"] == 1
        assert report.scanned["cache_entries"] == 1
        assert report.scanned["mmap_entries"] == 1
        assert report.scanned["delta_logs"] == 1

    def test_damage_found_then_repaired(self, tmp_path):
        data, fp = self._populated_data_dir(tmp_path)
        cache_entry = next((data / "cache").glob("*/*/*.json"))
        # Silent payload drift: valid JSON whose digest no longer matches.
        doc = json.loads(cache_entry.read_text())
        doc["payload"]["cubes"] = doc["payload"]["cubes"] + [[1, 1, 1]]
        cache_entry.write_text(json.dumps(doc))
        (data / "datasets" / ".stale.tmp.json").write_text("debris")
        (data / "deltas" / "dangling.jsonl").write_text(
            json.dumps(
                {
                    "kind": "header",
                    "version": 1,
                    "fingerprint": "0" * 64,
                    "shape": [1, 1, 1],
                }
            )
            + "\n"
        )
        report = fsck_data_dir(data)
        kinds = {issue.kind for issue in report.issues}
        assert not report.clean
        assert "checksum-mismatch" in kinds
        assert "stale-temp" in kinds
        assert "dangling-log" in kinds
        assert len(report.errors) == 1  # only the checksum break is an error

        repaired = fsck_data_dir(data, repair=True)
        assert repaired.repaired >= 3
        assert not cache_entry.exists()
        quarantined = list((data / "quarantined" / "fsck").iterdir())
        assert quarantined  # damage is moved aside, never deleted
        assert fsck_data_dir(data).clean

    def test_structural_scan_skips_checksums(self, tmp_path):
        data, fp = self._populated_data_dir(tmp_path)
        flip_byte(data / "datasets" / f"{fp}.npz", offset=100)
        # Content damage is invisible structurally, by design: serve's
        # startup check is cheap and verify-on-read covers the rest.
        assert fsck_data_dir(data, verify_checksums=False).clean
        assert not fsck_data_dir(data, verify_checksums=True).clean

    def test_resumable_jobs_are_not_issues(self, tmp_path):
        data, fp = self._populated_data_dir(tmp_path)
        job_dir = data / "jobs" / "cafecafe0001"
        job_dir.mkdir(parents=True)
        spec = JobSpec(dataset=fp, thresholds=Thresholds(1, 2, 2))
        (job_dir / "job.json").write_text(
            json.dumps(
                {
                    "schema": 1,
                    "id": "cafecafe0001",
                    "spec": spec.to_dict(),
                    "status": "running",
                    "created": time.time(),
                }
            )
        )
        report = fsck_data_dir(data)
        assert report.clean
        assert report.scanned["jobs_resumable"] == 1

    def test_cli_exit_codes(self, tmp_path, capsys):
        data, _fp = self._populated_data_dir(tmp_path)
        assert cli_main(["fsck", "--data-dir", str(data)]) == 0
        assert "clean" in capsys.readouterr().out

        cache_entry = next((data / "cache").glob("*/*/*.json"))
        flip_byte(cache_entry, offset=len(cache_entry.read_bytes()) // 2)
        assert cli_main(["fsck", "--data-dir", str(data), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is False

        assert cli_main(["fsck", "--data-dir", str(data), "--repair"]) == 0
        capsys.readouterr()

        with pytest.raises(SystemExit) as exit_info:
            cli_main(["fsck", "--data-dir", str(tmp_path / "nope")])
        assert exit_info.value.code == 65

    def test_serve_refuses_corrupt_store(self, tmp_path, capsys):
        data, fp = self._populated_data_dir(tmp_path)
        # Structural damage: registry metadata that is not JSON at all.
        (data / "datasets" / f"{fp}.json").write_text("{broken")
        with pytest.raises(SystemExit) as exit_info:
            cli_main(["serve", "--data-dir", str(data), "--port", "0"])
        assert exit_info.value.code == 65
        err = capsys.readouterr().err
        assert "corrupt store" in err
        assert "--repair" in err


# ----------------------------------------------------------------------
# The full battery: real workers under scripted fault schedules
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestServiceUnderChaos:
    def _app(self, tmp_path, plan=None, **kwargs):
        io = ChaosShim(plan) if plan is not None else None
        kwargs.setdefault("max_workers", 1)
        kwargs.setdefault("retry_backoff", 0.05)
        return ServiceApp(tmp_path / "data", io=io, **kwargs)

    def test_worker_crash_retried_bit_identical(self, tmp_path):
        dataset = small_dataset()
        clean = mine(dataset, Thresholds(1, 2, 2))
        plan = ChaosPlan.single("crash", site="worker", op="start", call=0)
        app = self._app(tmp_path, plan)
        try:
            fp = app.registry.register(dataset).fingerprint
            job_id = submit_job(app, fp, Thresholds(1, 2, 2)).payload["id"]
            record = wait_terminal(app, job_id)
            assert record.status == "done"
            assert record.retries == 1
            assert record.attempts == 2
            assert app.chaos.jobs_retried == 1
            payload = get(app, f"/v1/jobs/{job_id}/result").payload
            from repro.core.result import MiningResult

            assert cube_set(MiningResult.from_payload(payload["result"])) == cube_set(
                clean
            )
            # Every served result reports what the runtime survived.
            assert payload["result"]["stats"]["extra"]["chaos"]["jobs_retried"] == 1
        finally:
            app.close()

    def test_poison_job_quarantined_not_looped(self, tmp_path):
        plan = ChaosPlan(
            (ChaosRule("crash", site="worker", op="start", calls=None),)
        )
        app = self._app(tmp_path, plan, max_retries=1)
        try:
            fp = app.registry.register(small_dataset()).fingerprint
            job_id = submit_job(app, fp, Thresholds(1, 2, 2)).payload["id"]
            record = wait_terminal(app, job_id)
            assert record.status == "quarantined"
            assert record.retries == 1  # budget spent, then contained
            assert app.chaos.jobs_quarantined == 1
            assert app.jobs.queue_depth() == 0  # no unbounded retry loop
            quarantine_dir = tmp_path / "data" / "jobs" / "quarantined" / job_id
            manifest = json.loads((quarantine_dir / "quarantine.json").read_text())
            assert manifest["id"] == job_id
            assert manifest["retries"] == 1
            # The fault trace carries the injected faults for replay.
            kinds = {f["kind"] for f in manifest["fault_trace"]["io_faults"]}
            assert "crash" in kinds
        finally:
            app.close()
        # A restarted daemon keeps the poison contained.
        fresh = ServiceApp(tmp_path / "data", max_workers=1)
        try:
            assert fresh.jobs.get(job_id).status == "quarantined"
            assert fresh.jobs.queue_depth() == 0
        finally:
            fresh.close()

    def test_watchdog_kills_hung_worker_then_retry_succeeds(self, tmp_path):
        dataset = small_dataset()
        clean = mine(dataset, Thresholds(1, 2, 2))
        plan = ChaosPlan.single(
            "hang", site="worker", op="start", call=0, seconds=60.0
        )
        app = self._app(tmp_path, plan, heartbeat_timeout=1.0)
        try:
            fp = app.registry.register(dataset).fingerprint
            job_id = submit_job(app, fp, Thresholds(1, 2, 2)).payload["id"]
            record = wait_terminal(app, job_id)
            assert record.status == "done"
            assert app.chaos.watchdog_kills >= 1
            assert record.retries >= 1  # the kill was retried, not terminal
            from repro.core.result import MiningResult

            payload = get(app, f"/v1/jobs/{job_id}/result").payload
            assert cube_set(MiningResult.from_payload(payload["result"])) == cube_set(
                clean
            )
        finally:
            app.close()

    def test_deadline_exceeded_is_typed_and_never_retried(self, tmp_path):
        rng = np.random.default_rng(5)
        dataset = Dataset3D(rng.random((8, 24, 24)) < 0.45)
        app = self._app(tmp_path)
        try:
            fp = app.registry.register(dataset).fingerprint
            job_id = submit_job(
                app, fp, Thresholds(1, 1, 1), deadline_seconds=1e-6
            ).payload["id"]
            record = wait_terminal(app, job_id)
            assert record.status == "failed"  # not quarantined, not retried
            assert record.retries == 0
            error_doc = json.loads(
                (tmp_path / "data" / "jobs" / job_id / "error.json").read_text()
            )
            assert error_doc["code"] == "deadline-exceeded"
            assert "retryable" not in error_doc
        finally:
            app.close()

    def test_corrupt_result_served_as_typed_500(self, tmp_path):
        app = self._app(tmp_path)
        try:
            fp = app.registry.register(small_dataset()).fingerprint
            job_id = submit_job(app, fp, Thresholds(1, 2, 2)).payload["id"]
            assert wait_terminal(app, job_id).status == "done"
            result_path = tmp_path / "data" / "jobs" / job_id / "result.json"
            flip_byte(result_path, offset=len(result_path.read_bytes()) // 2)
            response = get(app, f"/v1/jobs/{job_id}/result")
            assert response.status == 500
            assert response.payload["error"]["code"] == "result-corrupt"
            assert app.chaos.corruption_detected >= 1
        finally:
            app.close()

    def test_corrupt_cache_entry_triggers_clean_remine(self, tmp_path):
        dataset = small_dataset()
        clean = mine(dataset, Thresholds(1, 2, 2))
        app = self._app(tmp_path)
        try:
            fp = app.registry.register(dataset).fingerprint
            job_id = submit_job(app, fp, Thresholds(1, 2, 2)).payload["id"]
            assert wait_terminal(app, job_id).status == "done"
            entry = next((tmp_path / "data" / "cache").glob("*/*/*.json"))
            flip_byte(entry, offset=len(entry.read_bytes()) // 2)
            # The poisoned entry degrades to a miss: the resubmission is
            # a fresh mine (202, not an instant cache answer) and the
            # re-mined result is bit-identical.
            response = submit_job(app, fp, Thresholds(1, 2, 2))
            assert response.status == 202
            record = wait_terminal(app, response.payload["id"])
            assert record.status == "done"
            assert not record.cache_hit
            assert app.chaos.corruption_evicted >= 1
            from repro.core.result import MiningResult

            payload = get(app, f"/v1/jobs/{record.id}/result").payload
            assert cube_set(MiningResult.from_payload(payload["result"])) == cube_set(
                clean
            )
        finally:
            app.close()

    def test_kill_workers_then_restart_resumes_exactly_once(self, tmp_path):
        dataset = small_dataset()
        clean = mine(dataset, Thresholds(1, 2, 2))
        plan = ChaosPlan.single(
            "hang", site="worker", op="start", call=0, seconds=120.0
        )
        app = self._app(tmp_path, plan)
        try:
            fp = app.registry.register(dataset).fingerprint
            job_id = submit_job(app, fp, Thresholds(1, 2, 2)).payload["id"]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                with app.jobs._lock:
                    if job_id in app.jobs._procs:
                        break
                time.sleep(0.05)
            assert app.jobs.kill_workers() == 1
        finally:
            app.close()
        # The persisted status is still 'running' — the restart contract.
        on_disk = json.loads(
            (tmp_path / "data" / "jobs" / job_id / "job.json").read_text()
        )
        assert on_disk["status"] == "running"
        fresh = ServiceApp(tmp_path / "data", max_workers=1)
        try:
            assert fresh.jobs.recover() == 0  # __init__ already requeued it
            record = wait_terminal(fresh, job_id)
            assert record.status == "done"
            assert record.attempts == 2  # restart requeue, not a retry
            assert record.retries == 0
            from repro.core.result import MiningResult

            payload = get(fresh, f"/v1/jobs/{job_id}/result").payload
            assert cube_set(MiningResult.from_payload(payload["result"])) == cube_set(
                clean
            )
        finally:
            fresh.close()

    @pytest.mark.parametrize("seed", [1, 2])
    def test_seeded_random_storage_faults_never_lose_cubes(self, tmp_path, seed):
        dataset = small_dataset(seed)
        thresholds = Thresholds(1, 2, 2)
        clean = mine(dataset, thresholds)
        plan = ChaosPlan.random(
            seed,
            rate=0.05,
            kinds=("enospc", "eio", "torn-write", "bit-flip", "stale-tmp"),
            sites=("cache", "jobs", "registry"),
        )
        app = self._app(tmp_path, plan, max_retries=3)
        try:
            fp = None
            for _ in range(5):  # registration itself may hit a fault
                try:
                    fp = app.registry.register(dataset).fingerprint
                    break
                except OSError:
                    continue
            assert fp is not None
            response = submit_job(app, fp, thresholds)
            if response.status == 503:
                return  # typed storage rejection is an allowed outcome
            assert response.status in (200, 202)
            record = wait_terminal(app, response.payload["id"])
            assert record.status in ("done", "quarantined", "failed")
            if record.status == "done":
                payload = get(app, f"/v1/jobs/{record.id}/result")
                if payload.status == 200:
                    from repro.core.result import MiningResult

                    assert cube_set(
                        MiningResult.from_payload(payload.payload["result"])
                    ) == cube_set(clean)
                else:  # corrupted at rest, detected — typed, not silent
                    assert payload.payload["error"]["code"] in (
                        "result-corrupt",
                        "result-unreadable",
                    )
            # Whatever happened, fsck must agree nothing is silently
            # broken beyond what verify-on-read already flagged.
            report = fsck_data_dir(tmp_path / "data", repair=True)
            assert fsck_data_dir(tmp_path / "data").clean
        finally:
            app.close()
