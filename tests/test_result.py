"""Unit tests for MiningResult."""

from __future__ import annotations

from repro.core.constraints import Thresholds
from repro.core.cube import Cube
from repro.core.result import MiningResult


def _cubes():
    return [
        Cube.from_indices([0], [0], [0]),
        Cube.from_indices([1], [1], [1]),
        Cube.from_indices([0, 1], [0], [0]),
    ]


class TestCanonicalization:
    def test_deduplicates(self):
        cube = Cube.from_indices([0], [0], [0])
        result = MiningResult(cubes=[cube, cube, cube])
        assert len(result) == 1

    def test_sorted_deterministically(self):
        result_a = MiningResult(cubes=_cubes())
        result_b = MiningResult(cubes=list(reversed(_cubes())))
        assert result_a.cubes == result_b.cubes


class TestCollectionProtocol:
    def test_len_iter_contains(self):
        result = MiningResult(cubes=_cubes())
        assert len(result) == 3
        assert set(result) == set(_cubes())
        assert _cubes()[0] in result
        assert Cube.from_indices([5], [5], [5]) not in result


class TestComparison:
    def test_same_cubes_ignores_order_and_metadata(self):
        a = MiningResult(cubes=_cubes(), algorithm="x", elapsed_seconds=1.0)
        b = MiningResult(cubes=list(reversed(_cubes())), algorithm="y")
        assert a.same_cubes(b)

    def test_same_cubes_accepts_iterables(self):
        result = MiningResult(cubes=_cubes())
        assert result.same_cubes(_cubes())
        assert not result.same_cubes([])

    def test_difference(self):
        a = MiningResult(cubes=_cubes()[:2])
        b = MiningResult(cubes=_cubes()[1:])
        only_a, only_b = a.difference(b)
        assert only_a == {_cubes()[0]}
        assert only_b == {_cubes()[2]}


class TestPresentation:
    def test_format_table(self, paper_ds):
        result = MiningResult(
            cubes=[Cube.from_labels(paper_ds, "h1 h2", "r1 r4", "c3 c5")],
            algorithm="test",
            thresholds=Thresholds(2, 2, 2),
        )
        table = result.format_table(paper_ds)
        assert "h1h2 : r1r4 : c3c5, 2:2:2" in table
        assert "1 FCC" in table
        assert "minH=2" in table

    def test_summary(self):
        result = MiningResult(
            cubes=_cubes(),
            algorithm="cubeminer",
            dataset_shape=(3, 4, 5),
            elapsed_seconds=0.25,
        )
        summary = result.summary()
        assert "cubeminer" in summary
        assert "3 FCCs" in summary
        assert "3x4x5" in summary

    def test_summary_unknown_shape(self):
        assert "?" in MiningResult(cubes=[]).summary()

    def test_repr(self):
        assert "n_cubes=0" in repr(MiningResult(cubes=[]))
