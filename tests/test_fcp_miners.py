"""Unit and cross-equivalence tests for the four 2D FCP miners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitset import bit_count
from repro.fcp import (
    FCP_MINERS,
    BinaryMatrix,
    Pattern2D,
    carpenter_mine,
    cbo_mine,
    charm_mine,
    check_pattern,
    closet_mine,
    dminer_mine,
    get_fcp_miner,
    oracle_mine_2d,
)
from repro.fcp.dminer import build_cutters_2d

ALL_MINERS = [dminer_mine, cbo_mine, charm_mine, carpenter_mine, closet_mine]
MINER_IDS = ["dminer", "cbo", "charm", "carpenter", "closet"]


@pytest.fixture
def example():
    """The {h2,h3} representative slice of the paper's Table 2."""
    return BinaryMatrix.from_array(
        [
            [1, 1, 1, 0, 0],
            [0, 1, 1, 0, 0],
            [1, 1, 1, 1, 0],
            [1, 1, 0, 0, 1],
        ]
    )


class TestPattern2D:
    def test_supports(self):
        p = Pattern2D(0b101, 0b11)
        assert p.row_support == 2
        assert p.column_support == 2

    def test_format(self):
        assert str(Pattern2D(0b101, 0b011)) == "r1r3 : c1c2, 2 : 2"

    def test_check_pattern_valid(self, example):
        assert check_pattern(example, Pattern2D(0b101, 0b111))

    def test_check_pattern_not_all_ones(self, example):
        assert not check_pattern(example, Pattern2D(0b1111, 0b111))

    def test_check_pattern_not_maximal(self, example):
        # rows {r1} with cols {c2,c3}: r2, r3 also contain them.
        assert not check_pattern(example, Pattern2D(0b0001, 0b110))

    def test_check_pattern_empty(self, example):
        assert not check_pattern(example, Pattern2D(0, 0b1))
        assert not check_pattern(example, Pattern2D(0b1, 0))


class TestPaperSliceFCPs:
    """Table 2 row 1: the 3 FCPs of the {h2,h3} slice at minR=minC=2."""

    EXPECTED = {"r1r3 : c1c2c3, 2 : 3", "r1r3r4 : c1c2, 3 : 2", "r1r2r3 : c2c3, 3 : 2"}

    @pytest.mark.parametrize("mine", ALL_MINERS, ids=MINER_IDS)
    def test_each_miner(self, example, mine):
        patterns = {str(p) for p in mine(example, 2, 2)}
        assert patterns == self.EXPECTED


class TestDMinerInternals:
    def test_cutters_2d(self, example):
        cutters = build_cutters_2d(example)
        assert [(row, zeros) for row, zeros in cutters] == [
            (0, 0b11000),
            (1, 0b11001),
            (2, 0b10000),
            (3, 0b01100),
        ]

    def test_no_cutters_on_all_ones(self):
        matrix = BinaryMatrix.from_array(np.ones((3, 3), dtype=bool))
        assert build_cutters_2d(matrix) == []
        assert dminer_mine(matrix, 1, 1) == [Pattern2D(0b111, 0b111)]


class TestEdgeCases:
    @pytest.mark.parametrize("mine", ALL_MINERS, ids=MINER_IDS)
    def test_all_zeros(self, mine):
        matrix = BinaryMatrix.from_array(np.zeros((3, 4), dtype=bool))
        assert mine(matrix, 1, 1) == []

    @pytest.mark.parametrize("mine", ALL_MINERS, ids=MINER_IDS)
    def test_all_ones(self, mine):
        matrix = BinaryMatrix.from_array(np.ones((3, 4), dtype=bool))
        assert set(mine(matrix, 1, 1)) == {Pattern2D(0b111, 0b1111)}

    @pytest.mark.parametrize("mine", ALL_MINERS, ids=MINER_IDS)
    def test_identity_matrix(self, mine):
        matrix = BinaryMatrix.from_array(np.eye(4, dtype=bool))
        patterns = set(mine(matrix, 1, 1))
        assert patterns == {Pattern2D(1 << i, 1 << i) for i in range(4)}

    @pytest.mark.parametrize("mine", ALL_MINERS, ids=MINER_IDS)
    def test_thresholds_filter(self, mine, example):
        for pattern in mine(example, 3, 1):
            assert pattern.row_support >= 3
        for pattern in mine(example, 1, 3):
            assert pattern.column_support >= 3

    @pytest.mark.parametrize("mine", ALL_MINERS, ids=MINER_IDS)
    def test_infeasible_thresholds(self, mine, example):
        assert mine(example, 5, 1) == []
        assert mine(example, 1, 6) == []

    @pytest.mark.parametrize("mine", ALL_MINERS, ids=MINER_IDS)
    def test_invalid_thresholds_raise(self, mine, example):
        with pytest.raises(ValueError):
            mine(example, 0, 1)
        with pytest.raises(ValueError):
            mine(example, 1, 0)

    @pytest.mark.parametrize("mine", ALL_MINERS, ids=MINER_IDS)
    def test_single_row(self, mine):
        matrix = BinaryMatrix.from_array([[1, 0, 1, 1]])
        assert set(mine(matrix, 1, 1)) == {Pattern2D(0b1, 0b1101)}

    @pytest.mark.parametrize("mine", ALL_MINERS, ids=MINER_IDS)
    def test_single_column(self, mine):
        matrix = BinaryMatrix.from_array([[1], [0], [1]])
        assert set(mine(matrix, 1, 1)) == {Pattern2D(0b101, 0b1)}


class TestCrossEquivalence:
    @pytest.mark.parametrize("mine", ALL_MINERS, ids=MINER_IDS)
    def test_against_oracle_random(self, mine, rng):
        for _ in range(40):
            n, m = rng.integers(1, 9, size=2)
            matrix = BinaryMatrix.from_array(
                rng.random((n, m)) < rng.uniform(0.15, 0.95)
            )
            mr, mc = (int(x) for x in rng.integers(1, 4, size=2))
            assert set(mine(matrix, mr, mc)) == set(oracle_mine_2d(matrix, mr, mc))

    def test_all_patterns_valid_and_distinct(self, rng):
        for _ in range(20):
            n, m = rng.integers(2, 10, size=2)
            matrix = BinaryMatrix.from_array(rng.random((n, m)) < 0.6)
            for mine in ALL_MINERS:
                patterns = mine(matrix, 1, 1)
                assert len(patterns) == len(set(patterns))
                for pattern in patterns:
                    assert check_pattern(matrix, pattern)

    def test_extents_closed_means_rows_maximal(self, rng):
        """RSM correctness hinges on bi-maximality; verify explicitly."""
        for _ in range(10):
            matrix = BinaryMatrix.from_array(rng.random((6, 8)) < 0.5)
            for pattern in dminer_mine(matrix, 1, 1):
                assert matrix.support_rows(pattern.columns) == pattern.rows
                assert matrix.support_columns(pattern.rows) == pattern.columns


class TestRegistry:
    def test_all_names_resolve(self):
        for name in FCP_MINERS:
            miner = get_fcp_miner(name)
            assert miner.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown 2D miner"):
            get_fcp_miner("apriori")

    def test_class_interface(self, example):
        miner = get_fcp_miner("dminer")
        patterns = miner.mine(example, min_rows=2, min_columns=2)
        assert len(patterns) == 3


class TestOracleGuard:
    def test_rejects_large_input(self):
        matrix = BinaryMatrix.from_array(np.ones((19, 2), dtype=bool))
        with pytest.raises(ValueError, match="oracle"):
            oracle_mine_2d(matrix)

    def test_pattern_counts_monotone_in_thresholds(self, rng):
        matrix = BinaryMatrix.from_array(rng.random((7, 7)) < 0.6)
        c11 = len(oracle_mine_2d(matrix, 1, 1))
        c21 = len(oracle_mine_2d(matrix, 2, 1))
        c22 = len(oracle_mine_2d(matrix, 2, 2))
        assert c11 >= c21 >= c22
