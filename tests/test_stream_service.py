"""Service integration of ``repro.stream``: the updates endpoint,
maintenance jobs, cache patch-forward, and the mmap dataset mode."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.api import mine
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.core.result import MiningResult
from repro.io import dataset_to_payload
from repro.service import Request, ServiceApp
from repro.service.schemas import JobSpec
from repro.stream import DeltaLog


def small_dataset(seed: int = 21) -> Dataset3D:
    rng = np.random.default_rng(seed)
    return Dataset3D(rng.random((3, 6, 6)) < 0.55)


def cube_keys(result):
    return [(c.heights, c.rows, c.columns) for c in result.cubes]


def post(app: ServiceApp, path: str, payload: dict):
    return app.handle(
        Request(method="POST", path=path, body=json.dumps(payload).encode())
    )


def get(app: ServiceApp, path: str):
    return app.handle(Request(method="GET", path=path))


def wait_done(app: ServiceApp, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = get(app, f"/v1/jobs/{job_id}").payload
        if record["status"] in ("done", "failed", "cancelled"):
            return record
        time.sleep(0.1)
    raise TimeoutError(job_id)


@pytest.fixture
def app(tmp_path):
    application = ServiceApp(tmp_path / "data", max_workers=1)
    yield application
    application.close()


DELTAS = [
    {"op": "set-cell", "height": 0, "row": 0, "column": 0},
    {"op": "clear-cell", "height": 2, "row": 5, "column": 5},
]


class TestUpdatesEndpoint:
    def _register_and_mine(self, app, ds, th):
        fp = post(app, "/v1/datasets", dataset_to_payload(ds)).payload[
            "fingerprint"
        ]
        record = post(
            app,
            "/v1/jobs",
            {"dataset": fp, "thresholds": th.to_dict(), "algorithm": "rsm"},
        ).payload
        assert wait_done(app, record["id"])["status"] == "done"
        return fp

    def test_update_patches_cache_forward(self, app, tmp_path):
        ds = small_dataset()
        th = Thresholds(2, 2, 2)
        fp = self._register_and_mine(app, ds, th)

        response = post(app, f"/v1/datasets/{fp}/updates", {"deltas": DELTAS})
        assert response.status == 202
        doc = response.payload
        assert doc["base"] == fp
        assert doc["deltas_applied"] == 2
        assert len(doc["jobs"]) == 1
        maintenance = doc["jobs"][0]
        assert maintenance["spec"]["maintain"]["base"] == fp
        assert wait_done(app, maintenance["id"])["status"] == "done"

        # The maintained result is cached under the successor fingerprint
        # and equals a fresh mine of the edited tensor, bit for bit.
        query = post(
            app,
            "/v1/query",
            {
                "dataset": doc["fingerprint"],
                "algorithm": "rsm",
                "thresholds": th.to_dict(),
            },
        )
        assert query.status == 200
        served = MiningResult.from_payload(query.payload["result"])
        edited = np.array(ds.data, dtype=bool)
        edited[0, 0, 0] = True
        edited[2, 5, 5] = False
        fresh = mine(Dataset3D(edited), th, algorithm="rsm")
        assert cube_keys(served) == cube_keys(fresh)

        # The worker went through the maintainer, not a fresh mine.
        events = get(app, f"/v1/jobs/{maintenance['id']}/events").payload[
            "events"
        ]
        assert any(e.get("kind") == "maintain-done" for e in events)

    def test_update_journals_the_delta_log(self, app):
        ds = small_dataset()
        fp = post(app, "/v1/datasets", dataset_to_payload(ds)).payload[
            "fingerprint"
        ]
        # Updating the successor extends the same chained journal.
        doc = post(app, f"/v1/datasets/{fp}/updates", {"deltas": DELTAS}).payload
        successor = doc["fingerprint"]
        post(app, f"/v1/datasets/{successor}/updates", {"deltas": DELTAS[:1]})
        log = DeltaLog.open(app.data_dir / "deltas" / f"{fp}.jsonl")
        assert len(log) == 2
        assert log.fingerprint == fp
        assert log.replay(ds) is not None

    def test_divergent_updates_get_separate_journals(self, app):
        # Two batches posted against the SAME base are branches, not a
        # chain — each lands in its own replayable journal.
        ds = small_dataset()
        fp = post(app, "/v1/datasets", dataset_to_payload(ds)).payload[
            "fingerprint"
        ]
        post(app, f"/v1/datasets/{fp}/updates", {"deltas": DELTAS})
        post(app, f"/v1/datasets/{fp}/updates", {"deltas": DELTAS[:1]})
        logs = sorted((app.data_dir / "deltas").glob("*.jsonl"))
        assert len(logs) == 2
        for path in logs:
            log = DeltaLog.open(path)
            assert len(log) == 1
            assert log.fingerprint == fp
            assert log.replay(ds) is not None

    def test_update_without_cached_results_queues_no_jobs(self, app):
        ds = small_dataset()
        fp = post(app, "/v1/datasets", dataset_to_payload(ds)).payload[
            "fingerprint"
        ]
        response = post(app, f"/v1/datasets/{fp}/updates", {"deltas": DELTAS})
        assert response.status == 202
        assert response.payload["jobs"] == []
        # The successor dataset is still registered.
        assert (
            get(app, f"/v1/datasets/{response.payload['fingerprint']}").status
            == 200
        )

    def test_update_unknown_dataset_404(self, app):
        response = post(
            app, "/v1/datasets/" + "0" * 64 + "/updates", {"deltas": DELTAS}
        )
        assert response.status == 404
        assert response.payload["error"]["code"] == "unknown-dataset"

    def test_update_bad_deltas_400(self, app):
        ds = small_dataset()
        fp = post(app, "/v1/datasets", dataset_to_payload(ds)).payload[
            "fingerprint"
        ]
        for bad in (
            {"deltas": []},
            {"deltas": [{"op": "warp"}]},
            {"deltas": [{"op": "set-cell", "height": 99, "row": 0, "column": 0}]},
            {},
        ):
            response = post(app, f"/v1/datasets/{fp}/updates", bad)
            assert response.status == 400, bad
            assert response.payload["error"]["code"] == "bad-deltas"

    def test_maintenance_falls_back_when_base_vanishes(self, app):
        # A maintain spec whose base was never cached: the worker falls
        # back to a fresh mine and the job still completes correctly.
        ds = small_dataset()
        th = Thresholds(2, 2, 2)
        fp = post(app, "/v1/datasets", dataset_to_payload(ds)).payload[
            "fingerprint"
        ]
        edited = np.array(ds.data, dtype=bool)
        edited[0, 0, 0] = True
        new_fp = post(
            app, "/v1/datasets", dataset_to_payload(Dataset3D(edited))
        ).payload["fingerprint"]
        spec = JobSpec(
            dataset=new_fp,
            thresholds=th,
            algorithm="rsm",
            use_cache=False,
            maintain={
                "base": fp,
                "deltas": [
                    {"op": "set-cell", "height": 0, "row": 0, "column": 0}
                ],
            },
        )
        record = post(app, "/v1/jobs", spec.to_dict()).payload
        assert wait_done(app, record["id"])["status"] == "done"
        events = get(app, f"/v1/jobs/{record['id']}/events").payload["events"]
        assert any(e.get("kind") == "maintain-fallback" for e in events)
        result = MiningResult.from_payload(
            get(app, f"/v1/jobs/{record['id']}/result").payload["result"]
        )
        assert cube_keys(result) == cube_keys(
            mine(Dataset3D(edited), th, algorithm="rsm")
        )


class TestJobSpecMaintain:
    def test_wire_round_trip(self):
        spec = JobSpec(
            dataset="a" * 64,
            thresholds=Thresholds(2, 2, 2),
            maintain={"base": "b" * 64, "deltas": DELTAS},
        )
        restored = JobSpec.from_dict(spec.to_dict())
        assert restored.maintain == spec.maintain

    def test_maintain_omitted_when_unset(self):
        spec = JobSpec(dataset="a" * 64, thresholds=Thresholds(2, 2, 2))
        assert "maintain" not in spec.to_dict()
        assert JobSpec.from_dict(spec.to_dict()).maintain is None

    def test_validate_rejects_malformed_maintain(self):
        for maintain in (
            {"deltas": DELTAS},  # no base
            {"base": "b" * 64, "deltas": [{"op": "warp"}]},
        ):
            spec = JobSpec(
                dataset="a" * 64,
                thresholds=Thresholds(2, 2, 2),
                maintain=maintain,
            )
            with pytest.raises(ValueError):
                spec.validate()


class TestMmapMode:
    def test_mmap_job_mines_identically(self, tmp_path):
        app = ServiceApp(tmp_path / "data", max_workers=1, mmap_datasets=True)
        try:
            ds = small_dataset(seed=31)
            th = Thresholds(2, 2, 2)
            fp = post(app, "/v1/datasets", dataset_to_payload(ds)).payload[
                "fingerprint"
            ]
            record = post(
                app,
                "/v1/jobs",
                {
                    "dataset": fp,
                    "thresholds": th.to_dict(),
                    "algorithm": "rsm",
                    "use_cache": False,
                },
            ).payload
            assert wait_done(app, record["id"])["status"] == "done"
            # The packed grid was materialized into the mmap store.
            assert (app.data_dir / "mmap" / f"{fp}.npy").exists()
            result = MiningResult.from_payload(
                get(app, f"/v1/jobs/{record['id']}/result").payload["result"]
            )
            assert cube_keys(result) == cube_keys(
                mine(ds, th, algorithm="rsm")
            )
        finally:
            app.close()
