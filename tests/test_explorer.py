"""Tests for threshold exploration."""

from __future__ import annotations

import pytest

from repro.analysis import find_min_c_for_budget, threshold_profile
from repro.api import mine
from repro.core.constraints import Thresholds
from repro.datasets import paper_example, planted_tensor


@pytest.fixture
def planted_ds():
    return planted_tensor(
        (5, 8, 24), n_blocks=4, block_shape=(2, 3, 6),
        background_density=0.15, seed=8,
    ).dataset


class TestThresholdProfile:
    def test_counts_match_direct_mining(self, paper_ds):
        points = threshold_profile(
            paper_ds, Thresholds(2, 2, 2), axis="min_c", values=[2, 3, 4]
        )
        for point in points:
            assert point.n_cubes == len(mine(paper_ds, point.thresholds))

    def test_counts_anti_monotone(self, planted_ds):
        points = threshold_profile(
            planted_ds, Thresholds(2, 2, 2), axis="min_c", values=[2, 4, 6, 8]
        )
        counts = [p.n_cubes for p in points]
        assert counts == sorted(counts, reverse=True)

    def test_other_axes_kept(self, paper_ds):
        base = Thresholds(2, 3, 2)
        points = threshold_profile(
            paper_ds, base, axis="min_h", values=[2, 3]
        )
        assert all(p.thresholds.min_r == 3 for p in points)
        assert [p.thresholds.min_h for p in points] == [2, 3]

    def test_invalid_axis(self, paper_ds):
        with pytest.raises(ValueError, match="axis"):
            threshold_profile(
                paper_ds, Thresholds(1, 1, 1), axis="min_x", values=[1]
            )

    def test_empty_values(self, paper_ds):
        with pytest.raises(ValueError, match="at least one"):
            threshold_profile(
                paper_ds, Thresholds(1, 1, 1), axis="min_c", values=[]
            )


class TestFindMinC:
    def test_finds_smallest_fitting_minc(self, planted_ds):
        base = Thresholds(2, 2, 1)
        budget = 10
        min_c, n_cubes = find_min_c_for_budget(
            planted_ds, base, max_cubes=budget
        )
        assert n_cubes <= budget
        if min_c > base.min_c:
            # One step looser must overflow the budget (minimality).
            looser = len(
                mine(planted_ds, Thresholds(base.min_h, base.min_r, min_c - 1))
            )
            assert looser > budget

    def test_base_already_fits(self, paper_ds):
        min_c, n_cubes = find_min_c_for_budget(
            paper_ds, Thresholds(2, 2, 2), max_cubes=100
        )
        assert min_c == 2
        assert n_cubes == 5

    def test_budget_zero(self, paper_ds):
        min_c, n_cubes = find_min_c_for_budget(
            paper_ds, Thresholds(2, 2, 2), max_cubes=0
        )
        assert n_cubes == 0

    def test_unreachable_budget_returns_endpoint(self):
        # All-ones tensor: exactly 1 FCC at every minC, so budget 0 is
        # unreachable; the endpoint with its over-budget count returns.
        from repro.core.dataset import Dataset3D
        import numpy as np

        ds = Dataset3D(np.ones((2, 2, 4), dtype=bool))
        min_c, n_cubes = find_min_c_for_budget(
            ds, Thresholds(1, 1, 1), max_cubes=0
        )
        assert min_c == 4
        assert n_cubes == 1

    def test_negative_budget(self, paper_ds):
        with pytest.raises(ValueError, match="max_cubes"):
            find_min_c_for_budget(
                paper_ds, Thresholds(1, 1, 1), max_cubes=-1
            )
