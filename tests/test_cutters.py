"""Unit tests for cutter construction and ordering heuristics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import Dataset3D
from repro.cubeminer.cutter import (
    Cutter,
    HeightOrder,
    build_cutters,
    height_permutation,
)


class TestCutter:
    def test_atom_masks(self):
        cutter = Cutter(height=2, row=5, columns=0b1010)
        assert cutter.left_mask == 0b100
        assert cutter.middle_mask == 0b100000

    def test_format_without_dataset(self):
        cutter = Cutter(height=0, row=1, columns=0b11000)
        assert cutter.format() == "h1, r2, c4c5"

    def test_format_with_dataset(self, paper_ds):
        cutter = Cutter(height=1, row=2, columns=0b10000)
        assert cutter.format(paper_ds) == "h2, r3, c5"

    def test_str(self):
        assert str(Cutter(0, 0, 1)) == "h1, r1, c1"


class TestBuildCutters:
    def test_all_ones_has_no_cutters(self):
        ds = Dataset3D(np.ones((2, 3, 4), dtype=bool))
        assert build_cutters(ds) == []

    def test_all_zeros_has_full_cutters(self):
        ds = Dataset3D(np.zeros((2, 3, 4), dtype=bool))
        cutters = build_cutters(ds)
        assert len(cutters) == 2 * 3
        assert all(c.columns == 0b1111 for c in cutters)

    def test_one_cutter_per_zero_row(self, paper_ds):
        cutters = build_cutters(paper_ds)
        pairs = {(c.height, c.row) for c in cutters}
        assert len(cutters) == len(pairs)
        for cutter in cutters:
            assert paper_ds.zeros_mask(cutter.height, cutter.row) == cutter.columns

    def test_original_order_sorted_by_height_then_row(self, paper_ds):
        cutters = build_cutters(paper_ds, HeightOrder.ORIGINAL)
        keys = [(c.height, c.row) for c in cutters]
        assert keys == sorted(keys)


class TestHeightPermutation:
    @pytest.fixture
    def skewed(self):
        # Slice zero counts: h1 -> 1 zero, h2 -> 4 zeros, h3 -> 2 zeros.
        data = np.ones((3, 2, 2), dtype=bool)
        data[0, 0, 0] = False
        data[1] = False
        data[2, 0, 0] = data[2, 1, 1] = False
        return Dataset3D(data)

    def test_original(self, skewed):
        assert height_permutation(skewed, HeightOrder.ORIGINAL) == [0, 1, 2]

    def test_zero_decreasing(self, skewed):
        assert height_permutation(skewed, HeightOrder.ZERO_DECREASING) == [1, 2, 0]

    def test_zero_increasing(self, skewed):
        assert height_permutation(skewed, HeightOrder.ZERO_INCREASING) == [0, 2, 1]

    def test_ties_keep_original_order(self):
        ds = Dataset3D(np.ones((3, 1, 2), dtype=bool))
        for order in HeightOrder:
            assert height_permutation(ds, order) == [0, 1, 2]

    def test_cutter_order_follows_permutation(self, skewed):
        cutters = build_cutters(skewed, HeightOrder.ZERO_DECREASING)
        heights_seen = []
        for cutter in cutters:
            if cutter.height not in heights_seen:
                heights_seen.append(cutter.height)
        assert heights_seen == [1, 2, 0]

    def test_rows_ascend_within_height(self, skewed):
        cutters = build_cutters(skewed, HeightOrder.ZERO_DECREASING)
        by_height: dict[int, list[int]] = {}
        for cutter in cutters:
            by_height.setdefault(cutter.height, []).append(cutter.row)
        for rows in by_height.values():
            assert rows == sorted(rows)
