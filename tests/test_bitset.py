"""Unit tests for the integer bitset kernel."""

from __future__ import annotations

import pytest

from repro.core import bitset


class TestBitCount:
    def test_empty(self):
        assert bitset.bit_count(0) == 0

    def test_single(self):
        assert bitset.bit_count(1 << 17) == 1

    def test_full(self):
        assert bitset.bit_count(bitset.full_mask(64)) == 64

    def test_sparse(self):
        assert bitset.bit_count(0b1010101) == 4


class TestFullMask:
    def test_zero(self):
        assert bitset.full_mask(0) == 0

    def test_small(self):
        assert bitset.full_mask(3) == 0b111

    def test_large(self):
        assert bitset.full_mask(200) == (1 << 200) - 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bitset.full_mask(-1)


class TestMaskOf:
    def test_empty(self):
        assert bitset.mask_of([]) == 0

    def test_simple(self):
        assert bitset.mask_of([0, 2, 5]) == 0b100101

    def test_duplicates_idempotent(self):
        assert bitset.mask_of([3, 3, 3]) == 0b1000

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bitset.mask_of([1, -2])

    def test_accepts_any_iterable(self):
        assert bitset.mask_of(iter((1, 4))) == 0b10010


class TestSingleBit:
    def test_zero_index(self):
        assert bitset.single_bit(0) == 1

    def test_large_index(self):
        assert bitset.single_bit(100) == 1 << 100

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bitset.single_bit(-1)


class TestIterBitsAndIndices:
    def test_empty(self):
        assert list(bitset.iter_bits(0)) == []
        assert bitset.indices(0) == ()

    def test_ascending_order(self):
        assert list(bitset.iter_bits(0b101010)) == [1, 3, 5]

    def test_indices_round_trip(self):
        for mask in (0, 1, 0b1011, 1 << 63, (1 << 70) | 5):
            assert bitset.mask_of(bitset.indices(mask)) == mask


class TestSetAlgebra:
    def test_is_subset_reflexive(self):
        assert bitset.is_subset(0b1010, 0b1010)

    def test_is_subset_strict(self):
        assert bitset.is_subset(0b1000, 0b1010)
        assert not bitset.is_subset(0b1010, 0b1000)

    def test_empty_is_subset_of_all(self):
        assert bitset.is_subset(0, 0)
        assert bitset.is_subset(0, 0b111)

    def test_intersects(self):
        assert bitset.intersects(0b110, 0b011)
        assert not bitset.intersects(0b100, 0b011)
        assert not bitset.intersects(0, 0b111)

    def test_difference(self):
        assert bitset.difference(0b1110, 0b0110) == 0b1000
        assert bitset.difference(0b1, 0b1) == 0

    def test_lowest_bit_index(self):
        assert bitset.lowest_bit_index(0b1000) == 3
        assert bitset.lowest_bit_index(0b1001) == 0

    def test_lowest_bit_of_empty_raises(self):
        with pytest.raises(ValueError):
            bitset.lowest_bit_index(0)


class TestBoolConversion:
    def test_mask_from_bools(self):
        assert bitset.mask_from_bools([True, False, True]) == 0b101

    def test_mask_from_bools_empty(self):
        assert bitset.mask_from_bools([]) == 0

    def test_bools_from_mask(self):
        assert bitset.bools_from_mask(0b101, 3) == [True, False, True]

    def test_bools_from_mask_pads(self):
        assert bitset.bools_from_mask(0b1, 4) == [True, False, False, False]

    def test_bools_from_mask_overflow_raises(self):
        with pytest.raises(ValueError):
            bitset.bools_from_mask(0b1000, 3)

    def test_bools_from_mask_negative_n_raises_library_message(self):
        # Regression: a negative universe used to leak Python's internal
        # "negative shift count" instead of the library's validation.
        with pytest.raises(ValueError, match="universe size must be non-negative"):
            bitset.bools_from_mask(0b1, -1)

    def test_bools_from_mask_negative_n_zero_mask_raises(self):
        with pytest.raises(ValueError, match="universe size must be non-negative"):
            bitset.bools_from_mask(0, -5)

    def test_bools_from_mask_zero_universe(self):
        assert bitset.bools_from_mask(0, 0) == []

    def test_round_trip(self):
        flags = [True, True, False, True, False]
        mask = bitset.mask_from_bools(flags)
        assert bitset.bools_from_mask(mask, len(flags)) == flags
