"""Tests for top-k-by-volume mining."""

from __future__ import annotations

import pytest

from repro.analysis import top_k_by_volume
from repro.api import mine
from repro.core.constraints import Thresholds
from repro.datasets import planted_tensor
from tests.conftest import random_dataset


class TestTopK:
    def test_paper_example_top3(self, paper_ds, paper_thresholds):
        top = top_k_by_volume(paper_ds, 3, paper_thresholds)
        assert len(top) == 3
        assert all(cube.volume == 18 for cube in top)

    def test_equals_sort_of_full_mine(self, rng):
        for _ in range(15):
            ds = random_dataset(rng)
            base = Thresholds(1, 1, 1)
            full = sorted(
                mine(ds, base),
                key=lambda cube: (-cube.volume, cube.sort_key()),
            )
            for k in (1, 3, 7):
                top = top_k_by_volume(ds, k, base)
                assert top == full[: k]

    def test_fewer_cubes_than_k(self, paper_ds, paper_thresholds):
        top = top_k_by_volume(paper_ds, 100, paper_thresholds)
        assert len(top) == 5

    def test_descending_volumes(self, rng):
        ds = planted_tensor(
            (5, 8, 20), n_blocks=4, block_shape=(2, 3, 5),
            background_density=0.1, seed=9,
        ).dataset
        top = top_k_by_volume(ds, 6, Thresholds(1, 1, 1))
        volumes = [cube.volume for cube in top]
        assert volumes == sorted(volumes, reverse=True)

    def test_respects_base_thresholds(self, paper_ds):
        top = top_k_by_volume(paper_ds, 10, Thresholds(3, 1, 1))
        assert all(cube.h_support >= 3 for cube in top)

    def test_volume_floor_is_hard(self, paper_ds):
        base = Thresholds(2, 2, 2, min_volume=13)
        top = top_k_by_volume(paper_ds, 10, base)
        assert len(top) == 3  # the two volume-12/8 cubes stay excluded
        assert all(cube.volume >= 13 for cube in top)

    def test_empty_dataset(self):
        import numpy as np
        from repro.core.dataset import Dataset3D

        ds = Dataset3D(np.zeros((2, 2, 2), dtype=bool))
        assert top_k_by_volume(ds, 5) == []

    def test_invalid_parameters(self, paper_ds):
        with pytest.raises(ValueError, match="k must"):
            top_k_by_volume(paper_ds, 0)
        with pytest.raises(ValueError, match="shrink_factor"):
            top_k_by_volume(paper_ds, 1, shrink_factor=1.0)

    def test_uses_rsm_when_asked(self, paper_ds, paper_thresholds):
        top = top_k_by_volume(paper_ds, 2, paper_thresholds, algorithm="rsm")
        assert len(top) == 2
        assert all(cube.volume == 18 for cube in top)
