"""Tests for the text mining report."""

from __future__ import annotations

import pytest

from repro.analysis.report import mining_report
from repro.api import mine
from repro.core.result import MiningResult


@pytest.fixture
def mined(paper_ds, paper_thresholds):
    return mine(paper_ds, paper_thresholds)


class TestMiningReport:
    def test_all_sections_present(self, paper_ds, mined):
        report = mining_report(paper_ds, mined)
        for section in ("Dataset", "Run", "Result shape", "Top", "Greedy cover",
                        "Association rules"):
            assert section in report

    def test_contains_key_numbers(self, paper_ds, mined):
        report = mining_report(paper_ds, mined)
        assert "5 FCCs" in report
        assert "3 x 4 x 5" in report
        assert "minH=2" in report

    def test_top_cubes_ordered_by_volume(self, paper_ds, mined):
        report = mining_report(paper_ds, mined, top_cubes=5)
        section = report.split("by volume")[1]
        volumes = [
            int(line.split("cells]")[0].split("[")[1])
            for line in section.splitlines()
            if "cells]" in line
        ]
        assert volumes == sorted(volumes, reverse=True)

    def test_empty_result_skips_cube_sections(self, paper_ds):
        report = mining_report(paper_ds, MiningResult(cubes=[]))
        assert "Top" not in report
        assert "Greedy cover" not in report
        assert "Dataset" in report

    def test_section_budgets(self, paper_ds, mined):
        report = mining_report(paper_ds, mined, top_cubes=2)
        section = report.split("by volume")[1].split("Greedy cover")[0]
        assert section.count("cells]") == 2

    def test_zero_sections_allowed(self, paper_ds, mined):
        report = mining_report(
            paper_ds, mined, top_cubes=0, cover_cubes=0, max_rules=0
        )
        assert "by volume" not in report
        assert "Greedy" not in report
        assert "rules" not in report.lower().split("run")[1].split("result")[0]

    def test_negative_budget_rejected(self, paper_ds, mined):
        with pytest.raises(ValueError):
            mining_report(paper_ds, mined, top_cubes=-1)

    def test_rules_none_message(self, paper_ds, mined):
        report = mining_report(paper_ds, mined, min_confidence=1.0)
        assert "Association rules" in report
        # Rules at confidence 1.0 exist for this example OR the
        # placeholder prints; either way the section renders.
        tail = report.split("Association rules")[1]
        assert "=>" in tail or "(none" in tail


class TestCliReport:
    def test_report_subcommand(self, tmp_path, capsys):
        from repro.cli import main
        from repro.datasets import paper_example

        path = tmp_path / "ds.npz"
        paper_example().save_npz(path)
        assert main([
            "report", "--input", str(path),
            "--min-h", "2", "--min-r", "2", "--min-c", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Greedy cover" in out
        assert "5 FCCs" in out
