"""Tests for the traced CubeMiner tree (Figure 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.cubeminer import cubeminer_mine
from repro.cubeminer.cutter import HeightOrder
from repro.cubeminer.trace import (
    Branch,
    PruneReason,
    render_tree,
    trace_tree,
)
from tests.conftest import random_dataset


class TestTraceMatchesMiner:
    def test_leaves_equal_mined_fccs(self, paper_ds, paper_thresholds):
        tree = trace_tree(paper_ds, paper_thresholds)
        mined = cubeminer_mine(
            paper_ds, paper_thresholds, order=HeightOrder.ORIGINAL
        )
        assert set(tree.leaves()) == mined.cube_set()

    def test_leaves_equal_mined_on_random_data(self, rng):
        for _ in range(10):
            ds = random_dataset(rng, max_dim=4)
            th = Thresholds(1, 1, 1)
            tree = trace_tree(ds, th)
            mined = cubeminer_mine(ds, th, order=HeightOrder.ORIGINAL)
            assert set(tree.leaves()) == mined.cube_set()


class TestFigure1Structure:
    """Specific nodes called out in the paper's Figure 1 discussion."""

    @pytest.fixture
    def tree(self, paper_ds, paper_thresholds):
        return trace_tree(paper_ds, paper_thresholds)

    def test_root(self, tree, paper_ds):
        assert tree.branch is Branch.ROOT
        assert tree.cube.format(paper_ds, with_supports=False) == (
            "h1h2h3 : r1r2r3r4 : c1c2c3c4c5"
        )

    def test_root_has_three_sons(self, tree):
        assert [child.branch for child in tree.children] == [
            Branch.LEFT,
            Branch.MIDDLE,
            Branch.RIGHT,
        ]

    def test_prune_category_a_left_track(self, tree, paper_ds):
        """a1/a2: left sons pruned because h1 already cut their paths."""
        pruned_a = [
            node
            for node in tree.iter_nodes()
            if node.pruned is PruneReason.LEFT_TRACK
        ]
        assert pruned_a, "expected category-(a) prunes in the example tree"
        rendered = {
            node.cube.format(paper_ds, with_supports=False) for node in pruned_a
        }
        assert "h2h3 : r2r3r4 : c1c2c3c4c5" in rendered

    def test_prune_category_b_middle_track(self, tree, paper_ds):
        pruned_b = [
            node
            for node in tree.iter_nodes()
            if node.pruned is PruneReason.MIDDLE_TRACK
        ]
        assert pruned_b
        rendered = {
            node.cube.format(paper_ds, with_supports=False) for node in pruned_b
        }
        # b1: M(h1h2h3, r1r3, c1c2c3) cut by (h2, r2, c1c5).
        assert "h1h2h3 : r1r3 : c1c2c3" in rendered

    def test_prune_category_c_height_unclosed(self, tree, paper_ds):
        pruned_c = {
            node.cube.format(paper_ds, with_supports=False)
            for node in tree.iter_nodes()
            if node.pruned is PruneReason.HEIGHT_UNCLOSED
        }
        # c1: R(h2h3, r1r3, c1c2c3) has superset with h1.
        assert "h2h3 : r1r3 : c1c2c3" in pruned_c

    def test_prune_category_d_row_unclosed(self, tree, paper_ds):
        pruned_d = {
            node.cube.format(paper_ds, with_supports=False)
            for node in tree.iter_nodes()
            if node.pruned is PruneReason.ROW_UNCLOSED
        }
        # d2: R(h2h3, r1r4, c1c2c3) is not closed due to r3.
        assert "h2h3 : r1r4 : c1c2c3" in pruned_d

    def test_levels_match_cutter_steps(self, tree):
        for node in tree.iter_nodes():
            for child in node.children:
                assert child.level > node.level


class TestGuards:
    def test_too_large_dataset_rejected(self):
        ds = Dataset3D(np.zeros((20, 20, 20), dtype=bool))
        with pytest.raises(ValueError, match="guard"):
            trace_tree(ds, Thresholds(1, 1, 1))

    def test_infeasible_thresholds_root_pruned(self, paper_ds):
        tree = trace_tree(paper_ds, Thresholds(5, 1, 1))
        assert tree.pruned is PruneReason.MIN_H
        assert tree.leaves() == []


class TestRender:
    def test_render_contains_fccs_and_prunes(self, paper_ds, paper_thresholds):
        tree = trace_tree(paper_ds, paper_thresholds)
        text = render_tree(tree, paper_ds)
        assert text.count("[FCC]") == 5
        assert "[pruned:" in text
        assert text.splitlines()[0].startswith("root(")

    def test_render_hide_pruned(self, paper_ds, paper_thresholds):
        tree = trace_tree(paper_ds, paper_thresholds)
        text = render_tree(tree, paper_ds, show_pruned=False)
        assert "[pruned:" not in text
        assert text.count("[FCC]") == 5
