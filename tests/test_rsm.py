"""Unit and integration tests for the RSM framework."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitset import bit_count, mask_of
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.core.reference import reference_mine
from repro.fcp import CloseByOne
from repro.rsm import (
    RSMMiner,
    count_height_subsets,
    enumerate_height_subsets,
    height_closed_in,
    representative_slice,
    resolve_base_axis,
    rsm_mine,
)
from tests.conftest import random_dataset


class TestSubsetEnumeration:
    def test_all_subsets_min1(self):
        subsets = list(enumerate_height_subsets(3, 1))
        assert len(subsets) == 7
        assert len(set(subsets)) == 7

    def test_min_h_filters_small_subsets(self):
        subsets = list(enumerate_height_subsets(4, 3))
        assert all(bit_count(s) >= 3 for s in subsets)
        assert len(subsets) == 4 + 1  # C(4,3) + C(4,4)

    def test_smallest_first(self):
        sizes = [bit_count(s) for s in enumerate_height_subsets(4, 2)]
        assert sizes == sorted(sizes)

    def test_invalid_min_h(self):
        with pytest.raises(ValueError):
            list(enumerate_height_subsets(3, 0))

    def test_count_matches_enumeration(self):
        for n, k in [(3, 1), (5, 2), (6, 4), (4, 5)]:
            assert count_height_subsets(n, k) == len(
                list(enumerate_height_subsets(n, k))
            )

    def test_count_explodes_with_dimension(self):
        # The quantity behind Figure 7: the subset count roughly doubles
        # per extra height.
        assert count_height_subsets(20, 3) > 500 * count_height_subsets(10, 3)


class TestRepresentativeSlice:
    def test_single_height_is_the_slice(self, paper_ds):
        rs = representative_slice(paper_ds, mask_of([1]))
        assert rs.row_masks() == paper_ds.slice_row_masks(1)

    def test_and_semantics(self, paper_ds):
        rs = representative_slice(paper_ds, mask_of([0, 1, 2]))
        for i in range(paper_ds.n_rows):
            expected = (
                paper_ds.ones_mask(0, i)
                & paper_ds.ones_mask(1, i)
                & paper_ds.ones_mask(2, i)
            )
            assert rs.row_mask(i) == expected

    def test_empty_subset_raises(self, paper_ds):
        with pytest.raises(ValueError, match="at least one height"):
            representative_slice(paper_ds, 0)


class TestPostPrune:
    def test_closed_pattern_kept(self, paper_ds):
        # (h2h3, r1r3r4, c1c2) is exactly height-closed.
        assert height_closed_in(
            paper_ds, mask_of([1, 2]), mask_of([0, 2, 3]), mask_of([0, 1])
        )

    def test_unclosed_pattern_pruned(self, paper_ds):
        # (h2h3, r1r3, c1c2c3) also lives in h1 — Lemma 1 prunes it.
        assert not height_closed_in(
            paper_ds, mask_of([1, 2]), mask_of([0, 2]), mask_of([0, 1, 2])
        )

    def test_full_height_set_always_closed(self, paper_ds):
        assert height_closed_in(paper_ds, mask_of([0, 1, 2]), mask_of([0]), mask_of([0]))


class TestBaseAxisResolution:
    def test_names(self, paper_ds):
        assert resolve_base_axis(paper_ds, "height") == 0
        assert resolve_base_axis(paper_ds, "row") == 1
        assert resolve_base_axis(paper_ds, "column") == 2

    def test_indices_pass_through(self, paper_ds):
        assert resolve_base_axis(paper_ds, 2) == 2

    def test_auto_picks_smallest(self):
        ds = Dataset3D(np.zeros((5, 2, 9), dtype=bool))
        assert resolve_base_axis(ds, "auto") == 1

    def test_auto_tie_prefers_first_axis(self):
        ds = Dataset3D(np.zeros((2, 2, 9), dtype=bool))
        assert resolve_base_axis(ds, "auto") == 0

    def test_invalid_name(self, paper_ds):
        with pytest.raises(ValueError, match="unknown base axis"):
            resolve_base_axis(paper_ds, "depth")

    def test_invalid_index(self, paper_ds):
        with pytest.raises(ValueError, match="axis index"):
            resolve_base_axis(paper_ds, 5)


class TestRSMMining:
    def test_matches_reference_random(self, rng):
        for _ in range(25):
            ds = random_dataset(rng)
            th = Thresholds(*(int(x) for x in rng.integers(1, 4, size=3)))
            assert rsm_mine(ds, th).same_cubes(reference_mine(ds, th))

    def test_all_base_axes_agree(self, rng):
        for _ in range(15):
            ds = random_dataset(rng)
            th = Thresholds(*(int(x) for x in rng.integers(1, 3, size=3)))
            results = [
                rsm_mine(ds, th, base_axis=axis) for axis in (0, 1, 2)
            ]
            assert results[0].same_cubes(results[1])
            assert results[1].same_cubes(results[2])

    def test_fcp_miner_instance_accepted(self, paper_ds, paper_thresholds):
        result = rsm_mine(paper_ds, paper_thresholds, fcp_miner=CloseByOne())
        assert len(result) == 5

    def test_unknown_fcp_miner_raises(self, paper_ds, paper_thresholds):
        with pytest.raises(ValueError, match="unknown 2D miner"):
            rsm_mine(paper_ds, paper_thresholds, fcp_miner="nope")

    def test_algorithm_name_reflects_configuration(self, paper_ds, paper_thresholds):
        result = rsm_mine(
            paper_ds, paper_thresholds, base_axis="row", fcp_miner="charm"
        )
        assert result.algorithm == "rsm-r[charm]"

    def test_stats_exposed(self, paper_ds, paper_thresholds):
        stats = rsm_mine(paper_ds, paper_thresholds).stats
        assert stats["representative_slices"] == 4
        assert stats["fcp_patterns"] == 9  # Table 2 column 3 lists 9 FCPs
        assert stats["postprune_pruned"] == 4  # 9 patterns -> 5 FCCs

    def test_infeasible_thresholds(self, paper_ds):
        result = rsm_mine(paper_ds, Thresholds(4, 1, 1))
        assert len(result) == 0
        assert result.stats["representative_slices"] == 0

    def test_all_zero_dataset(self):
        ds = Dataset3D(np.zeros((2, 2, 2), dtype=bool))
        assert len(rsm_mine(ds, Thresholds(1, 1, 1))) == 0

    def test_all_one_dataset(self):
        ds = Dataset3D(np.ones((2, 2, 2), dtype=bool))
        result = rsm_mine(ds, Thresholds(1, 1, 1))
        assert len(result) == 1
        assert result.cubes[0].volume == 8


class TestRSMMinerFacade:
    def test_mine(self, paper_ds, paper_thresholds):
        miner = RSMMiner(base_axis="auto", fcp_miner="dminer")
        assert len(miner.mine(paper_ds, paper_thresholds)) == 5

    def test_repr(self):
        assert "auto" in repr(RSMMiner())
