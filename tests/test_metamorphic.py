"""Metamorphic tests: transformations with known effects on results.

Each test applies a structure-preserving transformation to a dataset
and asserts the precisely-predictable change to the mining result.
These catch bugs equivalence tests can miss — an index-handling error
often preserves counts on the original orientation but not after a
permutation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import mine
from repro.core.constraints import Thresholds
from repro.core.cube import Cube
from repro.core.dataset import Dataset3D
from repro.core.permute import map_cube_from_transposed
from repro.datasets import shuffle_heights
from tests.conftest import random_dataset


def _mine_set(ds, th, **kw):
    return mine(ds, th, **kw).cube_set()


class TestAxisPermutation:
    @pytest.mark.parametrize("order", [(1, 0, 2), (2, 0, 1), (0, 2, 1), (2, 1, 0)])
    def test_mining_commutes_with_transpose(self, rng, order):
        for _ in range(8):
            ds = random_dataset(rng)
            th = Thresholds(*(int(x) for x in rng.integers(1, 3, size=3)))
            original = _mine_set(ds, th)
            transposed = ds.transpose(order)
            permuted_back = {
                map_cube_from_transposed(cube, order)
                for cube in mine(transposed, th.permute(order))
            }
            assert permuted_back == original


class TestIndexPermutation:
    def test_height_shuffle_preserves_profile(self, rng):
        for _ in range(8):
            ds = random_dataset(rng)
            th = Thresholds(1, 1, 1)
            shuffled = shuffle_heights(ds, seed=rng)
            a = mine(ds, th)
            b = mine(shuffled, th)
            assert sorted(
                (c.h_support, c.r_support, c.c_support) for c in a
            ) == sorted((c.h_support, c.r_support, c.c_support) for c in b)

    def test_explicit_height_permutation_maps_cubes(self, paper_ds, paper_thresholds):
        order = [2, 0, 1]  # new index -> old index
        reordered = paper_ds.reorder_heights(order)
        original = mine(paper_ds, paper_thresholds).cube_set()
        mapped = set()
        inverse = {old: new for new, old in enumerate(order)}
        for cube in mine(reordered, paper_thresholds):
            heights = 0
            for new_index in cube.height_indices():
                heights |= 1 << order[new_index]
            mapped.add(Cube(heights, cube.rows, cube.columns))
        assert mapped == original
        assert inverse  # silence linters; the map direction is the point


class TestDuplication:
    def test_duplicating_a_height_slice(self, rng):
        """Appending a copy of slice 0: every cube containing slice 0
        gains the copy; nothing else changes."""
        for _ in range(6):
            ds = random_dataset(rng, max_dim=4)
            th = Thresholds(1, 1, 1)
            data = np.concatenate([ds.data, ds.data[:1]], axis=0)
            doubled = Dataset3D(data)
            copy_bit = 1 << ds.n_heights
            expected = set()
            for cube in mine(ds, th):
                if cube.heights & 1:  # contains slice 0 -> copy joins
                    expected.add(
                        Cube(cube.heights | copy_bit, cube.rows, cube.columns)
                    )
                else:
                    expected.add(cube)
            assert _mine_set(doubled, th) == expected

    def test_duplicating_a_column(self, rng):
        """Duplicating a column never changes the cube count (the copy
        joins exactly the cubes its original is in)."""
        for _ in range(6):
            ds = random_dataset(rng, max_dim=4)
            th = Thresholds(1, 1, 1)
            data = np.concatenate([ds.data, ds.data[:, :, :1]], axis=2)
            widened = Dataset3D(data)
            assert len(mine(widened, th)) == len(mine(ds, th))


class TestComplement:
    def test_all_ones_padding_row(self, rng):
        """An all-ones row joins every cube; counts are preserved."""
        for _ in range(6):
            ds = random_dataset(rng, max_dim=4)
            th = Thresholds(1, 1, 1)
            data = np.concatenate(
                [ds.data, np.ones((ds.n_heights, 1, ds.n_columns), dtype=bool)],
                axis=1,
            )
            padded = Dataset3D(data)
            new_bit = 1 << ds.n_rows
            original = mine(ds, th).cube_set()
            padded_result = _mine_set(padded, th)
            # Every original cube reappears with the new row added...
            expected = {
                Cube(c.heights, c.rows | new_bit, c.columns) for c in original
            }
            # ...plus possibly the all-ones-row-only cube when it is
            # closed (its column support is the full column set).
            extras = padded_result - expected
            for extra in extras:
                assert extra.rows == new_bit
            assert expected <= padded_result
