"""Tests for the brute-force reference miner itself."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.closure import is_closed_cube
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.core.reference import reference_mine


class TestOracleProperties:
    def test_emits_only_closed_frequent_cubes(self, paper_ds, paper_thresholds):
        result = reference_mine(paper_ds, paper_thresholds)
        for cube in result:
            assert paper_thresholds.satisfied_by(cube)
            assert is_closed_cube(paper_ds, cube)

    def test_monotone_in_thresholds(self, paper_ds):
        loose = reference_mine(paper_ds, Thresholds(1, 1, 1))
        tight = reference_mine(paper_ds, Thresholds(2, 2, 2))
        # Tighter thresholds can only remove cubes.
        assert len(tight) <= len(loose)
        assert tight.cube_set() <= loose.cube_set()

    def test_every_closed_cube_found_exhaustively(self, paper_ds):
        """Cross-check with an independent closure-based enumeration."""
        from itertools import product

        from repro.core.closure import close
        from repro.core.cube import Cube

        found = set()
        l, n, m = paper_ds.shape
        for k, i, j in product(range(l), range(n), range(m)):
            if paper_ds.cell(k, i, j):
                seed = Cube(1 << k, 1 << i, 1 << j)
                found.add(close(paper_ds, seed))
        # Every closure of a single cell with supports >= 1 must be in
        # the oracle's answer at thresholds (1,1,1).
        oracle = reference_mine(paper_ds, Thresholds(1, 1, 1)).cube_set()
        assert found <= oracle

    def test_guard_rejects_large_inputs(self):
        ds = Dataset3D(np.ones((15, 15, 2), dtype=bool))
        with pytest.raises(ValueError, match="too large"):
            reference_mine(ds, Thresholds(1, 1, 1))

    def test_stats_counts_candidates(self, paper_ds, paper_thresholds):
        result = reference_mine(paper_ds, paper_thresholds)
        assert result.stats["candidates_checked"] == 4 * 11
        # 4 height subsets of size >= 2; 11 row subsets of size >= 2.

    def test_empty_dataset_dimension(self):
        ds = Dataset3D(np.ones((0, 2, 2), dtype=bool))
        assert len(reference_mine(ds, Thresholds(1, 1, 1))) == 0
