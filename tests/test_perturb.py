"""Tests for noise injection and the metamorphic invariances it enables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import mine
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.datasets import (
    add_ones,
    drop_ones,
    flip_cells,
    paper_example,
    planted_tensor,
    shuffle_heights,
)


class TestFlipCells:
    def test_flip_count_exact(self, paper_ds):
        noisy = flip_cells(paper_ds, 0.25, seed=0)
        differing = int((noisy.data != paper_ds.data).sum())
        assert differing == round(0.25 * paper_ds.data.size)

    def test_zero_fraction_identity(self, paper_ds):
        assert flip_cells(paper_ds, 0.0, seed=0) == paper_ds

    def test_full_fraction_complements(self, paper_ds):
        flipped = flip_cells(paper_ds, 1.0, seed=0)
        assert (flipped.data != paper_ds.data).all()

    def test_labels_preserved(self, paper_ds):
        assert flip_cells(paper_ds, 0.1, seed=0).height_labels == (
            "h1", "h2", "h3"
        )

    def test_invalid_fraction(self, paper_ds):
        with pytest.raises(ValueError, match="fraction"):
            flip_cells(paper_ds, 1.5)

    def test_deterministic_with_seed(self, paper_ds):
        assert flip_cells(paper_ds, 0.3, seed=4) == flip_cells(
            paper_ds, 0.3, seed=4
        )


class TestOneSidedNoise:
    def test_drop_only_removes(self, paper_ds):
        dropped = drop_ones(paper_ds, 0.5, seed=1)
        assert not (dropped.data & ~paper_ds.data).any()
        assert dropped.count_ones() == paper_ds.count_ones() - round(
            0.5 * paper_ds.count_ones()
        )

    def test_add_only_adds(self, paper_ds):
        extended = add_ones(paper_ds, 0.5, seed=2)
        assert not (paper_ds.data & ~extended.data).any()
        n_zeros = paper_ds.data.size - paper_ds.count_ones()
        assert extended.count_ones() == paper_ds.count_ones() + round(0.5 * n_zeros)

    def test_drop_everything(self, paper_ds):
        assert drop_ones(paper_ds, 1.0, seed=0).count_ones() == 0

    def test_add_everything(self, paper_ds):
        assert add_ones(paper_ds, 1.0, seed=0).density == 1.0


class TestDropOnesEdges:
    def test_zero_rate_is_identity(self, paper_ds):
        assert drop_ones(paper_ds, 0.0, seed=0) == paper_ds

    def test_full_rate_leaves_no_ones(self, paper_ds):
        dropped = drop_ones(paper_ds, 1.0, seed=9)
        assert dropped.count_ones() == 0
        assert dropped.shape == paper_ds.shape

    def test_empty_tensor_is_noop_at_any_rate(self):
        empty = Dataset3D(np.zeros((2, 3, 4), dtype=bool))
        for rate in (0.0, 0.5, 1.0):
            assert drop_ones(empty, rate, seed=1).count_ones() == 0

    def test_seed_determinism(self, paper_ds):
        assert drop_ones(paper_ds, 0.4, seed=7) == drop_ones(
            paper_ds, 0.4, seed=7
        )
        assert drop_ones(paper_ds, 0.4, seed=7) != drop_ones(
            paper_ds, 0.4, seed=8
        )

    def test_accepts_generator_seed(self, paper_ds):
        a = drop_ones(paper_ds, 0.4, seed=np.random.default_rng(11))
        b = drop_ones(paper_ds, 0.4, seed=np.random.default_rng(11))
        assert a == b

    def test_labels_preserved(self, paper_ds):
        assert (
            drop_ones(paper_ds, 0.5, seed=2).height_labels
            == paper_ds.height_labels
        )

    def test_invalid_rate_rejected(self, paper_ds):
        with pytest.raises(ValueError, match="fraction"):
            drop_ones(paper_ds, -0.1)
        with pytest.raises(ValueError, match="fraction"):
            drop_ones(paper_ds, 1.01)


class TestShuffleHeights:
    def test_metamorphic_invariance(self, paper_ds, paper_thresholds):
        """Mining results are isomorphic under slice permutation."""
        shuffled = shuffle_heights(paper_ds, seed=3)
        original = mine(paper_ds, paper_thresholds)
        permuted = mine(shuffled, paper_thresholds)
        assert len(original) == len(permuted)
        assert sorted(c.volume for c in original) == sorted(
            c.volume for c in permuted
        )
        assert sorted(
            (c.h_support, c.r_support, c.c_support) for c in original
        ) == sorted((c.h_support, c.r_support, c.c_support) for c in permuted)

    def test_labels_travel_with_slices(self, paper_ds):
        shuffled = shuffle_heights(paper_ds, seed=3)
        for new_index, label in enumerate(shuffled.height_labels):
            old_index = paper_ds.height_labels.index(label)
            assert np.array_equal(
                shuffled.data[new_index], paper_ds.data[old_index]
            )


class TestNoiseSensitivity:
    def test_dropout_fragments_patterns(self):
        """The exactness of FCC mining: dropout shrinks max volume."""
        planted = planted_tensor(
            (4, 6, 20), n_blocks=1, block_shape=(3, 4, 8),
            background_density=0.02, seed=5,
        )
        th = Thresholds(2, 2, 2)
        clean = mine(planted.dataset, th)
        clean_max = max(c.volume for c in clean)
        noisy = drop_ones(planted.dataset, 0.3, seed=6)
        noisy_result = mine(noisy, th)
        noisy_max = max((c.volume for c in noisy_result), default=0)
        assert noisy_max < clean_max
