"""Tests for the result verification utility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import mine
from repro.core import verify_result
from repro.core.constraints import Thresholds
from repro.core.cube import Cube
from repro.core.dataset import Dataset3D
from repro.core.result import MiningResult


@pytest.fixture
def mined(paper_ds, paper_thresholds):
    return mine(paper_ds, paper_thresholds)


class TestSoundResults:
    def test_clean_result_passes(self, paper_ds, paper_thresholds, mined):
        report = verify_result(paper_ds, mined, paper_thresholds)
        assert report.ok
        assert report.checked == 5
        assert "OK" in report.summary()

    def test_thresholds_taken_from_result(self, paper_ds, mined):
        assert verify_result(paper_ds, mined).ok

    def test_completeness_pass(self, paper_ds, paper_thresholds, mined):
        report = verify_result(
            paper_ds, mined, paper_thresholds, check_completeness=True
        )
        assert report.ok
        assert report.completeness_checked
        assert "complete" in report.summary()


class TestViolations:
    def test_incomplete_cube_flagged(self, paper_ds, paper_thresholds):
        bad = MiningResult(
            cubes=[Cube.from_labels(paper_ds, "h1", "r4", "c1 c3")]
        )
        report = verify_result(paper_ds, bad, paper_thresholds)
        assert not report.ok
        assert report.violations[0].kind == "incomplete"

    def test_unclosed_cube_flagged_per_axis(self, paper_ds, paper_thresholds):
        # (h1h3, r2r3, c1c2c3) is complete but row-unclosed (r1 missing).
        bad = MiningResult(
            cubes=[Cube.from_labels(paper_ds, "h1 h3", "r2 r3", "c1 c2 c3")]
        )
        report = verify_result(paper_ds, bad, paper_thresholds)
        kinds = {v.kind for v in report.violations}
        assert "unclosed-row" in kinds

    def test_infrequent_cube_flagged(self, paper_ds):
        cube = Cube.from_labels(paper_ds, "h1 h2", "r1 r4", "c3 c5")
        report = verify_result(
            paper_ds, MiningResult(cubes=[cube]), Thresholds(3, 3, 3)
        )
        assert any(v.kind == "infrequent" for v in report.violations)

    def test_empty_axis_cube_flagged(self, paper_ds, paper_thresholds):
        report = verify_result(
            paper_ds, MiningResult(cubes=[Cube(0, 1, 1)]), paper_thresholds
        )
        assert report.violations[0].kind == "incomplete"

    def test_missing_cube_flagged(self, paper_ds, paper_thresholds, mined):
        partial = MiningResult(cubes=mined.cubes[:3])
        report = verify_result(
            paper_ds, partial, paper_thresholds, check_completeness=True
        )
        missing = [v for v in report.violations if v.kind == "missing"]
        assert len(missing) == 2

    def test_wrong_dataset_detected(self, paper_ds, paper_thresholds, mined):
        """Verifying against a perturbed dataset must surface violations."""
        data = paper_ds.data.copy()
        data[0, 0, 1] = False  # break a cell inside several FCCs
        report = verify_result(Dataset3D(data), mined, paper_thresholds)
        assert not report.ok

    def test_completeness_without_thresholds_raises(self, paper_ds, mined):
        result = MiningResult(cubes=list(mined))
        with pytest.raises(ValueError, match="thresholds"):
            verify_result(paper_ds, result, None, check_completeness=True)

    def test_violation_str(self, paper_ds, paper_thresholds):
        report = verify_result(
            paper_ds, MiningResult(cubes=[Cube(0, 1, 1)]), paper_thresholds
        )
        assert "incomplete" in str(report.violations[0])
