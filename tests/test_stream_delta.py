"""Delta types, batch application, and the JSONL delta log."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.dataset import Dataset3D
from repro.io import dataset_fingerprint
from repro.stream import (
    AppendSlice,
    ClearCell,
    DeltaLog,
    DeltaLogMismatchError,
    DropSlice,
    SetCell,
    apply_deltas,
    delta_from_dict,
    delta_to_dict,
    deltas_from_payload,
    deltas_to_payload,
)


def small_dataset() -> Dataset3D:
    rng = np.random.default_rng(7)
    return Dataset3D(rng.random((3, 4, 5)) < 0.5)


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "delta",
    [
        SetCell(1, 2, 3),
        ClearCell(0, 0, 0),
        AppendSlice("height", [[1, 0], [0, 1]], label="t9"),
        AppendSlice(2, [[0], [1], [1]]),
        DropSlice("row", 1),
        DropSlice(0, 2),
    ],
)
def test_delta_dict_round_trip(delta):
    assert delta_from_dict(delta_to_dict(delta)) == delta


def test_payload_round_trip_is_json_clean():
    batch = [SetCell(0, 1, 2), AppendSlice("row", [[1, 0, 1], [0, 0, 1]])]
    payload = deltas_to_payload(batch)
    assert deltas_from_payload(json.loads(json.dumps(payload))) == batch


def test_axis_names_and_indices_agree():
    assert AppendSlice("height", [[1]]).axis == AppendSlice(0, [[1]]).axis
    assert DropSlice("column", 0).axis == 2


def test_bad_payloads_raise():
    with pytest.raises(ValueError):
        delta_from_dict({"op": "warp-cell"})
    with pytest.raises(ValueError):
        deltas_from_payload({"not": "a list"})
    with pytest.raises(ValueError):
        AppendSlice("height", [[2, 0]])  # non-binary values
    with pytest.raises(ValueError):
        DropSlice("diagonal", 0)


# ----------------------------------------------------------------------
# apply_deltas semantics
# ----------------------------------------------------------------------
def test_cell_edits_dirty_their_height_only():
    ds = small_dataset()
    app = apply_deltas(ds, [SetCell(1, 0, 0), ClearCell(1, 3, 4)])
    assert app.dataset.data[1, 0, 0] == 1
    assert app.dataset.data[1, 3, 4] == 0
    assert app.dirty_heights == 1 << 1
    assert app.height_map == (0, 1, 2)
    assert app.row_map == (0, 1, 2, 3)
    assert app.n_deltas == 2


def test_height_append_dirties_only_the_new_height():
    ds = small_dataset()
    new = np.ones((4, 5), dtype=int)
    app = apply_deltas(ds, [AppendSlice("height", new, label="fresh")])
    assert app.dataset.shape == (4, 4, 5)
    assert app.dirty_heights == 1 << 3
    assert app.dataset.height_labels[-1] == "fresh"
    assert np.array_equal(np.asarray(app.dataset.data[3], dtype=int), new)


def test_row_and_column_edits_dirty_every_height():
    ds = small_dataset()
    full = (1 << 3) - 1
    app = apply_deltas(ds, [AppendSlice("row", np.zeros((3, 5), dtype=int))])
    assert app.dirty_heights == full
    app = apply_deltas(ds, [DropSlice("column", 0)])
    assert app.dirty_heights == full
    assert app.column_map == (None, 0, 1, 2, 3)


def test_height_drop_remaps_dirty_and_maps():
    ds = small_dataset()
    app = apply_deltas(ds, [SetCell(2, 0, 0), DropSlice("height", 0)])
    # Old height 2 is now index 1 and still dirty; dropped height maps None.
    assert app.height_map == (None, 0, 1)
    assert app.dirty_heights == 1 << 1


def test_deltas_apply_in_order_against_evolving_shape():
    ds = small_dataset()
    app = apply_deltas(
        ds,
        [
            AppendSlice("height", np.zeros((4, 5), dtype=int)),
            SetCell(3, 1, 1),  # valid only after the append
        ],
    )
    assert app.dataset.data[3, 1, 1] == 1


def test_errors_carry_batch_position():
    ds = small_dataset()
    with pytest.raises(ValueError, match="delta #1"):
        apply_deltas(ds, [SetCell(0, 0, 0), SetCell(99, 0, 0)])
    with pytest.raises(ValueError, match="cannot drop the last"):
        apply_deltas(
            Dataset3D(np.ones((1, 2, 2), dtype=bool)), [DropSlice("height", 0)]
        )


def test_new_dataset_keeps_kernel():
    ds = small_dataset().with_kernel("numpy")
    app = apply_deltas(ds, [SetCell(0, 0, 0)])
    assert app.dataset.kernel.name == "numpy"


# ----------------------------------------------------------------------
# The delta log
# ----------------------------------------------------------------------
def test_delta_log_journal_and_replay(tmp_path):
    ds = small_dataset()
    log = DeltaLog.open(tmp_path / "log.jsonl", dataset=ds)
    batch1 = [SetCell(0, 0, 0)]
    batch2 = [DropSlice("row", 1), ClearCell(1, 0, 0)]
    step1 = apply_deltas(ds, batch1).dataset
    step2 = apply_deltas(step1, batch2).dataset
    log.append(batch1, fingerprint=dataset_fingerprint(step1))
    log.append(batch2, fingerprint=dataset_fingerprint(step2))

    reopened = DeltaLog.open(tmp_path / "log.jsonl", dataset=ds)
    assert len(reopened) == 2
    assert reopened.batches() == [batch1, batch2]
    assert reopened.tip_fingerprint() == dataset_fingerprint(step2)
    replayed = reopened.replay(ds)
    assert dataset_fingerprint(replayed) == dataset_fingerprint(step2)


def test_delta_log_rejects_wrong_base(tmp_path):
    ds = small_dataset()
    DeltaLog.open(tmp_path / "log.jsonl", dataset=ds)
    other = Dataset3D(np.zeros((2, 2, 2), dtype=bool))
    with pytest.raises(DeltaLogMismatchError):
        DeltaLog.open(tmp_path / "log.jsonl", dataset=other)


def test_replay_detects_divergence(tmp_path):
    ds = small_dataset()
    log = DeltaLog.open(tmp_path / "log.jsonl", dataset=ds)
    log.append([SetCell(0, 0, 0)], fingerprint="0" * 64)  # wrong on purpose
    with pytest.raises(DeltaLogMismatchError):
        log.replay(ds)


def test_truncated_tail_line_is_tolerated(tmp_path):
    ds = small_dataset()
    path = tmp_path / "log.jsonl"
    log = DeltaLog.open(path, dataset=ds)
    step = apply_deltas(ds, [SetCell(0, 0, 0)]).dataset
    log.append([SetCell(0, 0, 0)], fingerprint=dataset_fingerprint(step))
    with open(path, "a") as handle:
        handle.write('{"kind": "batch", "seq": 1, "del')  # torn write
    reopened = DeltaLog.open(path, dataset=ds)
    assert len(reopened) == 1


def test_open_missing_log_needs_base():
    with pytest.raises(ValueError):
        DeltaLog.open("/nonexistent/never/log.jsonl")
