"""Tests for the mining-service daemon: routing, jobs, and restart.

Most tests drive :class:`ServiceApp.handle` in-process — the router is
a pure function, no sockets needed.  One class boots the real HTTP
adapter and exercises the typed client against it, including
concurrent submissions.  The restart class rebuilds a
:class:`JobManager` over a crashed predecessor's directory and proves
the job resumes from its checkpoint journal instead of re-mining
finished chunks.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import mine
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D
from repro.core.result import MiningResult
from repro.io import dataset_fingerprint, dataset_to_payload
from repro.service import (
    DatasetRegistry,
    JobManager,
    JobSpec,
    Request,
    ServiceApp,
    ServiceClient,
    ThresholdLatticeCache,
    serve,
)

def small_dataset(seed: int = 11) -> Dataset3D:
    rng = np.random.default_rng(seed)
    return Dataset3D(rng.random((3, 6, 6)) < 0.5)


def cube_set(result) -> set:
    return {(c.heights, c.rows, c.columns) for c in result}


def wait_terminal(app: ServiceApp, job_id: str, timeout: float = 120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = app.jobs.get(job_id)
        if record.terminal:
            return record
        time.sleep(0.1)
    raise TimeoutError(f"job {job_id} never finished")


@pytest.fixture
def app(tmp_path):
    application = ServiceApp(tmp_path / "data", max_workers=2)
    yield application
    application.close()


def post(app: ServiceApp, path: str, payload: dict):
    return app.handle(
        Request(method="POST", path=path, body=json.dumps(payload).encode())
    )


def get(app: ServiceApp, path: str, query: dict | None = None):
    return app.handle(Request(method="GET", path=path, query=query or {}))


# ----------------------------------------------------------------------
# Routing & error paths (in-process)
# ----------------------------------------------------------------------
class TestRouting:
    def test_health(self, app):
        response = get(app, "/health")
        assert response.status == 200
        assert response.payload["status"] == "ok"

    def test_unknown_route_404(self, app):
        assert get(app, "/v2/nope").status == 404

    def test_register_and_fetch_dataset(self, app):
        dataset = small_dataset()
        response = post(app, "/v1/datasets", dataset_to_payload(dataset))
        assert response.status == 201
        fp = response.payload["fingerprint"]
        assert fp == dataset_fingerprint(dataset)
        assert get(app, f"/v1/datasets/{fp}").status == 200
        listing = get(app, "/v1/datasets")
        assert [e["fingerprint"] for e in listing.payload["datasets"]] == [fp]

    def test_register_is_idempotent(self, app):
        dataset = small_dataset()
        first = post(app, "/v1/datasets", dataset_to_payload(dataset))
        second = post(app, "/v1/datasets", dataset_to_payload(dataset))
        assert first.payload["fingerprint"] == second.payload["fingerprint"]

    def test_malformed_dataset_400(self, app):
        response = post(app, "/v1/datasets", {"schema": 1, "shape": [0, 1]})
        assert response.status == 400
        assert response.payload["error"]["code"] == "bad-dataset"

    def test_bad_json_body_400(self, app):
        response = app.handle(
            Request(method="POST", path="/v1/datasets", body=b"{nope")
        )
        assert response.status == 400
        assert response.payload["error"]["code"] == "bad-json"

    def test_unknown_dataset_404(self, app):
        assert get(app, f"/v1/datasets/{'0' * 64}").status == 404

    def test_submit_against_unregistered_dataset_404(self, app):
        response = post(
            app,
            "/v1/jobs",
            {"dataset": "f" * 64, "thresholds": {"min_h": 1, "min_r": 1, "min_c": 1}},
        )
        assert response.status == 404
        assert response.payload["error"]["code"] == "unknown-dataset"

    def test_bad_spec_400(self, app):
        fp = app.registry.register(small_dataset()).fingerprint
        response = post(
            app,
            "/v1/jobs",
            {
                "dataset": fp,
                "algorithm": "cubeminer",
                "thresholds": {"min_h": 1, "min_r": 1, "min_c": 1},
                "options": {"no_such_knob": 3},
            },
        )
        assert response.status == 400

    def test_unknown_job_404(self, app):
        assert get(app, "/v1/jobs/deadbeef0000").status == 404

    def test_result_of_unfinished_job_409(self, app, monkeypatch):
        fp = app.registry.register(small_dataset()).fingerprint
        # Stall the queue so the job stays queued while we poke at it.
        monkeypatch.setattr(app.jobs, "max_workers", 0)
        response = post(
            app,
            "/v1/jobs",
            {"dataset": fp, "thresholds": {"min_h": 1, "min_r": 1, "min_c": 1}},
        )
        job_id = response.payload["id"]
        result = get(app, f"/v1/jobs/{job_id}/result")
        assert result.status == 409
        assert result.payload["error"]["code"] == "not-done"

    def test_cancel_queued_job(self, app, monkeypatch):
        fp = app.registry.register(small_dataset()).fingerprint
        monkeypatch.setattr(app.jobs, "max_workers", 0)
        job_id = post(
            app,
            "/v1/jobs",
            {"dataset": fp, "thresholds": {"min_h": 1, "min_r": 1, "min_c": 1}},
        ).payload["id"]
        response = post(app, f"/v1/jobs/{job_id}/cancel", {})
        assert response.payload["status"] == "cancelled"


# ----------------------------------------------------------------------
# The mining path (in-process, real workers)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestMiningJobs:
    def test_submit_runs_and_caches(self, app):
        dataset = small_dataset()
        fp = app.registry.register(dataset).fingerprint
        thresholds = Thresholds(1, 2, 2)
        response = post(
            app,
            "/v1/jobs",
            {"dataset": fp, "thresholds": thresholds.to_dict()},
        )
        assert response.status == 202
        record = wait_terminal(app, response.payload["id"])
        assert record.status == "done"
        payload = get(app, f"/v1/jobs/{record.id}/result").payload
        assert payload["cache_hit"] is False
        served = MiningResult.from_payload(payload["result"])
        assert cube_set(served) == cube_set(mine(dataset, thresholds))

        # The same submission again is answered instantly by the cache.
        repeat = post(
            app,
            "/v1/jobs",
            {"dataset": fp, "thresholds": thresholds.to_dict()},
        )
        assert repeat.status == 200
        assert repeat.payload["status"] == "done"
        assert repeat.payload["cache_hit"] is True

    def test_tighter_query_served_from_lattice(self, app):
        dataset = small_dataset()
        fp = app.registry.register(dataset).fingerprint
        loose = Thresholds(1, 1, 1)
        job_id = post(
            app, "/v1/jobs", {"dataset": fp, "thresholds": loose.to_dict()}
        ).payload["id"]
        wait_terminal(app, job_id)

        tight = Thresholds(2, 2, 2)
        response = post(
            app,
            "/v1/query",
            {"dataset": fp, "thresholds": tight.to_dict()},
        )
        assert response.status == 200
        assert response.payload["filtered_from"] == loose.to_dict()
        served = MiningResult.from_payload(response.payload["result"])
        assert cube_set(served) == cube_set(mine(dataset, tight))
        cache_note = served.stats.extra["cache"]
        assert cache_note["hit"] and not cache_note["exact"]

    def test_cache_miss_404(self, app):
        fp = app.registry.register(small_dataset()).fingerprint
        response = post(
            app,
            "/v1/query",
            {"dataset": fp, "thresholds": Thresholds(1, 1, 1).to_dict()},
        )
        assert response.status == 404
        assert response.payload["error"]["code"] == "cache-miss"

    def test_events_journal_has_lifecycle(self, app):
        fp = app.registry.register(small_dataset()).fingerprint
        job_id = post(
            app,
            "/v1/jobs",
            {"dataset": fp, "thresholds": Thresholds(1, 1, 1).to_dict()},
        ).payload["id"]
        wait_terminal(app, job_id)
        payload = get(app, f"/v1/jobs/{job_id}/events").payload
        kinds = [event["kind"] for event in payload["events"]]
        assert "job-done" in kinds
        assert "node" not in kinds and "prune" not in kinds
        # Paging: asking past the end returns nothing new.
        again = get(
            app,
            f"/v1/jobs/{job_id}/events",
            {"after": str(payload["next"])},
        ).payload
        assert again["events"] == []


# ----------------------------------------------------------------------
# Over HTTP, with the typed client
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestOverHTTP:
    @pytest.fixture
    def server(self, app):
        http_server = serve(app, port=0)
        thread = threading.Thread(
            target=http_server.serve_forever, daemon=True
        )
        thread.start()
        yield http_server
        http_server.shutdown()
        http_server.server_close()

    def test_full_client_roundtrip(self, app, server):
        client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
        dataset = small_dataset()
        served = client.mine(dataset, Thresholds(1, 2, 2), timeout=120)
        assert not served.cache_hit
        assert cube_set(served.result) == cube_set(
            mine(dataset, Thresholds(1, 2, 2))
        )
        again = client.mine(dataset, Thresholds(2, 2, 2), timeout=120)
        assert again.cache_hit
        assert again.filtered_from == Thresholds(1, 2, 2)

    def test_concurrent_submissions(self, app, server):
        client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
        datasets = [small_dataset(seed) for seed in (21, 22, 23, 24)]
        thresholds = Thresholds(1, 2, 2)
        records = [None] * len(datasets)

        def submit(i: int) -> None:
            records[i] = client.submit(datasets[i], thresholds, use_cache=False)

        threads = [
            threading.Thread(target=submit, args=(i,))
            for i in range(len(datasets))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({record.id for record in records}) == len(datasets)
        for i, record in enumerate(records):
            final = client.wait(record.id, timeout=240)
            assert final.status == "done"
            served = client.result(record.id)
            assert cube_set(served.result) == cube_set(
                mine(datasets[i], thresholds)
            )

    def test_long_poll_returns_promptly_on_terminal(self, app, server):
        client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
        record = client.submit(small_dataset(), Thresholds(1, 1, 1))
        client.wait(record.id, timeout=120)
        start = time.monotonic()
        events, _ = client.events(record.id, after=10_000, wait=30.0)
        assert time.monotonic() - start < 10.0  # early-out, not a 30s stall
        assert events == []


# ----------------------------------------------------------------------
# Daemon restart & checkpoint resume
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestRestartResume:
    def _manager(self, tmp_path) -> tuple[JobManager, DatasetRegistry, ThresholdLatticeCache]:
        registry = DatasetRegistry(tmp_path / "datasets")
        cache = ThresholdLatticeCache(tmp_path / "cache")
        manager = JobManager(
            tmp_path / "jobs", registry, cache, max_workers=1
        )
        return manager, registry, cache

    def test_restart_resumes_from_journal(self, tmp_path):
        """A daemon killed mid-parallel-job replays finished chunks."""
        manager, registry, cache = self._manager(tmp_path)
        rng = np.random.default_rng(5)
        dataset = Dataset3D(rng.random((6, 7, 7)) < 0.5)
        fp = registry.register(dataset).fingerprint
        thresholds = Thresholds(1, 1, 1)
        spec = JobSpec(
            dataset=fp,
            thresholds=thresholds,
            algorithm="parallel-cubeminer",
            options={"n_workers": 2},
            use_cache=False,
        )
        record = manager.submit(spec)
        deadline = time.monotonic() + 240
        while manager.get(record.id).status != "done":
            assert time.monotonic() < deadline
            time.sleep(0.1)
        manager.shutdown()

        job_dir = tmp_path / "jobs" / record.id
        journal = job_dir / "checkpoint.jsonl"
        lines = journal.read_text().splitlines()
        assert len(lines) >= 3  # header + >= 2 chunks

        # Rewind to a mid-crash snapshot: one chunk survived, the
        # result never landed, and the daemon died with the job running.
        journal.write_text("\n".join(lines[:2]) + "\n")
        (job_dir / "result.json").unlink()
        state = json.loads((job_dir / "job.json").read_text())
        state["status"] = "running"
        (job_dir / "job.json").write_text(json.dumps(state))

        reborn = JobManager(tmp_path / "jobs", registry, cache, max_workers=1)
        try:
            deadline = time.monotonic() + 240
            while reborn.get(record.id).status != "done":
                assert time.monotonic() < deadline
                time.sleep(0.1)
            payload = reborn.result_payload(record.id)
            resumed = MiningResult.from_payload(payload)
            assert cube_set(resumed) == cube_set(mine(dataset, thresholds))
            recovery = resumed.stats.extra["recovery"]
            assert recovery["chunks_resumed"] == 1
            final = reborn.get(record.id)
            assert final.attempts >= 2
        finally:
            reborn.shutdown()

    def test_queued_jobs_survive_restart(self, tmp_path):
        manager, registry, cache = self._manager(tmp_path)
        dataset = small_dataset(31)
        fp = registry.register(dataset).fingerprint
        manager.shutdown()  # no dispatching from here on

        # Persist a queued job by hand, as the dead daemon left it.
        record_dir = tmp_path / "jobs" / "feedc0ffee01"
        record_dir.mkdir(parents=True)
        spec = JobSpec(dataset=fp, thresholds=Thresholds(1, 1, 1))
        (record_dir / "job.json").write_text(
            json.dumps(
                {
                    "schema": 1,
                    "id": "feedc0ffee01",
                    "spec": spec.to_dict(),
                    "status": "queued",
                    "created": time.time(),
                    "started": None,
                    "finished": None,
                    "error": None,
                    "cache_hit": False,
                    "filtered_from": None,
                    "n_cubes": None,
                    "attempts": 0,
                    "progress": {},
                }
            )
        )

        reborn = JobManager(tmp_path / "jobs", registry, cache, max_workers=1)
        try:
            deadline = time.monotonic() + 240
            while reborn.get("feedc0ffee01").status != "done":
                assert time.monotonic() < deadline
                time.sleep(0.1)
            payload = reborn.result_payload("feedc0ffee01")
            assert MiningResult.from_payload(payload).algorithm.startswith(
                "cubeminer"
            )
        finally:
            reborn.shutdown()

    def test_kill_workers_then_restart_recovers(self, tmp_path):
        """SIGKILLed workers + dead daemon still converge after restart."""
        manager, registry, cache = self._manager(tmp_path)
        rng = np.random.default_rng(17)
        dataset = Dataset3D(rng.random((8, 10, 10)) < 0.6)
        fp = registry.register(dataset).fingerprint
        thresholds = Thresholds(1, 1, 1)
        spec = JobSpec(
            dataset=fp,
            thresholds=thresholds,
            algorithm="parallel-cubeminer",
            options={"n_workers": 2},
            use_cache=False,
        )
        record = manager.submit(spec)
        deadline = time.monotonic() + 120
        while True:
            with manager._lock:  # noqa: SLF001
                live = record.id in manager._procs  # noqa: SLF001
            if live or manager.get(record.id).terminal:
                break
            assert time.monotonic() < deadline
            time.sleep(0.05)
        manager.kill_workers()
        manager.shutdown()

        reborn = JobManager(tmp_path / "jobs", registry, cache, max_workers=1)
        try:
            deadline = time.monotonic() + 240
            while not reborn.get(record.id).terminal:
                assert time.monotonic() < deadline
                time.sleep(0.1)
            final = reborn.get(record.id)
            assert final.status == "done", final.error
            resumed = MiningResult.from_payload(
                reborn.result_payload(record.id)
            )
            assert cube_set(resumed) == cube_set(mine(dataset, thresholds))
        finally:
            reborn.shutdown()
