"""Fault-injection tests for the supervised parallel drivers.

The acceptance bar: under a seeded :class:`FaultPlan` injecting crash,
hang and exception faults, both parallel drivers return results
identical to a clean run — same cube list (set *and* order) and the
same merged metric totals — and recovery never double-counts a retried
chunk's tallies.
"""

from __future__ import annotations

import pytest

from repro.core.constraints import Thresholds
from repro.datasets import random_tensor
from repro.obs import (
    CollectingSink,
    MiningCancelled,
    PoolRestarted,
    TaskFailed,
    TaskRetried,
)
from repro.parallel import (
    Fault,
    FaultInjected,
    FaultPlan,
    RetryPolicy,
    TaskFailedError,
    parallel_cubeminer_mine,
    parallel_rsm_mine,
)

DRIVERS = [parallel_rsm_mine, parallel_cubeminer_mine]


@pytest.fixture(scope="module")
def dataset():
    return random_tensor((6, 12, 18), 0.35, seed=3)


@pytest.fixture(scope="module")
def thresholds():
    return Thresholds(2, 2, 2)


def assert_same_run(clean, recovered):
    """Cube list (set and order) and metric totals must match exactly."""
    assert list(recovered) == list(clean)
    assert recovered.stats.metrics.as_dict() == clean.stats.metrics.as_dict()


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff=0.5, backoff_factor=2.0, max_backoff=1.5)
        assert policy.delay_before(1) == pytest.approx(0.5)
        assert policy.delay_before(2) == pytest.approx(1.0)
        assert policy.delay_before(3) == pytest.approx(1.5)  # capped
        assert policy.delay_before(9) == pytest.approx(1.5)

    def test_zero_backoff(self):
        assert RetryPolicy(backoff=0.0).delay_before(3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="retries"):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError, match="task_timeout"):
            RetryPolicy(task_timeout=0.0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="max_pool_restarts"):
            RetryPolicy(max_pool_restarts=-2)


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("meteor")

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match="seconds"):
            Fault("slow", seconds=-1.0)

    def test_default_fires_on_first_attempt_only(self):
        fault = Fault("exception")
        assert fault.applies_to(0) and not fault.applies_to(1)

    def test_permanent_fault_fires_always(self):
        fault = Fault("crash", attempts=None)
        assert fault.applies_to(0) and fault.applies_to(7)

    def test_random_is_seeded_and_bounded(self):
        a = FaultPlan.random(10, 3, seed=42)
        b = FaultPlan.random(10, 3, seed=42)
        assert a.faults.keys() == b.faults.keys()
        assert [f.kind for f in a.faults.values()] == [
            f.kind for f in b.faults.values()
        ]
        assert len(a) == 3
        assert all(0 <= index < 10 for index in a.faults)
        assert len(FaultPlan.random(2, 5, seed=0)) == 2  # clamped

    def test_fire_is_noop_in_driver_process(self):
        plan = FaultPlan.single(0, "exception")
        plan.fire(0, 0)  # would raise in a worker; driver pid skips

    def test_non_fault_value_rejected(self):
        with pytest.raises(TypeError, match="expected a Fault"):
            FaultPlan(faults={0: "crash"})


class TestFaultRecovery:
    @pytest.mark.parametrize("driver", DRIVERS)
    def test_crash_hang_exception_parity(self, dataset, thresholds, driver):
        """The headline guarantee: a faulty run equals a clean run."""
        clean = driver(dataset, thresholds, n_workers=2)
        plan = FaultPlan(
            faults={
                0: Fault("crash"),
                2: Fault("exception"),
                4: Fault("hang", seconds=30.0),
            }
        )
        recovered = driver(
            dataset,
            thresholds,
            n_workers=2,
            fault_plan=plan,
            task_timeout=2.0,
            backoff=0.01,
        )
        assert_same_run(clean, recovered)
        recovery = recovered.stats.extra["recovery"]
        # Only the crash is guaranteed to fire: a chunk whose attempt-0
        # dispatch is in flight when the pool breaks is requeued as an
        # innocent victim at attempt 1, where a first-attempt fault no
        # longer applies.  Per-kind counters are pinned by the
        # single-fault tests below.
        assert recovery["pool_restarts"] >= 1
        assert not recovery["degraded_inline"]

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_seeded_random_plan_parity(self, dataset, thresholds, driver):
        clean = driver(dataset, thresholds, n_workers=2)
        plan = FaultPlan.random(8, 2, kinds=("crash", "exception"), seed=7)
        recovered = driver(
            dataset, thresholds, n_workers=2, fault_plan=plan, backoff=0.01
        )
        assert_same_run(clean, recovered)

    def test_slow_fault_is_benign(self, dataset, thresholds):
        clean = parallel_rsm_mine(dataset, thresholds, n_workers=2)
        plan = FaultPlan.single(1, "slow", seconds=0.2)
        recovered = parallel_rsm_mine(
            dataset, thresholds, n_workers=2, fault_plan=plan
        )
        assert_same_run(clean, recovered)
        recovery = recovered.stats.extra["recovery"]
        assert recovery["task_failures"] == 0
        assert recovery["pool_restarts"] == 0

    def test_retry_budget_exhaustion_raises(self, dataset, thresholds):
        plan = FaultPlan.single(1, "exception", attempts=None)
        with pytest.raises(TaskFailedError) as excinfo:
            parallel_rsm_mine(
                dataset,
                thresholds,
                n_workers=2,
                fault_plan=plan,
                retries=1,
                backoff=0.01,
            )
        assert excinfo.value.chunk == 1
        assert excinfo.value.attempts == 2  # retries + 1
        assert "FaultInjected" in excinfo.value.error

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_permanent_crash_degrades_inline(self, dataset, thresholds, driver):
        """An irrecoverable pool falls back to sequential execution."""
        clean = driver(dataset, thresholds, n_workers=2)
        plan = FaultPlan.single(0, "crash", attempts=None)
        recovered = driver(
            dataset, thresholds, n_workers=2, fault_plan=plan, backoff=0.01
        )
        assert_same_run(clean, recovered)
        recovery = recovered.stats.extra["recovery"]
        assert recovery["degraded_inline"]
        assert recovery["pool_restarts"] == RetryPolicy().max_pool_restarts + 1

    def test_hang_detected_by_timeout(self, dataset, thresholds):
        """A lone hang fault deterministically trips the task timeout."""
        clean = parallel_rsm_mine(dataset, thresholds, n_workers=2)
        plan = FaultPlan.single(1, "hang", seconds=30.0)
        recovered = parallel_rsm_mine(
            dataset,
            thresholds,
            n_workers=2,
            fault_plan=plan,
            task_timeout=0.5,
            backoff=0.01,
        )
        assert_same_run(clean, recovered)
        recovery = recovered.stats.extra["recovery"]
        assert recovery["pool_restarts"] >= 1
        assert recovery["task_failures"] >= 1

    def test_supervision_events_emitted(self, dataset, thresholds):
        # Single-kind plans keep this deterministic: with no pool break
        # in flight, an attempt-0 fault is guaranteed to fire.
        sink = CollectingSink()
        plan = FaultPlan.single(2, "exception")
        parallel_rsm_mine(
            dataset,
            thresholds,
            n_workers=2,
            fault_plan=plan,
            backoff=0.01,
            on_event=sink,
        )
        kinds = {type(event) for event in sink.events}
        assert TaskFailed in kinds
        assert TaskRetried in kinds
        assert PoolRestarted not in kinds
        failed = [e for e in sink.events if isinstance(e, TaskFailed)]
        assert any(e.cause == "exception" and e.chunk == 2 for e in failed)

        sink = CollectingSink()
        parallel_rsm_mine(
            dataset,
            thresholds,
            n_workers=2,
            fault_plan=FaultPlan.single(0, "crash"),
            backoff=0.01,
            on_event=sink,
        )
        assert PoolRestarted in {type(event) for event in sink.events}

    def test_clean_run_reports_zero_recovery(self, dataset, thresholds):
        result = parallel_cubeminer_mine(dataset, thresholds, n_workers=2)
        recovery = result.stats.extra["recovery"]
        assert recovery == {
            "task_failures": 0,
            "task_retries": 0,
            "pool_restarts": 0,
            "chunks_resumed": 0,
            "degraded_inline": False,
        }

    def test_fault_injected_survives_pickling(self):
        import pickle

        error = pickle.loads(pickle.dumps(FaultInjected(3, 1)))
        assert (error.chunk, error.attempt) == (3, 1)


class TestCancellationShapeParity:
    """Inline (n_workers=1) and pool cancellations must look alike."""

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_inline_and_pool_partial_shapes_match(
        self, dataset, thresholds, driver
    ):
        partials = {}
        for n_workers in (1, 2):
            with pytest.raises(MiningCancelled) as excinfo:
                driver(dataset, thresholds, n_workers=n_workers, deadline=0.0)
            exc = excinfo.value
            assert exc.partial is not None
            assert exc.metrics is not None
            assert exc.partial.stats.metrics is exc.metrics
            partials[n_workers] = exc.partial
        assert set(partials[1].stats.extra) == set(partials[2].stats.extra)
        assert partials[1].algorithm.rsplit("x", 1)[0] == (
            partials[2].algorithm.rsplit("x", 1)[0]
        )

    def test_mid_run_cancel_carries_partial_cubes(self, dataset, thresholds):
        """A cancel between chunks yields completed chunks' cubes."""
        from repro.obs import CheckpointWritten, ProgressController

        import tempfile, os

        path = tempfile.mktemp(suffix=".jsonl")
        controller = ProgressController()
        seen = []

        def sink(event):
            if isinstance(event, CheckpointWritten):
                seen.append(event)
                if len(seen) >= 2:
                    controller.cancel()

        try:
            with pytest.raises(MiningCancelled) as excinfo:
                parallel_rsm_mine(
                    dataset,
                    thresholds,
                    n_workers=2,
                    checkpoint_path=path,
                    on_event=sink,
                    progress=controller,
                )
            partial = excinfo.value.partial
            assert partial is not None
            assert len(partial) == sum(event.n_cubes for event in seen)
        finally:
            os.unlink(path)
