"""Integration tests: every shipped example must run to completion.

The examples double as end-to-end tests of the public API — each one
builds data, mines, and post-processes through a different subset of
the library, with internal assertions (algorithm agreement, classifier
accuracy, incremental == re-mine) that fail loudly on regression.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def _load_module(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "mining_tree",
        "market_basket",
        "hypercube_4d",
        "gene_classification",
        "streaming_updates",
    ],
)
def test_example_runs(name, capsys):
    module = _load_module(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_microarray_example_scaled_down(capsys):
    module = _load_module("microarray_analysis")
    module.main(120)  # fewer genes than the script's default
    out = capsys.readouterr().out
    assert "FCCs" in out


def test_parallel_example(capsys):
    module = _load_module("parallel_mining")
    module.main()
    out = capsys.readouterr().out
    assert "best processor count" in out
