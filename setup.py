"""Setuptools build with the optional ``_native`` C extension.

Metadata lives in pyproject.toml.  This file adds the one thing
declarative metadata cannot express: a *best-effort* native extension.
``repro.core.kernels._native`` accelerates the bitset kernel hot loops
(see ``src/repro/core/kernels/_native.c``); every algorithm works
without it, so a missing or broken C toolchain must degrade to a
pure-Python install rather than fail.

Environment knobs:

``REPRO_NATIVE=0``
    Skip the extension entirely (source-only install; the kernel
    registry then reports ``native`` as known-but-unavailable).
``REPRO_REQUIRE_NATIVE=1``
    Turn build failures into hard errors instead of a warning — CI's
    native legs set this so a broken extension cannot silently fall
    back to numpy and still pass.
``REPRO_NATIVE_AVX2=1``
    Add ``-mavx2`` so the AVX2 paths in ``_native.c`` compile in.
    Off by default: wheels built for distribution must run on any
    x86-64, and the word-at-a-time scalar paths are already fast.
"""

from __future__ import annotations

import os
import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext

try:
    from setuptools.errors import BaseError as _SetuptoolsError
except ImportError:  # setuptools < 59
    _SetuptoolsError = Exception  # type: ignore[assignment,misc]


def _flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in {"1", "true", "yes", "on"}


def _extensions() -> list[Extension]:
    if os.environ.get("REPRO_NATIVE", "1").strip().lower() in {"0", "false", "no", "off"}:
        return []
    if sys.platform == "win32":
        compile_args: list[str] = ["/O2"]
    else:
        compile_args = ["-O3"]
        if _flag("REPRO_NATIVE_AVX2"):
            compile_args.append("-mavx2")
    return [
        Extension(
            "repro.core.kernels._native",
            sources=["src/repro/core/kernels/_native.c"],
            extra_compile_args=compile_args,
        )
    ]


class OptionalBuildExt(build_ext):
    """Build the extension if possible; degrade to pure Python if not.

    With ``REPRO_REQUIRE_NATIVE=1`` any failure propagates unchanged so
    CI can prove the native backend actually compiled.
    """

    def run(self) -> None:
        try:
            super().run()
        except (_SetuptoolsError, OSError) as exc:
            if _flag("REPRO_REQUIRE_NATIVE"):
                raise
            self._warn_skipped(exc)

    def build_extension(self, ext: Extension) -> None:
        try:
            super().build_extension(ext)
        except (_SetuptoolsError, OSError) as exc:
            if _flag("REPRO_REQUIRE_NATIVE"):
                raise
            self._warn_skipped(exc)

    @staticmethod
    def _warn_skipped(exc: BaseException) -> None:
        print(
            "WARNING: building the optional repro.core.kernels._native "
            f"extension failed ({exc}); installing without it — the "
            "'native' kernel backend will be unavailable and kernel "
            "auto-selection will fall back to 'numpy'.",
            file=sys.stderr,
        )


setup(
    ext_modules=_extensions(),
    cmdclass={"build_ext": OptionalBuildExt},
)
