"""Quickstart: mine frequent closed cubes from the paper's running example.

Run with::

    python examples/quickstart.py

Walks through the whole public API surface in ~40 lines: build a
dataset, set thresholds, mine with CubeMiner and RSM, compare, and
inspect the cubes.
"""

from __future__ import annotations

from repro import Cube, RSMOptions, Thresholds, mine
from repro.datasets import paper_example


def main() -> None:
    # Table 1 of the paper: 3 heights x 4 rows x 5 columns.
    dataset = paper_example()
    print(f"Dataset: {dataset!r}")

    # Definition 3.3: all three minimum supports set to 2.
    thresholds = Thresholds(min_h=2, min_r=2, min_c=2)

    # CubeMiner (default): operates on the 3D tensor directly.
    result = mine(dataset, thresholds)
    print(f"\n{result.summary()}")
    for cube in result:
        print(f"  {cube.format(dataset)}")

    # RSM: enumerate a base dimension, mine 2D slices, post-prune.
    rsm_result = mine(
        dataset, thresholds, algorithm="rsm", options=RSMOptions(base_axis="auto")
    )
    print(f"\n{rsm_result.summary()}")
    assert result.same_cubes(rsm_result), "both algorithms must agree"

    # Cubes are value objects: query supports and membership directly.
    fcc = Cube.from_labels(dataset, "h1 h3", "r1 r2 r3", "c1 c2 c3")
    print(f"\nIs {fcc.format(dataset)} in the result? {fcc in result}")
    print(f"H-Support={fcc.h_support}, R-Support={fcc.r_support}, "
          f"C-Support={fcc.c_support}, volume={fcc.volume}")

    # The counterexample from Definition 3.3 is correctly absent.
    not_closed = Cube.from_labels(dataset, "h1 h3", "r2 r3", "c1 c2 c3")
    print(f"Unclosed cube {not_closed.format(dataset)} in result? "
          f"{not_closed in result}")


if __name__ == "__main__":
    main()
