"""Render the paper's worked example: Table 2 and Figure 1 in text form.

Run with::

    python examples/mining_tree.py

Produces the RSM phase-by-phase walk-through (Table 2) and the full
CubeMiner split tree with every prune annotated by its Figure 1
category — useful both as documentation and as a debugging aid when
studying the pruning rules.
"""

from __future__ import annotations

from collections import Counter

from repro import Thresholds
from repro.cubeminer.trace import render_tree, trace_tree
from repro.datasets import paper_example
from repro.rsm.trace import render_rsm_table, trace_rsm


def main() -> None:
    dataset = paper_example()
    thresholds = Thresholds(2, 2, 2)

    print("=" * 72)
    print("Table 2 — RSM walk-through (minH = minR = minC = 2)")
    print("=" * 72)
    print(render_rsm_table(trace_rsm(dataset, thresholds), dataset))

    print()
    print("=" * 72)
    print("Figure 1 — CubeMiner split tree")
    print("=" * 72)
    tree = trace_tree(dataset, thresholds)
    print(render_tree(tree, dataset))

    # Summarize the prune categories (a)-(d) of Section 5.1.
    reasons = Counter(
        node.pruned.value for node in tree.iter_nodes() if node.pruned
    )
    print("\nPrune summary:")
    for reason, count in sorted(reasons.items()):
        print(f"  {count:>3} x {reason}")
    print(f"  {len(tree.leaves()):>3} x FCC leaves")


if __name__ == "__main__":
    main()
