"""Parallel FCC mining and the speedup curve of Figure 6.

Run with::

    python examples/parallel_mining.py

Demonstrates Section 6: both algorithms decompose into independent
tasks.  Real worker pools validate correctness at local core counts,
and the deterministic scheduler simulation extends the response-time
curve to 32 processors the way the paper's cluster experiment does.
"""

from __future__ import annotations

import os

from repro import ParallelOptions, Thresholds, mine
from repro.datasets import cdc15_like
from repro.parallel import (
    CommunicationModel,
    measure_cubeminer_task_times,
    measure_rsm_task_times,
    simulate_response_times,
)


def main() -> None:
    dataset = cdc15_like(200, seed=1)
    thresholds = Thresholds(3, 3, 28)
    print(f"Dataset: {dataset!r}")
    print(f"Thresholds: {thresholds}\n")

    # --- Real worker pools -------------------------------------------
    sequential = mine(dataset, thresholds)
    print(f"sequential     : {sequential.summary()}")
    n_workers = min(4, os.cpu_count() or 1)
    for algorithm in ("parallel-cubeminer", "parallel-rsm"):
        result = mine(
            dataset,
            thresholds,
            algorithm=algorithm,
            options=ParallelOptions(n_workers=n_workers),
        )
        print(f"{algorithm:<15}: {result.summary()}")
        assert result.same_cubes(sequential), "parallel must equal sequential"

    # --- Simulated response-time curve (Figure 6) --------------------
    print("\nSimulated response times (list scheduling of measured tasks):")
    processors = [1, 2, 4, 8, 16, 32]
    rsm_times = measure_rsm_task_times(dataset, thresholds, base_axis="row")
    cm_times = measure_cubeminer_task_times(dataset, thresholds, min_tasks=64)
    print(f"{'procs':>6} | {'P-RSM-R':>10} | {'P-CubeMiner':>12}")
    for label, times in (("P-RSM-R", rsm_times), ("P-CubeMiner", cm_times)):
        comm = CommunicationModel(
            broadcast_seconds_per_processor=sum(times) * 0.004
        )
        curve = simulate_response_times(times, processors, communication=comm)
        setattr(main, label, curve)  # stash for the combined print below
    rsm_curve = getattr(main, "P-RSM-R")
    cm_curve = getattr(main, "P-CubeMiner")
    for p in processors:
        print(f"{p:>6} | {rsm_curve[p]:>9.3f}s | {cm_curve[p]:>11.3f}s")
    best_rsm = min(rsm_curve, key=rsm_curve.get)
    best_cm = min(cm_curve, key=cm_curve.get)
    print(f"\nbest processor count: P-RSM-R={best_rsm}, P-CubeMiner={best_cm}")
    print("(the paper reports speedup is good up to ~8 processors)")


if __name__ == "__main__":
    main()
