"""Region-time-items retail analysis — the paper's second motivation.

Run with::

    python examples/market_basket.py

Section 1 of the paper: "a 3D FCC over a sales (region-time-items)
dataset would represent a set of items that is likely to be purchased
together in several locations over a set of time periods."  This
example builds such a tensor with seasonal purchasing patterns planted
across regions, mines it, and reads the FCCs as deployment advice.
"""

from __future__ import annotations

import numpy as np

from repro import Dataset3D, Thresholds, mine
from repro.analysis import derive_rules

REGIONS = ["north", "south", "east", "west", "downtown", "suburbs"]
MONTHS = ["jan", "feb", "mar", "apr", "may", "jun",
          "jul", "aug", "sep", "oct", "nov", "dec"]
ITEMS = [
    "coffee", "tea", "cocoa", "sunscreen", "swimwear", "sandals",
    "umbrella", "raincoat", "boots", "lights", "giftwrap", "candles",
    "bread", "milk", "eggs", "cheese", "apples", "cereal",
]


def build_sales_tensor(seed: int = 11) -> Dataset3D:
    """Months x regions x items; cell = 1 when the item sold strongly."""
    rng = np.random.default_rng(seed)
    data = rng.random((len(MONTHS), len(REGIONS), len(ITEMS))) < 0.15

    def plant(months, regions, items):
        month_idx = [MONTHS.index(m) for m in months]
        region_idx = [REGIONS.index(r) for r in regions]
        item_idx = [ITEMS.index(i) for i in items]
        data[np.ix_(month_idx, region_idx, item_idx)] = True

    # Summer gear sells together in the warm regions June-August.
    plant(["jun", "jul", "aug"], ["south", "east", "downtown"],
          ["sunscreen", "swimwear", "sandals"])
    # Winter comfort bundle, November-January, everywhere urban.
    plant(["nov", "dec", "jan"], ["north", "downtown", "suburbs", "west"],
          ["coffee", "cocoa", "lights", "candles"])
    # Staples sell year-round in every region.
    plant(MONTHS, REGIONS, ["bread", "milk"])
    return Dataset3D(
        data,
        height_labels=MONTHS,
        row_labels=REGIONS,
        column_labels=ITEMS,
    )


def main() -> None:
    dataset = build_sales_tensor()
    print(f"Sales tensor: {dataset!r} (months x regions x items)")

    # At least a quarter of the year, two regions, two items.
    thresholds = Thresholds(min_h=3, min_r=2, min_c=2)
    result = mine(dataset, thresholds)
    print(f"\n{result.summary()}\n")

    # Report the largest bundles first.
    ranked = sorted(result, key=lambda cube: -cube.volume)
    for cube in ranked[:6]:
        months = [dataset.height_labels[k] for k in cube.height_indices()]
        regions = [dataset.row_labels[i] for i in cube.row_indices()]
        items = [dataset.column_labels[j] for j in cube.column_indices()]
        print(f"bundle: {', '.join(items)}")
        print(f"  sells together in {', '.join(regions)}")
        print(f"  during {', '.join(months)}\n")

    # Cross-sell rules: what does a strong seller imply, and where/when?
    rules = derive_rules(dataset, result, min_confidence=0.8, max_antecedent=1)
    print(f"Cross-sell rules (confidence >= 0.8): {len(rules)}")
    for rule in rules[:8]:
        print(f"  {rule.format(dataset)}")


if __name__ == "__main__":
    main()
