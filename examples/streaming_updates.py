"""Incremental FCC maintenance as time points stream in.

Run with::

    python examples/streaming_updates.py

A CDC15-style experiment produces one new time slice per measurement.
Instead of re-mining the whole tensor every time, the incremental
updater (an extension beyond the paper, built on RSM's machinery)
carries the old result forward and only searches patterns touching the
new slice — and provably returns exactly what a full re-mine would.
"""

from __future__ import annotations

import time

import numpy as np

from repro import Dataset3D, Thresholds, mine
from repro.core import verify_result
from repro.datasets import binarize_by_row_mean, synthetic_expression
from repro.rsm import append_height_slice


def main() -> None:
    n_times, n_samples, n_genes = 10, 7, 120
    values = synthetic_expression(n_times, n_samples, n_genes, seed=31)
    full = binarize_by_row_mean(values)
    thresholds = Thresholds(min_h=2, min_r=3, min_c=12)

    # Start with the first 4 time points already measured.
    current = Dataset3D(full.data[:4].copy())
    result = mine(current, thresholds)
    print(f"t=4 slices: {result.summary()}")

    incremental_total = 0.0
    remine_total = 0.0
    for k in range(4, n_times):
        t0 = time.perf_counter()
        current, result = append_height_slice(
            current, result, full.data[k], thresholds
        )
        incremental_total += time.perf_counter() - t0

        t0 = time.perf_counter()
        fresh = mine(current, thresholds)
        remine_total += time.perf_counter() - t0

        assert result.same_cubes(fresh), "incremental must equal re-mining"
        print(
            f"t={k + 1} slices: {len(result):>5} FCCs "
            f"(mined {result.stats['slices_mined']} slices incrementally)"
        )

    print(f"\ncumulative incremental time: {incremental_total:.3f}s")
    print(f"cumulative re-mine time    : {remine_total:.3f}s")

    # Close the loop: the final result verifies against the final tensor.
    report = verify_result(current, result, thresholds)
    print(report.summary())


if __name__ == "__main__":
    main()
