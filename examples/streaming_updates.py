"""Dynamic FCC maintenance with ``repro.stream``.

Run with::

    python examples/streaming_updates.py

A dataset rarely holds still: cells flip as measurements are corrected,
new time slices arrive, samples get dropped.  The
:class:`repro.stream.IncrementalMaintainer` carries a mined result
through arbitrary delta batches — cell edits and slice appends/drops on
any axis — re-mining only the height subsets a batch actually touched,
and provably lands on exactly what a fresh mine of the edited tensor
returns.  Every batch is journalled in a :class:`repro.stream.DeltaLog`
bound to the base tensor's content fingerprint, so the edit history
replays and verifies end to end.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import Thresholds, mine
from repro.core import verify_result
from repro.datasets import binarize_by_row_mean, synthetic_expression
from repro.io import dataset_fingerprint
from repro.stream import (
    AppendSlice,
    ClearCell,
    DeltaLog,
    DropSlice,
    IncrementalMaintainer,
    SetCell,
    apply_deltas,
)


def main() -> None:
    n_times, n_samples, n_genes = 6, 7, 60
    values = synthetic_expression(n_times, n_samples, n_genes, seed=31)
    base = binarize_by_row_mean(values)
    thresholds = Thresholds(min_h=2, min_r=3, min_c=8)

    result = mine(base, thresholds, algorithm="rsm")
    print(f"base tensor {base.shape}: {result.summary()}")

    # One new time point, a couple of corrected cells, one retired sample.
    new_slice = binarize_by_row_mean(
        synthetic_expression(1, n_samples, n_genes, seed=99)
    ).data[0]
    batches = [
        [SetCell(0, 1, 5), ClearCell(2, 3, 7), SetCell(1, 0, 11)],
        [AppendSlice("height", new_slice, label="t7")],
        [DropSlice("row", 6), ClearCell(1, 2, 2)],
    ]

    maintainer = IncrementalMaintainer(base, result, thresholds)
    with tempfile.TemporaryDirectory() as tmp:
        log = DeltaLog.open(Path(tmp) / "edits.jsonl", dataset=base)

        incremental_total = 0.0
        remine_total = 0.0
        for batch in batches:
            t0 = time.perf_counter()
            maintained = maintainer.apply(batch)
            incremental_total += time.perf_counter() - t0
            log.append(
                batch, fingerprint=dataset_fingerprint(maintainer.dataset)
            )

            t0 = time.perf_counter()
            fresh = mine(maintainer.dataset, thresholds, algorithm="rsm")
            remine_total += time.perf_counter() - t0
            assert maintained.same_cubes(fresh), "maintained must equal re-mine"

            stream = maintained.stats.extra["stream"]
            print(
                f"after {len(batch)} delta(s): {len(maintained):>4} FCCs on "
                f"{maintainer.dataset.shape} "
                f"({stream['cubes_patched']} patched, "
                f"{stream['subsets_remined']} subsets re-mined)"
            )

        print(f"\ncumulative incremental time: {incremental_total:.3f}s")
        print(f"cumulative re-mine time    : {remine_total:.3f}s")

        # The journal replays the whole history onto the base tensor and
        # verifies each step's fingerprint.
        replayed = log.replay(base)
        assert dataset_fingerprint(replayed) == dataset_fingerprint(
            maintainer.dataset
        )
        print(f"delta log: {len(log)} batch(es) replay and verify")

        # A standalone check never hurts: apply_deltas flattens all
        # batches and reports what the maintainer was told.
        flat = [delta for batch in batches for delta in batch]
        application = apply_deltas(base, flat)
        print(
            f"flat application: {application.n_deltas} delta(s), "
            f"{application.dirty_heights.bit_count()} dirty height(s)"
        )

    report = verify_result(maintainer.dataset, maintainer.result, thresholds)
    print(report.summary())


if __name__ == "__main__":
    main()
