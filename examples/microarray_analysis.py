"""Gene-sample-time microarray analysis — the paper's primary motivation.

Run with::

    python examples/microarray_analysis.py [n_genes]

Builds an Elutriation-shaped expression tensor (14 time points x 9
sample attributes x genes), binarizes it with the paper's row-mean
normalization, mines FCCs with both algorithms, and interprets the
largest cube the way Section 1 describes: a set of genes highly
expressed under a set of samples across a set of time points — a
candidate co-regulated gene module.
"""

from __future__ import annotations

import sys

from repro import RSMOptions, Thresholds, mine
from repro.analysis import dataset_stats, derive_rules, result_stats
from repro.datasets import binarize_by_row_mean, synthetic_expression


def main(n_genes: int = 300) -> None:
    # Phase 1: generate expression data and apply the paper's
    # normalization (Section 7.1): cell = 1 iff value > row mean.
    values = synthetic_expression(
        n_times=14, n_samples=9, n_genes=n_genes, n_modules=6, seed=7
    )
    dataset = binarize_by_row_mean(values)
    print("Dataset profile")
    print(dataset_stats(dataset).format())

    # Phase 2: mine.  Thresholds follow the paper's Elutriation setup,
    # with minC scaled to the gene count (paper: 1000 of 7161 genes).
    thresholds = Thresholds(min_h=3, min_r=3, min_c=max(2, n_genes * 1000 // 7161))
    print(f"\nMining with {thresholds} ...")
    cubeminer_result = mine(dataset, thresholds)
    rsm_result = mine(
        dataset, thresholds, algorithm="rsm", options=RSMOptions(base_axis="auto")
    )
    print(f"  {cubeminer_result.summary()}")
    print(f"  {rsm_result.summary()}")
    assert cubeminer_result.same_cubes(rsm_result)

    print("\nResult profile")
    print(result_stats(dataset, cubeminer_result).format())

    if len(cubeminer_result) == 0:
        print("no cubes at these thresholds — try lowering minC")
        return

    # Phase 3: interpret the largest module.
    biggest = max(cubeminer_result, key=lambda cube: cube.volume)
    times = [dataset.height_labels[k] for k in biggest.height_indices()]
    samples = [dataset.row_labels[i] for i in biggest.row_indices()]
    genes = [dataset.column_labels[j] for j in biggest.column_indices()]
    print("\nLargest candidate gene module:")
    print(f"  {len(genes)} genes co-expressed across "
          f"{len(times)} time points under {len(samples)} sample attributes")
    print(f"  time points : {', '.join(times)}")
    print(f"  samples     : {', '.join(samples)}")
    print(f"  genes       : {', '.join(genes[:10])}"
          + (" ..." if len(genes) > 10 else ""))

    # Phase 4: 3D association rules (the paper's future-work extension).
    rules = derive_rules(dataset, cubeminer_result,
                         min_confidence=0.9, max_antecedent=1)
    print(f"\nTop gene-implication rules (confidence >= 0.9): {len(rules)}")
    for rule in rules[:5]:
        print(f"  {rule.format(dataset)}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
