"""Beyond the paper: frequent closed hyper-cubes in a 4D tensor.

Run with::

    python examples/hypercube_4d.py

The paper lifts 2D closed patterns to 3D; :mod:`repro.ndim` takes the
same construction to arbitrary rank by iterating the RSM idea
(enumerate one axis, AND its slices, recurse).  Here a 4D retail
tensor — region x month x store-format x item — is mined for closed
4-blocks: item bundles bought together across regions, months AND
store formats simultaneously.
"""

from __future__ import annotations

import numpy as np

from repro.ndim import DatasetND, is_closed_nd, mine_nd

REGIONS = ["north", "south", "east", "west"]
MONTHS = ["q1", "q2", "q3", "q4"]
FORMATS = ["hyper", "super", "corner"]
ITEMS = ["coffee", "tea", "cocoa", "bread", "milk", "eggs",
         "soap", "paper", "bulbs", "rice", "pasta", "sauce"]


def build_tensor(seed: int = 13) -> DatasetND:
    rng = np.random.default_rng(seed)
    data = rng.random((len(REGIONS), len(MONTHS), len(FORMATS), len(ITEMS))) < 0.12

    def plant(regions, months, formats, items):
        data[np.ix_(
            [REGIONS.index(r) for r in regions],
            [MONTHS.index(m) for m in months],
            [FORMATS.index(f) for f in formats],
            [ITEMS.index(i) for i in items],
        )] = True

    # Hot drinks co-sell in the cold quarters, in big-box formats, everywhere.
    plant(REGIONS, ["q1", "q4"], ["hyper", "super"], ["coffee", "tea", "cocoa"])
    # Staples co-sell all year, all formats, in the two dense regions.
    plant(["north", "east"], MONTHS, FORMATS, ["bread", "milk", "rice"])
    return DatasetND(
        data, axis_labels=[REGIONS, MONTHS, FORMATS, ITEMS]
    )


def main() -> None:
    dataset = build_tensor()
    print(f"4D retail tensor: {dataset!r}")
    print("axes: region x month x store-format x item\n")

    result = mine_nd(dataset, min_sizes=(2, 2, 2, 2))
    print(
        f"{len(result)} frequent closed 4D hyper-cubes "
        f"(minimums 2 per axis) in {result.elapsed_seconds:.2f}s"
    )
    print(f"slices enumerated: {result.stats['slices_enumerated']}, "
          f"post-pruned: {result.stats['postprune_pruned']}\n")

    ranked = sorted(result, key=lambda p: -p.volume)
    for pattern in ranked[:5]:
        assert is_closed_nd(dataset, pattern)
        regions, months, formats, items = (
            [dataset.axis_labels[axis][i] for i in members]
            for axis, members in enumerate(pattern.indices)
        )
        print(f"bundle {', '.join(items)}")
        print(f"  in {', '.join(formats)} stores")
        print(f"  across {', '.join(regions)} during {', '.join(months)}")
        print(f"  volume {pattern.volume} cells\n")


if __name__ == "__main__":
    main()
