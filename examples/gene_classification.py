"""FCC-based sample classification — the paper's named future work.

Run with::

    python examples/gene_classification.py

The paper's conclusion proposes a "classifier based on frequent closed
cubes".  This example plays out the motivating biology: tissue samples
(rows) from two conditions differ in which gene modules activate in
which cell-cycle phases.  An :class:`FCCClassifier` mines FCCs on
labeled training samples, turns pure cubes into class rules, and
classifies held-out samples by which cube blocks light up in them.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import FCCClassifier, greedy_cover
from repro.api import mine
from repro.core.constraints import Thresholds
from repro.core.dataset import Dataset3D

N_TIMES, N_GENES = 8, 40
RNG = np.random.default_rng(21)


def sample_batch(n: int, condition: str, noise: float = 0.1) -> np.ndarray:
    """Generate (times, n, genes) expression slabs for one condition.

    Healthy tissue activates genes 0-9 in early phases; tumor tissue
    activates genes 25-34 in late phases (plus background noise).
    """
    slabs = RNG.random((N_TIMES, n, N_GENES)) < noise
    if condition == "healthy":
        slabs[np.ix_([0, 1, 2], range(n), range(0, 10))] = True
    else:
        slabs[np.ix_([5, 6, 7], range(n), range(25, 35))] = True
    return slabs


def main() -> None:
    # --- Training data: 12 labeled samples per condition -------------
    train = Dataset3D(
        np.concatenate(
            [sample_batch(12, "healthy"), sample_batch(12, "tumor")], axis=1
        )
    )
    labels = ["healthy"] * 12 + ["tumor"] * 12

    thresholds = Thresholds(min_h=2, min_r=5, min_c=5)
    classifier = FCCClassifier(thresholds, min_confidence=0.75)
    classifier.fit(train, labels)

    print(f"{classifier!r}")
    print("Learned class rules (time-block x gene-block => condition):")
    for rule in classifier.rules[:6]:
        print(f"  {rule.format(train)}")

    print(f"\nTraining accuracy: {classifier.score(train, labels):.2f}")

    # --- Held-out samples ---------------------------------------------
    test = Dataset3D(
        np.concatenate(
            [sample_batch(6, "healthy"), sample_batch(6, "tumor")], axis=1
        )
    )
    test_labels = ["healthy"] * 6 + ["tumor"] * 6
    accuracy = classifier.score(test, test_labels)
    print(f"Held-out accuracy: {accuracy:.2f}")

    sample_slab = test.data[:, 0, :]
    predicted, scores = classifier.predict_scores(sample_slab)
    print(f"\nSample 1 votes: {scores} -> predicted {predicted!r}")

    # --- Which patterns explain the data? -----------------------------
    mined = mine(train, thresholds)
    print(f"\nPattern summary (greedy cover of {len(mined)} FCCs):")
    for step in greedy_cover(train, mined, max_cubes=3):
        print(
            f"  +{step.new_cells:>4} cells "
            f"({step.cumulative_fraction:6.1%} total)  {step.cube.format(train)}"
        )


if __name__ == "__main__":
    main()
