"""The typed client for the mining daemon.

:class:`ServiceClient` speaks the exact schemas of
:mod:`repro.service.schemas` over stdlib ``urllib`` — no dependencies —
and hands back *library* objects: datasets register from
:class:`~repro.core.dataset.Dataset3D`, jobs come back as
:class:`~repro.service.schemas.JobRecord`, and results arrive as plain
:class:`~repro.core.result.MiningResult` values wrapped in a
:class:`ServiceResult` carrying the cache provenance.  Server-side
errors re-raise as :class:`ServiceClientError` with the HTTP status and
the machine-readable error code.

Transport faults on *idempotent* requests (every GET) are retried with
bounded exponential backoff plus jitter: a connection reset, a dropped
socket or an unreachable daemon gets ``retries`` more chances before
surfacing as a :class:`ServiceClientError`.  Non-idempotent requests
(``POST /v1/jobs`` and friends) are never retried — a resubmitted job
is a duplicate job, so that call stays single-shot.

The one-call convenience::

    client = ServiceClient("http://127.0.0.1:8765")
    served = client.mine(dataset, Thresholds(2, 2, 2))
    served.result        # MiningResult — same type mine() returns
    served.cache_hit     # True when the threshold lattice answered
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

from ..core.constraints import Thresholds
from ..core.dataset import Dataset3D
from ..core.result import MiningResult
from ..io import dataset_to_payload
from ..options import AlgorithmOptions, options_to_dict
from .registry import DatasetEntry
from .schemas import JobRecord, JobSpec

__all__ = ["ServiceClient", "ServiceClientError", "ServiceResult"]


class ServiceClientError(RuntimeError):
    """An error response from the daemon (or a transport failure).

    ``retry_after`` carries the daemon's backpressure hint (seconds)
    when the error is an admission-control rejection (HTTP 429).
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: "float | None" = None,
    ) -> None:
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


@dataclass(frozen=True)
class ServiceResult:
    """A mining result as served, with its cache provenance."""

    result: MiningResult
    cache_hit: bool
    filtered_from: Thresholds | None
    job: JobRecord | None = None


class ServiceClient:
    """Typed HTTP client bound to one daemon."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 60.0,
        retries: int = 3,
        retry_backoff: float = 0.1,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        *,
        payload: dict | None = None,
        query: dict | None = None,
        timeout: float | None = None,
        idempotent: "bool | None" = None,
    ) -> dict:
        """One round-trip; idempotent calls retry transient faults.

        ``idempotent`` defaults to ``method == "GET"``.  Only transport
        failures (reset/dropped connections, timeouts, an unreachable
        daemon) are retried — an HTTP error is the daemon *answering*,
        and is raised immediately with its typed code.
        """
        if idempotent is None:
            idempotent = method == "GET"
        url = self.base_url + path
        if query:
            pairs = "&".join(f"{k}={v}" for k, v in query.items())
            url += f"?{pairs}"
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            url,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        attempts = self.retries + 1 if idempotent else 1
        last_error: "Exception | None" = None
        for attempt in range(attempts):
            try:
                with urllib.request.urlopen(
                    request,
                    timeout=timeout if timeout is not None else self.timeout,
                ) as response:
                    return json.loads(response.read().decode())
            except urllib.error.HTTPError as error:
                try:
                    detail = json.loads(error.read().decode()).get("error", {})
                except ValueError:
                    detail = {}
                retry_after = detail.get("retry_after")
                raise ServiceClientError(
                    error.code,
                    detail.get("code", "http-error"),
                    detail.get("message", str(error)),
                    retry_after=(
                        float(retry_after) if retry_after is not None else None
                    ),
                ) from None
            except (
                urllib.error.URLError,
                ConnectionResetError,
                http.client.HTTPException,
                TimeoutError,
            ) as error:
                last_error = error
                if attempt + 1 >= attempts:
                    break
                # Bounded exponential backoff with jitter so a fleet of
                # clients does not re-land on the daemon in lockstep.
                time.sleep(
                    self.retry_backoff
                    * (2**attempt)
                    * (1 + 0.25 * random.random())
                )
        reason = getattr(last_error, "reason", None) or last_error
        raise ServiceClientError(
            0, "unreachable", f"cannot reach {self.base_url}: {reason}"
        ) from None

    # ------------------------------------------------------------------
    # Health & datasets
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/health")

    def register_dataset(self, dataset: Dataset3D) -> DatasetEntry:
        """Upload a dataset; returns its registry entry (idempotent)."""
        payload = self._request(
            "POST", "/v1/datasets", payload=dataset_to_payload(dataset)
        )
        return DatasetEntry.from_dict(payload)

    def datasets(self) -> list[DatasetEntry]:
        payload = self._request("GET", "/v1/datasets")
        return [DatasetEntry.from_dict(entry) for entry in payload["datasets"]]

    def dataset(self, fingerprint: str) -> DatasetEntry:
        return DatasetEntry.from_dict(
            self._request("GET", f"/v1/datasets/{fingerprint}")
        )

    def update_dataset(self, fingerprint: str, deltas) -> dict:
        """Apply a delta batch to a registered dataset.

        ``deltas`` is a list of :mod:`repro.stream` delta objects (or
        their JSON dict forms).  Returns the server's update document:
        the successor dataset's ``fingerprint``/``shape`` and the
        queued maintenance ``jobs`` patching the result cache forward.
        """
        from ..stream.delta import delta_to_dict

        payload = [
            delta if isinstance(delta, dict) else delta_to_dict(delta)
            for delta in deltas
        ]
        return self._request(
            "POST",
            f"/v1/datasets/{fingerprint}/updates",
            payload={"deltas": payload},
        )

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------
    def submit(
        self,
        dataset: Dataset3D | str,
        thresholds: Thresholds,
        *,
        algorithm: str = "cubeminer",
        options: AlgorithmOptions | dict | None = None,
        use_cache: bool = True,
        checkpoint: bool = True,
        deadline_seconds: float | None = None,
    ) -> JobRecord:
        """Submit one mining job.

        ``dataset`` may be a fingerprint of an already-registered
        dataset or a :class:`Dataset3D` (registered on the fly);
        ``options`` may be the typed dataclass or its JSON dict form.
        A submission the cache can answer returns an already-``done``
        record with ``cache_hit`` set.
        """
        if isinstance(dataset, Dataset3D):
            fingerprint = self.register_dataset(dataset).fingerprint
        else:
            fingerprint = dataset
        if options is None:
            options_payload: dict = {}
        elif isinstance(options, dict):
            options_payload = dict(options)
        else:
            options_payload = options_to_dict(options)
        spec = JobSpec(
            dataset=fingerprint,
            thresholds=thresholds,
            algorithm=algorithm,
            options=options_payload,
            use_cache=use_cache,
            checkpoint=checkpoint,
            deadline_seconds=deadline_seconds,
        )
        return JobRecord.from_dict(
            self._request("POST", "/v1/jobs", payload=spec.to_dict())
        )

    def job(self, job_id: str) -> JobRecord:
        return JobRecord.from_dict(self._request("GET", f"/v1/jobs/{job_id}"))

    def jobs(self) -> list[JobRecord]:
        payload = self._request("GET", "/v1/jobs")
        return [JobRecord.from_dict(entry) for entry in payload["jobs"]]

    def wait(
        self,
        job_id: str,
        *,
        timeout: float | None = None,
        poll_interval: float = 0.2,
    ) -> JobRecord:
        """Block until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.terminal:
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record.status} after {timeout}s"
                )
            time.sleep(poll_interval)

    def events(
        self,
        job_id: str,
        *,
        after: int = 0,
        wait: float | None = None,
    ) -> tuple[list[dict], int]:
        """Fetch journalled events past ``after``; ``wait`` long-polls."""
        query: dict = {"after": after}
        if wait is not None:
            query["wait"] = wait
        payload = self._request(
            "GET",
            f"/v1/jobs/{job_id}/events",
            query=query,
            timeout=self.timeout + (wait or 0.0),
        )
        return payload["events"], payload["next"]

    def cancel(self, job_id: str) -> JobRecord:
        return JobRecord.from_dict(
            self._request("POST", f"/v1/jobs/{job_id}/cancel")
        )

    def result(self, job_id: str) -> ServiceResult:
        """The result of a ``done`` job, as library objects."""
        payload = self._request("GET", f"/v1/jobs/{job_id}/result")
        raw_filtered = payload.get("filtered_from")
        return ServiceResult(
            result=MiningResult.from_payload(payload["result"]),
            cache_hit=bool(payload.get("cache_hit")),
            filtered_from=(
                Thresholds.from_dict(raw_filtered)
                if raw_filtered is not None
                else None
            ),
            job=JobRecord.from_dict(payload["job"]),
        )

    # ------------------------------------------------------------------
    # Cache-only queries & the one-call path
    # ------------------------------------------------------------------
    def query(
        self,
        fingerprint: str,
        thresholds: Thresholds,
        *,
        algorithm: str = "cubeminer",
    ) -> ServiceResult | None:
        """Ask the threshold-lattice cache; ``None`` on a miss."""
        try:
            payload = self._request(
                "POST",
                "/v1/query",
                payload={
                    "dataset": fingerprint,
                    "algorithm": algorithm,
                    "thresholds": thresholds.to_dict(),
                },
            )
        except ServiceClientError as error:
            if error.code == "cache-miss":
                return None
            raise
        return ServiceResult(
            result=MiningResult.from_payload(payload["result"]),
            cache_hit=True,
            filtered_from=Thresholds.from_dict(payload["filtered_from"]),
        )

    def mine(
        self,
        dataset: Dataset3D | str,
        thresholds: Thresholds,
        *,
        algorithm: str = "cubeminer",
        options: AlgorithmOptions | dict | None = None,
        use_cache: bool = True,
        timeout: float | None = None,
        deadline_seconds: float | None = None,
    ) -> ServiceResult:
        """Submit, wait, and fetch — the service twin of :func:`repro.mine`."""
        record = self.submit(
            dataset,
            thresholds,
            algorithm=algorithm,
            options=options,
            use_cache=use_cache,
            deadline_seconds=deadline_seconds,
        )
        record = self.wait(record.id, timeout=timeout)
        if record.status != "done":
            raise ServiceClientError(
                409, "job-" + record.status, record.error or record.status
            )
        return self.result(record.id)
