"""The job queue: mining runs in worker processes, resumable on disk.

Every job owns one directory under the manager's root::

    jobs/<id>/job.json          daemon-owned lifecycle record (JobRecord)
    jobs/<id>/task.json         worker manifest (spec + dataset path)
    jobs/<id>/events.jsonl      worker-appended typed events + progress
    jobs/<id>/checkpoint.jsonl  parallel chunk journal (when enabled)
    jobs/<id>/result.json       MiningResult payload, written atomically
    jobs/<id>/result.sha256     digest of result.json (verify-on-read)
    jobs/<id>/error.json        failure record, written atomically
    jobs/quarantined/<id>/      poison jobs, moved aside with a manifest

The split keeps exactly one writer per file: the daemon owns
``job.json``, the worker owns everything it produces.  A daemon killed
at any instant therefore leaves a consistent tree — on restart,
:meth:`JobManager.recover` requeues every ``queued``/``running`` job,
and a requeued parallel job re-enters :func:`repro.mine` with
``resume=True`` on its journal, so chunks finished before the crash are
replayed, not re-mined (``stats.extra["recovery"]["chunks_resumed"]``
counts them).

The manager is hardened against its own infrastructure failing:

* **Retry budget.** A worker crash, a stuck worker killed by the
  heartbeat watchdog, or a storage fault (``OSError`` /
  :class:`~repro.chaos.io.StoreCorruptionError`) requeues the job with
  exponential backoff, spending its per-job ``retries`` budget.
  Deterministic mining errors fail immediately — re-running a bug does
  not fix it.
* **Poison-job quarantine.** A job that exhausts its budget moves to
  ``quarantined/<id>/`` with a ``quarantine.json`` manifest (reason,
  attempts, last error, fault trace).  Quarantined jobs are never
  requeued and never block the queue — :meth:`JobManager.recover`
  loads them back as terminal history only.
* **Admission control.** With ``max_queued`` set, submissions past the
  bound are rejected with HTTP 429 and a ``Retry-After`` hint instead
  of growing the queue without limit.
* **Watchdog.** Workers heartbeat into their event journal; a worker
  silent past ``heartbeat_timeout`` is killed and its job retried.

All daemon-side disk traffic goes through an injectable
:class:`~repro.chaos.io.IOShim`, and results are verified against their
``result.sha256`` sidecar on every read — the chaos battery in
``tests/test_chaos.py`` drives faults through exactly these seams.

Workers stream :mod:`repro.obs` events as JSON lines
(:func:`repro.obs.events.event_to_dict` plus ``progress`` snapshots);
the per-node ``node``/``prune`` firehose is filtered out so the journal
stays proportional to coarse work units, not tree size.  Jobs answered
by the threshold-lattice cache never reach a worker at all: they are
born ``done`` with ``cache_hit`` provenance.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import time
import threading
import uuid
from collections import deque
from dataclasses import replace
from pathlib import Path

from ..chaos.io import IOShim, StoreCorruptionError, sha256_bytes
from ..core.dataset import Dataset3D
from ..core.result import MiningResult
from ..obs import MiningCancelled, event_to_dict
from ..obs.metrics import ChaosCounters
from ..options import options_from_dict
from ..parallel.checkpoint import journal_status
from .cache import ThresholdLatticeCache
from .registry import DatasetRegistry
from .schemas import JobRecord, JobSpec, ServiceError

__all__ = ["JobManager", "run_job_worker"]

#: Event kinds too hot to journal (one line per tree node).
_FIREHOSE_KINDS = frozenset({"node", "prune"})

#: Algorithms whose jobs can checkpoint/resume chunk-by-chunk.
_PARALLEL_ALGORITHMS = frozenset({"parallel-cubeminer", "parallel-rsm"})

#: Subdirectory of the jobs root holding poison jobs (never requeued).
QUARANTINE_DIR = "quarantined"


# ----------------------------------------------------------------------
# Worker process entry point
# ----------------------------------------------------------------------
def _write_error(
    directory: Path,
    emit,
    message: str,
    *,
    retryable: bool = False,
    code: "str | None" = None,
) -> None:
    """Persist a typed failure record for the daemon to classify.

    ``retryable`` marks infrastructure faults (storage, corruption) the
    manager may spend retry budget on; deterministic mining errors leave
    it unset and fail the job on the first attempt.
    """
    doc: dict = {"error": message}
    if retryable:
        doc["retryable"] = True
    if code:
        doc["code"] = code
    tmp = directory / ".error.json.tmp"
    tmp.write_text(json.dumps(doc))
    os.replace(tmp, directory / "error.json")
    emit({"kind": "job-failed", "error": message, "retryable": retryable})


def run_job_worker(job_dir: str) -> int:
    """Execute one job inside a worker process.

    Reads the ``task.json`` manifest, mines, streams events (plus a
    periodic heartbeat for the manager's watchdog), and writes
    ``result.json`` + its ``result.sha256`` digest, or ``error.json``.
    Module-level so it stays importable under the ``spawn`` start
    method.
    """
    directory = Path(job_dir)
    try:
        manifest = json.loads((directory / "task.json").read_text())
        spec = JobSpec.from_dict(manifest["spec"])
    except Exception as error:  # noqa: BLE001 - corrupt manifest, typed exit
        # A torn or bit-flipped task.json must fail typed (and
        # retryable — the manager rewrites the manifest on requeue),
        # not as a raw traceback from a dying process.
        _write_error(
            directory,
            lambda payload: None,
            f"unreadable task manifest: {type(error).__name__}: {error}",
            retryable=True,
        )
        return 1

    # Injected worker faults cross the process boundary through the
    # manifest (the worker has no shim): a crash exits before any
    # output, a hang stalls before the event journal even opens — so
    # neither leaves a heartbeat, exactly like the real failure.
    fault = manifest.get("chaos") or None
    if fault:
        if fault.get("kind") == "crash":
            os._exit(13)
        if fault.get("kind") == "hang":
            time.sleep(float(fault.get("seconds", 30.0)))

    events_path = directory / "events.jsonl"
    heartbeat_interval = float(manifest.get("heartbeat_interval", 1.0))

    with open(events_path, "a") as events:
        emit_lock = threading.Lock()

        def emit(payload: dict) -> None:
            payload.setdefault("t", time.time())
            line = json.dumps(payload) + "\n"
            with emit_lock:
                try:
                    events.write(line)
                    events.flush()
                except ValueError:
                    pass  # handle closed while the heartbeat was racing teardown

        def on_event(event) -> None:
            if event.kind in _FIREHOSE_KINDS:
                return
            emit(event_to_dict(event))

        def on_progress(update) -> None:
            emit(
                {
                    "kind": "progress",
                    "phase": update.phase,
                    "done": update.done,
                    "total": update.total,
                    "elapsed_seconds": update.elapsed_seconds,
                }
            )

        stop_beating = threading.Event()

        def beat() -> None:
            while not stop_beating.wait(heartbeat_interval):
                emit({"kind": "heartbeat"})

        heartbeat = threading.Thread(
            target=beat, name="repro-job-heartbeat", daemon=True
        )
        heartbeat.start()

        try:
            try:
                from ..api import mine
                from ..obs import ProgressController

                result = None
                if manifest.get("maintain") is not None:
                    result = _run_maintenance(manifest, spec, emit)
                if result is None:
                    mmap_manifest = manifest.get("mmap")
                    if mmap_manifest is not None:
                        from ..core.kernels import preferred_words_native_kernel

                        # mmap operation needs a packed-word backend so the
                        # mapped pages are adopted zero-copy; take the
                        # fastest one built on this interpreter.
                        dataset = Dataset3D.open_mmap(
                            mmap_manifest["path"],
                            tuple(mmap_manifest["shape"]),
                            kernel=preferred_words_native_kernel(),
                        )
                    else:
                        try:
                            dataset = Dataset3D.load_npz(manifest["dataset_path"])
                        except OSError:
                            raise
                        except Exception as error:
                            # numpy/zipfile raise untyped decode errors on
                            # corrupt archives; keep the retryable channel.
                            raise StoreCorruptionError(
                                "registry",
                                manifest["dataset_path"],
                                f"unreadable npz: {error}",
                            ) from error
                        from ..io import dataset_fingerprint

                        actual = dataset_fingerprint(dataset)
                        if actual != spec.dataset:
                            raise StoreCorruptionError(
                                "registry",
                                manifest["dataset_path"],
                                f"fingerprint {actual[:12]} != expected "
                                f"{spec.dataset[:12]}",
                            )
                    options = options_from_dict(spec.algorithm, spec.options)
                    checkpoint_path = manifest.get("checkpoint_path")
                    if checkpoint_path is not None:
                        options = replace(
                            options,
                            checkpoint_path=checkpoint_path,
                            resume=Path(checkpoint_path).exists(),
                        )
                    result = mine(
                        dataset,
                        spec.thresholds,
                        algorithm=spec.algorithm,
                        options=options,
                        on_event=on_event,
                        progress=ProgressController(
                            on_progress=on_progress,
                            min_interval=0.2,
                            deadline=spec.deadline_seconds,
                        ),
                    )
            except MiningCancelled as error:
                # A deadline is a property of the request, not an
                # infrastructure fault: never retried.
                _write_error(
                    directory, emit, str(error), code="deadline-exceeded"
                )
                return 1
            except (StoreCorruptionError, OSError) as error:
                _write_error(
                    directory,
                    emit,
                    f"{type(error).__name__}: {error}",
                    retryable=True,
                )
                return 1
            except Exception as error:  # noqa: BLE001 - one failure channel
                _write_error(
                    directory, emit, f"{type(error).__name__}: {error}"
                )
                return 1
            payload = json.dumps(result.to_payload()).encode()
            # Digest first, payload second: result.json existing implies
            # its sidecar does too, so verify-on-read never races a
            # half-published pair.
            tmp = directory / ".result.sha256.tmp"
            tmp.write_text(sha256_bytes(payload))
            os.replace(tmp, directory / "result.sha256")
            tmp = directory / ".result.json.tmp"
            tmp.write_bytes(payload)
            os.replace(tmp, directory / "result.json")
            emit({"kind": "job-done", "n_cubes": len(result)})
        finally:
            stop_beating.set()
            heartbeat.join(timeout=1.0)
    return 0


def _run_maintenance(manifest: dict, spec: JobSpec, emit) -> "MiningResult | None":
    """Patch the base dataset's cached result through the delta batch.

    Returns ``None`` — telling the caller to mine fresh — whenever the
    incremental path cannot be trusted: base dataset or base result
    missing/unreadable, thresholds drifted, or the maintained dataset's
    fingerprint disagreeing with the one the job was submitted for.
    """
    from ..io import dataset_fingerprint
    from ..stream.delta import deltas_from_payload
    from ..stream.maintain import maintain

    maintenance = manifest["maintain"]
    base_dataset_path = maintenance.get("base_dataset_path")
    base_result_path = maintenance.get("base_result_path")
    if not base_dataset_path or not base_result_path:
        emit({"kind": "maintain-fallback", "reason": "base unavailable"})
        return None
    from .cache import load_entry_payload

    try:
        base_dataset = Dataset3D.load_npz(base_dataset_path)
        base_result = MiningResult.from_payload(
            load_entry_payload(base_result_path)
        )
        deltas = deltas_from_payload(maintenance.get("deltas") or [])
    except Exception as error:  # noqa: BLE001 - any unreadable base mines fresh
        # A corrupt base result is a reason to mine fresh, not to fail.
        emit({"kind": "maintain-fallback", "reason": str(error)})
        return None
    if base_result.thresholds != spec.thresholds:
        emit({"kind": "maintain-fallback", "reason": "threshold mismatch"})
        return None
    new_dataset, result = maintain(
        base_dataset, base_result, deltas, spec.thresholds
    )
    fingerprint = dataset_fingerprint(new_dataset)
    if fingerprint != spec.dataset:
        # The delta batch does not lead from the recorded base to the
        # dataset this job targets — a stale log, not a mining bug.
        emit(
            {
                "kind": "maintain-fallback",
                "reason": f"maintained fingerprint {fingerprint[:12]} "
                f"!= target {spec.dataset[:12]}",
            }
        )
        return None
    stream_stats = result.stats.extra.get("stream", {})
    emit({"kind": "maintain-done", **stream_stats})
    return result


# ----------------------------------------------------------------------
# The manager
# ----------------------------------------------------------------------
class JobManager:
    """FIFO job queue over worker processes, persistent across restarts.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per job.
    registry, cache:
        The shared dataset registry and threshold-lattice result cache.
    max_workers:
        Concurrent worker processes (further jobs wait queued).
    start_method:
        ``multiprocessing`` start method for workers; ``spawn`` (the
        default) keeps children clear of the daemon's server threads.
    mmap_store:
        Optional :class:`~repro.stream.store.MmapDatasetStore`.  When
        set, plain mining jobs hand workers a packed memory-mapped grid
        (materialized into the store on first use) instead of an NPZ to
        load whole — the daemon's out-of-core mode.
    max_queued:
        Admission-control bound: submissions arriving with this many
        jobs already queued are rejected with HTTP 429 and a
        ``Retry-After`` hint.  ``None`` (the default) keeps the queue
        unbounded.
    max_retries:
        Per-job retry budget for *infrastructure* failures (worker
        crashes, watchdog kills, storage faults).  Exhausting it
        quarantines the job.  Deterministic mining errors never retry.
    retry_backoff, backoff_factor, max_backoff:
        Exponential-backoff schedule between retries: attempt ``n``
        waits ``min(retry_backoff * backoff_factor**(n-1), max_backoff)``
        seconds before redispatching.
    heartbeat_interval:
        How often workers append a heartbeat event (seconds).
    heartbeat_timeout:
        Watchdog threshold: a running worker whose event journal has
        been silent this long is killed and its job retried.  ``None``
        (the default) disables the watchdog.
    io:
        The :class:`~repro.chaos.io.IOShim` all daemon-side disk
        traffic routes through (the hardened production shim by
        default; tests pass a :class:`~repro.chaos.io.ChaosShim`).
    chaos:
        Shared :class:`~repro.obs.metrics.ChaosCounters` — rejections,
        retries, quarantines, watchdog kills and corruption recoveries
        land here and surface in ``/health`` and result stats.
    """

    def __init__(
        self,
        root: str | Path,
        registry: DatasetRegistry,
        cache: ThresholdLatticeCache,
        *,
        max_workers: int = 2,
        start_method: str = "spawn",
        mmap_store=None,
        max_queued: "int | None" = None,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        backoff_factor: float = 2.0,
        max_backoff: float = 30.0,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: "float | None" = None,
        io: "IOShim | None" = None,
        chaos: "ChaosCounters | None" = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_queued is not None and max_queued < 1:
            raise ValueError(f"max_queued must be >= 1 or None, got {max_queued}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be > 0 or None, got {heartbeat_timeout}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.registry = registry
        self.cache = cache
        self.mmap_store = mmap_store
        self.max_workers = int(max_workers)
        self.max_queued = max_queued
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.backoff_factor = float(backoff_factor)
        self.max_backoff = float(max_backoff)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = heartbeat_timeout
        self.io = io if io is not None else IOShim()
        self.chaos = chaos if chaos is not None else ChaosCounters()
        self._mp = multiprocessing.get_context(start_method)
        self._lock = threading.Condition()
        self._records: dict[str, JobRecord] = {}
        self._queue: deque[str] = deque()
        self._procs: dict[str, multiprocessing.process.BaseProcess] = {}
        self._not_before: dict[str, float] = {}
        self._watchdog_killed: set[str] = set()
        self._closed = False
        self._draining = False
        self.jobs_run = 0
        self.recover()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-job-dispatcher", daemon=True
        )
        self._dispatcher.start()
        self._watchdog: "threading.Thread | None" = None
        if self.heartbeat_timeout is not None:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, name="repro-job-watchdog", daemon=True
            )
            self._watchdog.start()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _dir(self, job_id: str) -> Path:
        primary = self.root / job_id
        if not primary.exists():
            quarantined = self.root / QUARANTINE_DIR / job_id
            if quarantined.exists():
                return quarantined
        return primary

    def _save(self, record: JobRecord) -> None:
        directory = self._dir(record.id)
        directory.mkdir(parents=True, exist_ok=True)
        self.io.atomic_write_text(
            "jobs", directory / "job.json", json.dumps(record.to_dict(), indent=2)
        )

    def _save_safe(self, record: JobRecord) -> None:
        """Best-effort persistence on supervision threads.

        The in-memory record stays authoritative while the daemon
        lives; if the disk rejects the write, a restart simply requeues
        from the stale on-disk status — consistent, just older.
        """
        try:
            self._save(record)
        except OSError:
            pass

    def recover(self) -> int:
        """Reload persisted jobs; requeue interrupted ones.

        Called at construction: ``done``/``failed``/``cancelled`` jobs
        load as history, while ``queued`` and ``running`` jobs (the
        daemon died under them) go back on the queue in creation order.
        Quarantined jobs load as terminal history only — poison stays
        contained across restarts.  Returns the number of requeued
        jobs.
        """
        requeued = []
        for job_json in sorted(self.root.glob("*/job.json")):
            try:
                record = JobRecord.from_dict(json.loads(job_json.read_text()))
            except (ValueError, KeyError):
                continue
            if record.id != job_json.parent.name or record.id in self._records:
                continue
            self._records[record.id] = record
            if record.status in ("queued", "running"):
                if record.status == "running":
                    result, _problem = self._load_result(record.id)
                    if result is not None:
                        # The worker finished right as the old daemon
                        # died: finalize instead of re-running.
                        record.status = "done"
                        record.finished = time.time()
                        record.n_cubes = len(result)
                        try:
                            self.cache.put(
                                record.spec.dataset, record.spec.algorithm, result
                            )
                        except OSError:
                            pass
                        self._save_safe(record)
                        continue
                record.status = "queued"
                self._save_safe(record)
                requeued.append(record)
        for job_json in sorted(self.root.glob(f"{QUARANTINE_DIR}/*/job.json")):
            try:
                record = JobRecord.from_dict(json.loads(job_json.read_text()))
            except (ValueError, KeyError):
                continue
            if record.id != job_json.parent.name or record.id in self._records:
                continue
            record.status = "quarantined"
            self._records[record.id] = record
        requeued.sort(key=lambda r: r.created)
        for record in requeued:
            self._queue.append(record.id)
        return len(requeued)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        """Queue one job — or answer it instantly from the cache."""
        with self._lock:
            if self._closed:
                raise ServiceError(503, "shutting-down", "daemon is shutting down")
            if self._draining:
                raise ServiceError(
                    503, "draining", "daemon is draining; not accepting jobs"
                )
        try:
            spec.validate()
        except ValueError as error:
            raise ServiceError(400, "bad-spec", str(error)) from None
        if spec.dataset not in self.registry:
            raise ServiceError(
                404,
                "unknown-dataset",
                f"dataset {spec.dataset!r} is not registered",
            )
        record = JobRecord(
            id=uuid.uuid4().hex[:12],
            spec=spec,
            status="queued",
            created=time.time(),
        )
        if spec.use_cache:
            answer = self.cache.lookup(spec.dataset, spec.algorithm, spec.thresholds)
            if answer is not None:
                now = time.time()
                record.status = "done"
                record.started = now
                record.finished = now
                record.cache_hit = True
                record.filtered_from = answer.filtered_from
                record.n_cubes = len(answer.result)
                directory = self._dir(record.id)
                directory.mkdir(parents=True, exist_ok=True)
                body = json.dumps(answer.result.to_payload())
                self.io.atomic_write_text(
                    "jobs",
                    directory / "result.sha256",
                    sha256_bytes(body.encode()),
                )
                self.io.atomic_write_text("jobs", directory / "result.json", body)
                with open(directory / "events.jsonl", "a") as events:
                    self.io.append_line(
                        "jobs",
                        events,
                        json.dumps(
                            {
                                "kind": "cache-hit",
                                "t": now,
                                "exact": answer.exact,
                                "filtered_from": answer.filtered_from.to_dict(),
                                "cubes_filtered": answer.cubes_filtered,
                            }
                        ),
                    )
                self._save(record)
                with self._lock:
                    self._records[record.id] = record
                return record
        with self._lock:
            if self.max_queued is not None and len(self._queue) >= self.max_queued:
                self.chaos.jobs_rejected += 1
                # A slot frees when a running job finishes; hint the
                # client to come back after roughly one queue turn.
                retry_after = round(
                    max(1.0, (len(self._queue) + 1) / max(1, self.max_workers)), 1
                )
                raise ServiceError(
                    429,
                    "over-capacity",
                    f"job queue is full ({len(self._queue)} queued, "
                    f"max_queued={self.max_queued})",
                    retry_after=retry_after,
                )
        self._save(record)
        with self._lock:
            self._records[record.id] = record
            self._queue.append(record.id)
            self._lock.notify_all()
        return record

    # ------------------------------------------------------------------
    # Dispatch & supervision
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                job_id: "str | None" = None
                while not self._closed:
                    if self._queue and len(self._procs) < self.max_workers:
                        now = time.monotonic()
                        for candidate in self._queue:
                            if self._not_before.get(candidate, 0.0) <= now:
                                job_id = candidate
                                break
                        if job_id is not None:
                            self._queue.remove(job_id)
                            self._not_before.pop(job_id, None)
                            break
                    self._lock.wait(timeout=0.1)
                if self._closed:
                    return
                record = self._records[job_id]
            try:
                self._start(record)
            except Exception as error:  # noqa: BLE001 - must not kill dispatch
                # Starting the job failed before a worker existed —
                # storage faults are retryable, anything else is not.
                self._handle_failure(
                    record,
                    f"failed to start: {type(error).__name__}: {error}",
                    retryable=isinstance(error, (OSError, StoreCorruptionError)),
                )

    def _start(self, record: JobRecord) -> None:
        directory = self._dir(record.id)
        spec = record.spec
        manifest = {
            "spec": spec.to_dict(),
            "dataset_path": str(self.registry.path(spec.dataset)),
            "checkpoint_path": (
                str(directory / "checkpoint.jsonl")
                if spec.checkpoint and spec.algorithm in _PARALLEL_ALGORITHMS
                else None
            ),
            "maintain": self._maintain_manifest(spec),
            "mmap": self._mmap_manifest(spec),
            "heartbeat_interval": self.heartbeat_interval,
            "chaos": self.io.worker_fault(record.id),
        }
        self.io.atomic_write_text(
            "jobs", directory / "task.json", json.dumps(manifest, indent=2)
        )
        record.status = "running"
        record.started = time.time()
        record.attempts += 1
        self._save(record)
        process = self._mp.Process(
            target=run_job_worker, args=(str(directory),), daemon=False
        )
        process.start()
        with self._lock:
            self._procs[record.id] = process
            self.jobs_run += 1
        watcher = threading.Thread(
            target=self._watch, args=(record.id, process), daemon=True
        )
        watcher.start()

    def _maintain_manifest(self, spec: JobSpec) -> dict | None:
        """Resolve a spec's ``maintain`` block into worker-local paths."""
        if spec.maintain is None:
            return None
        base = str(spec.maintain.get("base", ""))
        base_dataset_path = (
            str(self.registry.path(base)) if base in self.registry else None
        )
        base_result_path = self.cache.entry_path(
            base, spec.algorithm, spec.thresholds
        )
        return {
            "base": base,
            "deltas": list(spec.maintain.get("deltas") or []),
            "base_dataset_path": base_dataset_path,
            "base_result_path": (
                str(base_result_path) if base_result_path is not None else None
            ),
        }

    def _mmap_manifest(self, spec: JobSpec) -> dict | None:
        """Materialize the job's dataset into the mmap store, if enabled.

        Maintenance jobs patch from the base result and never scan the
        full tensor, so they keep the NPZ path.
        """
        if self.mmap_store is None or spec.maintain is not None:
            return None
        if spec.dataset not in self.mmap_store:
            self.mmap_store.put(self.registry.load(spec.dataset))
        meta = self.mmap_store.meta(spec.dataset)
        return {
            "path": str(self.mmap_store.path(spec.dataset)),
            "shape": list(meta["shape"]),
        }

    def _watch(self, job_id: str, process) -> None:
        process.join()
        with self._lock:
            self._procs.pop(job_id, None)
            record = self._records.get(job_id)
            closed = self._closed
            watchdog_killed = job_id in self._watchdog_killed
            self._watchdog_killed.discard(job_id)
            self._lock.notify_all()
        if record is None or closed:
            # Shutdown path: leave the persisted status untouched so a
            # restarted daemon requeues (and resumes) the job.
            return
        if record.status == "cancelled":
            self._save_safe(record)
            return
        directory = self._dir(job_id)
        if (directory / "result.json").exists():
            result, problem = self._load_result(job_id)
            if result is not None:
                record.status = "done"
                record.finished = time.time()
                record.error = None
                record.n_cubes = len(result)
                try:
                    self.cache.put(record.spec.dataset, record.spec.algorithm, result)
                except OSError:
                    pass  # result still served from the job dir
                self._save_safe(record)
                with self._lock:
                    self._lock.notify_all()
                return
            # A result exists but fails verification: storage corrupted
            # it, not the miner — retry.
            self._handle_failure(record, problem, retryable=True)
            return
        error_path = directory / "error.json"
        message: "str | None" = None
        retryable = False
        if error_path.exists():
            try:
                doc = json.loads(self.io.read_text("jobs", error_path))
                message = doc.get("error") or "worker failed"
                retryable = bool(doc.get("retryable", False))
            except (OSError, ValueError):
                message = "worker failed (unreadable error record)"
                retryable = True
        if message is None:
            if watchdog_killed:
                message = (
                    f"worker killed by watchdog after {self.heartbeat_timeout}s "
                    "without a heartbeat"
                )
            else:
                message = (
                    f"worker exited with code {process.exitcode} "
                    "without a result"
                )
            retryable = True
        self._handle_failure(record, message, retryable=retryable)

    def _handle_failure(
        self, record: JobRecord, message: str, *, retryable: bool
    ) -> None:
        """Route one failed attempt: retry with backoff, quarantine, or fail.

        Only infrastructure failures spend retry budget; a
        deterministic mining error fails the job immediately because
        re-running a bug does not fix it.
        """
        record.error = message
        if retryable and record.retries < self.max_retries:
            record.retries += 1
            record.status = "queued"
            record.started = None
            delay = min(
                self.retry_backoff
                * (self.backoff_factor ** (record.retries - 1)),
                self.max_backoff,
            )
            self.chaos.jobs_retried += 1
            self._save_safe(record)
            with self._lock:
                self._not_before[record.id] = time.monotonic() + delay
                self._queue.append(record.id)
                self._lock.notify_all()
            return
        if retryable:
            self._quarantine(record, message)
            return
        record.status = "failed"
        record.finished = time.time()
        self._save_safe(record)
        with self._lock:
            self._lock.notify_all()

    def _quarantine(self, record: JobRecord, reason: str) -> None:
        """Move a poison job aside, with the evidence needed to replay it.

        Quarantine is the last-resort containment path: it bypasses the
        IO shim on purpose, so an injected fault can never keep a
        poison job in the queue.
        """
        source = self.root / record.id
        record.finished = time.time()
        record.error = reason
        self.chaos.jobs_quarantined += 1
        manifest = {
            "id": record.id,
            "reason": reason,
            "attempts": record.attempts,
            "retries": record.retries,
            "quarantined_at": record.finished,
            "last_error": reason,
            "fault_trace": self._fault_trace(record.id),
        }
        # Serialize with the terminal status but only flip the live
        # record after the move: pollers treat a terminal status as "the
        # manifest is readable", so the flip must come last.
        record_dict = record.to_dict()
        record_dict["status"] = "quarantined"
        try:
            source.mkdir(parents=True, exist_ok=True)
            tmp = source / ".quarantine.json.tmp"
            tmp.write_text(json.dumps(manifest, indent=2))
            os.replace(tmp, source / "quarantine.json")
            tmp = source / ".job.json.tmp"
            tmp.write_text(json.dumps(record_dict, indent=2))
            os.replace(tmp, source / "job.json")
            target_root = self.root / QUARANTINE_DIR
            target_root.mkdir(parents=True, exist_ok=True)
            target = target_root / record.id
            if not target.exists():
                shutil.move(str(source), str(target))
        except OSError:
            pass  # left in place, still terminal; fsck will flag the debris
        record.status = "quarantined"
        with self._lock:
            self._not_before.pop(record.id, None)
            self._lock.notify_all()

    def _fault_trace(self, job_id: str) -> dict:
        """The evidence bundle stamped into a quarantine manifest."""
        events_tail: list[dict] = []
        try:
            lines = (self._dir(job_id) / "events.jsonl").read_text().splitlines()
            for line in lines[-20:]:
                try:
                    events_tail.append(json.loads(line))
                except ValueError:
                    continue
        except OSError:
            pass
        return {
            "events_tail": events_tail,
            "io_faults": self.io.trace()[-20:],
        }

    def _watchdog_loop(self) -> None:
        """Kill running workers silent past ``heartbeat_timeout``."""
        assert self.heartbeat_timeout is not None
        interval = max(0.05, self.heartbeat_timeout / 4)
        while True:
            with self._lock:
                if self._closed:
                    return
                procs = dict(self._procs)
            now = time.time()
            for job_id, process in procs.items():
                record = self._records.get(job_id)
                if record is None or record.status != "running":
                    continue
                events_path = self._dir(job_id) / "events.jsonl"
                try:
                    last_sign_of_life = events_path.stat().st_mtime
                except OSError:
                    last_sign_of_life = record.started or now
                if now - last_sign_of_life > self.heartbeat_timeout:
                    with self._lock:
                        if self._closed:
                            return
                        self._watchdog_killed.add(job_id)
                    self.chaos.watchdog_kills += 1
                    if process.is_alive():
                        process.kill()
            time.sleep(interval)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        """The job's current record, with live progress filled in."""
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise ServiceError(404, "unknown-job", f"no job {job_id!r}")
        if record.status == "running":
            record.progress = self._live_progress(job_id)
        return record

    def _live_progress(self, job_id: str) -> dict:
        directory = self._dir(job_id)
        progress: dict = {}
        events_path = directory / "events.jsonl"
        if events_path.exists():
            last = None
            try:
                with open(events_path) as handle:
                    for line in handle:
                        line = line.strip()
                        if '"progress"' in line:
                            last = line
                if last:
                    payload = json.loads(last)
                    progress = {
                        "phase": payload.get("phase"),
                        "done": payload.get("done"),
                        "total": payload.get("total"),
                        "elapsed_seconds": payload.get("elapsed_seconds"),
                    }
            except (OSError, ValueError):
                progress = {}
        checkpoint = directory / "checkpoint.jsonl"
        if checkpoint.exists():
            status = journal_status(checkpoint)
            if status["exists"]:
                progress["chunks_completed"] = status["completed"]
                progress["n_chunks"] = status["n_chunks"]
        return progress

    def list_jobs(self) -> list[JobRecord]:
        """All known jobs, newest first."""
        with self._lock:
            records = list(self._records.values())
        return sorted(records, key=lambda r: r.created, reverse=True)

    def _load_result(self, job_id: str) -> "tuple[MiningResult | None, str]":
        """Read + verify a job's result; ``(None, why)`` on any problem."""
        directory = self._dir(job_id)
        path = directory / "result.json"
        try:
            data = self.io.read_bytes("jobs", path)
        except OSError as error:
            return None, f"result of job {job_id} is unreadable: {error}"
        sidecar = directory / "result.sha256"
        if sidecar.exists():
            try:
                expected = sidecar.read_text().strip()
            except OSError:
                expected = ""
            if expected and sha256_bytes(data) != expected:
                self.chaos.corruption_detected += 1
                return (
                    None,
                    f"result of job {job_id} failed checksum verification",
                )
        try:
            return MiningResult.from_payload(json.loads(data)), ""
        except (ValueError, KeyError, TypeError) as error:
            self.chaos.corruption_detected += 1
            return None, f"result of job {job_id} is not a valid payload: {error}"

    def result_payload(self, job_id: str) -> dict:
        """The stored result document of a finished job, verified.

        The payload's ``stats.extra["chaos"]`` is stamped with the
        manager's live :class:`~repro.obs.metrics.ChaosCounters`, so
        every served result says what the runtime survived to produce
        it.
        """
        record = self.get(job_id)
        if record.status != "done":
            raise ServiceError(
                409,
                "not-done",
                f"job {job_id} is {record.status}, not done",
            )
        directory = self._dir(job_id)
        try:
            data = self.io.read_bytes("jobs", directory / "result.json")
        except OSError:
            raise ServiceError(
                500, "result-unreadable", f"result of job {job_id} is unreadable"
            ) from None
        sidecar = directory / "result.sha256"
        if sidecar.exists():
            try:
                expected = sidecar.read_text().strip()
            except OSError:
                expected = ""
            if expected and sha256_bytes(data) != expected:
                self.chaos.corruption_detected += 1
                raise ServiceError(
                    500,
                    "result-corrupt",
                    f"result of job {job_id} failed checksum verification",
                )
        try:
            payload = json.loads(data)
        except ValueError:
            self.chaos.corruption_detected += 1
            raise ServiceError(
                500, "result-corrupt", f"result of job {job_id} is unparsable"
            ) from None
        stats = payload.setdefault("stats", {})
        if isinstance(stats, dict):
            stats.setdefault("extra", {})["chaos"] = self.chaos.as_dict()
        return payload

    def events(
        self,
        job_id: str,
        *,
        after: int = 0,
        wait: float | None = None,
        poll_interval: float = 0.05,
    ) -> tuple[list[dict], int]:
        """Journalled events past index ``after``; optional long-poll.

        Returns ``(events, next_index)``.  With ``wait``, blocks up to
        that many seconds for new lines (returning early the moment the
        job reaches a terminal state with nothing new to say).
        """
        self.get(job_id)  # 404 on unknown ids
        path = self._dir(job_id) / "events.jsonl"
        deadline = None if wait is None else time.monotonic() + wait
        while True:
            lines: list[str] = []
            if path.exists():
                with open(path) as handle:
                    lines = handle.read().splitlines()
            if after < len(lines):
                events = []
                for line in lines[after:]:
                    try:
                        events.append(json.loads(line))
                    except ValueError:
                        continue  # torn tail line: caller re-polls
                return events, len(lines)
            record = self.get(job_id)
            if deadline is None or record.terminal or time.monotonic() >= deadline:
                return [], len(lines)
            time.sleep(poll_interval)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued or running job (terminal jobs are left alone)."""
        record = self.get(job_id)
        with self._lock:
            if record.terminal:
                return record
            record.status = "cancelled"
            record.finished = time.time()
            if job_id in self._queue:
                self._queue.remove(job_id)
            self._not_before.pop(job_id, None)
            process = self._procs.get(job_id)
        if process is not None and process.is_alive():
            process.terminate()
        self._save_safe(record)
        return record

    def counts(self) -> dict:
        """Job totals by status, for ``/health``."""
        with self._lock:
            records = list(self._records.values())
        out = {
            status: 0
            for status in (
                "queued",
                "running",
                "done",
                "failed",
                "cancelled",
                "quarantined",
            )
        }
        for record in records:
            out[record.status] = out.get(record.status, 0) + 1
        out["jobs_run"] = self.jobs_run
        return out

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting jobs and wait for the queue to empty.

        Returns ``True`` once nothing is queued or running, ``False``
        if ``timeout`` elapsed first (remaining jobs keep their
        persisted state for the next daemon to resume).
        """
        with self._lock:
            self._draining = True
            self._lock.notify_all()
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                busy = bool(self._queue or self._procs)
            if not busy:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.05)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def queue_depth(self) -> int:
        """Jobs waiting for a worker (the admission-control quantity)."""
        with self._lock:
            return len(self._queue)

    def shutdown(self) -> None:
        """Stop dispatching and kill live workers.

        Running jobs keep their persisted ``running`` status, so a new
        manager over the same root requeues and resumes them — this is
        the daemon-restart story, not data loss.
        """
        with self._lock:
            self._closed = True
            procs = dict(self._procs)
            self._lock.notify_all()
        for process in procs.values():
            if process.is_alive():
                process.terminate()
        for process in procs.values():
            process.join(timeout=5)
        self._dispatcher.join(timeout=5)
        if self._watchdog is not None:
            self._watchdog.join(timeout=5)

    def kill_workers(self) -> int:
        """SIGKILL every live worker (crash simulation for tests).

        Flags the manager closed first, exactly as if the daemon died
        with its workers: the watcher threads must not finalize the
        killed jobs as ``failed``, because their persisted ``running``
        status is what restart recovery keys on.
        """
        with self._lock:
            self._closed = True
            procs = dict(self._procs)
            self._lock.notify_all()
        killed = 0
        for process in procs.values():
            if process.is_alive():
                process.kill()
                killed += 1
        for process in procs.values():
            process.join(timeout=5)
        return killed
