"""The job queue: mining runs in worker processes, resumable on disk.

Every job owns one directory under the manager's root::

    jobs/<id>/job.json          daemon-owned lifecycle record (JobRecord)
    jobs/<id>/task.json         worker manifest (spec + dataset path)
    jobs/<id>/events.jsonl      worker-appended typed events + progress
    jobs/<id>/checkpoint.jsonl  parallel chunk journal (when enabled)
    jobs/<id>/result.json       MiningResult payload, written atomically
    jobs/<id>/error.json        failure record, written atomically

The split keeps exactly one writer per file: the daemon owns
``job.json``, the worker owns everything it produces.  A daemon killed
at any instant therefore leaves a consistent tree — on restart,
:meth:`JobManager.recover` requeues every ``queued``/``running`` job,
and a requeued parallel job re-enters :func:`repro.mine` with
``resume=True`` on its journal, so chunks finished before the crash are
replayed, not re-mined (``stats.extra["recovery"]["chunks_resumed"]``
counts them).

Workers stream :mod:`repro.obs` events as JSON lines
(:func:`repro.obs.events.event_to_dict` plus ``progress`` snapshots);
the per-node ``node``/``prune`` firehose is filtered out so the journal
stays proportional to coarse work units, not tree size.  Jobs answered
by the threshold-lattice cache never reach a worker at all: they are
born ``done`` with ``cache_hit`` provenance.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import threading
import uuid
from collections import deque
from dataclasses import replace
from pathlib import Path

from ..core.dataset import Dataset3D
from ..core.result import MiningResult
from ..obs import event_to_dict
from ..options import options_from_dict
from ..parallel.checkpoint import journal_status
from .cache import ThresholdLatticeCache
from .registry import DatasetRegistry
from .schemas import JobRecord, JobSpec, ServiceError

__all__ = ["JobManager", "run_job_worker"]

#: Event kinds too hot to journal (one line per tree node).
_FIREHOSE_KINDS = frozenset({"node", "prune"})

#: Algorithms whose jobs can checkpoint/resume chunk-by-chunk.
_PARALLEL_ALGORITHMS = frozenset({"parallel-cubeminer", "parallel-rsm"})


# ----------------------------------------------------------------------
# Worker process entry point
# ----------------------------------------------------------------------
def run_job_worker(job_dir: str) -> int:
    """Execute one job inside a worker process.

    Reads the ``task.json`` manifest, mines, streams events, and writes
    ``result.json`` or ``error.json``.  Module-level so it stays
    importable under the ``spawn`` start method.
    """
    directory = Path(job_dir)
    manifest = json.loads((directory / "task.json").read_text())
    spec = JobSpec.from_dict(manifest["spec"])
    events_path = directory / "events.jsonl"

    with open(events_path, "a") as events:

        def emit(payload: dict) -> None:
            payload.setdefault("t", time.time())
            events.write(json.dumps(payload) + "\n")
            events.flush()

        def on_event(event) -> None:
            if event.kind in _FIREHOSE_KINDS:
                return
            emit(event_to_dict(event))

        def on_progress(update) -> None:
            emit(
                {
                    "kind": "progress",
                    "phase": update.phase,
                    "done": update.done,
                    "total": update.total,
                    "elapsed_seconds": update.elapsed_seconds,
                }
            )

        try:
            from ..api import mine
            from ..obs import ProgressController

            result = None
            if manifest.get("maintain") is not None:
                result = _run_maintenance(manifest, spec, emit)
            if result is None:
                mmap_manifest = manifest.get("mmap")
                if mmap_manifest is not None:
                    dataset = Dataset3D.open_mmap(
                        mmap_manifest["path"],
                        tuple(mmap_manifest["shape"]),
                        kernel="numpy",
                    )
                else:
                    dataset = Dataset3D.load_npz(manifest["dataset_path"])
                options = options_from_dict(spec.algorithm, spec.options)
                checkpoint_path = manifest.get("checkpoint_path")
                if checkpoint_path is not None:
                    options = replace(
                        options,
                        checkpoint_path=checkpoint_path,
                        resume=Path(checkpoint_path).exists(),
                    )
                result = mine(
                    dataset,
                    spec.thresholds,
                    algorithm=spec.algorithm,
                    options=options,
                    on_event=on_event,
                    progress=ProgressController(
                        on_progress=on_progress, min_interval=0.2
                    ),
                )
        except Exception as error:  # noqa: BLE001 - one failure channel
            tmp = directory / ".error.json.tmp"
            tmp.write_text(
                json.dumps({"error": f"{type(error).__name__}: {error}"})
            )
            os.replace(tmp, directory / "error.json")
            emit({"kind": "job-failed", "error": f"{type(error).__name__}: {error}"})
            return 1
        tmp = directory / ".result.json.tmp"
        tmp.write_text(json.dumps(result.to_payload()))
        os.replace(tmp, directory / "result.json")
        emit({"kind": "job-done", "n_cubes": len(result)})
    return 0


def _run_maintenance(manifest: dict, spec: JobSpec, emit) -> "MiningResult | None":
    """Patch the base dataset's cached result through the delta batch.

    Returns ``None`` — telling the caller to mine fresh — whenever the
    incremental path cannot be trusted: base dataset or base result
    missing/unreadable, thresholds drifted, or the maintained dataset's
    fingerprint disagreeing with the one the job was submitted for.
    """
    from ..io import dataset_fingerprint
    from ..stream.delta import deltas_from_payload
    from ..stream.maintain import maintain

    maintenance = manifest["maintain"]
    base_dataset_path = maintenance.get("base_dataset_path")
    base_result_path = maintenance.get("base_result_path")
    if not base_dataset_path or not base_result_path:
        emit({"kind": "maintain-fallback", "reason": "base unavailable"})
        return None
    try:
        base_dataset = Dataset3D.load_npz(base_dataset_path)
        base_result = MiningResult.from_payload(
            json.loads(Path(base_result_path).read_text())
        )
        deltas = deltas_from_payload(maintenance.get("deltas") or [])
    except (OSError, ValueError) as error:
        emit({"kind": "maintain-fallback", "reason": str(error)})
        return None
    if base_result.thresholds != spec.thresholds:
        emit({"kind": "maintain-fallback", "reason": "threshold mismatch"})
        return None
    new_dataset, result = maintain(
        base_dataset, base_result, deltas, spec.thresholds
    )
    fingerprint = dataset_fingerprint(new_dataset)
    if fingerprint != spec.dataset:
        # The delta batch does not lead from the recorded base to the
        # dataset this job targets — a stale log, not a mining bug.
        emit(
            {
                "kind": "maintain-fallback",
                "reason": f"maintained fingerprint {fingerprint[:12]} "
                f"!= target {spec.dataset[:12]}",
            }
        )
        return None
    stream_stats = result.stats.extra.get("stream", {})
    emit({"kind": "maintain-done", **stream_stats})
    return result


# ----------------------------------------------------------------------
# The manager
# ----------------------------------------------------------------------
class JobManager:
    """FIFO job queue over worker processes, persistent across restarts.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per job.
    registry, cache:
        The shared dataset registry and threshold-lattice result cache.
    max_workers:
        Concurrent worker processes (further jobs wait queued).
    start_method:
        ``multiprocessing`` start method for workers; ``spawn`` (the
        default) keeps children clear of the daemon's server threads.
    mmap_store:
        Optional :class:`~repro.stream.store.MmapDatasetStore`.  When
        set, plain mining jobs hand workers a packed memory-mapped grid
        (materialized into the store on first use) instead of an NPZ to
        load whole — the daemon's out-of-core mode.
    """

    def __init__(
        self,
        root: str | Path,
        registry: DatasetRegistry,
        cache: ThresholdLatticeCache,
        *,
        max_workers: int = 2,
        start_method: str = "spawn",
        mmap_store=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.registry = registry
        self.cache = cache
        self.mmap_store = mmap_store
        self.max_workers = int(max_workers)
        self._mp = multiprocessing.get_context(start_method)
        self._lock = threading.Condition()
        self._records: dict[str, JobRecord] = {}
        self._queue: deque[str] = deque()
        self._procs: dict[str, multiprocessing.process.BaseProcess] = {}
        self._closed = False
        self.jobs_run = 0
        self.recover()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-job-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _dir(self, job_id: str) -> Path:
        return self.root / job_id

    def _save(self, record: JobRecord) -> None:
        directory = self._dir(record.id)
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / ".job.json.tmp"
        tmp.write_text(json.dumps(record.to_dict(), indent=2))
        os.replace(tmp, directory / "job.json")

    def recover(self) -> int:
        """Reload persisted jobs; requeue interrupted ones.

        Called at construction: ``done``/``failed``/``cancelled`` jobs
        load as history, while ``queued`` and ``running`` jobs (the
        daemon died under them) go back on the queue in creation order.
        Returns the number of requeued jobs.
        """
        requeued = []
        for job_json in sorted(self.root.glob("*/job.json")):
            try:
                record = JobRecord.from_dict(json.loads(job_json.read_text()))
            except (ValueError, KeyError):
                continue
            if record.id != job_json.parent.name:
                continue
            self._records[record.id] = record
            if record.status in ("queued", "running"):
                result_path = job_json.parent / "result.json"
                if record.status == "running" and result_path.exists():
                    # The worker finished right as the old daemon died:
                    # finalize instead of re-running.
                    try:
                        result = MiningResult.from_payload(
                            json.loads(result_path.read_text())
                        )
                    except (ValueError, OSError):
                        result = None
                    if result is not None:
                        record.status = "done"
                        record.finished = time.time()
                        record.n_cubes = len(result)
                        self.cache.put(
                            record.spec.dataset, record.spec.algorithm, result
                        )
                        self._save(record)
                        continue
                record.status = "queued"
                self._save(record)
                requeued.append(record)
        requeued.sort(key=lambda r: r.created)
        for record in requeued:
            self._queue.append(record.id)
        return len(requeued)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        """Queue one job — or answer it instantly from the cache."""
        with self._lock:
            if self._closed:
                raise ServiceError(503, "shutting-down", "daemon is shutting down")
        try:
            spec.validate()
        except ValueError as error:
            raise ServiceError(400, "bad-spec", str(error)) from None
        if spec.dataset not in self.registry:
            raise ServiceError(
                404,
                "unknown-dataset",
                f"dataset {spec.dataset!r} is not registered",
            )
        record = JobRecord(
            id=uuid.uuid4().hex[:12],
            spec=spec,
            status="queued",
            created=time.time(),
        )
        if spec.use_cache:
            answer = self.cache.lookup(spec.dataset, spec.algorithm, spec.thresholds)
            if answer is not None:
                now = time.time()
                record.status = "done"
                record.started = now
                record.finished = now
                record.cache_hit = True
                record.filtered_from = answer.filtered_from
                record.n_cubes = len(answer.result)
                directory = self._dir(record.id)
                directory.mkdir(parents=True, exist_ok=True)
                tmp = directory / ".result.json.tmp"
                tmp.write_text(json.dumps(answer.result.to_payload()))
                os.replace(tmp, directory / "result.json")
                with open(directory / "events.jsonl", "a") as events:
                    events.write(
                        json.dumps(
                            {
                                "kind": "cache-hit",
                                "t": now,
                                "exact": answer.exact,
                                "filtered_from": answer.filtered_from.to_dict(),
                                "cubes_filtered": answer.cubes_filtered,
                            }
                        )
                        + "\n"
                    )
                self._save(record)
                with self._lock:
                    self._records[record.id] = record
                return record
        self._save(record)
        with self._lock:
            self._records[record.id] = record
            self._queue.append(record.id)
            self._lock.notify_all()
        return record

    # ------------------------------------------------------------------
    # Dispatch & supervision
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._closed and (
                    not self._queue or len(self._procs) >= self.max_workers
                ):
                    self._lock.wait(timeout=0.5)
                if self._closed:
                    return
                job_id = self._queue.popleft()
                record = self._records[job_id]
            self._start(record)

    def _start(self, record: JobRecord) -> None:
        directory = self._dir(record.id)
        spec = record.spec
        manifest = {
            "spec": spec.to_dict(),
            "dataset_path": str(self.registry.path(spec.dataset)),
            "checkpoint_path": (
                str(directory / "checkpoint.jsonl")
                if spec.checkpoint and spec.algorithm in _PARALLEL_ALGORITHMS
                else None
            ),
            "maintain": self._maintain_manifest(spec),
            "mmap": self._mmap_manifest(spec),
        }
        tmp = directory / ".task.json.tmp"
        tmp.write_text(json.dumps(manifest, indent=2))
        os.replace(tmp, directory / "task.json")
        record.status = "running"
        record.started = time.time()
        record.attempts += 1
        self._save(record)
        process = self._mp.Process(
            target=run_job_worker, args=(str(directory),), daemon=False
        )
        process.start()
        with self._lock:
            self._procs[record.id] = process
            self.jobs_run += 1
        watcher = threading.Thread(
            target=self._watch, args=(record.id, process), daemon=True
        )
        watcher.start()

    def _maintain_manifest(self, spec: JobSpec) -> dict | None:
        """Resolve a spec's ``maintain`` block into worker-local paths."""
        if spec.maintain is None:
            return None
        base = str(spec.maintain.get("base", ""))
        base_dataset_path = (
            str(self.registry.path(base)) if base in self.registry else None
        )
        base_result_path = self.cache.entry_path(
            base, spec.algorithm, spec.thresholds
        )
        return {
            "base": base,
            "deltas": list(spec.maintain.get("deltas") or []),
            "base_dataset_path": base_dataset_path,
            "base_result_path": (
                str(base_result_path) if base_result_path is not None else None
            ),
        }

    def _mmap_manifest(self, spec: JobSpec) -> dict | None:
        """Materialize the job's dataset into the mmap store, if enabled.

        Maintenance jobs patch from the base result and never scan the
        full tensor, so they keep the NPZ path.
        """
        if self.mmap_store is None or spec.maintain is not None:
            return None
        if spec.dataset not in self.mmap_store:
            self.mmap_store.put(self.registry.load(spec.dataset))
        meta = self.mmap_store.meta(spec.dataset)
        return {
            "path": str(self.mmap_store.path(spec.dataset)),
            "shape": list(meta["shape"]),
        }

    def _watch(self, job_id: str, process) -> None:
        process.join()
        with self._lock:
            self._procs.pop(job_id, None)
            record = self._records.get(job_id)
            closed = self._closed
            self._lock.notify_all()
        if record is None or closed:
            # Shutdown path: leave the persisted status untouched so a
            # restarted daemon requeues (and resumes) the job.
            return
        if record.status == "cancelled":
            self._save(record)
            return
        directory = self._dir(job_id)
        if (directory / "result.json").exists():
            record.status = "done"
            record.finished = time.time()
            record.error = None
            try:
                result = MiningResult.from_payload(
                    json.loads((directory / "result.json").read_text())
                )
                record.n_cubes = len(result)
                self.cache.put(record.spec.dataset, record.spec.algorithm, result)
            except (ValueError, OSError):
                record.status = "failed"
                record.error = "worker wrote an unreadable result payload"
        else:
            record.status = "failed"
            record.finished = time.time()
            error_path = directory / "error.json"
            if error_path.exists():
                try:
                    record.error = json.loads(error_path.read_text()).get("error")
                except ValueError:
                    record.error = "worker failed (unreadable error record)"
            else:
                record.error = (
                    f"worker exited with code {process.exitcode} "
                    "without a result"
                )
        self._save(record)
        with self._lock:
            self._lock.notify_all()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        """The job's current record, with live progress filled in."""
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise ServiceError(404, "unknown-job", f"no job {job_id!r}")
        if record.status == "running":
            record.progress = self._live_progress(job_id)
        return record

    def _live_progress(self, job_id: str) -> dict:
        directory = self._dir(job_id)
        progress: dict = {}
        events_path = directory / "events.jsonl"
        if events_path.exists():
            last = None
            try:
                with open(events_path) as handle:
                    for line in handle:
                        line = line.strip()
                        if '"progress"' in line:
                            last = line
                if last:
                    payload = json.loads(last)
                    progress = {
                        "phase": payload.get("phase"),
                        "done": payload.get("done"),
                        "total": payload.get("total"),
                        "elapsed_seconds": payload.get("elapsed_seconds"),
                    }
            except (OSError, ValueError):
                progress = {}
        checkpoint = directory / "checkpoint.jsonl"
        if checkpoint.exists():
            status = journal_status(checkpoint)
            if status["exists"]:
                progress["chunks_completed"] = status["completed"]
                progress["n_chunks"] = status["n_chunks"]
        return progress

    def list_jobs(self) -> list[JobRecord]:
        """All known jobs, newest first."""
        with self._lock:
            records = list(self._records.values())
        return sorted(records, key=lambda r: r.created, reverse=True)

    def result_payload(self, job_id: str) -> dict:
        """The stored result document of a finished job."""
        record = self.get(job_id)
        if record.status != "done":
            raise ServiceError(
                409,
                "not-done",
                f"job {job_id} is {record.status}, not done",
            )
        path = self._dir(job_id) / "result.json"
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            raise ServiceError(
                500, "result-unreadable", f"result of job {job_id} is unreadable"
            ) from None

    def events(
        self,
        job_id: str,
        *,
        after: int = 0,
        wait: float | None = None,
        poll_interval: float = 0.05,
    ) -> tuple[list[dict], int]:
        """Journalled events past index ``after``; optional long-poll.

        Returns ``(events, next_index)``.  With ``wait``, blocks up to
        that many seconds for new lines (returning early the moment the
        job reaches a terminal state with nothing new to say).
        """
        self.get(job_id)  # 404 on unknown ids
        path = self._dir(job_id) / "events.jsonl"
        deadline = None if wait is None else time.monotonic() + wait
        while True:
            lines: list[str] = []
            if path.exists():
                with open(path) as handle:
                    lines = handle.read().splitlines()
            if after < len(lines):
                events = []
                for line in lines[after:]:
                    try:
                        events.append(json.loads(line))
                    except ValueError:
                        continue  # torn tail line: caller re-polls
                return events, len(lines)
            record = self.get(job_id)
            if deadline is None or record.terminal or time.monotonic() >= deadline:
                return [], len(lines)
            time.sleep(poll_interval)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued or running job (terminal jobs are left alone)."""
        record = self.get(job_id)
        with self._lock:
            if record.terminal:
                return record
            record.status = "cancelled"
            record.finished = time.time()
            if job_id in self._queue:
                self._queue.remove(job_id)
            process = self._procs.get(job_id)
        if process is not None and process.is_alive():
            process.terminate()
        self._save(record)
        return record

    def counts(self) -> dict:
        """Job totals by status, for ``/health``."""
        with self._lock:
            records = list(self._records.values())
        out = {status: 0 for status in ("queued", "running", "done", "failed", "cancelled")}
        for record in records:
            out[record.status] = out.get(record.status, 0) + 1
        out["jobs_run"] = self.jobs_run
        return out

    def shutdown(self) -> None:
        """Stop dispatching and kill live workers.

        Running jobs keep their persisted ``running`` status, so a new
        manager over the same root requeues and resumes them — this is
        the daemon-restart story, not data loss.
        """
        with self._lock:
            self._closed = True
            procs = dict(self._procs)
            self._lock.notify_all()
        for process in procs.values():
            if process.is_alive():
                process.terminate()
        for process in procs.values():
            process.join(timeout=5)
        self._dispatcher.join(timeout=5)

    def kill_workers(self) -> int:
        """SIGKILL every live worker (crash simulation for tests).

        Flags the manager closed first, exactly as if the daemon died
        with its workers: the watcher threads must not finalize the
        killed jobs as ``failed``, because their persisted ``running``
        status is what restart recovery keys on.
        """
        with self._lock:
            self._closed = True
            procs = dict(self._procs)
            self._lock.notify_all()
        killed = 0
        for process in procs.values():
            if process.is_alive():
                process.kill()
                killed += 1
        for process in procs.values():
            process.join(timeout=5)
        return killed
