"""The HTTP/JSON core of the mining daemon.

:class:`ServiceApp` is a zero-dependency WSGI-style router: a pure
``handle(method, path, query, body) -> Response`` function over the
registry, job manager and result cache, with no socket code in sight —
tests drive it in-process, and the thin :func:`serve` adapter mounts
the very same object on a stdlib :class:`ThreadingHTTPServer` (one
thread per request, which is what lets ``/events`` long-poll without
blocking the daemon).

Endpoints (all JSON; see ``docs/service.md`` for full schemas)::

    GET  /health                     liveness + job/cache counters
    GET  /v1/datasets                registry listing
    POST /v1/datasets                register (sparse JSON payload)
    GET  /v1/datasets/{fp}           one registry entry
    POST /v1/jobs                    submit a JobSpec (may answer from cache)
    GET  /v1/jobs                    all jobs, newest first
    GET  /v1/jobs/{id}               job state + live progress
    GET  /v1/jobs/{id}/result        result document of a done job
    GET  /v1/jobs/{id}/events        event journal; ?after=N&wait=S long-polls
    POST /v1/jobs/{id}/cancel        cancel a queued/running job
    POST /v1/query                   cache-only query (404 "cache-miss" on miss)
    POST /v1/datasets/{fp}/updates   apply a delta batch (registers the
                                     successor dataset, journals the
                                     deltas, queues maintenance jobs
                                     that patch the cache forward)

Two bare probes ride alongside (no ``/v1`` prefix, trivial bodies)::

    GET  /healthz                    liveness: 200 while the process serves
    GET  /readyz                     readiness: 503 while draining or at
                                     admission-control capacity

Errors are ``{"error": {"code", "message"}}`` with a meaningful HTTP
status; a :class:`~repro.service.schemas.ServiceError` raised anywhere
in a handler renders that way automatically (backpressure rejections
also carry a ``Retry-After`` header).  Storage failing under a handler
degrades, typed, instead of crashing the daemon: a
:class:`~repro.chaos.io.StoreCorruptionError` renders as HTTP 500
``store-corrupt``, any other ``OSError`` as HTTP 503
``storage-unavailable``.

All disk and transport traffic routes through one injectable
:class:`~repro.chaos.io.IOShim` shared by the registry, cache, mmap
store and job manager; the chaos battery swaps in a
:class:`~repro.chaos.io.ChaosShim` to prove those degradations hold.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable
from urllib.parse import parse_qsl, urlsplit

from .. import __version__
from ..chaos.io import IOShim, StoreCorruptionError
from ..core.constraints import Thresholds
from ..io import DatasetFormatError, dataset_from_payload
from ..obs.metrics import ChaosCounters
from .cache import ThresholdLatticeCache
from .jobs import JobManager
from .registry import DatasetRegistry
from .schemas import SCHEMA_VERSION, JobSpec, ServiceError

__all__ = ["Request", "Response", "ServiceApp", "serve"]


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request, transport-free."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body as a JSON object (400 on anything else)."""
        if not self.body:
            raise ServiceError(400, "empty-body", "request needs a JSON body")
        try:
            payload = json.loads(self.body)
        except ValueError:
            raise ServiceError(400, "bad-json", "request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise ServiceError(400, "bad-json", "request body must be a JSON object")
        return payload


@dataclass(frozen=True)
class Response:
    """One JSON response: status code, payload document, extra headers."""

    status: int
    payload: dict
    headers: dict[str, str] = field(default_factory=dict)

    def body(self) -> bytes:
        return (json.dumps(self.payload) + "\n").encode()


class ServiceApp:
    """The daemon's request router over one data directory.

    ``data_dir`` gains three subtrees: ``datasets/`` (the registry),
    ``cache/`` (the threshold lattice) and ``jobs/`` (job state).  All
    three persist across restarts — constructing a new app over an old
    directory recovers every dataset, cache entry and unfinished job.
    """

    def __init__(
        self,
        data_dir: str | Path,
        *,
        max_workers: int = 2,
        start_method: str = "spawn",
        mmap_datasets: bool = False,
        max_queued: "int | None" = None,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        heartbeat_timeout: "float | None" = None,
        io: "IOShim | None" = None,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.io = io if io is not None else IOShim()
        self.chaos = ChaosCounters()
        self.registry = DatasetRegistry(
            self.data_dir / "datasets", io=self.io, chaos=self.chaos
        )
        self.cache = ThresholdLatticeCache(
            self.data_dir / "cache", io=self.io, chaos=self.chaos
        )
        self.mmap_store = None
        if mmap_datasets:
            from ..stream.store import MmapDatasetStore

            self.mmap_store = MmapDatasetStore(
                self.data_dir / "mmap", io=self.io, chaos=self.chaos
            )
        self.jobs = JobManager(
            self.data_dir / "jobs",
            self.registry,
            self.cache,
            max_workers=max_workers,
            start_method=start_method,
            mmap_store=self.mmap_store,
            max_queued=max_queued,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            heartbeat_timeout=heartbeat_timeout,
            io=self.io,
            chaos=self.chaos,
        )
        self.started = time.time()
        self._routes: list[tuple[str, re.Pattern, Callable]] = [
            ("GET", re.compile(r"^/health$"), self._health),
            ("GET", re.compile(r"^/healthz$"), self._healthz),
            ("GET", re.compile(r"^/readyz$"), self._readyz),
            ("GET", re.compile(r"^/v1/datasets$"), self._list_datasets),
            ("POST", re.compile(r"^/v1/datasets$"), self._register_dataset),
            (
                "GET",
                re.compile(r"^/v1/datasets/(?P<fp>[0-9a-f]{64})$"),
                self._get_dataset,
            ),
            (
                "POST",
                re.compile(r"^/v1/datasets/(?P<fp>[0-9a-f]{64})/updates$"),
                self._post_updates,
            ),
            ("POST", re.compile(r"^/v1/jobs$"), self._submit_job),
            ("GET", re.compile(r"^/v1/jobs$"), self._list_jobs),
            ("GET", re.compile(r"^/v1/jobs/(?P<job>[0-9a-f]+)$"), self._get_job),
            (
                "GET",
                re.compile(r"^/v1/jobs/(?P<job>[0-9a-f]+)/result$"),
                self._job_result,
            ),
            (
                "GET",
                re.compile(r"^/v1/jobs/(?P<job>[0-9a-f]+)/events$"),
                self._job_events,
            ),
            (
                "POST",
                re.compile(r"^/v1/jobs/(?P<job>[0-9a-f]+)/cancel$"),
                self._cancel_job,
            ),
            ("POST", re.compile(r"^/v1/query$"), self._query),
        ]

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Route one request; every failure becomes a JSON error.

        The one exception: a :class:`ConnectionResetError` (injected at
        the ``http`` chaos site or raised by the socket) propagates so
        the transport adapter drops the connection — the client sees
        the reset it would see in production and retries.
        """
        try:
            self.io.check("http", "handle", request.path)
            for method, pattern, handler in self._routes:
                match = pattern.match(request.path)
                if match is None:
                    continue
                if request.method != method:
                    continue
                return handler(request, **match.groupdict())
            raise ServiceError(
                404, "not-found", f"no route for {request.method} {request.path}"
            )
        except ServiceError as error:
            headers = {}
            if error.retry_after is not None:
                headers["Retry-After"] = str(error.retry_after)
            return Response(error.status, error.to_payload(), headers)
        except DatasetFormatError as error:
            return Response(
                400, {"error": {"code": "bad-dataset", "message": str(error)}}
            )
        except ConnectionResetError:
            raise
        except StoreCorruptionError as error:
            self.chaos.corruption_detected += 1
            return Response(
                500, {"error": {"code": "store-corrupt", "message": str(error)}}
            )
        except OSError as error:
            return Response(
                503,
                {"error": {"code": "storage-unavailable", "message": str(error)}},
            )
        except (ValueError, KeyError, TypeError) as error:
            return Response(
                400, {"error": {"code": "bad-request", "message": str(error)}}
            )

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting jobs and wait for in-flight work to finish."""
        return self.jobs.drain(timeout)

    def close(self) -> None:
        """Stop the job manager (workers killed, resumable state kept)."""
        self.jobs.shutdown()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _health(self, request: Request) -> Response:
        return Response(
            200,
            {
                "schema": SCHEMA_VERSION,
                "status": "ok",
                "version": __version__,
                "uptime_seconds": time.time() - self.started,
                "datasets": len(self.registry),
                "jobs": self.jobs.counts(),
                "cache": self.cache.stats(),
                "chaos": self.chaos.as_dict(),
                "draining": self.jobs.draining,
            },
        )

    def _healthz(self, request: Request) -> Response:
        """Liveness: the process is up and routing requests."""
        return Response(200, {"status": "ok"})

    def _readyz(self, request: Request) -> Response:
        """Readiness: would a job submitted right now be admitted?"""
        if self.jobs.draining:
            return Response(503, {"status": "draining"})
        if (
            self.jobs.max_queued is not None
            and self.jobs.queue_depth() >= self.jobs.max_queued
        ):
            return Response(503, {"status": "over-capacity"})
        return Response(200, {"status": "ready"})

    def _list_datasets(self, request: Request) -> Response:
        return Response(
            200,
            {
                "schema": SCHEMA_VERSION,
                "datasets": [entry.to_dict() for entry in self.registry.list()],
            },
        )

    def _register_dataset(self, request: Request) -> Response:
        dataset = dataset_from_payload(request.json())
        entry = self.registry.register(dataset)
        return Response(201, {"schema": SCHEMA_VERSION, **entry.to_dict()})

    def _get_dataset(self, request: Request, fp: str) -> Response:
        try:
            entry = self.registry.get(fp)
        except KeyError:
            raise ServiceError(
                404, "unknown-dataset", f"dataset {fp!r} is not registered"
            ) from None
        return Response(200, {"schema": SCHEMA_VERSION, **entry.to_dict()})

    def _post_updates(self, request: Request, fp: str) -> Response:
        """Evolve a registered dataset through a delta batch.

        The successor dataset is registered under its own fingerprint,
        the batch is journalled in the per-base :class:`DeltaLog`, and
        one incremental-maintenance job is queued for every cached
        result of the base — so the threshold lattice follows the data
        instead of being invalidated by it.
        """
        from ..stream.delta import (
            DeltaLog,
            apply_deltas,
            deltas_from_payload,
            deltas_to_payload,
        )

        if fp not in self.registry:
            raise ServiceError(
                404, "unknown-dataset", f"dataset {fp!r} is not registered"
            )
        payload = request.json()
        raw_deltas = payload.get("deltas")
        if not isinstance(raw_deltas, list) or not raw_deltas:
            raise ServiceError(
                400, "bad-deltas", "request needs a non-empty 'deltas' list"
            )
        try:
            deltas = deltas_from_payload(raw_deltas)
            base = self.registry.load(fp)
            application = apply_deltas(base, deltas)
        except ValueError as error:
            raise ServiceError(400, "bad-deltas", str(error)) from None
        entry = self.registry.register(application.dataset)
        log = self._delta_log_for(fp, base.shape)
        log.append(deltas, fingerprint=entry.fingerprint)
        jobs = []
        for algorithm, thresholds, _path in self.cache.entries(fp):
            spec = JobSpec(
                dataset=entry.fingerprint,
                thresholds=thresholds,
                algorithm=algorithm,
                use_cache=False,
                checkpoint=False,
                maintain={"base": fp, "deltas": deltas_to_payload(deltas)},
            )
            jobs.append(self.jobs.submit(spec).to_dict())
        return Response(
            202,
            {
                "schema": SCHEMA_VERSION,
                "base": fp,
                "fingerprint": entry.fingerprint,
                "shape": list(entry.shape),
                "deltas_applied": application.n_deltas,
                "dirty_heights": application.dirty_heights.bit_count(),
                "jobs": jobs,
            },
        )

    def _delta_log_for(self, fp: str, shape: tuple[int, int, int]):
        """Pick the journal a batch applying to ``fp`` belongs to.

        Each log file is a linear chain: batch *k* applies to the
        tensor batch *k-1* produced.  A batch targeting ``fp``
        therefore extends the log whose tip is ``fp`` when one exists;
        otherwise it starts a new chain rooted at ``fp`` in a fresh
        file, so divergent branches from the same base never share a
        journal (which would break :meth:`DeltaLog.replay`).
        """
        from ..stream.delta import DeltaLog

        root = self.data_dir / "deltas"
        root.mkdir(parents=True, exist_ok=True)
        for path in sorted(root.glob("*.jsonl")):
            try:
                log = DeltaLog.open(path, io=self.io)
            except (ValueError, OSError):
                continue
            if log.tip_fingerprint() == fp:
                return log
        stem, counter = fp, 1
        while (root / f"{stem}.jsonl").exists():
            counter += 1
            stem = f"{fp}.{counter}"
        return DeltaLog.open(
            root / f"{stem}.jsonl", fingerprint=fp, shape=shape, io=self.io
        )

    def _submit_job(self, request: Request) -> Response:
        spec = JobSpec.from_dict(request.json())
        record = self.jobs.submit(spec)
        return Response(
            202 if not record.terminal else 200,
            record.to_dict(),
        )

    def _list_jobs(self, request: Request) -> Response:
        return Response(
            200,
            {
                "schema": SCHEMA_VERSION,
                "jobs": [record.to_dict() for record in self.jobs.list_jobs()],
            },
        )

    def _get_job(self, request: Request, job: str) -> Response:
        return Response(200, self.jobs.get(job).to_dict())

    def _job_result(self, request: Request, job: str) -> Response:
        record = self.jobs.get(job)
        payload = self.jobs.result_payload(job)
        return Response(
            200,
            {
                "schema": SCHEMA_VERSION,
                "job": record.to_dict(),
                "cache_hit": record.cache_hit,
                "filtered_from": (
                    record.filtered_from.to_dict()
                    if record.filtered_from is not None
                    else None
                ),
                "result": payload,
            },
        )

    def _job_events(self, request: Request, job: str) -> Response:
        try:
            after = int(request.query.get("after", "0"))
        except ValueError:
            raise ServiceError(400, "bad-query", "'after' must be an integer") from None
        wait: float | None = None
        if "wait" in request.query:
            try:
                wait = min(float(request.query["wait"]), 60.0)
            except ValueError:
                raise ServiceError(
                    400, "bad-query", "'wait' must be a number of seconds"
                ) from None
        events, next_index = self.jobs.events(job, after=after, wait=wait)
        return Response(
            200,
            {"schema": SCHEMA_VERSION, "events": events, "next": next_index},
        )

    def _cancel_job(self, request: Request, job: str) -> Response:
        return Response(200, self.jobs.cancel(job).to_dict())

    def _query(self, request: Request) -> Response:
        payload = request.json()
        fp = payload.get("dataset")
        if not isinstance(fp, str) or not fp:
            raise ServiceError(400, "bad-query", "query needs a 'dataset' fingerprint")
        if fp not in self.registry:
            raise ServiceError(
                404, "unknown-dataset", f"dataset {fp!r} is not registered"
            )
        algorithm = str(payload.get("algorithm", "cubeminer"))
        thresholds = Thresholds.from_dict(payload.get("thresholds") or {})
        answer = self.cache.lookup(fp, algorithm, thresholds)
        if answer is None:
            raise ServiceError(
                404,
                "cache-miss",
                "no cached result dominates these thresholds; submit a job",
            )
        return Response(
            200,
            {
                "schema": SCHEMA_VERSION,
                "cache_hit": True,
                "exact": answer.exact,
                "filtered_from": answer.filtered_from.to_dict(),
                "cubes_filtered": answer.cubes_filtered,
                "result": answer.result.to_payload(),
            },
        )


# ----------------------------------------------------------------------
# The thin HTTP adapter
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    server: "_Server"

    protocol_version = "HTTP/1.1"

    def _dispatch(self) -> None:
        parts = urlsplit(self.path)
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        request = Request(
            method=self.command,
            path=parts.path,
            query=dict(parse_qsl(parts.query)),
            body=body,
        )
        try:
            response = self.server.app.handle(request)
        except ConnectionResetError:
            # Injected (or real) transport fault: drop the connection
            # without a response, exactly what the client's retry path
            # is built to absorb.
            self.close_connection = True
            return
        data = response.body()
        self.send_response(response.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    do_GET = _dispatch
    do_POST = _dispatch

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, app: ServiceApp, *, verbose: bool = False) -> None:
        super().__init__(address, _Handler)
        self.app = app
        self.verbose = verbose


def serve(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Bind the app to a socket and return the (not yet running) server.

    ``port=0`` picks an ephemeral port (read it back from
    ``server.server_address``).  The caller owns the loop::

        server = serve(app, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        ...
        server.shutdown(); app.close()
    """
    return _Server((host, port), app, verbose=verbose)
