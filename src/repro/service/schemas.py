"""Typed request/response schemas shared by the daemon and the client.

Everything crossing the wire is a versioned JSON document built from
(and parsed back into) the dataclasses here, so the server and the
typed client cannot drift apart: :class:`JobSpec` is what ``POST
/v1/jobs`` accepts, :class:`JobRecord` is what every job endpoint
returns, and mining results travel as
:meth:`repro.core.result.MiningResult.to_payload` documents — a service
response and a library object are the same shape.

:class:`ServiceError` is the one error channel: handlers raise it with
an HTTP status and a stable machine-readable ``code``; the app renders
it as ``{"error": {"code": ..., "message": ...}}`` and the client
re-raises it as :class:`~repro.service.client.ServiceClientError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..api import get_algorithm
from ..core.constraints import Thresholds
from ..options import options_from_dict

__all__ = [
    "SCHEMA_VERSION",
    "JOB_STATUSES",
    "ServiceError",
    "JobSpec",
    "JobRecord",
]

#: Version tag of every service JSON document.
SCHEMA_VERSION = 1

#: Lifecycle states of a job, in order of progression.  ``queued`` and
#: ``running`` jobs survive a daemon restart (they are requeued and —
#: for checkpointed parallel jobs — resume from their journal);
#: ``done`` / ``failed`` / ``cancelled`` / ``quarantined`` are terminal.
#: ``quarantined`` marks a poison job that exhausted its retry budget:
#: its directory moves under ``jobs/quarantined/`` with a manifest and
#: fault trace, and it is never requeued again.
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled", "quarantined")


class ServiceError(Exception):
    """A request-level failure with an HTTP status and a stable code.

    ``retry_after`` (seconds) rides along on backpressure rejections
    (HTTP 429) and renders as a ``Retry-After`` response header.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message
        self.retry_after = retry_after

    def to_payload(self) -> dict:
        detail: dict = {"code": self.code, "message": self.message}
        if self.retry_after is not None:
            detail["retry_after"] = self.retry_after
        return {"error": detail}


@dataclass(frozen=True)
class JobSpec:
    """What a client asks for: one mining run over a registered dataset.

    ``options`` stays a plain JSON dict here (validated against the
    algorithm's typed options class at submit time via
    :func:`repro.options.options_from_dict`); ``use_cache`` lets a
    caller force a fresh mine past the threshold-lattice cache, and
    ``checkpoint`` controls whether parallel jobs journal their chunks
    for crash resume (on by default).

    ``maintain`` turns the job into an *incremental maintenance* run:
    ``{"base": <fingerprint>, "deltas": [...]}`` asks the worker to
    patch the base dataset's cached result through
    :func:`repro.stream.maintain` instead of mining ``dataset`` from
    scratch (falling back to a fresh mine when the base result is
    unavailable).  The field is omitted from the wire form when unset,
    so pre-existing clients and persisted jobs parse unchanged.
    """

    dataset: str
    thresholds: Thresholds
    algorithm: str = "cubeminer"
    options: dict = field(default_factory=dict)
    use_cache: bool = True
    checkpoint: bool = True
    maintain: dict | None = None
    #: Per-request wall-clock budget (seconds).  The worker passes it to
    #: ``mine(deadline=...)``; a run cut short fails with a typed
    #: ``deadline-exceeded`` error (never retried — a deadline is a
    #: property of the request, not an infrastructure fault).  Omitted
    #: from the wire form when unset.
    deadline_seconds: float | None = None

    def validate(self) -> None:
        """Fail loudly on an unknown algorithm or malformed options."""
        get_algorithm(self.algorithm)  # raises ValueError on unknown names
        options_from_dict(self.algorithm, self.options)
        if self.deadline_seconds is not None and not self.deadline_seconds > 0:
            raise ValueError(
                f"'deadline_seconds' must be positive, got {self.deadline_seconds!r}"
            )
        if self.maintain is not None:
            if not isinstance(self.maintain, dict):
                raise ValueError("'maintain' must be a JSON object")
            base = self.maintain.get("base")
            if not isinstance(base, str) or not base:
                raise ValueError("'maintain' needs a 'base' fingerprint string")
            from ..stream.delta import deltas_from_payload

            deltas_from_payload(self.maintain.get("deltas") or [])

    def to_dict(self) -> dict:
        payload = {
            "schema": SCHEMA_VERSION,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "thresholds": self.thresholds.to_dict(),
            "options": dict(self.options),
            "use_cache": self.use_cache,
            "checkpoint": self.checkpoint,
        }
        if self.maintain is not None:
            payload["maintain"] = dict(self.maintain)
        if self.deadline_seconds is not None:
            payload["deadline_seconds"] = self.deadline_seconds
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ValueError(f"job spec must be a JSON object, got {payload!r}")
        dataset = payload.get("dataset")
        if not isinstance(dataset, str) or not dataset:
            raise ValueError("job spec needs a 'dataset' fingerprint string")
        raw_thresholds = payload.get("thresholds")
        if raw_thresholds is None:
            raise ValueError("job spec needs 'thresholds'")
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            raise ValueError(f"'options' must be a JSON object, got {options!r}")
        maintain = payload.get("maintain")
        if maintain is not None and not isinstance(maintain, dict):
            raise ValueError(f"'maintain' must be a JSON object, got {maintain!r}")
        deadline = payload.get("deadline_seconds")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                raise ValueError(
                    f"'deadline_seconds' must be a number, got {deadline!r}"
                ) from None
        return cls(
            dataset=dataset,
            thresholds=Thresholds.from_dict(raw_thresholds),
            algorithm=str(payload.get("algorithm", "cubeminer")),
            options=dict(options),
            use_cache=bool(payload.get("use_cache", True)),
            checkpoint=bool(payload.get("checkpoint", True)),
            maintain=dict(maintain) if maintain is not None else None,
            deadline_seconds=deadline,
        )


@dataclass
class JobRecord:
    """One job's full lifecycle state, as persisted and as served.

    ``progress`` mirrors the latest
    :class:`~repro.obs.progress.ProgressUpdate` streamed by the worker
    (``{"phase", "done", "total", "elapsed_seconds"}``) plus — for
    checkpointed parallel jobs — the journal's completed-chunk count.
    ``cache_hit`` / ``filtered_from`` carry the provenance of a job
    answered by the threshold-lattice cache instead of a fresh mine.
    ``attempts`` counts daemon-side (re)starts: a job requeued after a
    daemon restart shows ``attempts > 1``.  ``retries`` counts
    *failure-driven* requeues only (crash/infrastructure errors spent
    against the manager's retry budget) — a restart requeue is free,
    a retry is not, and a job whose retries exceed the budget is
    quarantined.
    """

    id: str
    spec: JobSpec
    status: str = "queued"
    created: float = 0.0
    started: float | None = None
    finished: float | None = None
    error: str | None = None
    cache_hit: bool = False
    filtered_from: Thresholds | None = None
    n_cubes: int | None = None
    attempts: int = 0
    retries: int = 0
    progress: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "id": self.id,
            "spec": self.spec.to_dict(),
            "status": self.status,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "cache_hit": self.cache_hit,
            "filtered_from": (
                self.filtered_from.to_dict()
                if self.filtered_from is not None
                else None
            ),
            "n_cubes": self.n_cubes,
            "attempts": self.attempts,
            "retries": self.retries,
            "progress": dict(self.progress),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        status = payload.get("status")
        if status not in JOB_STATUSES:
            raise ValueError(f"unknown job status {status!r}")
        raw_filtered = payload.get("filtered_from")
        return cls(
            id=str(payload["id"]),
            spec=JobSpec.from_dict(payload["spec"]),
            status=status,
            created=float(payload.get("created", 0.0)),
            started=payload.get("started"),
            finished=payload.get("finished"),
            error=payload.get("error"),
            cache_hit=bool(payload.get("cache_hit", False)),
            filtered_from=(
                Thresholds.from_dict(raw_filtered)
                if raw_filtered is not None
                else None
            ),
            n_cubes=payload.get("n_cubes"),
            attempts=int(payload.get("attempts", 0)),
            retries=int(payload.get("retries", 0)),
            progress=dict(payload.get("progress") or {}),
        )

    @property
    def terminal(self) -> bool:
        """True once the job can no longer change state."""
        return self.status in ("done", "failed", "cancelled", "quarantined")
