"""The dataset registry: upload once, mine forever.

Datasets are stored on disk under their sha256 *content* fingerprint
(:func:`repro.io.dataset_fingerprint`): ``<root>/<fp>.npz`` holds the
tensor (the library's native NPZ form, so workers load it with
:meth:`Dataset3D.load_npz`) and ``<root>/<fp>.json`` a small metadata
record.  Registering the same cell content twice — even under different
labels — lands on the same entry, which is exactly what makes the
threshold-lattice result cache shareable across uploaders.

Writes are atomic (tmp file + ``os.replace`` through the
:class:`~repro.chaos.io.IOShim`, rolled back on failure), so a daemon
killed mid-upload never leaves a half-written dataset behind; an
``.npz`` without its ``.json`` twin (or vice versa) is ignored on scan.
Reads verify: :meth:`DatasetRegistry.load` re-fingerprints the loaded
tensor against its content address and raises a typed
:class:`~repro.chaos.io.StoreCorruptionError` on mismatch — corrupt
bytes never reach a miner.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..chaos.io import IOShim, StoreCorruptionError
from ..core.dataset import Dataset3D
from ..io import dataset_fingerprint
from ..obs.metrics import ChaosCounters

__all__ = ["DatasetEntry", "DatasetRegistry"]


@dataclass(frozen=True)
class DatasetEntry:
    """Metadata of one registered dataset."""

    fingerprint: str
    shape: tuple[int, int, int]
    n_ones: int
    created: float

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "shape": list(self.shape),
            "n_ones": self.n_ones,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DatasetEntry":
        return cls(
            fingerprint=str(payload["fingerprint"]),
            shape=tuple(int(s) for s in payload["shape"]),  # type: ignore[arg-type]
            n_ones=int(payload["n_ones"]),
            created=float(payload.get("created", 0.0)),
        )


class DatasetRegistry:
    """Content-addressed persistent dataset store."""

    def __init__(
        self,
        root: str | Path,
        *,
        io: "IOShim | None" = None,
        chaos: "ChaosCounters | None" = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.io = io if io is not None else IOShim()
        self.chaos = chaos if chaos is not None else ChaosCounters()
        self._lock = threading.Lock()
        self._entries: dict[str, DatasetEntry] = {}
        self._scan()

    def _scan(self) -> None:
        for meta_path in sorted(self.root.glob("*.json")):
            fp = meta_path.stem
            if not (self.root / f"{fp}.npz").exists():
                continue  # half-registered leftovers are invisible
            try:
                entry = DatasetEntry.from_dict(json.loads(meta_path.read_text()))
            except (ValueError, KeyError):
                continue
            if entry.fingerprint == fp:
                self._entries[fp] = entry

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def register(self, dataset: Dataset3D) -> DatasetEntry:
        """Store a dataset; a re-upload of known content is a no-op."""
        fp = dataset_fingerprint(dataset)
        with self._lock:
            existing = self._entries.get(fp)
            if existing is not None:
                return existing
            entry = DatasetEntry(
                fingerprint=fp,
                shape=dataset.shape,
                n_ones=dataset.count_ones(),
                created=time.time(),
            )
            # The tmp name must keep the .npz suffix: numpy appends one
            # to anything else, and the rename source would not exist.
            npz_tmp = self.root / f".{fp}.tmp.npz"
            try:
                dataset.save_npz(npz_tmp)
            except OSError:
                try:
                    os.unlink(npz_tmp)
                except OSError:
                    pass
                raise
            self.io.atomic_finalize("registry", npz_tmp, self.root / f"{fp}.npz")
            self.io.atomic_write_text(
                "registry",
                self.root / f"{fp}.json",
                json.dumps(entry.to_dict(), indent=2),
            )
            self._entries[fp] = entry
            return entry

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> DatasetEntry:
        """Metadata for one fingerprint (KeyError if unregistered)."""
        with self._lock:
            return self._entries[fingerprint]

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def path(self, fingerprint: str) -> Path:
        """Filesystem path of the stored NPZ (KeyError if unregistered)."""
        self.get(fingerprint)
        return self.root / f"{fingerprint}.npz"

    def load(self, fingerprint: str, *, verify: bool = True) -> Dataset3D:
        """Materialize a registered dataset, verified against its address.

        ``verify=True`` (the default) re-fingerprints the loaded tensor;
        a mismatch — disk rot, a truncated write that survived, anything
        — raises :class:`~repro.chaos.io.StoreCorruptionError` instead
        of letting corrupt cells masquerade as the registered dataset.
        """
        path = self.path(fingerprint)
        self.io.check("registry", "read", str(path))
        try:
            dataset = Dataset3D.load_npz(path)
        except OSError:
            raise
        except Exception as error:  # numpy/zipfile raise untyped decode errors
            self.chaos.corruption_detected += 1
            raise StoreCorruptionError(
                "registry", path, f"unreadable npz: {error}"
            ) from error
        if verify:
            actual = dataset_fingerprint(dataset)
            if actual != fingerprint:
                self.chaos.corruption_detected += 1
                raise StoreCorruptionError(
                    "registry",
                    path,
                    f"fingerprint {actual[:12]} != expected {fingerprint[:12]}",
                )
        return dataset

    def list(self) -> list[DatasetEntry]:
        """All entries, newest first."""
        with self._lock:
            return sorted(
                self._entries.values(), key=lambda e: e.created, reverse=True
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
