"""The threshold-lattice result cache.

Threshold monotonicity (Definition 3.3: all four FCC constraints are
anti-monotone) gives the cache its shape: the FCC set mined at loose
thresholds ``t`` contains, as a subset, the FCC set of every
element-wise tighter ``t'`` — closedness is a property of the dataset
alone, so tightening thresholds only *filters* the result, never
changes a cube.  Completed results are therefore stored per
``(dataset_fingerprint, algorithm)`` under their exact thresholds, and
a query is answered whenever any stored entry *dominates* it
(:meth:`Thresholds.dominates`): the stored cube list is filtered with
:meth:`Cube.satisfies` and served with ``cache_hit`` / ``filtered_from``
provenance in ``MiningStats.extra["cache"]``.

Entries persist under ``<root>/<fp>/<algorithm>/<h>-<r>-<c>-<v>.json``
as checksummed envelopes — ``{"schema": 1, "sha256": <digest of the
serialized payload>, "payload": <MiningResult.to_payload()>}`` — written
atomically through the :class:`~repro.chaos.io.IOShim`, so a restarted
daemon reopens its whole cache by scanning the tree.  Every read
verifies the digest; an entry that fails (bit rot, torn write) degrades
to a **miss** and is evicted, never served — the caller simply mines
fresh and re-stores.  Plain pre-envelope payload files from older
daemons still parse (unverified).  Hit / miss / filter counters are
kept for ``/health`` and the service benchmark.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from ..chaos.io import IOShim, StoreCorruptionError, sha256_bytes
from ..core.constraints import Thresholds
from ..core.result import MiningResult, MiningStats
from ..obs.metrics import ChaosCounters

__all__ = ["CacheAnswer", "ThresholdLatticeCache", "load_entry_payload"]


def load_entry_payload(path: "str | Path") -> dict:
    """Parse one stored cache file into a ``MiningResult`` payload dict.

    Understands both the checksummed envelope and the legacy plain
    payload; a digest mismatch raises
    :class:`~repro.chaos.io.StoreCorruptionError`.  Shared with the job
    worker, which reads base results for incremental maintenance
    straight off disk.
    """
    path = Path(path)
    doc = json.loads(path.read_text())
    if isinstance(doc, dict) and "sha256" in doc and "payload" in doc:
        body = json.dumps(doc["payload"])
        if sha256_bytes(body.encode()) != doc["sha256"]:
            raise StoreCorruptionError("cache", path, "checksum mismatch")
        return doc["payload"]
    return doc


@dataclass
class CacheAnswer:
    """One cache-served result with its provenance."""

    #: The filtered result, thresholded at the *query* thresholds.
    result: MiningResult
    #: Thresholds the source entry was actually mined at.
    filtered_from: Thresholds
    #: True when the query matched a stored entry exactly (no filtering).
    exact: bool
    #: Cubes dropped by the threshold filter.
    cubes_filtered: int


def _key_name(thresholds: Thresholds) -> str:
    return (
        f"{thresholds.min_h}-{thresholds.min_r}-"
        f"{thresholds.min_c}-{thresholds.min_volume}"
    )


class ThresholdLatticeCache:
    """Persistent result cache ordered by threshold dominance."""

    def __init__(
        self,
        root: str | Path,
        *,
        io: "IOShim | None" = None,
        chaos: "ChaosCounters | None" = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.io = io if io is not None else IOShim()
        self.chaos = chaos if chaos is not None else ChaosCounters()
        self._lock = threading.Lock()
        #: (fingerprint, algorithm) -> {thresholds: result-file path}
        self._index: dict[tuple[str, str], dict[Thresholds, Path]] = {}
        self.hits = 0
        self.misses = 0
        self.filtered_served = 0
        self._scan()

    def _scan(self) -> None:
        for path in sorted(self.root.glob("*/*/*.json")):
            algorithm_dir = path.parent
            fp = algorithm_dir.parent.name
            algorithm = algorithm_dir.name
            try:
                h, r, c, v = (int(part) for part in path.stem.split("-"))
                thresholds = Thresholds(h, r, c, min_volume=v)
            except (ValueError, TypeError):
                continue
            self._index.setdefault((fp, algorithm), {})[thresholds] = path

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(
        self,
        fingerprint: str,
        algorithm: str,
        result: MiningResult,
    ) -> None:
        """Store one completed result under its exact thresholds.

        Results without thresholds (never produced by the service) are
        ignored rather than stored unkeyed.
        """
        if result.thresholds is None:
            return
        entry_dir = self.root / fingerprint / algorithm
        entry_dir.mkdir(parents=True, exist_ok=True)
        path = entry_dir / f"{_key_name(result.thresholds)}.json"
        # The digest covers the payload's exact serialization; splicing
        # the envelope around the already-serialized body guarantees the
        # hashed bytes are the stored bytes.
        body = json.dumps(result.to_payload())
        doc = (
            '{"schema": 1, "sha256": "'
            + sha256_bytes(body.encode())
            + '", "payload": '
            + body
            + "}"
        )
        self.io.atomic_write_text("cache", path, doc)
        with self._lock:
            self._index.setdefault((fingerprint, algorithm), {})[
                result.thresholds
            ] = path

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def lookup(
        self,
        fingerprint: str,
        algorithm: str,
        thresholds: Thresholds,
    ) -> CacheAnswer | None:
        """Answer a query from the lattice, or ``None`` on a miss.

        Among all stored entries dominating the query, the tightest one
        (largest threshold sum) is filtered — it holds the fewest
        extraneous cubes.  An exact-threshold entry short-circuits with
        no filtering at all.
        """
        with self._lock:
            entries = dict(self._index.get((fingerprint, algorithm), {}))
        best: tuple[Thresholds, Path] | None = None
        for stored, path in entries.items():
            if stored == thresholds:
                best = (stored, path)
                break
            if stored.dominates(thresholds):
                if best is None or self._tightness(stored) > self._tightness(
                    best[0]
                ):
                    best = (stored, path)
        if best is None:
            with self._lock:
                self.misses += 1
            return None
        stored_thresholds, path = best
        try:
            doc = json.loads(self.io.read_text("cache", path))
            payload = doc
            if isinstance(doc, dict) and "sha256" in doc and "payload" in doc:
                body = json.dumps(doc["payload"])
                if sha256_bytes(body.encode()) != doc["sha256"]:
                    raise StoreCorruptionError("cache", path, "checksum mismatch")
                payload = doc["payload"]
            source = MiningResult.from_payload(payload)
        except (OSError, ValueError, StoreCorruptionError) as error:
            # A vanished or corrupt entry degrades to a miss, never an
            # error: the caller simply mines fresh (and re-stores).
            # Corruption additionally evicts the poisoned file so a
            # restart cannot resurrect it.
            with self._lock:
                self._index.get((fingerprint, algorithm), {}).pop(
                    stored_thresholds, None
                )
                self.misses += 1
            if not isinstance(error, OSError):
                self.chaos.corruption_detected += 1
                self.chaos.corruption_evicted += 1
                try:
                    os.unlink(path)
                except OSError:
                    pass
            return None
        exact = stored_thresholds == thresholds
        kept = (
            source.cubes
            if exact
            else [cube for cube in source.cubes if cube.satisfies(thresholds)]
        )
        cubes_filtered = len(source.cubes) - len(kept)
        extra = {
            "cache": {
                "hit": True,
                "exact": exact,
                "filtered_from": stored_thresholds.to_dict(),
                "cubes_scanned": len(source.cubes),
                "cubes_kept": len(kept),
                "cubes_filtered": cubes_filtered,
            }
        }
        result = MiningResult(
            cubes=kept,
            algorithm=source.algorithm,
            thresholds=thresholds,
            dataset_shape=source.dataset_shape,
            elapsed_seconds=0.0,
            stats=MiningStats(metrics=source.stats.metrics, extra=extra),
        )
        with self._lock:
            self.hits += 1
            if not exact:
                self.filtered_served += 1
        return CacheAnswer(
            result=result,
            filtered_from=stored_thresholds,
            exact=exact,
            cubes_filtered=cubes_filtered,
        )

    def entries(self, fingerprint: str) -> list[tuple[str, Thresholds, Path]]:
        """Every stored ``(algorithm, thresholds, path)`` of one dataset.

        This is the maintenance fan-out set: when a dataset evolves
        through ``POST /v1/datasets/{fp}/updates``, each entry here
        spawns one incremental-maintenance job whose output lands under
        the successor fingerprint — the lattice is *patched forward*,
        never dropped.
        """
        with self._lock:
            out = [
                (algorithm, thresholds, path)
                for (fp, algorithm), stored in self._index.items()
                if fp == fingerprint
                for thresholds, path in stored.items()
            ]
        return sorted(out, key=lambda item: (item[0], _key_name(item[1])))

    def entry_path(
        self,
        fingerprint: str,
        algorithm: str,
        thresholds: Thresholds,
    ) -> Path | None:
        """The stored file of one *exact* entry, or ``None``."""
        with self._lock:
            return self._index.get((fingerprint, algorithm), {}).get(thresholds)

    @staticmethod
    def _tightness(thresholds: Thresholds) -> tuple[int, int]:
        return (
            thresholds.min_h
            + thresholds.min_r
            + thresholds.min_c,
            thresholds.min_volume,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot for ``/health`` and benchmarks."""
        with self._lock:
            entries = sum(len(v) for v in self._index.values())
            return {
                "entries": entries,
                "hits": self.hits,
                "misses": self.misses,
                "filtered_served": self.filtered_served,
            }

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._index.values())
