"""The threshold-lattice result cache.

Threshold monotonicity (Definition 3.3: all four FCC constraints are
anti-monotone) gives the cache its shape: the FCC set mined at loose
thresholds ``t`` contains, as a subset, the FCC set of every
element-wise tighter ``t'`` — closedness is a property of the dataset
alone, so tightening thresholds only *filters* the result, never
changes a cube.  Completed results are therefore stored per
``(dataset_fingerprint, algorithm)`` under their exact thresholds, and
a query is answered whenever any stored entry *dominates* it
(:meth:`Thresholds.dominates`): the stored cube list is filtered with
:meth:`Cube.satisfies` and served with ``cache_hit`` / ``filtered_from``
provenance in ``MiningStats.extra["cache"]``.

Entries persist as :meth:`MiningResult.to_payload` JSON files under
``<root>/<fp>/<algorithm>/<h>-<r>-<c>-<v>.json`` (atomic writes), so a
restarted daemon reopens its whole cache by scanning the tree.  Hit /
miss / filter counters are kept for ``/health`` and the service
benchmark.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from ..core.constraints import Thresholds
from ..core.result import MiningResult, MiningStats

__all__ = ["CacheAnswer", "ThresholdLatticeCache"]


@dataclass
class CacheAnswer:
    """One cache-served result with its provenance."""

    #: The filtered result, thresholded at the *query* thresholds.
    result: MiningResult
    #: Thresholds the source entry was actually mined at.
    filtered_from: Thresholds
    #: True when the query matched a stored entry exactly (no filtering).
    exact: bool
    #: Cubes dropped by the threshold filter.
    cubes_filtered: int


def _key_name(thresholds: Thresholds) -> str:
    return (
        f"{thresholds.min_h}-{thresholds.min_r}-"
        f"{thresholds.min_c}-{thresholds.min_volume}"
    )


class ThresholdLatticeCache:
    """Persistent result cache ordered by threshold dominance."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        #: (fingerprint, algorithm) -> {thresholds: result-file path}
        self._index: dict[tuple[str, str], dict[Thresholds, Path]] = {}
        self.hits = 0
        self.misses = 0
        self.filtered_served = 0
        self._scan()

    def _scan(self) -> None:
        for path in sorted(self.root.glob("*/*/*.json")):
            algorithm_dir = path.parent
            fp = algorithm_dir.parent.name
            algorithm = algorithm_dir.name
            try:
                h, r, c, v = (int(part) for part in path.stem.split("-"))
                thresholds = Thresholds(h, r, c, min_volume=v)
            except (ValueError, TypeError):
                continue
            self._index.setdefault((fp, algorithm), {})[thresholds] = path

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(
        self,
        fingerprint: str,
        algorithm: str,
        result: MiningResult,
    ) -> None:
        """Store one completed result under its exact thresholds.

        Results without thresholds (never produced by the service) are
        ignored rather than stored unkeyed.
        """
        if result.thresholds is None:
            return
        entry_dir = self.root / fingerprint / algorithm
        entry_dir.mkdir(parents=True, exist_ok=True)
        path = entry_dir / f"{_key_name(result.thresholds)}.json"
        tmp = entry_dir / f".{path.name}.tmp"
        tmp.write_text(json.dumps(result.to_payload()))
        os.replace(tmp, path)
        with self._lock:
            self._index.setdefault((fingerprint, algorithm), {})[
                result.thresholds
            ] = path

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def lookup(
        self,
        fingerprint: str,
        algorithm: str,
        thresholds: Thresholds,
    ) -> CacheAnswer | None:
        """Answer a query from the lattice, or ``None`` on a miss.

        Among all stored entries dominating the query, the tightest one
        (largest threshold sum) is filtered — it holds the fewest
        extraneous cubes.  An exact-threshold entry short-circuits with
        no filtering at all.
        """
        with self._lock:
            entries = dict(self._index.get((fingerprint, algorithm), {}))
        best: tuple[Thresholds, Path] | None = None
        for stored, path in entries.items():
            if stored == thresholds:
                best = (stored, path)
                break
            if stored.dominates(thresholds):
                if best is None or self._tightness(stored) > self._tightness(
                    best[0]
                ):
                    best = (stored, path)
        if best is None:
            with self._lock:
                self.misses += 1
            return None
        stored_thresholds, path = best
        try:
            source = MiningResult.from_payload(json.loads(path.read_text()))
        except (OSError, ValueError):
            # A vanished or corrupt entry degrades to a miss, never an
            # error: the caller simply mines fresh (and re-stores).
            with self._lock:
                self._index.get((fingerprint, algorithm), {}).pop(
                    stored_thresholds, None
                )
                self.misses += 1
            return None
        exact = stored_thresholds == thresholds
        kept = (
            source.cubes
            if exact
            else [cube for cube in source.cubes if cube.satisfies(thresholds)]
        )
        cubes_filtered = len(source.cubes) - len(kept)
        extra = {
            "cache": {
                "hit": True,
                "exact": exact,
                "filtered_from": stored_thresholds.to_dict(),
                "cubes_scanned": len(source.cubes),
                "cubes_kept": len(kept),
                "cubes_filtered": cubes_filtered,
            }
        }
        result = MiningResult(
            cubes=kept,
            algorithm=source.algorithm,
            thresholds=thresholds,
            dataset_shape=source.dataset_shape,
            elapsed_seconds=0.0,
            stats=MiningStats(metrics=source.stats.metrics, extra=extra),
        )
        with self._lock:
            self.hits += 1
            if not exact:
                self.filtered_served += 1
        return CacheAnswer(
            result=result,
            filtered_from=stored_thresholds,
            exact=exact,
            cubes_filtered=cubes_filtered,
        )

    def entries(self, fingerprint: str) -> list[tuple[str, Thresholds, Path]]:
        """Every stored ``(algorithm, thresholds, path)`` of one dataset.

        This is the maintenance fan-out set: when a dataset evolves
        through ``POST /v1/datasets/{fp}/updates``, each entry here
        spawns one incremental-maintenance job whose output lands under
        the successor fingerprint — the lattice is *patched forward*,
        never dropped.
        """
        with self._lock:
            out = [
                (algorithm, thresholds, path)
                for (fp, algorithm), stored in self._index.items()
                if fp == fingerprint
                for thresholds, path in stored.items()
            ]
        return sorted(out, key=lambda item: (item[0], _key_name(item[1])))

    def entry_path(
        self,
        fingerprint: str,
        algorithm: str,
        thresholds: Thresholds,
    ) -> Path | None:
        """The stored file of one *exact* entry, or ``None``."""
        with self._lock:
            return self._index.get((fingerprint, algorithm), {}).get(thresholds)

    @staticmethod
    def _tightness(thresholds: Thresholds) -> tuple[int, int]:
        return (
            thresholds.min_h
            + thresholds.min_r
            + thresholds.min_c,
            thresholds.min_volume,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot for ``/health`` and benchmarks."""
        with self._lock:
            entries = sum(len(v) for v in self._index.values())
            return {
                "entries": entries,
                "hits": self.hits,
                "misses": self.misses,
                "filtered_served": self.filtered_served,
            }

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._index.values())
