"""Mining-as-a-service: a persistent FCC mining daemon.

The service layer turns the library into a long-running system serving
repeat mining traffic:

* :mod:`repro.service.registry` — datasets uploaded once, keyed by the
  sha256 *content* fingerprint (:func:`repro.io.dataset_fingerprint`).
* :mod:`repro.service.jobs` — a job queue running :func:`repro.mine`
  in worker processes, streaming typed events/progress as JSON lines
  and resuming interrupted parallel jobs from their checkpoint journal.
* :mod:`repro.service.cache` — the threshold-lattice result cache:
  threshold monotonicity means a result mined at loose thresholds
  answers every element-wise tighter query by filtering, so repeat
  queries become lookups instead of mines.
* :mod:`repro.service.app` — the zero-dependency HTTP/JSON core
  (:class:`ServiceApp`, a pure ``Request -> Response`` router) plus the
  thin :class:`ThreadingHTTPServer` adapter.
* :mod:`repro.service.client` — the typed client
  (:class:`ServiceClient`), speaking the same schemas the server does.

Quickstart::

    # terminal 1
    $ repro-fcc serve --data-dir /var/lib/repro --port 8765

    # terminal 2 (or any python process)
    from repro.service import ServiceClient
    client = ServiceClient("http://127.0.0.1:8765")
    fp = client.register_dataset(dataset)
    job = client.submit(fp, Thresholds(2, 2, 2))
    outcome = client.wait(job.id)
    served = client.result(job.id)           # ServiceResult
    served.result                            # a plain MiningResult

The runtime is hardened against its own storage and workers:
admission control (HTTP 429 + ``Retry-After``), per-job deadlines,
retry budgets with poison-job quarantine, worker heartbeats with a
stuck-job watchdog, verify-on-read checksums on every store, and
graceful drain — see ``docs/robustness.md`` for the full fault model
and :mod:`repro.chaos` for the fault-injection harness that tests it.

See ``docs/service.md`` for endpoints, JSON schemas, cache semantics
and the resume story.
"""

from .app import Request, Response, ServiceApp, serve
from .cache import CacheAnswer, ThresholdLatticeCache, load_entry_payload
from .client import ServiceClient, ServiceClientError, ServiceResult
from .jobs import JobManager
from .registry import DatasetEntry, DatasetRegistry
from .schemas import (
    JOB_STATUSES,
    SCHEMA_VERSION,
    JobRecord,
    JobSpec,
    ServiceError,
)

__all__ = [
    "ServiceApp",
    "Request",
    "Response",
    "serve",
    "ServiceClient",
    "ServiceClientError",
    "ServiceResult",
    "JobManager",
    "DatasetRegistry",
    "DatasetEntry",
    "ThresholdLatticeCache",
    "CacheAnswer",
    "load_entry_payload",
    "JobSpec",
    "JobRecord",
    "JOB_STATUSES",
    "SCHEMA_VERSION",
    "ServiceError",
]
