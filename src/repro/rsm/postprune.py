"""Phase 3 of RSM: post-pruning of height-unclosed patterns (Lemma 1).

Combining a 2D FCP with its representative slice's contributing heights
gives a 3D frequent pattern that is already closed in rows and columns
(the 2D miner guarantees it — the RS row/column supports equal the 3D
ones).  It may still be unclosed in the height set: the same 2D pattern
can be contained in further slices outside the subset.  Lemma 1 prunes
exactly those, with double early termination: one zero cell dismisses a
candidate slice, one fully-covering slice dismisses the pattern.
"""

from __future__ import annotations

from ..core.bitset import full_mask
from ..core.dataset import Dataset3D
from ..obs.metrics import MiningMetrics

__all__ = ["height_closed_in", "PostPruneStats"]


def height_closed_in(
    dataset: Dataset3D,
    heights: int,
    rows: int,
    columns: int,
    *,
    metrics: MiningMetrics | None = None,
) -> bool:
    """True when no height outside ``heights`` covers ``rows x columns``.

    This is Lemma 1's retention condition — the same predicate as
    CubeMiner's Hcheck (Lemma 4): one kernel support sweep over the
    heights outside the subset must come back empty.  When ``metrics``
    is given, the sweep is tallied into ``kernel_ops``.
    """
    if metrics is not None:
        metrics.kernel_ops += 1
    outside = full_mask(dataset.n_heights) & ~heights
    return (
        dataset.kernel.grid_supporting_heights(
            dataset.ones_grid(), rows, columns, candidates=outside
        )
        == 0
    )


class PostPruneStats:
    """Counters for the post-pruning phase.

    A thin recorder over :class:`~repro.obs.metrics.MiningMetrics`: the
    counts land in the library-wide ``postprune_checked`` /
    ``postprune_discards`` counters (pass a shared instance to
    aggregate into a run's metrics), while the historical
    ``patterns_checked`` / ``patterns_pruned`` attribute names keep
    working.
    """

    __slots__ = ("metrics",)

    def __init__(self, metrics: MiningMetrics | None = None) -> None:
        self.metrics = metrics if metrics is not None else MiningMetrics()

    @property
    def patterns_checked(self) -> int:
        return self.metrics.postprune_checked

    @property
    def patterns_pruned(self) -> int:
        return self.metrics.postprune_discards

    def record(self, kept: bool) -> None:
        self.metrics.postprune_checked += 1
        if not kept:
            self.metrics.postprune_discards += 1
