"""Phase 3 of RSM: post-pruning of height-unclosed patterns (Lemma 1).

Combining a 2D FCP with its representative slice's contributing heights
gives a 3D frequent pattern that is already closed in rows and columns
(the 2D miner guarantees it — the RS row/column supports equal the 3D
ones).  It may still be unclosed in the height set: the same 2D pattern
can be contained in further slices outside the subset.  Lemma 1 prunes
exactly those, with double early termination: one zero cell dismisses a
candidate slice, one fully-covering slice dismisses the pattern.
"""

from __future__ import annotations

from ..core.bitset import full_mask
from ..core.dataset import Dataset3D

__all__ = ["height_closed_in", "PostPruneStats"]


def height_closed_in(dataset: Dataset3D, heights: int, rows: int, columns: int) -> bool:
    """True when no height outside ``heights`` covers ``rows x columns``.

    This is Lemma 1's retention condition — the same predicate as
    CubeMiner's Hcheck (Lemma 4): one kernel support sweep over the
    heights outside the subset must come back empty.
    """
    outside = full_mask(dataset.n_heights) & ~heights
    return (
        dataset.kernel.grid_supporting_heights(
            dataset.ones_grid(), rows, columns, candidates=outside
        )
        == 0
    )


class PostPruneStats:
    """Counters for the post-pruning phase (exposed in result stats)."""

    __slots__ = ("patterns_checked", "patterns_pruned")

    def __init__(self) -> None:
        self.patterns_checked = 0
        self.patterns_pruned = 0

    def record(self, kept: bool) -> None:
        self.patterns_checked += 1
        if not kept:
            self.patterns_pruned += 1
