"""Incremental FCC maintenance under height-slice appends.

Microarray series and sales logs grow along one axis (a new time
point, a new month).  Re-mining from scratch discards everything known
about the old tensor; this module updates an existing result instead.

Let ``O`` be the old tensor with FCC set ``F`` (at thresholds ``T``)
and let ``s`` be a new height slice.  In the extended tensor
``O' = O + s``:

1. **Old cubes survive, possibly extended.**  For ``(H', R', C') ∈ F``:
   if ``s`` covers ``R' x C'`` (all ones there), the cube becomes
   ``(H' + s, R', C')`` — the height support grew by exactly ``s``,
   while row/column supports cannot grow (more heights = more
   constraints) and cannot shrink (supports over ``H'`` alone are
   unchanged and ``s`` covers).  Otherwise the cube is unchanged and
   still closed (no support set moved).
2. **Every genuinely new FCC contains ``s``.**  A new-tensor FCC
   without ``s`` in its height set has all support sets computed over
   old slices only, so it was already closed and frequent in ``O`` —
   i.e. it is in ``F`` (case 1).  The new cubes are found by RSM
   restricted to height subsets *containing* ``s``: enumerate
   ``H' ⊆ H_old`` with ``|H'| >= minH - 1``, mine the 2D FCPs of
   ``RS(H' + s)``, and post-prune height closure as usual.  This also
   catches previously-infrequent patterns that ``s`` pushes over
   ``minH``.

Cost: half of a fresh RSM run (only subsets through ``s``) plus a
linear pass over the old cubes — and no work at all on the vast
majority of subsets when ``minH`` is selective.
"""

from __future__ import annotations

import time
from itertools import combinations

import numpy as np

from ..core.bitset import is_subset, mask_of
from ..core.constraints import Thresholds
from ..core.cube import Cube
from ..core.dataset import Dataset3D
from ..core.result import MiningResult
from ..fcp import FCPMiner, get_fcp_miner
from ..fcp.matrix import BinaryMatrix
from .postprune import height_closed_in

__all__ = ["append_height_slice"]


def append_height_slice(
    dataset: Dataset3D,
    result: MiningResult,
    new_slice,
    thresholds: Thresholds | None = None,
    *,
    slice_label: str | None = None,
    fcp_miner: str | FCPMiner = "dminer",
) -> tuple[Dataset3D, MiningResult]:
    """Extend ``dataset`` by one height slice and update ``result``.

    Parameters
    ----------
    dataset:
        The old tensor (``result`` must be its complete FCC set at
        ``thresholds`` — this is NOT validated here; see
        :func:`repro.core.verify.verify_result`).
    result:
        The old mining result.
    new_slice:
        A boolean/0-1 array of shape ``(n_rows, n_columns)``.
    thresholds:
        Defaults to ``result.thresholds``.
    slice_label:
        Height label for the new slice (defaults to ``h<l+1>``).

    Returns the extended dataset and the updated result.
    """
    if thresholds is None:
        thresholds = result.thresholds
    if thresholds is None:
        raise ValueError("thresholds are required (argument or result metadata)")
    slice_array = np.asarray(new_slice)
    if slice_array.shape != (dataset.n_rows, dataset.n_columns):
        raise ValueError(
            f"new slice shape {slice_array.shape} does not match "
            f"({dataset.n_rows}, {dataset.n_columns})"
        )
    miner = get_fcp_miner(fcp_miner) if isinstance(fcp_miner, str) else fcp_miner
    start = time.perf_counter()

    extended = _extend_dataset(dataset, slice_array, slice_label)
    new_index = dataset.n_heights
    new_bit = 1 << new_index
    slice_masks = extended.slice_row_masks(new_index)

    # --- Case 1: carry the old cubes forward --------------------------
    cubes: set[Cube] = set()
    for cube in result:
        covers = all(
            is_subset(cube.columns, slice_masks[i]) for i in cube.row_indices()
        )
        if covers:
            cubes.add(Cube(cube.heights | new_bit, cube.rows, cube.columns))
        else:
            cubes.add(cube)

    # --- Case 2: cubes whose height set contains the new slice --------
    # Enumerate old-height subsets of size >= minH-1 and mine RS(H'+s).
    min_h, min_r, min_c = thresholds.as_tuple()
    slices_mined = 0
    if (
        min_r <= extended.n_rows
        and min_c <= extended.n_columns
        and min_h <= extended.n_heights
    ):
        lower = max(min_h - 1, 0)
        for size in range(lower, dataset.n_heights + 1):
            for subset in combinations(range(dataset.n_heights), size):
                heights = mask_of(subset) | new_bit
                slices_mined += 1
                masks = list(slice_masks)
                for k in subset:
                    old = dataset.slice_row_masks(k)
                    masks = [m & o for m, o in zip(masks, old)]
                rs = BinaryMatrix.from_row_masks(masks, extended.n_columns)
                for pattern in miner.mine(rs, min_rows=min_r, min_columns=min_c):
                    volume = (
                        (size + 1) * pattern.row_support * pattern.column_support
                    )
                    if volume < thresholds.min_volume:
                        continue
                    if height_closed_in(
                        extended, heights, pattern.rows, pattern.columns
                    ):
                        cubes.add(Cube(heights, pattern.rows, pattern.columns))

    updated = MiningResult(
        cubes=list(cubes),
        algorithm=f"incremental[{result.algorithm}]",
        thresholds=thresholds,
        dataset_shape=extended.shape,
        elapsed_seconds=time.perf_counter() - start,
        stats={
            "old_cubes": len(result),
            "slices_mined": slices_mined,
        },
    )
    return extended, updated


def _extend_dataset(
    dataset: Dataset3D, slice_array: np.ndarray, slice_label: str | None
) -> Dataset3D:
    stacked = np.concatenate(
        [dataset.data, slice_array.astype(bool)[None, :, :]], axis=0
    )
    label = slice_label or f"h{dataset.n_heights + 1}"
    if label in dataset.height_labels:
        raise ValueError(f"height label {label!r} already exists")
    return Dataset3D(
        stacked,
        height_labels=[*dataset.height_labels, label],
        row_labels=dataset.row_labels,
        column_labels=dataset.column_labels,
    )
