"""Traced RSM: the full phase-by-phase walk-through of Table 2.

:func:`trace_rsm` records, for every enumerated base-dimension subset,
the representative slice, the 2D FCPs mined from it, and which of the
combined 3D patterns survived Lemma-1 post-pruning.  The paper's
Table 2 is exactly :func:`render_rsm_table` on the running example with
``minH = minR = minC = 2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bitset import indices
from ..core.constraints import Thresholds
from ..core.cube import Cube
from ..core.dataset import Dataset3D
from ..fcp import FCPMiner, Pattern2D, get_fcp_miner
from ..fcp.matrix import BinaryMatrix
from .postprune import height_closed_in
from .slices import enumerate_height_subsets, representative_slice

__all__ = ["SliceTrace", "trace_rsm", "render_rsm_table"]

_MAX_TRACE_SUBSETS = 1024


@dataclass
class SliceTrace:
    """Everything RSM did for one enumerated height subset."""

    heights: int
    slice_matrix: BinaryMatrix
    patterns: list[Pattern2D]
    kept: list[Cube]
    pruned: list[Cube]


def trace_rsm(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    fcp_miner: str | FCPMiner = "dminer",
) -> list[SliceTrace]:
    """Run RSM (height base axis) recording each phase per subset."""
    miner = get_fcp_miner(fcp_miner) if isinstance(fcp_miner, str) else fcp_miner
    traces: list[SliceTrace] = []
    if not thresholds.feasible_for_shape(dataset.shape):
        return traces
    subsets = list(enumerate_height_subsets(dataset.n_heights, thresholds.min_h))
    if len(subsets) > _MAX_TRACE_SUBSETS:
        raise ValueError(
            f"trace_rsm keeps every slice in memory; {len(subsets)} subsets "
            f"exceed the {_MAX_TRACE_SUBSETS} guard"
        )
    for heights in subsets:
        rs = representative_slice(dataset, heights)
        patterns = sorted(
            miner.mine(rs, min_rows=thresholds.min_r, min_columns=thresholds.min_c),
            key=Pattern2D.sort_key,
        )
        kept: list[Cube] = []
        pruned: list[Cube] = []
        for pattern in patterns:
            cube = Cube(heights, pattern.rows, pattern.columns)
            if height_closed_in(dataset, heights, pattern.rows, pattern.columns):
                kept.append(cube)
            else:
                pruned.append(cube)
        traces.append(
            SliceTrace(
                heights=heights,
                slice_matrix=rs,
                patterns=patterns,
                kept=kept,
                pruned=pruned,
            )
        )
    return traces


def render_rsm_table(traces: list[SliceTrace], dataset: Dataset3D) -> str:
    """Render the traces in the layout of the paper's Table 2."""
    lines = ["Height Set | Representative Slice | 2D FCPs | 3D FCCs"]
    for trace in traces:
        height_names = ", ".join(
            dataset.height_labels[k] for k in indices(trace.heights)
        )
        slice_rows = [
            "".join("1" if trace.slice_matrix.cell(i, j) else "0"
                    for j in range(trace.slice_matrix.n_columns))
            for i in range(trace.slice_matrix.n_rows)
        ]
        fcp_texts = [str(p) for p in trace.patterns] or ["-"]
        fcc_texts = [c.format(dataset) for c in trace.kept] or ["-"]
        width = max(len(slice_rows), len(fcp_texts), len(fcc_texts))
        slice_rows += [""] * (width - len(slice_rows))
        fcp_texts += [""] * (width - len(fcp_texts))
        fcc_texts += [""] * (width - len(fcc_texts))
        for idx in range(width):
            head = height_names if idx == 0 else ""
            lines.append(
                f"{head:<12}| {slice_rows[idx]:<22}| {fcp_texts[idx]:<28}| {fcc_texts[idx]}"
            )
        lines.append("-" * 80)
    return "\n".join(lines)
