"""Phase 1 of RSM: representative-slice generation (Section 4.1).

The base dimension (heights, by convention — callers transpose first
for other axes) is enumerated over every subset of size at least
``minH``.  Each subset's member slices are combined cell-wise with AND
into one *representative slice* (RS): an RS cell is 1 only when every
contributing height has a 1 there.  Any 2D FCP of the RS is therefore
simultaneously contained in all contributing heights.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import combinations

from ..core.bitset import mask_of
from ..core.dataset import Dataset3D
from ..fcp.matrix import BinaryMatrix

__all__ = [
    "enumerate_height_subsets",
    "count_height_subsets",
    "representative_slice",
    "iter_representative_slices",
    "iter_size_slices",
]


def enumerate_height_subsets(n_heights: int, min_h: int) -> Iterator[int]:
    """Yield every height-subset mask with at least ``min_h`` members.

    Subsets are produced smallest-first, each in ascending member
    order, so runs are deterministic.
    """
    if min_h < 1:
        raise ValueError(f"min_h must be >= 1, got {min_h}")
    for size in range(min_h, n_heights + 1):
        for subset in combinations(range(n_heights), size):
            yield mask_of(subset)


def count_height_subsets(n_heights: int, min_h: int) -> int:
    """Number of representative slices RSM will generate.

    This is what makes RSM explode when the enumerated dimension grows
    (Figure 7): the count is ``sum_{s>=minH} C(l, s)``.
    """
    from math import comb

    return sum(comb(n_heights, size) for size in range(min_h, n_heights + 1))


def representative_slice(dataset: Dataset3D, heights: int) -> BinaryMatrix:
    """AND the height slices of ``heights`` into one representative slice.

    The fold runs on the dataset's kernel backend (one batched
    :meth:`~repro.core.kernels.Kernel.intersect_rows` over the selected
    slices of the mask grid), stays in the kernel's native
    representation (:meth:`BinaryMatrix.from_packed`), and the
    resulting matrix inherits that kernel for its own support
    operations.
    """
    if heights == 0:
        raise ValueError("a representative slice needs at least one height")
    handle = dataset.kernel.intersect_rows(
        dataset.ones_grid(), heights, dataset.n_columns
    )
    return BinaryMatrix.from_packed(
        handle, dataset.n_columns, kernel=dataset.kernel
    )


def iter_representative_slices(
    dataset: Dataset3D, min_h: int
) -> Iterator[tuple[int, BinaryMatrix]]:
    """Yield ``(heights_mask, representative_slice)`` for every subset."""
    for heights in enumerate_height_subsets(dataset.n_heights, min_h):
        yield heights, representative_slice(dataset, heights)


def iter_size_slices(
    dataset: Dataset3D, size: int
) -> Iterator[tuple[int, BinaryMatrix]]:
    """Yield every size-``size`` subset with its representative slice.

    Subsets come in the same ascending-member lexicographic order as
    ``itertools.combinations``, so interleaving the per-size calls
    reproduces :func:`iter_representative_slices` exactly.  Unlike the
    one-shot fold, consecutive subsets share their partial AND results:
    advancing the combination at position ``p`` reuses the fold of the
    first ``p`` members and extends it with one
    :meth:`~repro.core.kernels.Kernel.and_many` per changed position —
    amortized ~1 batched AND per subset instead of ``size - 1``.
    """
    l = dataset.n_heights
    if size < 1 or size > l:
        return
    kernel = dataset.kernel
    grid = dataset.ones_grid()
    m = dataset.n_columns
    slice_handles: list = [None] * l

    def slice_of(k: int):
        handle = slice_handles[k]
        if handle is None:
            handle = kernel.grid_slice_rows(grid, k, m)
            slice_handles[k] = handle
        return handle

    combo = list(range(size))
    folds: list = [None] * size  # folds[d] = AND of slices combo[0..d]
    rebuild_from = 0
    while True:
        for d in range(rebuild_from, size):
            member = slice_of(combo[d])
            folds[d] = member if d == 0 else kernel.and_many(folds[d - 1], member, m)
        yield mask_of(combo), BinaryMatrix.from_packed(folds[size - 1], m, kernel=kernel)
        position = size - 1
        while position >= 0 and combo[position] == l - size + position:
            position -= 1
        if position < 0:
            return
        combo[position] += 1
        for q in range(position + 1, size):
            combo[q] = combo[q - 1] + 1
        rebuild_from = position
