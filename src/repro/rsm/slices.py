"""Phase 1 of RSM: representative-slice generation (Section 4.1).

The base dimension (heights, by convention — callers transpose first
for other axes) is enumerated over every subset of size at least
``minH``.  Each subset's member slices are combined cell-wise with AND
into one *representative slice* (RS): an RS cell is 1 only when every
contributing height has a 1 there.  Any 2D FCP of the RS is therefore
simultaneously contained in all contributing heights.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import combinations

from ..core.bitset import mask_of
from ..core.dataset import Dataset3D
from ..fcp.matrix import BinaryMatrix

__all__ = [
    "enumerate_height_subsets",
    "count_height_subsets",
    "representative_slice",
    "iter_representative_slices",
]


def enumerate_height_subsets(n_heights: int, min_h: int) -> Iterator[int]:
    """Yield every height-subset mask with at least ``min_h`` members.

    Subsets are produced smallest-first, each in ascending member
    order, so runs are deterministic.
    """
    if min_h < 1:
        raise ValueError(f"min_h must be >= 1, got {min_h}")
    for size in range(min_h, n_heights + 1):
        for subset in combinations(range(n_heights), size):
            yield mask_of(subset)


def count_height_subsets(n_heights: int, min_h: int) -> int:
    """Number of representative slices RSM will generate.

    This is what makes RSM explode when the enumerated dimension grows
    (Figure 7): the count is ``sum_{s>=minH} C(l, s)``.
    """
    from math import comb

    return sum(comb(n_heights, size) for size in range(min_h, n_heights + 1))


def representative_slice(dataset: Dataset3D, heights: int) -> BinaryMatrix:
    """AND the height slices of ``heights`` into one representative slice.

    The fold runs on the dataset's kernel backend (one batched AND over
    the selected slices of the mask grid), and the resulting matrix
    inherits that kernel for its own support operations.
    """
    if heights == 0:
        raise ValueError("a representative slice needs at least one height")
    masks = dataset.kernel.grid_fold_rows(
        dataset.ones_grid(), heights, dataset.n_columns
    )
    return BinaryMatrix.from_row_masks(
        masks, dataset.n_columns, kernel=dataset.kernel
    )


def iter_representative_slices(
    dataset: Dataset3D, min_h: int
) -> Iterator[tuple[int, BinaryMatrix]]:
    """Yield ``(heights_mask, representative_slice)`` for every subset."""
    for heights in enumerate_height_subsets(dataset.n_heights, min_h):
        yield heights, representative_slice(dataset, heights)
