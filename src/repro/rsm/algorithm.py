"""The Representative Slice Mining framework (Section 4).

RSM mines FCCs in three phases:

1. enumerate every subset of the base dimension with at least ``minH``
   members and AND its slices into a representative slice (phase 1,
   :mod:`repro.rsm.slices`);
2. run any 2D frequent-closed-pattern miner on each representative
   slice with the ``minR`` / ``minC`` thresholds (phase 2,
   :mod:`repro.fcp` — D-Miner by default, as in the paper);
3. keep a pattern only when its height set is exactly the enumerated
   subset, i.e. no outside slice also contains it (phase 3, Lemma 1,
   :mod:`repro.rsm.postprune`).

Each FCC is produced exactly once — by the subset equal to its height
support set.  The base dimension defaults to heights; ``base_axis``
transposes internally and maps results back, and ``"auto"`` picks the
smallest dimension (the paper's heuristic — enumeration cost is
exponential in the base dimension's size).

Runs carry the same instrumentation surface as CubeMiner: always-on
:class:`~repro.obs.metrics.MiningMetrics` counters (slices mined, 2D
patterns, Lemma-1 discards), optional typed events (one
:class:`~repro.obs.events.SliceEvent` per representative slice) and a
progress/cancellation checkpoint after every slice.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from math import comb

from ..core.constraints import Thresholds
from ..core.cube import Cube
from ..core.dataset import Dataset3D
from ..core.permute import map_cube_from_transposed, order_moving_axis_first
from ..core.result import MiningResult, MiningStats
from ..fcp import FCPMiner, get_fcp_miner
from ..obs import (
    EventSink,
    MineDone,
    MineStart,
    MiningCancelled,
    MiningMetrics,
    ProgressController,
    PruneEvent,
    SliceEvent,
    resolve_progress,
)
from .postprune import PostPruneStats, height_closed_in
from .slices import count_height_subsets, iter_size_slices

__all__ = ["rsm_mine", "RSMMiner", "resolve_base_axis"]

_AXIS_BY_NAME = {"height": 0, "row": 1, "column": 2}


def resolve_base_axis(dataset: Dataset3D, base_axis: int | str) -> int:
    """Normalize ``base_axis`` to an axis index; ``"auto"`` = smallest."""
    if base_axis == "auto":
        shape = dataset.shape
        return min(range(3), key=lambda axis: (shape[axis], axis))
    if isinstance(base_axis, str):
        try:
            return _AXIS_BY_NAME[base_axis]
        except KeyError:
            raise ValueError(
                f"unknown base axis {base_axis!r}; use height/row/column/auto"
            ) from None
    if base_axis not in (0, 1, 2):
        raise ValueError(f"base axis index must be 0, 1 or 2, got {base_axis}")
    return base_axis


def rsm_mine(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    base_axis: int | str = "height",
    fcp_miner: str | FCPMiner = "dminer",
    metrics: MiningMetrics | None = None,
    on_event: EventSink | None = None,
    progress: "ProgressController | Callable | None" = None,
    deadline: float | None = None,
) -> MiningResult:
    """Mine all frequent closed cubes of ``dataset`` with RSM.

    Parameters
    ----------
    dataset:
        The 3D boolean context.
    thresholds:
        Minimum supports in the dataset's own axis order (they are
        permuted internally when ``base_axis`` is not the height axis).
    base_axis:
        Which dimension to enumerate: ``"height"`` (default, the
        paper's exposition), ``"row"``, ``"column"``, an axis index, or
        ``"auto"`` for the smallest dimension (the paper's recommended
        heuristic, cf. RSM-R vs RSM-H in Figure 3).
    fcp_miner:
        The 2D phase-2 algorithm: a registry name (``"dminer"``,
        ``"cbo"``, ``"charm"``, ``"carpenter"``) or any
        :class:`~repro.fcp.base.FCPMiner` instance.
    metrics / on_event / progress / deadline:
        Instrumentation surface — see :func:`repro.api.mine`.  A
        cancelled run raises
        :class:`~repro.obs.progress.MiningCancelled` with the partial
        result (cubes mapped back to the caller's axis order) attached.
    """
    miner = get_fcp_miner(fcp_miner) if isinstance(fcp_miner, str) else fcp_miner
    axis = resolve_base_axis(dataset, base_axis)
    axis_name = ("H", "R", "C")[axis]
    stats = metrics if metrics is not None else MiningMetrics()
    controller = resolve_progress(progress, deadline)
    algorithm = f"rsm-{axis_name.lower()}[{miner.name}]"
    start = time.perf_counter()
    if on_event is not None:
        on_event(
            MineStart(
                algorithm,
                dataset.shape,
                thresholds.as_tuple() + (thresholds.min_volume,),
            )
        )

    order = None if axis == 0 else order_moving_axis_first(axis)

    def map_back(raw_cubes: list[Cube]) -> list[Cube]:
        if order is None:
            return raw_cubes
        return [map_cube_from_transposed(cube, order) for cube in raw_cubes]

    if axis == 0:
        working, working_thresholds = dataset, thresholds
    else:
        working = dataset.transpose(order)  # type: ignore[arg-type]
        working_thresholds = thresholds.permute(order)  # type: ignore[arg-type]

    try:
        if controller is not None:
            controller.checkpoint(stats, phase="rsm", done=0)
        raw_cubes, extra = _mine_base_height(
            working, working_thresholds, miner, stats, on_event, controller
        )
    except MiningCancelled as exc:
        elapsed = time.perf_counter() - start
        partial_cubes = map_back(list(exc.partial_cubes))
        exc.metrics = stats
        exc.partial = MiningResult(
            cubes=partial_cubes,
            algorithm=algorithm,
            thresholds=thresholds,
            dataset_shape=dataset.shape,
            elapsed_seconds=elapsed,
            stats=MiningStats(metrics=stats),
        )
        if on_event is not None:
            on_event(MineDone(algorithm, len(exc.partial), elapsed, cancelled=True))
        raise

    result = MiningResult(
        cubes=map_back(raw_cubes),
        algorithm=algorithm,
        thresholds=thresholds,
        dataset_shape=dataset.shape,
        elapsed_seconds=time.perf_counter() - start,
        stats=MiningStats(metrics=stats, extra=extra),
    )
    if on_event is not None:
        on_event(MineDone(algorithm, len(result), result.elapsed_seconds))
    return result


def _mine_base_height(
    dataset: Dataset3D,
    thresholds: Thresholds,
    miner: FCPMiner,
    metrics: MiningMetrics,
    sink: EventSink | None = None,
    progress: ProgressController | None = None,
) -> tuple[list[Cube], dict[str, int]]:
    """RSM's three phases with the height axis as base dimension.

    Returns the found cubes plus the legacy flat stats keys; on
    cancellation the raised exception carries the cubes found so far in
    ``partial_cubes``.
    """
    min_h, min_r, min_c = thresholds.as_tuple()
    min_volume = thresholds.min_volume
    prune = PostPruneStats(metrics)
    slices_before = metrics.rs_slices_mined
    patterns_before = metrics.fcp_patterns
    checked_before = metrics.postprune_checked
    discards_before = metrics.postprune_discards
    cubes: list[Cube] = []
    try:
        if thresholds.feasible_for_shape(dataset.shape):
            n_heights = dataset.n_heights
            total = count_height_subsets(n_heights, min_h)
            slice_cells = dataset.n_rows * dataset.n_columns
            n_enumerated = 0
            for size in range(min_h, n_heights + 1):
                if size * slice_cells < min_volume:
                    # No slice of this size can reach the volume floor:
                    # skip the whole size without enumerating it.
                    n_enumerated += comb(n_heights, size)
                    continue
                for heights, rs in iter_size_slices(dataset, size):
                    n_enumerated += 1
                    metrics.rs_slices_mined += 1
                    metrics.kernel_ops += 1
                    patterns = miner.mine(rs, min_rows=min_r, min_columns=min_c)
                    metrics.fcp_patterns += len(patterns)
                    n_kept = 0
                    for pattern in patterns:
                        if size * pattern.row_support * pattern.column_support < min_volume:
                            continue
                        kept = height_closed_in(
                            dataset, heights, pattern.rows, pattern.columns,
                            metrics=metrics,
                        )
                        prune.record(kept)
                        if kept:
                            n_kept += 1
                            cubes.append(Cube(heights, pattern.rows, pattern.columns))
                        elif sink is not None:
                            sink(
                                PruneEvent(
                                    "postprune",
                                    "postprune_discards",
                                    heights,
                                    pattern.rows,
                                    pattern.columns,
                                )
                            )
                    if sink is not None:
                        sink(SliceEvent(heights, len(patterns), n_kept))
                    if progress is not None:
                        progress.checkpoint(
                            metrics, phase="rsm", done=n_enumerated, total=total
                        )
    except MiningCancelled as exc:
        exc.partial_cubes = cubes
        exc.metrics = metrics
        raise
    extra = {
        "representative_slices": metrics.rs_slices_mined - slices_before,
        "fcp_patterns": metrics.fcp_patterns - patterns_before,
        "postprune_checked": metrics.postprune_checked - checked_before,
        "postprune_pruned": metrics.postprune_discards - discards_before,
    }
    return cubes, extra


class RSMMiner:
    """Object-style facade over :func:`rsm_mine`."""

    name = "rsm"

    def __init__(
        self,
        base_axis: int | str = "auto",
        fcp_miner: str | FCPMiner = "dminer",
    ) -> None:
        self.base_axis = base_axis
        self.fcp_miner = fcp_miner

    def mine(self, dataset: Dataset3D, thresholds: Thresholds) -> MiningResult:
        return rsm_mine(
            dataset, thresholds, base_axis=self.base_axis, fcp_miner=self.fcp_miner
        )

    def __repr__(self) -> str:
        return f"RSMMiner(base_axis={self.base_axis!r}, fcp_miner={self.fcp_miner!r})"
