"""The Representative Slice Mining framework (Section 4).

RSM mines FCCs in three phases:

1. enumerate every subset of the base dimension with at least ``minH``
   members and AND its slices into a representative slice (phase 1,
   :mod:`repro.rsm.slices`);
2. run any 2D frequent-closed-pattern miner on each representative
   slice with the ``minR`` / ``minC`` thresholds (phase 2,
   :mod:`repro.fcp` — D-Miner by default, as in the paper);
3. keep a pattern only when its height set is exactly the enumerated
   subset, i.e. no outside slice also contains it (phase 3, Lemma 1,
   :mod:`repro.rsm.postprune`).

Each FCC is produced exactly once — by the subset equal to its height
support set.  The base dimension defaults to heights; ``base_axis``
transposes internally and maps results back, and ``"auto"`` picks the
smallest dimension (the paper's heuristic — enumeration cost is
exponential in the base dimension's size).
"""

from __future__ import annotations

import time

from ..core.bitset import bit_count
from ..core.constraints import Thresholds
from ..core.cube import Cube
from ..core.dataset import Dataset3D
from ..core.permute import map_cube_from_transposed, order_moving_axis_first
from ..core.result import MiningResult
from ..fcp import FCPMiner, get_fcp_miner
from .postprune import PostPruneStats, height_closed_in
from .slices import enumerate_height_subsets, representative_slice

__all__ = ["rsm_mine", "RSMMiner", "resolve_base_axis"]

_AXIS_BY_NAME = {"height": 0, "row": 1, "column": 2}


def resolve_base_axis(dataset: Dataset3D, base_axis: int | str) -> int:
    """Normalize ``base_axis`` to an axis index; ``"auto"`` = smallest."""
    if base_axis == "auto":
        shape = dataset.shape
        return min(range(3), key=lambda axis: (shape[axis], axis))
    if isinstance(base_axis, str):
        try:
            return _AXIS_BY_NAME[base_axis]
        except KeyError:
            raise ValueError(
                f"unknown base axis {base_axis!r}; use height/row/column/auto"
            ) from None
    if base_axis not in (0, 1, 2):
        raise ValueError(f"base axis index must be 0, 1 or 2, got {base_axis}")
    return base_axis


def rsm_mine(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    base_axis: int | str = "height",
    fcp_miner: str | FCPMiner = "dminer",
) -> MiningResult:
    """Mine all frequent closed cubes of ``dataset`` with RSM.

    Parameters
    ----------
    dataset:
        The 3D boolean context.
    thresholds:
        Minimum supports in the dataset's own axis order (they are
        permuted internally when ``base_axis`` is not the height axis).
    base_axis:
        Which dimension to enumerate: ``"height"`` (default, the
        paper's exposition), ``"row"``, ``"column"``, an axis index, or
        ``"auto"`` for the smallest dimension (the paper's recommended
        heuristic, cf. RSM-R vs RSM-H in Figure 3).
    fcp_miner:
        The 2D phase-2 algorithm: a registry name (``"dminer"``,
        ``"cbo"``, ``"charm"``, ``"carpenter"``) or any
        :class:`~repro.fcp.base.FCPMiner` instance.
    """
    miner = get_fcp_miner(fcp_miner) if isinstance(fcp_miner, str) else fcp_miner
    axis = resolve_base_axis(dataset, base_axis)
    axis_name = ("H", "R", "C")[axis]
    start = time.perf_counter()

    if axis == 0:
        cubes, stats = _mine_base_height(dataset, thresholds, miner)
    else:
        order = order_moving_axis_first(axis)
        transposed = dataset.transpose(order)  # type: ignore[arg-type]
        permuted = thresholds.permute(order)
        raw_cubes, stats = _mine_base_height(transposed, permuted, miner)
        cubes = [map_cube_from_transposed(cube, order) for cube in raw_cubes]

    return MiningResult(
        cubes=cubes,
        algorithm=f"rsm-{axis_name.lower()}[{miner.name}]",
        thresholds=thresholds,
        dataset_shape=dataset.shape,
        elapsed_seconds=time.perf_counter() - start,
        stats=stats,
    )


def _mine_base_height(
    dataset: Dataset3D,
    thresholds: Thresholds,
    miner: FCPMiner,
) -> tuple[list[Cube], dict[str, int]]:
    """RSM's three phases with the height axis as base dimension."""
    min_h, min_r, min_c = thresholds.as_tuple()
    min_volume = thresholds.min_volume
    prune = PostPruneStats()
    n_slices = 0
    n_patterns = 0
    cubes: list[Cube] = []
    if thresholds.feasible_for_shape(dataset.shape):
        slice_cells = dataset.n_rows * dataset.n_columns
        for heights in enumerate_height_subsets(dataset.n_heights, min_h):
            size = bit_count(heights)
            if size * slice_cells < min_volume:
                # No pattern of this slice can reach the volume floor.
                continue
            n_slices += 1
            rs = representative_slice(dataset, heights)
            patterns = miner.mine(rs, min_rows=min_r, min_columns=min_c)
            n_patterns += len(patterns)
            for pattern in patterns:
                if size * pattern.row_support * pattern.column_support < min_volume:
                    continue
                kept = height_closed_in(dataset, heights, pattern.rows, pattern.columns)
                prune.record(kept)
                if kept:
                    cubes.append(Cube(heights, pattern.rows, pattern.columns))
    stats = {
        "representative_slices": n_slices,
        "fcp_patterns": n_patterns,
        "postprune_checked": prune.patterns_checked,
        "postprune_pruned": prune.patterns_pruned,
    }
    return cubes, stats


class RSMMiner:
    """Object-style facade over :func:`rsm_mine`."""

    name = "rsm"

    def __init__(
        self,
        base_axis: int | str = "auto",
        fcp_miner: str | FCPMiner = "dminer",
    ) -> None:
        self.base_axis = base_axis
        self.fcp_miner = fcp_miner

    def mine(self, dataset: Dataset3D, thresholds: Thresholds) -> MiningResult:
        return rsm_mine(
            dataset, thresholds, base_axis=self.base_axis, fcp_miner=self.fcp_miner
        )

    def __repr__(self) -> str:
        return f"RSMMiner(base_axis={self.base_axis!r}, fcp_miner={self.fcp_miner!r})"
