"""Representative Slice Mining: FCCs via 2D FCP miners (Section 4)."""

from .algorithm import RSMMiner, resolve_base_axis, rsm_mine
from .incremental import append_height_slice
from .postprune import height_closed_in
from .slices import (
    count_height_subsets,
    enumerate_height_subsets,
    iter_representative_slices,
    representative_slice,
)

__all__ = [
    "RSMMiner",
    "rsm_mine",
    "append_height_slice",
    "resolve_base_axis",
    "height_closed_in",
    "count_height_subsets",
    "enumerate_height_subsets",
    "iter_representative_slices",
    "representative_slice",
]
