"""Command-line interface: ``repro-fcc``.

Subcommands::

    repro-fcc generate  — create a synthetic dataset and save it as .npz
    repro-fcc stats     — profile a dataset (shape, density, cutters)
    repro-fcc mine      — mine FCCs with any algorithm in the library
    repro-fcc rules     — mine FCCs and derive 3D association rules
    repro-fcc report    — mine and print a full analysis report
    repro-fcc convert   — convert between npz / dense text / triples
    repro-fcc trace     — render the CubeMiner tree or RSM walk-through
    repro-fcc verify    — check a JSON result against a dataset
    repro-fcc explore   — find the minC that fits a cube budget
    repro-fcc topk      — find the k largest closed cubes
    repro-fcc example   — reproduce the paper's running example tables
    repro-fcc serve     — run the persistent mining service daemon
    repro-fcc submit    — submit a mining job to a running daemon
    repro-fcc jobs      — list/inspect/cancel jobs on a daemon
    repro-fcc update    — apply a delta batch: patch a local result
                          incrementally, or POST to a daemon
    repro-fcc fsck      — check (and optionally repair) a service
                          data directory

Every command prints human-readable text to stdout; ``mine`` exits 0
even when no cube is found (an empty result is a valid answer).  The
mining commands accept ``--progress`` (periodic status on stderr),
``--deadline SECONDS`` (cooperative wall-clock budget; a run cut short
exits 124 after printing its partial result) and ``--metrics-json PATH``
(dump the run's instrumentation counters).  Parallel algorithms add
fault-tolerance knobs: ``--retries`` / ``--task-timeout`` /
``--backoff`` configure the supervisor, ``--checkpoint PATH`` /
``--resume`` enable chunk-level checkpoint/resume, ``--shards N`` /
``--shard-dim`` partition the enumerated dimension, and ``--shm`` /
``--no-shm`` force or disable the shared-memory dataset hand-off.  A malformed
dataset file exits 65 (``EX_DATAERR``) with the offending line — and the
same code covers every *corrupt store* the service commands can hit:
``serve`` refuses to start over a structurally broken data directory,
``fsck`` reports an unreadable one, and ``update`` rejects an unreadable
base result, all exiting 65 with a typed message.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from .analysis import dataset_stats, derive_rules, result_stats
from .api import ALGORITHMS, mine
from .core.constraints import Thresholds
from .core.dataset import Dataset3D
from .core.kernels import KernelUnavailableError, known_kernels
from .cubeminer.cutter import HeightOrder
from .datasets import (
    cdc15_like,
    elutriation_like,
    paper_example,
    planted_tensor,
    random_tensor,
)
from .fcp import FCP_MINERS
from .io import DatasetFormatError
from .obs import MiningCancelled
from .options import CubeMinerOptions, ParallelOptions, ReferenceOptions, RSMOptions

#: Exit code of a run cancelled by ``--deadline`` (same convention as
#: timeout(1)).
EXIT_DEADLINE = 124

#: Exit code for a malformed dataset file (BSD ``EX_DATAERR``).
EXIT_DATA = 65

#: Exit code when a requested kernel backend cannot run on this
#: interpreter (BSD ``EX_UNAVAILABLE``), e.g. ``--kernel native``
#: without the built C extension.
EXIT_UNAVAILABLE = 69

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fcc",
        description="Frequent Closed Cube mining (VLDB 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset (.npz)")
    gen.add_argument(
        "--kind",
        choices=("random", "planted", "elutriation", "cdc15"),
        default="random",
    )
    gen.add_argument("--shape", type=int, nargs=3, metavar=("L", "N", "M"),
                     default=(8, 10, 50), help="heights rows columns")
    gen.add_argument("--density", type=float, default=0.3)
    gen.add_argument("--genes", type=int, default=800,
                     help="gene count for microarray kinds")
    gen.add_argument("--blocks", type=int, default=3,
                     help="planted block count for --kind planted")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output .npz path")

    stats = sub.add_parser("stats", help="profile a dataset")
    stats.add_argument("--input", required=True, help=".npz dataset path")

    mine_cmd = sub.add_parser("mine", help="mine frequent closed cubes")
    _add_mine_arguments(mine_cmd)
    mine_cmd.add_argument("--show", type=int, default=20,
                          help="print at most this many cubes (0 = none)")
    mine_cmd.add_argument("--out-json", help="also write the result as JSON")
    mine_cmd.add_argument("--out-csv", help="also write the result as CSV")

    rules = sub.add_parser("rules", help="mine FCCs and derive 3D rules")
    _add_mine_arguments(rules)
    rules.add_argument("--min-confidence", type=float, default=0.6)
    rules.add_argument("--max-antecedent", type=int, default=2)
    rules.add_argument("--show", type=int, default=20)

    report = sub.add_parser(
        "report", help="mine and print a full analysis report"
    )
    _add_mine_arguments(report)
    report.add_argument("--top-cubes", type=int, default=10)
    report.add_argument("--min-confidence", type=float, default=0.8)

    convert = sub.add_parser(
        "convert", help="convert a dataset between npz/dense-text/triples"
    )
    convert.add_argument("--input", required=True,
                         help="source: .npz, .txt (dense) or .triples")
    convert.add_argument("--out", required=True,
                         help="destination: .npz, .txt (dense) or .triples")

    trace = sub.add_parser(
        "trace", help="render the CubeMiner tree or RSM table (small data)"
    )
    trace.add_argument("--input", required=True, help=".npz dataset path")
    trace.add_argument("--kind", choices=("tree", "rsm"), default="tree")
    trace.add_argument("--min-h", type=int, default=2)
    trace.add_argument("--min-r", type=int, default=2)
    trace.add_argument("--min-c", type=int, default=2)

    verify = sub.add_parser(
        "verify", help="check a JSON result against a dataset"
    )
    verify.add_argument("--input", required=True, help=".npz dataset path")
    verify.add_argument("--result", required=True, help="result JSON path")
    verify.add_argument("--complete", action="store_true",
                        help="also check completeness (small datasets)")
    verify.add_argument("--show", type=int, default=10,
                        help="print at most this many violations")

    explore = sub.add_parser(
        "explore", help="find the minC that fits a cube budget"
    )
    explore.add_argument("--input", required=True, help=".npz dataset path")
    explore.add_argument("--min-h", type=int, default=2)
    explore.add_argument("--min-r", type=int, default=2)
    explore.add_argument("--min-c", type=int, default=1,
                         help="lower bound of the search")
    explore.add_argument("--max-cubes", type=int, required=True)

    topk = sub.add_parser("topk", help="find the k largest closed cubes")
    topk.add_argument("--input", required=True, help=".npz dataset path")
    topk.add_argument("-k", type=int, default=10)
    topk.add_argument("--min-h", type=int, default=1)
    topk.add_argument("--min-r", type=int, default=1)
    topk.add_argument("--min-c", type=int, default=1)

    sub.add_parser("example", help="reproduce the paper's running example")

    serve_cmd = sub.add_parser(
        "serve", help="run the persistent mining service daemon"
    )
    serve_cmd.add_argument("--data-dir", required=True,
                           help="directory for datasets, jobs and the "
                                "result cache (created if missing)")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8765,
                           help="TCP port (0 picks an ephemeral one)")
    serve_cmd.add_argument("--max-workers", type=int, default=2,
                           help="concurrent mining worker processes")
    serve_cmd.add_argument("--mmap", dest="mmap", action="store_true",
                           help="hand workers memory-mapped packed grids "
                                "(out-of-core mode: mines tensors larger "
                                "than RAM)")
    serve_cmd.add_argument("--in-memory", dest="mmap", action="store_false",
                           help="load datasets fully into worker memory "
                                "(the default)")
    serve_cmd.set_defaults(mmap=False)
    serve_cmd.add_argument("--max-queued", type=int, default=None,
                           help="admission control: reject submissions "
                                "with HTTP 429 once this many jobs are "
                                "queued (default: unbounded)")
    serve_cmd.add_argument("--max-retries", type=int, default=2,
                           help="retry budget per job before it is "
                                "quarantined")
    serve_cmd.add_argument("--heartbeat-timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="watchdog: kill and requeue a worker "
                                "whose event journal goes silent this "
                                "long (default: off)")
    serve_cmd.add_argument("--drain-timeout", type=float, default=30.0,
                           metavar="SECONDS",
                           help="on SIGTERM, wait this long for running "
                                "jobs to finish before closing")
    serve_cmd.add_argument("--no-fsck", dest="fsck", action="store_false",
                           help="skip the structural store check at "
                                "startup")
    serve_cmd.set_defaults(fsck=True)
    serve_cmd.add_argument("--verbose", action="store_true",
                           help="log every request to stderr")

    fsck_cmd = sub.add_parser(
        "fsck",
        help="check (and optionally repair) a service data directory",
        description="Walk every on-disk store of a service data "
                    "directory — dataset registry, result cache, job "
                    "directories, delta logs, mmap grids — verifying "
                    "structure and content checksums.  Exits 0 when "
                    "clean, 1 when unrepaired issues remain, 65 when "
                    "the directory itself is unreadable.  --repair "
                    "moves damaged files to quarantined/fsck/ and "
                    "sweeps stale temporaries.",
    )
    fsck_cmd.add_argument("--data-dir", required=True,
                          help="service data directory to check")
    fsck_cmd.add_argument("--repair", action="store_true",
                          help="quarantine damaged files and sweep "
                               "stale temporaries")
    fsck_cmd.add_argument("--no-verify", dest="verify_checksums",
                          action="store_false",
                          help="structural checks only (skip content "
                               "checksums; much faster on big stores)")
    fsck_cmd.set_defaults(verify_checksums=True)
    fsck_cmd.add_argument("--json", action="store_true",
                          help="print the full report as JSON")

    submit = sub.add_parser(
        "submit", help="submit a mining job to a running daemon"
    )
    submit.add_argument("--server", default="http://127.0.0.1:8765")
    submit.add_argument("--input", required=True,
                        help="dataset to upload: .npz, .triples or dense text")
    submit.add_argument("--min-h", type=int, default=2)
    submit.add_argument("--min-r", type=int, default=2)
    submit.add_argument("--min-c", type=int, default=2)
    submit.add_argument("--min-volume", type=int, default=1)
    submit.add_argument("--algorithm", choices=ALGORITHMS, default="cubeminer")
    submit.add_argument("--no-cache", dest="use_cache", action="store_false",
                        help="force a fresh mine past the result cache")
    submit.add_argument("--no-wait", dest="wait", action="store_false",
                        help="return immediately with the job id")
    submit.add_argument("--show", type=int, default=10,
                        help="print at most this many cubes (0 = none)")

    update_cmd = sub.add_parser(
        "update",
        help="apply a delta batch to a dataset (incremental maintenance)",
        description="Apply a JSON delta batch.  Local mode (--input + "
                    "--result) patches an existing mining result through "
                    "the incremental maintainer — bit-identical to "
                    "re-mining, without the re-mine.  Server mode "
                    "(--dataset) POSTs the batch to a running daemon, "
                    "which registers the successor dataset and patches "
                    "its result cache forward.",
    )
    update_cmd.add_argument("--updates", required=True, metavar="FILE",
                            help="JSON delta batch: a list of delta "
                                 "objects, or {\"deltas\": [...]}")
    update_cmd.add_argument("--input", default=None,
                            help="local mode: base .npz dataset path")
    update_cmd.add_argument("--result", default=None,
                            help="local mode: base result JSON "
                                 "(from mine --out-json)")
    update_cmd.add_argument("--out", default=None,
                            help="local mode: write the updated dataset "
                                 "to this .npz path")
    update_cmd.add_argument("--out-json", default=None,
                            help="local mode: write the maintained "
                                 "result as JSON")
    update_cmd.add_argument("--show", type=int, default=10,
                            help="print at most this many cubes (0 = none)")
    update_cmd.add_argument("--server", default="http://127.0.0.1:8765")
    update_cmd.add_argument("--dataset", default=None, metavar="FINGERPRINT",
                            help="server mode: fingerprint of the "
                                 "registered dataset to update")

    jobs_cmd = sub.add_parser(
        "jobs", help="list jobs on a daemon, or inspect/cancel one"
    )
    jobs_cmd.add_argument("--server", default="http://127.0.0.1:8765")
    jobs_cmd.add_argument("--job", default=None, help="job id to inspect")
    jobs_cmd.add_argument("--events", action="store_true",
                          help="with --job: print the event journal")
    jobs_cmd.add_argument("--cancel", action="store_true",
                          help="with --job: cancel it")
    return parser


def _add_mine_arguments(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--input", required=True, help=".npz dataset path")
    cmd.add_argument("--min-h", type=int, default=2)
    cmd.add_argument("--min-r", type=int, default=2)
    cmd.add_argument("--min-c", type=int, default=2)
    cmd.add_argument("--min-volume", type=int, default=1,
                     help="minimum cube volume (cells); 1 = no constraint")
    cmd.add_argument("--algorithm", choices=ALGORITHMS, default="cubeminer")
    cmd.add_argument("--base-axis", default="auto",
                     help="RSM base dimension: height/row/column/auto")
    cmd.add_argument("--fcp-miner", choices=sorted(FCP_MINERS), default="dminer")
    cmd.add_argument("--order", choices=[o.value for o in HeightOrder],
                     default=HeightOrder.ZERO_DECREASING.value,
                     help="CubeMiner height-slice ordering")
    cmd.add_argument("--workers", type=int, default=2,
                     help="worker processes for parallel algorithms")
    cmd.add_argument("--shards", type=int, default=1,
                     help="parallel: partition the enumerated dimension "
                          "into this many independently minable shards")
    cmd.add_argument("--shard-dim", default="auto",
                     help="parallel-rsm: dimension to shard along (must "
                          "match the enumerated base dimension; 'auto' "
                          "follows it)")
    cmd.add_argument("--shm", dest="use_shm", default=None,
                     action=argparse.BooleanOptionalAction,
                     help="parallel: force (--shm) or disable (--no-shm) "
                          "the shared-memory dataset hand-off; default "
                          "auto-enables it for pooled runs")
    cmd.add_argument("--retries", type=int, default=2,
                     help="parallel: retry budget per task chunk")
    cmd.add_argument("--task-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="parallel: per-chunk wall-clock timeout "
                          "(hung chunks are killed and retried)")
    cmd.add_argument("--backoff", type=float, default=0.1, metavar="SECONDS",
                     help="parallel: base delay of the exponential "
                          "retry backoff")
    cmd.add_argument("--checkpoint", default=None, metavar="PATH",
                     help="parallel: stream completed chunks to this "
                          "journal for checkpoint/resume")
    cmd.add_argument("--resume", action="store_true",
                     help="parallel: resume from --checkpoint instead "
                          "of starting over")
    cmd.add_argument("--kernel", choices=known_kernels(), default=None,
                     help="bitset kernel backend (default: $REPRO_KERNEL "
                          "or python-int); requesting an unbuilt backend "
                          "fails with the reason it is unavailable")
    cmd.add_argument("--progress", action="store_true",
                     help="print periodic progress lines to stderr")
    cmd.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                     help="wall-clock budget; a cancelled run prints its "
                          f"partial result and exits {EXIT_DEADLINE}")
    cmd.add_argument("--metrics-json", default=None, metavar="PATH",
                     help="write the run's instrumentation counters as JSON")


def _generate(args: argparse.Namespace) -> int:
    if args.kind == "random":
        dataset = random_tensor(tuple(args.shape), args.density, seed=args.seed)
    elif args.kind == "planted":
        dataset = planted_tensor(
            tuple(args.shape),
            n_blocks=args.blocks,
            background_density=args.density,
            seed=args.seed,
        ).dataset
    elif args.kind == "elutriation":
        dataset = elutriation_like(args.genes, seed=args.seed)
    else:
        dataset = cdc15_like(args.genes, seed=args.seed)
    dataset.save_npz(args.out)
    print(f"wrote {dataset!r} to {args.out}")
    return 0


def _load(path: str) -> Dataset3D:
    try:
        return Dataset3D.load_npz(path)
    except FileNotFoundError:
        raise SystemExit(f"error: dataset file not found: {path}")
    except (ValueError, KeyError, OSError) as error:
        # Not a readable npz tensor (corrupt file, wrong format, text
        # passed where .npz is expected): exit 65 like other bad data.
        print(f"error: {path}: not a readable .npz dataset ({error})",
              file=sys.stderr)
        raise SystemExit(EXIT_DATA) from None


def _options_from_args(args: argparse.Namespace):
    """Build the typed options dataclass for the selected algorithm."""
    if args.algorithm == "cubeminer":
        return CubeMinerOptions(order=HeightOrder(args.order))
    if args.algorithm == "rsm":
        return RSMOptions(base_axis=args.base_axis, fcp_miner=args.fcp_miner)
    if args.algorithm in ("parallel-rsm", "parallel-cubeminer"):
        fault_tolerance = {
            "shards": args.shards,
            "shard_dim": args.shard_dim,
            "use_shm": args.use_shm,
            "retries": args.retries,
            "task_timeout": args.task_timeout,
            "backoff": args.backoff,
            "checkpoint_path": args.checkpoint,
            "resume": args.resume,
        }
        if args.algorithm == "parallel-rsm":
            return ParallelOptions(
                n_workers=args.workers,
                base_axis=args.base_axis,
                fcp_miner=args.fcp_miner,
                **fault_tolerance,
            )
        return ParallelOptions(
            n_workers=args.workers,
            order=HeightOrder(args.order),
            **fault_tolerance,
        )
    return ReferenceOptions()


def _print_progress(update) -> None:
    print(f"[progress] {update.format()}", file=sys.stderr, flush=True)


def _write_metrics_json(args: argparse.Namespace, result) -> None:
    path = getattr(args, "metrics_json", None)
    if not path:
        return
    payload = {
        "algorithm": result.algorithm,
        "dataset_shape": list(result.dataset_shape),
        "n_cubes": len(result),
        "elapsed_seconds": result.elapsed_seconds,
        "stats": result.stats.to_dict(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote metrics to {path}")


def _mine_with_args(args: argparse.Namespace):
    dataset = _load(args.input)
    thresholds = Thresholds(
        args.min_h, args.min_r, args.min_c, min_volume=args.min_volume
    )
    kwargs = {}
    if args.kernel:
        kwargs["kernel"] = args.kernel
    if getattr(args, "progress", False):
        kwargs["progress"] = _print_progress
    if getattr(args, "deadline", None) is not None:
        kwargs["deadline"] = args.deadline
    try:
        result = mine(
            dataset,
            thresholds,
            algorithm=args.algorithm,
            options=_options_from_args(args),
            **kwargs,
        )
    except MiningCancelled as exc:
        print(f"mining cancelled: {exc.reason}", file=sys.stderr)
        if exc.partial is not None:
            print("partial result:")
            print(exc.partial.summary())
            _write_metrics_json(args, exc.partial)
        raise SystemExit(EXIT_DEADLINE)
    except KernelUnavailableError as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(EXIT_UNAVAILABLE) from None
    _write_metrics_json(args, result)
    return dataset, result


def _mine(args: argparse.Namespace) -> int:
    dataset, result = _mine_with_args(args)
    print(result.summary())
    print(result_stats(dataset, result).format())
    if args.show:
        for cube in list(result)[: args.show]:
            print(" ", cube.format(dataset))
        if len(result) > args.show:
            print(f"  ... and {len(result) - args.show} more")
    if args.out_json:
        from .io import result_to_json

        with open(args.out_json, "w") as handle:
            handle.write(result_to_json(result, dataset))
        print(f"wrote JSON to {args.out_json}")
    if args.out_csv:
        from .io import result_to_csv

        with open(args.out_csv, "w") as handle:
            handle.write(result_to_csv(result, dataset))
        print(f"wrote CSV to {args.out_csv}")
    return 0


def _load_any(path: str) -> Dataset3D:
    """Load a dataset by extension: .npz, .triples, or dense text."""
    from .io import load_triples

    if path.endswith(".npz"):
        return _load(path)
    try:
        if path.endswith(".triples"):
            return load_triples(path)
        with open(path) as handle:
            return Dataset3D.from_text(handle.read())
    except FileNotFoundError:
        raise SystemExit(f"error: dataset file not found: {path}")
    except DatasetFormatError as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(EXIT_DATA) from None


def _convert(args: argparse.Namespace) -> int:
    from .io import save_triples

    dataset = _load_any(args.input)
    out = args.out
    if out.endswith(".npz"):
        dataset.save_npz(out)
    elif out.endswith(".triples"):
        save_triples(dataset, out)
    else:
        with open(out, "w") as handle:
            handle.write(dataset.to_text())
    print(f"wrote {dataset!r} to {out}")
    return 0


def _trace(args: argparse.Namespace) -> int:
    from .cubeminer.trace import render_tree, trace_tree
    from .rsm.trace import render_rsm_table, trace_rsm

    dataset = _load(args.input)
    thresholds = Thresholds(args.min_h, args.min_r, args.min_c)
    try:
        if args.kind == "tree":
            print(render_tree(trace_tree(dataset, thresholds), dataset))
        else:
            print(render_rsm_table(trace_rsm(dataset, thresholds), dataset))
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    return 0


def _rules(args: argparse.Namespace) -> int:
    dataset, result = _mine_with_args(args)
    print(result.summary())
    rules = derive_rules(
        dataset,
        result,
        min_confidence=args.min_confidence,
        max_antecedent=args.max_antecedent,
    )
    print(f"{len(rules)} rule(s) at confidence >= {args.min_confidence}")
    for rule in rules[: args.show]:
        print(" ", rule.format(dataset))
    if len(rules) > args.show:
        print(f"  ... and {len(rules) - args.show} more")
    return 0


def _stats(args: argparse.Namespace) -> int:
    dataset = _load(args.input)
    print(dataset_stats(dataset).format())
    return 0


def _example(_args: argparse.Namespace) -> int:
    from .cubeminer.trace import render_tree, trace_tree
    from .rsm.trace import render_rsm_table, trace_rsm

    dataset = paper_example()
    thresholds = Thresholds(2, 2, 2)
    print("== Paper running example (Table 1), minH=minR=minC=2 ==\n")
    print("-- RSM walk-through (Table 2) --")
    print(render_rsm_table(trace_rsm(dataset, thresholds), dataset))
    print("\n-- CubeMiner tree (Figure 1) --")
    print(render_tree(trace_tree(dataset, thresholds), dataset))
    result = mine(dataset, thresholds)
    print("\n-- FCCs --")
    print(result.format_table(dataset))
    return 0


def _report(args: argparse.Namespace) -> int:
    from .analysis.report import mining_report

    dataset, result = _mine_with_args(args)
    print(
        mining_report(
            dataset,
            result,
            top_cubes=args.top_cubes,
            min_confidence=args.min_confidence,
        )
    )
    return 0


def _topk(args: argparse.Namespace) -> int:
    from .analysis.topk import top_k_by_volume

    dataset = _load(args.input)
    base = Thresholds(args.min_h, args.min_r, args.min_c)
    cubes = top_k_by_volume(dataset, args.k, base)
    print(f"top {len(cubes)} cube(s) by volume:")
    for cube in cubes:
        print(f"  [{cube.volume:>6} cells] {cube.format(dataset)}")
    return 0


def _verify(args: argparse.Namespace) -> int:
    from .core.verify import verify_result
    from .io import result_from_json

    dataset = _load(args.input)
    try:
        with open(args.result) as handle:
            result = result_from_json(handle.read())
    except FileNotFoundError:
        raise SystemExit(f"error: result file not found: {args.result}")
    report = verify_result(
        dataset, result, check_completeness=args.complete
    )
    print(report.summary())
    for violation in report.violations[: args.show]:
        print(" ", violation)
    if len(report.violations) > args.show:
        print(f"  ... and {len(report.violations) - args.show} more")
    return 0 if report.ok else 1


def _explore(args: argparse.Namespace) -> int:
    from .analysis.explorer import find_min_c_for_budget

    dataset = _load(args.input)
    base = Thresholds(args.min_h, args.min_r, args.min_c)
    min_c, n_cubes = find_min_c_for_budget(
        dataset, base, max_cubes=args.max_cubes
    )
    print(
        f"minC={min_c} yields {n_cubes} cube(s) "
        f"(budget {args.max_cubes}, minH={args.min_h}, minR={args.min_r})"
    )
    if n_cubes > args.max_cubes:
        print("note: budget unreachable even at minC = column count")
    return 0


def _fsck(args: argparse.Namespace) -> int:
    from .chaos import fsck_data_dir

    try:
        report = fsck_data_dir(
            args.data_dir,
            repair=args.repair,
            verify_checksums=args.verify_checksums,
        )
    except OSError as error:
        print(f"error: cannot fsck {args.data_dir}: {error}", file=sys.stderr)
        raise SystemExit(EXIT_DATA) from None
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.clean else 1


def _serve(args: argparse.Namespace) -> int:
    import os
    import signal
    import threading

    from .service import ServiceApp
    from .service import serve as bind_server

    if args.fsck and os.path.isdir(args.data_dir):
        # Structural check only: content checksums are verified lazily
        # on every read, but a daemon must not come up over a store
        # whose shape is already known-broken.
        from .chaos import fsck_data_dir

        report = fsck_data_dir(args.data_dir, verify_checksums=False)
        if report.errors:
            for issue in report.errors:
                print(f"error: {issue.format()}", file=sys.stderr)
            print(
                f"error: {args.data_dir}: corrupt store "
                f"({len(report.errors)} error(s)); run "
                f"'repro-fcc fsck --data-dir {args.data_dir} --repair' "
                "to quarantine the damage",
                file=sys.stderr,
            )
            raise SystemExit(EXIT_DATA)
    app = ServiceApp(
        args.data_dir,
        max_workers=args.max_workers,
        mmap_datasets=args.mmap,
        max_queued=args.max_queued,
        max_retries=args.max_retries,
        heartbeat_timeout=args.heartbeat_timeout,
    )
    server = bind_server(app, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[:2]
    mode = "mmap" if args.mmap else "in-memory"
    print(
        f"repro-fcc service on http://{host}:{port} "
        f"(data: {args.data_dir}, workers: {args.max_workers}, "
        f"datasets: {mode})",
        flush=True,
    )

    def _terminate(signum, frame):
        # serve_forever() must be shut down from another thread; drain
        # happens below, after the accept loop stops taking requests.
        print("SIGTERM: draining...", file=sys.stderr, flush=True)
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
        app.drain(timeout=args.drain_timeout)
        app.close()
    return 0


def _print_served_result(served, show: int) -> None:
    result = served.result
    provenance = "cache hit" if served.cache_hit else "fresh mine"
    if served.cache_hit and served.filtered_from is not None:
        provenance += f" (filtered from [{served.filtered_from}])"
    print(f"{result.summary()} [{provenance}]")
    for cube in list(result)[:show]:
        print(" ", cube.format())
    if len(result) > show:
        print(f"  ... and {len(result) - show} more")


def _submit(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceClientError

    dataset = _load_any(args.input)
    thresholds = Thresholds(
        args.min_h, args.min_r, args.min_c, min_volume=args.min_volume
    )
    client = ServiceClient(args.server)
    try:
        record = client.submit(
            dataset,
            thresholds,
            algorithm=args.algorithm,
            use_cache=args.use_cache,
        )
        tag = " (cache hit)" if record.cache_hit else ""
        print(f"job {record.id}: {record.status}{tag}")
        if not args.wait:
            return 0
        record = client.wait(record.id)
        if record.status != "done":
            print(f"job {record.id} {record.status}: {record.error or ''}",
                  file=sys.stderr)
            return 1
        _print_served_result(client.result(record.id), args.show)
        return 0
    except ServiceClientError as error:
        raise SystemExit(f"error: {error}")


def _load_updates(path: str):
    """Read a JSON delta batch; malformed content exits ``EXIT_DATA``."""
    from .stream.delta import deltas_from_payload

    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise SystemExit(f"error: updates file not found: {path}")
    except ValueError as error:
        print(f"error: {path}: not valid JSON ({error})", file=sys.stderr)
        raise SystemExit(EXIT_DATA) from None
    if isinstance(payload, dict):
        payload = payload.get("deltas")
    try:
        deltas = deltas_from_payload(payload)
    except (ValueError, KeyError, TypeError) as error:
        print(f"error: {path}: not a delta batch ({error})", file=sys.stderr)
        raise SystemExit(EXIT_DATA) from None
    if not deltas:
        print(f"error: {path}: empty delta batch", file=sys.stderr)
        raise SystemExit(EXIT_DATA)
    return deltas


def _update(args: argparse.Namespace) -> int:
    deltas = _load_updates(args.updates)
    if args.dataset is not None:
        from .service import ServiceClient, ServiceClientError

        client = ServiceClient(args.server)
        try:
            doc = client.update_dataset(args.dataset, deltas)
        except ServiceClientError as error:
            raise SystemExit(f"error: {error}")
        print(
            f"dataset {doc['base'][:12]} -> {doc['fingerprint'][:12]} "
            f"(shape {tuple(doc['shape'])}, {doc['deltas_applied']} delta(s), "
            f"{doc['dirty_heights']} dirty height(s))"
        )
        for job in doc["jobs"]:
            spec = job["spec"]
            print(
                f"  maintenance job {job['id']}  {spec['algorithm']} "
                f"[{Thresholds.from_dict(spec['thresholds'])}]"
            )
        if not doc["jobs"]:
            print("  no cached results to maintain")
        return 0
    if args.input is None or args.result is None:
        print(
            "error: update needs either --dataset (server mode) or "
            "--input + --result (local mode)",
            file=sys.stderr,
        )
        return 2
    from .io import result_from_json, result_to_json
    from .stream.maintain import maintain

    dataset = _load(args.input)
    try:
        with open(args.result) as handle:
            result = result_from_json(handle.read())
    except FileNotFoundError:
        raise SystemExit(f"error: result file not found: {args.result}")
    except (ValueError, KeyError) as error:
        print(f"error: {args.result}: not a readable result JSON ({error})",
              file=sys.stderr)
        raise SystemExit(EXIT_DATA) from None
    try:
        new_dataset, maintained = maintain(dataset, result, deltas)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(EXIT_DATA) from None
    stream = maintained.stats.extra.get("stream", {})
    print(maintained.summary())
    print(
        f"  {stream.get('deltas_applied', 0)} delta(s) applied, "
        f"{stream.get('dirty_heights', 0)} dirty height(s), "
        f"{stream.get('cubes_patched', 0)} cube(s) patched, "
        f"{stream.get('subsets_remined', 0)} subset(s) re-mined"
    )
    if args.show:
        for cube in list(maintained)[: args.show]:
            print(" ", cube.format(new_dataset))
        if len(maintained) > args.show:
            print(f"  ... and {len(maintained) - args.show} more")
    if args.out:
        new_dataset.save_npz(args.out)
        print(f"wrote updated dataset to {args.out}")
    if args.out_json:
        with open(args.out_json, "w") as handle:
            handle.write(result_to_json(maintained, new_dataset))
        print(f"wrote JSON to {args.out_json}")
    return 0


def _jobs(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceClientError

    client = ServiceClient(args.server)
    try:
        if args.job is None:
            records = client.jobs()
            print(f"{len(records)} job(s)")
            for record in records:
                tag = " cache-hit" if record.cache_hit else ""
                print(
                    f"  {record.id}  {record.status:<9} "
                    f"{record.spec.algorithm:<19} "
                    f"[{record.spec.thresholds}]{tag}"
                )
            return 0
        if args.cancel:
            record = client.cancel(args.job)
            print(f"job {record.id}: {record.status}")
            return 0
        record = client.job(args.job)
        print(f"job {record.id}: {record.status}")
        print(f"  algorithm : {record.spec.algorithm}")
        print(f"  thresholds: {record.spec.thresholds}")
        print(f"  attempts  : {record.attempts}")
        if record.progress:
            print(f"  progress  : {record.progress}")
        if record.error:
            print(f"  error     : {record.error}")
        if record.cache_hit:
            print(f"  cache hit : filtered from [{record.filtered_from}]")
        if args.events:
            events, _ = client.events(args.job)
            for event in events:
                print(f"  {json.dumps(event)}")
        return 0
    except ServiceClientError as error:
        raise SystemExit(f"error: {error}")


_HANDLERS = {
    "generate": _generate,
    "stats": _stats,
    "mine": _mine,
    "rules": _rules,
    "report": _report,
    "convert": _convert,
    "trace": _trace,
    "verify": _verify,
    "explore": _explore,
    "topk": _topk,
    "example": _example,
    "serve": _serve,
    "submit": _submit,
    "jobs": _jobs,
    "update": _update,
    "fsck": _fsck,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
