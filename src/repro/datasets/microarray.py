"""Gene-sample-time microarray substitutes (Section 7.1's real datasets).

The paper evaluates on two yeast cell-cycle microarray datasets from
Spellman et al. (1998), fetched from a Stanford server that is not
reachable offline:

* **Elutriation**: 14 time points x 9 sample attributes x 7161 genes,
* **CDC15**:       19 time points x 9 sample attributes x 7761 genes.

:func:`synthetic_expression` generates a real-valued tensor with the
same *structure*: a baseline per gene, a set of co-expressed gene
modules that activate in contiguous time windows under subsets of
samples (the biology FCC mining is meant to recover), and log-normal
measurement noise.  :func:`binarize_by_row_mean` then applies the
paper's exact normalization (Section 7.1): a cell becomes 1 when its
value exceeds the mean of its (time, sample) gene row.

:func:`elutriation_like` / :func:`cdc15_like` wrap both steps with the
paper's time/sample shapes.  The gene axis defaults to a scaled-down
count because pure-Python enumeration is orders of magnitude slower
than the paper's C code; the relative-performance results depend on the
dimension *ratios* (two small axes, one large), which are preserved.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import Dataset3D

__all__ = [
    "synthetic_expression",
    "binarize_by_row_mean",
    "elutriation_like",
    "cdc15_like",
]


def synthetic_expression(
    n_times: int,
    n_samples: int,
    n_genes: int,
    *,
    n_modules: int = 8,
    module_gene_fraction: float = 0.08,
    module_strength: float = 2.5,
    noise_sigma: float = 0.35,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """A real-valued expression tensor of shape (time, sample, gene).

    Each of ``n_modules`` modules picks a random gene subset, a
    contiguous time window and a sample subset; member cells get an
    additive activation of ``module_strength``.  All cells carry a
    per-gene baseline plus multiplicative log-normal noise, mimicking
    normalized two-dye signal ratios.
    """
    if min(n_times, n_samples, n_genes) < 1:
        raise ValueError("all dimensions must be >= 1")
    rng = np.random.default_rng(seed)
    baseline = rng.normal(loc=1.0, scale=0.2, size=n_genes)
    values = np.tile(baseline, (n_times, n_samples, 1))
    module_genes = max(1, int(module_gene_fraction * n_genes))
    for _ in range(n_modules):
        genes = rng.choice(n_genes, size=module_genes, replace=False)
        window = rng.integers(1, n_times + 1)
        start = rng.integers(0, n_times - window + 1)
        samples = rng.choice(
            n_samples, size=rng.integers(1, n_samples + 1), replace=False
        )
        values[np.ix_(range(start, start + window), samples, genes)] += module_strength
    noise = rng.lognormal(mean=0.0, sigma=noise_sigma, size=values.shape)
    return values * noise


def binarize_by_row_mean(values: np.ndarray) -> Dataset3D:
    """Apply the paper's normalization: 1 iff a cell exceeds its row mean.

    For the tensor ``O'[k, i, j]`` the threshold of cell ``(k, i, j)``
    is ``mean_j O'[k, i, :]`` — the average over the last axis for that
    (height, row) pair; "high expression" cells become 1.
    """
    if values.ndim != 3:
        raise ValueError(f"expected a rank-3 tensor, got rank {values.ndim}")
    thresholds = values.mean(axis=2, keepdims=True)
    return Dataset3D(values > thresholds)


def _microarray_labels(n_times: int, n_samples: int, n_genes: int, step: int, start: int):
    return {
        "height_labels": [f"t{start + step * k}" for k in range(n_times)],
        "row_labels": [f"s{i + 1}" for i in range(n_samples)],
        "column_labels": [f"g{j + 1}" for j in range(n_genes)],
    }


def elutriation_like(
    n_genes: int = 800,
    *,
    seed: int | np.random.Generator | None = 0,
    **expression_kwargs,
) -> Dataset3D:
    """An Elutriation-shaped dataset: 14 time points x 9 samples x genes.

    The real experiment measures times 0..390 min at 30 min intervals;
    the height labels reflect that.  ``n_genes`` defaults to 800 (the
    paper uses 7161) — see the module docstring for the rationale.
    """
    values = synthetic_expression(14, 9, n_genes, seed=seed, **expression_kwargs)
    binary = binarize_by_row_mean(values)
    return Dataset3D(binary.data, **_microarray_labels(14, 9, n_genes, 30, 0))


def cdc15_like(
    n_genes: int = 800,
    *,
    seed: int | np.random.Generator | None = 1,
    **expression_kwargs,
) -> Dataset3D:
    """A CDC15-shaped dataset: 19 time points x 9 samples x genes.

    The real experiment measures times 70..250 min at 10 min intervals.
    ``n_genes`` defaults to 800 (the paper uses 7761).
    """
    values = synthetic_expression(19, 9, n_genes, seed=seed, **expression_kwargs)
    binary = binarize_by_row_mean(values)
    return Dataset3D(binary.data, **_microarray_labels(19, 9, n_genes, 10, 70))
