"""Dataset generators, examples and loaders.

* :mod:`repro.datasets.examples` — the paper's running example (Table 1).
* :mod:`repro.datasets.synthetic` — IBM-generator substitute: density-
  controlled Bernoulli tensors and planted all-ones blocks.
* :mod:`repro.datasets.microarray` — yeast-microarray substitutes with
  the paper's row-mean binarization (Section 7.1).
"""

from .discretization import (
    binarize_by_quantile,
    binarize_by_zscore,
    binarize_global_threshold,
    binarize_top_k,
)
from .examples import PAPER_EXAMPLE_FCCS, paper_example, tiny_example
from .perturb import add_ones, drop_ones, flip_cells, shuffle_heights
from .microarray import (
    binarize_by_row_mean,
    cdc15_like,
    elutriation_like,
    synthetic_expression,
)
from .synthetic import PlantedCubes, planted_tensor, random_tensor

__all__ = [
    "PAPER_EXAMPLE_FCCS",
    "paper_example",
    "tiny_example",
    "binarize_by_row_mean",
    "binarize_by_quantile",
    "binarize_by_zscore",
    "binarize_global_threshold",
    "binarize_top_k",
    "cdc15_like",
    "elutriation_like",
    "synthetic_expression",
    "add_ones",
    "drop_ones",
    "flip_cells",
    "shuffle_heights",
    "PlantedCubes",
    "planted_tensor",
    "random_tensor",
]
