"""Binarization schemes for real-valued 3D tensors.

The paper binarizes microarray data with its row-mean rule
(:func:`repro.datasets.microarray.binarize_by_row_mean`).  The
expression-analysis literature uses several alternatives, collected
here so real-valued data can be explored under different notions of
"high expression":

* :func:`binarize_by_quantile` — 1 for the top ``q`` fraction of each
  (height, row) gene row; fixes the per-row one-count regardless of
  distribution shape.
* :func:`binarize_by_zscore`  — 1 where the cell sits ``z`` standard
  deviations above its row mean; stricter than the paper's rule.
* :func:`binarize_top_k`      — exactly the ``k`` largest cells of
  each row become 1; the rank-based variant.
* :func:`binarize_global_threshold` — one absolute cutoff for the
  whole tensor; for data already on a common scale.

All return :class:`~repro.core.dataset.Dataset3D` and accept optional
axis labels via keyword arguments passed through.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import Dataset3D

__all__ = [
    "binarize_by_quantile",
    "binarize_by_zscore",
    "binarize_top_k",
    "binarize_global_threshold",
]


def _check_rank3(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    if values.ndim != 3:
        raise ValueError(f"expected a rank-3 tensor, got rank {values.ndim}")
    return values


def binarize_by_quantile(values, q: float = 0.7, **label_kwargs) -> Dataset3D:
    """Cell is 1 when it exceeds its row's ``q``-quantile.

    ``q = 0.7`` marks roughly the top 30% of each (height, row) gene
    row as highly expressed.
    """
    values = _check_rank3(values)
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q}")
    thresholds = np.quantile(values, q, axis=2, keepdims=True)
    return Dataset3D(values > thresholds, **label_kwargs)


def binarize_by_zscore(values, z: float = 1.0, **label_kwargs) -> Dataset3D:
    """Cell is 1 when it sits ``z`` standard deviations above its row mean.

    ``z = 0`` reduces to the paper's row-mean rule.  Constant rows have
    zero deviation and binarize to all-zero (nothing is *above* the
    mean there).
    """
    values = _check_rank3(values)
    if z < 0:
        raise ValueError(f"z must be >= 0, got {z}")
    means = values.mean(axis=2, keepdims=True)
    stds = values.std(axis=2, keepdims=True)
    return Dataset3D(values > means + z * stds, **label_kwargs)


def binarize_top_k(values, k: int, **label_kwargs) -> Dataset3D:
    """Exactly the ``k`` largest cells of each row become 1.

    Ties at the cutoff are broken by position (numpy argpartition
    order), keeping the per-row count exact.
    """
    values = _check_rank3(values)
    l, n, m = values.shape
    if not 1 <= k <= m:
        raise ValueError(f"k must be in [1, {m}], got {k}")
    result = np.zeros(values.shape, dtype=bool)
    top = np.argpartition(values, m - k, axis=2)[:, :, m - k:]
    grid_l, grid_n = np.meshgrid(range(l), range(n), indexing="ij")
    for offset in range(k):
        result[grid_l, grid_n, top[:, :, offset]] = True
    return Dataset3D(result, **label_kwargs)


def binarize_global_threshold(values, threshold: float, **label_kwargs) -> Dataset3D:
    """Cell is 1 when it exceeds one tensor-wide absolute threshold."""
    values = _check_rank3(values)
    return Dataset3D(values > threshold, **label_kwargs)
