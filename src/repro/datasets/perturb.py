"""Noise injection for robustness studies and failure testing.

FCC mining is exact: one flipped cell can split a closed cube in two.
These helpers create controlled corruption so tests and experiments can
measure that sensitivity:

* :func:`flip_cells` — flip a fraction of cells chosen uniformly
  (symmetric noise);
* :func:`drop_ones` / :func:`add_ones` — one-sided noise (dropout /
  false positives), the asymmetric kinds microarray data actually has;
* :func:`shuffle_heights` — permute slices (structure-preserving; all
  mining results must be isomorphic under it, which tests exploit).
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import Dataset3D

__all__ = ["flip_cells", "drop_ones", "add_ones", "shuffle_heights"]


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def _check_fraction(fraction: float) -> None:
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")


def flip_cells(
    dataset: Dataset3D, fraction: float, *, seed=None
) -> Dataset3D:
    """Flip a uniformly random ``fraction`` of all cells."""
    _check_fraction(fraction)
    rng = _rng(seed)
    data = dataset.data.copy()
    n_flips = round(fraction * data.size)
    if n_flips:
        flat = rng.choice(data.size, size=n_flips, replace=False)
        coords = np.unravel_index(flat, data.shape)
        data[coords] ^= True
    return Dataset3D(
        data,
        height_labels=dataset.height_labels,
        row_labels=dataset.row_labels,
        column_labels=dataset.column_labels,
    )


def drop_ones(dataset: Dataset3D, fraction: float, *, seed=None) -> Dataset3D:
    """Turn a random ``fraction`` of the one-cells into zeros (dropout)."""
    _check_fraction(fraction)
    rng = _rng(seed)
    data = dataset.data.copy()
    ones = np.argwhere(data)
    n_drops = round(fraction * len(ones))
    if n_drops:
        picked = ones[rng.choice(len(ones), size=n_drops, replace=False)]
        data[tuple(picked.T)] = False
    return Dataset3D(
        data,
        height_labels=dataset.height_labels,
        row_labels=dataset.row_labels,
        column_labels=dataset.column_labels,
    )


def add_ones(dataset: Dataset3D, fraction: float, *, seed=None) -> Dataset3D:
    """Turn a random ``fraction`` of the zero-cells into ones."""
    _check_fraction(fraction)
    rng = _rng(seed)
    data = dataset.data.copy()
    zeros = np.argwhere(~data)
    n_adds = round(fraction * len(zeros))
    if n_adds:
        picked = zeros[rng.choice(len(zeros), size=n_adds, replace=False)]
        data[tuple(picked.T)] = True
    return Dataset3D(
        data,
        height_labels=dataset.height_labels,
        row_labels=dataset.row_labels,
        column_labels=dataset.column_labels,
    )


def shuffle_heights(dataset: Dataset3D, *, seed=None) -> Dataset3D:
    """Permute the height slices randomly (labels travel with slices).

    Mining is invariant under this up to index renaming — the mined
    cube *count* and per-cube supports must not change, a property the
    metamorphic tests rely on.
    """
    rng = _rng(seed)
    order = list(rng.permutation(dataset.n_heights))
    return dataset.reorder_heights(order)
