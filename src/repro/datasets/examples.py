"""Hard-coded example datasets, including the paper's running example.

:func:`paper_example` returns Table 1 of the paper exactly: a 3x4x5
boolean context over heights ``h1..h3``, rows ``r1..r4`` and columns
``c1..c5``.  With ``minH = minR = minC = 2`` it yields the five FCCs
listed in Table 2 / Figure 1, which the test suite pins byte-exactly.
"""

from __future__ import annotations

from ..core.dataset import Dataset3D

__all__ = ["paper_example", "PAPER_EXAMPLE_FCCS", "tiny_example"]

_PAPER_SLICES = [
    # H = h1
    [
        [1, 1, 1, 0, 1],
        [1, 1, 1, 0, 0],
        [1, 1, 1, 1, 1],
        [0, 0, 1, 0, 1],
    ],
    # H = h2
    [
        [1, 1, 1, 1, 1],
        [0, 1, 1, 1, 0],
        [1, 1, 1, 1, 0],
        [1, 1, 1, 0, 1],
    ],
    # H = h3
    [
        [1, 1, 1, 0, 0],
        [1, 1, 1, 0, 0],
        [1, 1, 1, 1, 0],
        [1, 1, 0, 1, 1],
    ],
]

#: The five FCCs of Table 2 (4th column) for minH = minR = minC = 2,
#: written as (heights, rows, columns) label strings.
PAPER_EXAMPLE_FCCS = (
    ("h2 h3", "r1 r3 r4", "c1 c2"),
    ("h1 h3", "r1 r2 r3", "c1 c2 c3"),
    ("h1 h2", "r1 r4", "c3 c5"),
    ("h1 h2 h3", "r1 r3", "c1 c2 c3"),
    ("h1 h2 h3", "r1 r2 r3", "c2 c3"),
)


def paper_example() -> Dataset3D:
    """Table 1 of the paper: the 3x4x5 running-example context."""
    return Dataset3D(_PAPER_SLICES)


def tiny_example() -> Dataset3D:
    """A 2x2x2 all-ones cube — the smallest interesting sanity check."""
    return Dataset3D([[[1, 1], [1, 1]], [[1, 1], [1, 1]]])
