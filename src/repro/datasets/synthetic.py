"""Synthetic 3D boolean data generation.

The paper's scalability study (Section 7.2) uses the IBM synthetic data
generator, parameterized by the number of heights/rows/columns and the
cell density (percentage of ones).  That binary is unavailable offline,
so :func:`random_tensor` provides the equivalent density-controlled
Bernoulli tensor, and :func:`planted_tensor` additionally embeds
all-ones blocks ("planted" closed cubes) into background noise — the
correlated structure real transaction data exhibits, and a convenient
ground-truth source for tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cube import Cube
from ..core.dataset import Dataset3D

__all__ = ["random_tensor", "planted_tensor", "PlantedCubes"]


def random_tensor(
    shape: tuple[int, int, int],
    density: float,
    *,
    seed: int | np.random.Generator | None = None,
) -> Dataset3D:
    """A Bernoulli tensor: each cell is 1 with probability ``density``.

    This matches the paper's synthetic-dataset parameterization, e.g.
    Figure 7's "30% density, 20 rows, 1000 columns" series.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    if any(s < 0 for s in shape) or len(shape) != 3:
        raise ValueError(f"shape must be 3 non-negative sizes, got {shape}")
    rng = np.random.default_rng(seed)
    return Dataset3D(rng.random(shape) < density)


@dataclass(frozen=True, slots=True)
class PlantedCubes:
    """A generated dataset together with the blocks planted into it.

    The planted blocks are all-ones regions, not necessarily closed
    cubes of the final tensor (noise or block overlap can extend them);
    ``contained_in_some_fcc`` in the tests verifies every planted block
    is covered by a mined FCC.
    """

    dataset: Dataset3D
    planted: tuple[Cube, ...]


def planted_tensor(
    shape: tuple[int, int, int],
    *,
    n_blocks: int = 3,
    block_shape: tuple[int, int, int] = (2, 3, 4),
    background_density: float = 0.1,
    seed: int | np.random.Generator | None = None,
) -> PlantedCubes:
    """Background noise with ``n_blocks`` random all-ones blocks planted.

    Block positions are sampled uniformly (blocks may overlap).  Raises
    when a block dimension exceeds the tensor dimension.
    """
    l, n, m = shape
    bl, bn, bm = block_shape
    if bl > l or bn > n or bm > m:
        raise ValueError(f"block shape {block_shape} exceeds tensor shape {shape}")
    rng = np.random.default_rng(seed)
    data = rng.random(shape) < background_density
    planted = []
    for _ in range(n_blocks):
        hs = rng.choice(l, size=bl, replace=False)
        rs = rng.choice(n, size=bn, replace=False)
        cs = rng.choice(m, size=bm, replace=False)
        data[np.ix_(hs, rs, cs)] = True
        planted.append(
            Cube.from_indices(
                [int(x) for x in hs], [int(x) for x in rs], [int(x) for x in cs]
            )
        )
    return PlantedCubes(dataset=Dataset3D(data), planted=tuple(planted))
