"""The memory-mapped dataset store (out-of-core backend).

A store entry is two files under one root, keyed — like the service's
:class:`~repro.service.registry.DatasetRegistry` — by the dataset's
content fingerprint (:func:`repro.io.dataset_fingerprint`)::

    <root>/<fp>.npy     packed (l, n, words) little-endian uint64 grid
    <root>/<fp>.json    shape, labels, one-count, creation time

The ``.npy`` holds the canonical word layout of
:func:`repro.core.kernels.words_from_tensor`, so
:meth:`MmapDatasetStore.open` hands it straight to
:meth:`repro.core.dataset.Dataset3D.open_mmap`: on the numpy kernel the
mapping *is* the dataset's ones-grid — no copy, pages fault in on
demand — and :func:`repro.stream.outofcore.stream_mine` can mine a
tensor whose packed size exceeds RAM.  Both files are written to a
temporary name and renamed into place, so a crash mid-write never
leaves a readable-but-wrong entry.

Tensors too large to ever hold in memory enter through
:class:`StreamingSliceWriter`: height slices stream into the mapping
one at a time while the canonical content fingerprint accumulates on
the fly, so even the *writer* never holds more than one slice.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from pathlib import Path

import numpy as np

from ..chaos.io import IOShim, StoreCorruptionError, sha256_file
from ..core.dataset import Dataset3D
from ..core.kernels import (
    Kernel,
    release_mapped_pages,
    words_from_tensor,
    words_per_row,
)
from ..core.kernels.base import WORD_DTYPE
from ..io import dataset_fingerprint
from ..obs.metrics import ChaosCounters

__all__ = ["MmapDatasetStore", "StreamingSliceWriter"]

#: Version tag of the ``.json`` sidecar schema.
META_VERSION = 1


class _FingerprintStream:
    """Streaming twin of :func:`repro.io.dataset_fingerprint`.

    The canonical fingerprint packs the *flattened* boolean tensor
    (C order, big-endian bit order, byte-padded only at the very end),
    so feeding it slice-by-slice needs a bit carry: a chunk whose bit
    count is not a multiple of 8 leaves up to 7 bits for the next
    chunk's first byte.
    """

    def __init__(self, shape: tuple[int, int, int]) -> None:
        self._digest = hashlib.sha256()
        self._digest.update(repr(tuple(int(d) for d in shape)).encode())
        self._carry = np.zeros(0, dtype=np.uint8)
        self._done = False

    #: Cells absorbed per packbits round — bounds the temporaries so a
    #: whole height slice is never duplicated just to hash it.
    _STEP = 1 << 23

    def update(self, bits: np.ndarray) -> None:
        """Absorb the next chunk of cell values (any shape, C order)."""
        if self._done:
            raise RuntimeError("fingerprint stream already finalized")
        flat = np.asarray(bits, dtype=bool).reshape(-1).view(np.uint8)
        for pos in range(0, len(flat), self._STEP):
            chunk = flat[pos : pos + self._STEP]
            if len(self._carry):
                chunk = np.concatenate([self._carry, chunk])
            whole = (len(chunk) // 8) * 8
            if whole:
                self._digest.update(np.packbits(chunk[:whole]).tobytes())
            # Copy so the carry never pins the chunk (or the caller's
            # slice buffer) alive between updates.
            self._carry = chunk[whole:].copy()

    def hexdigest(self) -> str:
        """Finalize (padding the trailing partial byte) and return."""
        if not self._done:
            if len(self._carry):
                self._digest.update(np.packbits(self._carry).tobytes())
                self._carry = np.zeros(0, dtype=np.uint8)
            self._done = True
        return self._digest.hexdigest()


class MmapDatasetStore:
    """Content-addressed store of packed, memory-mappable datasets.

    Opening a store sweeps temp-file debris from earlier hard kills: a
    ``.*.tmp.*`` file older than the newest committed entry cannot
    belong to a write still in flight, so it is removed (and counted in
    ``chaos.stale_temps_swept``).  Entries record the digest of their
    packed grid in the ``.json`` sidecar; :meth:`verify` re-hashes the
    file against it.
    """

    def __init__(
        self,
        root: "str | Path",
        *,
        io: "IOShim | None" = None,
        chaos: "ChaosCounters | None" = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.io = io if io is not None else IOShim()
        self.chaos = chaos if chaos is not None else ChaosCounters()
        self._sweep_stale_temps()

    def _sweep_stale_temps(self) -> int:
        """Remove temp debris that provably outlived its writer.

        Only temps strictly older than the newest committed ``.npy``
        are swept — anything newer might still be an in-flight
        :class:`StreamingSliceWriter` (which cleans up after itself on
        a soft failure; this sweep is for hard kills).  A store with no
        committed entries has no age baseline and sweeps nothing.
        """
        committed = []
        for path in self.root.glob("*.npy"):
            if path.name.startswith("."):
                continue
            try:
                committed.append(path.stat().st_mtime)
            except OSError:
                continue
        if not committed:
            return 0
        newest = max(committed)
        swept = 0
        for tmp in self.root.glob(".*"):
            if ".tmp" not in tmp.name:
                continue
            try:
                if tmp.stat().st_mtime < newest:
                    tmp.unlink()
                    swept += 1
            except OSError:
                continue
        self.chaos.stale_temps_swept += swept
        return swept

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path(self, fingerprint: str) -> Path:
        """Where the packed grid of ``fingerprint`` lives."""
        return self.root / f"{fingerprint}.npy"

    def meta_path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, dataset: Dataset3D) -> str:
        """Store an in-memory dataset; returns its fingerprint.

        Re-storing the same content is a no-op (content addressing).
        For tensors too large to materialize, use :meth:`writer`.
        """
        fingerprint = dataset_fingerprint(dataset)
        if fingerprint in self:
            return fingerprint
        words = words_from_tensor(np.asarray(dataset.data, dtype=bool))
        tmp = self.root / f".{fingerprint}.tmp.npy"
        try:
            np.save(tmp, words)
            # Digest the bytes we *meant* to commit, before the rename:
            # anything that mutates the file afterwards (chaos faults,
            # disk rot) is exactly what verify() must catch.
            digest = sha256_file(tmp)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.io.atomic_finalize("mmap", tmp, self.path(fingerprint))
        self._write_meta(
            fingerprint,
            dataset.shape,
            int(np.asarray(dataset.data).sum()),
            dataset.height_labels,
            dataset.row_labels,
            dataset.column_labels,
            sha256=digest,
        )
        return fingerprint

    def _write_meta(
        self,
        fingerprint: str,
        shape: tuple[int, int, int],
        n_ones: int,
        height_labels,
        row_labels,
        column_labels,
        *,
        sha256: "str | None" = None,
    ) -> None:
        meta = {
            "schema": META_VERSION,
            "fingerprint": fingerprint,
            "shape": [int(d) for d in shape],
            "n_ones": int(n_ones),
            "height_labels": [str(s) for s in height_labels],
            "row_labels": [str(s) for s in row_labels],
            "column_labels": [str(s) for s in column_labels],
            "created": time.time(),
        }
        if sha256 is not None:
            meta["sha256"] = sha256
        self.io.atomic_write_text(
            "mmap", self.meta_path(fingerprint), json.dumps(meta, indent=2)
        )

    def writer(
        self,
        shape: tuple[int, int, int],
        *,
        height_labels=None,
        row_labels=None,
        column_labels=None,
    ) -> "StreamingSliceWriter":
        """Open a :class:`StreamingSliceWriter` filling a new entry."""
        return StreamingSliceWriter(
            self,
            shape,
            height_labels=height_labels,
            row_labels=row_labels,
            column_labels=column_labels,
        )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def meta(self, fingerprint: str) -> dict:
        """The sidecar metadata of one entry (:class:`KeyError` if absent)."""
        path = self.meta_path(fingerprint)
        if not path.exists():
            raise KeyError(f"no stored dataset {fingerprint!r}")
        return json.loads(path.read_text())

    def verify(self, fingerprint: str) -> None:
        """Re-hash one entry's packed grid against its recorded digest.

        A whole-file hash defeats the point of memory-mapping on every
        open, so verification is explicit: ``repro-fcc fsck`` and the
        chaos battery call it; hot paths trust the digest until asked.
        Raises :class:`~repro.chaos.io.StoreCorruptionError` on
        mismatch, does nothing for pre-digest legacy entries.
        """
        meta = self.meta(fingerprint)
        expected = meta.get("sha256")
        if not expected:
            return
        actual = sha256_file(self.path(fingerprint))
        if actual != expected:
            self.chaos.corruption_detected += 1
            raise StoreCorruptionError(
                "mmap",
                self.path(fingerprint),
                f"sha256 {actual[:12]} != recorded {expected[:12]}",
            )

    def open(
        self, fingerprint: str, *, kernel: "str | Kernel | None" = None
    ) -> Dataset3D:
        """Open one entry as a memory-mapped dataset."""
        meta = self.meta(fingerprint)
        return Dataset3D.open_mmap(
            self.path(fingerprint),
            tuple(meta["shape"]),
            kernel=kernel,
            height_labels=meta.get("height_labels"),
            row_labels=meta.get("row_labels"),
            column_labels=meta.get("column_labels"),
        )

    def list(self) -> list[str]:
        """Fingerprints of every complete entry, sorted."""
        out = []
        for meta_path in sorted(self.root.glob("*.json")):
            if meta_path.name.startswith("."):
                continue
            fingerprint = meta_path.stem
            if self.path(fingerprint).exists():
                out.append(fingerprint)
        return out

    def __contains__(self, fingerprint: str) -> bool:
        return (
            self.path(fingerprint).exists() and self.meta_path(fingerprint).exists()
        )

    def __len__(self) -> int:
        return len(self.list())


class StreamingSliceWriter:
    """Build one store entry height-slice by height-slice.

    The packed grid streams into a temporary memory-mapped ``.npy``
    (pages released as slices land, so resident memory stays one slice
    deep) while the canonical content fingerprint accumulates through
    :class:`_FingerprintStream`.  :meth:`seal` renames the finished
    file under the fingerprint it computed — until then the store never
    shows a partial entry.  Usable as a context manager; leaving the
    block without sealing aborts and removes the temporary file.
    """

    def __init__(
        self,
        store: MmapDatasetStore,
        shape: tuple[int, int, int],
        *,
        height_labels=None,
        row_labels=None,
        column_labels=None,
    ) -> None:
        l, n, m = (int(d) for d in shape)
        if min(l, n, m) < 1:
            raise ValueError(f"streamed dataset shape {shape!r} must be positive")
        self.store = store
        self.shape = (l, n, m)
        self._labels = (height_labels, row_labels, column_labels)
        self._tmp = store.root / f".stream-{uuid.uuid4().hex}.tmp.npy"
        self._grid = np.lib.format.open_memmap(
            self._tmp, mode="w+", dtype=WORD_DTYPE, shape=(l, n, words_per_row(m))
        )
        self._fingerprint = _FingerprintStream(self.shape)
        self._next = 0
        self._n_ones = 0

    @property
    def slices_written(self) -> int:
        return self._next

    def append_slice(self, values) -> None:
        """Write the next height slice (an ``(n_rows, n_columns)`` 0/1 array)."""
        if self._grid is None:
            raise RuntimeError("writer is sealed or aborted")
        l, n, m = self.shape
        if self._next >= l:
            raise ValueError(f"all {l} height slices already written")
        arr = np.asarray(values)
        if arr.shape != (n, m):
            raise ValueError(
                f"height slice has shape {arr.shape}, expected {(n, m)}"
            )
        arr = arr.astype(bool, copy=False)
        self._grid[self._next] = words_from_tensor(arr[None])[0]
        release_mapped_pages(self._grid)
        self._fingerprint.update(arr)
        self._n_ones += int(arr.sum())
        self._next += 1

    def seal(self) -> str:
        """Flush, fingerprint, rename into the store; returns the fingerprint."""
        if self._grid is None:
            raise RuntimeError("writer is sealed or aborted")
        l = self.shape[0]
        if self._next != l:
            raise ValueError(
                f"only {self._next} of {l} height slices written"
            )
        self._grid.flush()
        self._grid = None
        fingerprint = self._fingerprint.hexdigest()
        digest = sha256_file(self._tmp)
        self.store.io.atomic_finalize(
            "mmap", self._tmp, self.store.path(fingerprint)
        )
        self.store._write_meta(
            fingerprint,
            self.shape,
            self._n_ones,
            self._labels[0] or [f"h{i + 1}" for i in range(self.shape[0])],
            self._labels[1] or [f"r{i + 1}" for i in range(self.shape[1])],
            self._labels[2] or [f"c{i + 1}" for i in range(self.shape[2])],
            sha256=digest,
        )
        return fingerprint

    def abort(self) -> None:
        """Drop the partial entry (idempotent)."""
        self._grid = None
        try:
            os.unlink(self._tmp)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "StreamingSliceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._grid is not None:
            self.abort()
