"""Typed tensor deltas and the JSONL delta log.

A *delta* is one edit to a 3D binary tensor: flip a cell on
(:class:`SetCell`) or off (:class:`ClearCell`), append a slice along
any axis (:class:`AppendSlice`), or drop one (:class:`DropSlice`).
:func:`apply_deltas` applies a batch in order and reports, alongside
the edited dataset, exactly what the incremental maintainer needs: the
*dirty* height set (heights whose slice content may differ from the old
tensor's) and the old→new index map of every axis.

Dirtiness is tracked at height granularity because RSM's work units are
height subsets: a cell edit dirties its height, a height append/drop
dirties the new height (respectively nothing — drops only remap), and
any row/column append/drop dirties *every* height, since each height
slice gains or loses cells.  Heights left clean are guaranteed to hold
the same slice content (over surviving rows/columns) before and after
the batch — the invariant :func:`repro.stream.maintain.maintain` builds
on.

:class:`DeltaLog` journals batches as JSONL with the checkpoint layer's
discipline (:mod:`repro.parallel.checkpoint`): line 1 is a header
binding the log to one base tensor by content fingerprint and shape;
each following line is one batch with the fingerprint of the tensor it
produces.  Loading tolerates a truncated trailing line; binding a log
to the wrong base raises :class:`DeltaLogMismatchError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from ..core.dataset import AXIS_NAMES, Dataset3D
from ..core.kernels import Kernel
from ..io import dataset_fingerprint

__all__ = [
    "SetCell",
    "ClearCell",
    "AppendSlice",
    "DropSlice",
    "Delta",
    "DeltaApplication",
    "apply_deltas",
    "delta_to_dict",
    "delta_from_dict",
    "deltas_to_payload",
    "deltas_from_payload",
    "DeltaLog",
    "DeltaLogMismatchError",
]

#: Version tag of the delta log's line schema.
DELTA_LOG_VERSION = 1

_AXIS_PREFIX = {0: "h", 1: "r", 2: "c"}


def _axis_index(axis: "int | str") -> int:
    if isinstance(axis, str):
        try:
            return AXIS_NAMES.index(axis)
        except ValueError:
            raise ValueError(
                f"unknown axis {axis!r}, expected one of {AXIS_NAMES}"
            ) from None
    axis = int(axis)
    if axis not in (0, 1, 2):
        raise ValueError(f"axis index must be 0, 1 or 2, got {axis}")
    return axis


# ----------------------------------------------------------------------
# The delta types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SetCell:
    """Turn one cell on: ``O[height, row, column] = 1``."""

    height: int
    row: int
    column: int


@dataclass(frozen=True)
class ClearCell:
    """Turn one cell off: ``O[height, row, column] = 0``."""

    height: int
    row: int
    column: int


@dataclass(frozen=True)
class AppendSlice:
    """Append one slice at the end of ``axis``.

    ``values`` is the slice content in the shape of the tensor with
    ``axis`` removed — ``(n_rows, n_columns)`` for a height,
    ``(n_heights, n_columns)`` for a row, ``(n_heights, n_rows)`` for a
    column.  Stored as nested tuples so the delta stays hashable and
    JSON-serializable.
    """

    axis: int
    values: tuple
    label: "str | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "axis", _axis_index(self.axis))
        frozen = tuple(
            tuple(int(v) for v in row) for row in np.asarray(self.values)
        )
        for row in frozen:
            for v in row:
                if v not in (0, 1):
                    raise ValueError(f"slice values must be 0/1, found {v}")
        object.__setattr__(self, "values", frozen)


@dataclass(frozen=True)
class DropSlice:
    """Remove the slice at ``index`` along ``axis``."""

    axis: int
    index: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "axis", _axis_index(self.axis))


Delta = Union[SetCell, ClearCell, AppendSlice, DropSlice]

_OP_NAMES = {
    SetCell: "set-cell",
    ClearCell: "clear-cell",
    AppendSlice: "append-slice",
    DropSlice: "drop-slice",
}


def delta_to_dict(delta: Delta) -> dict:
    """One delta as a JSON-ready dict (inverse of :func:`delta_from_dict`)."""
    op = _OP_NAMES.get(type(delta))
    if op is None:
        raise TypeError(f"not a delta: {delta!r}")
    if isinstance(delta, (SetCell, ClearCell)):
        return {
            "op": op,
            "height": delta.height,
            "row": delta.row,
            "column": delta.column,
        }
    if isinstance(delta, AppendSlice):
        payload: dict = {
            "op": op,
            "axis": delta.axis,
            "values": [list(row) for row in delta.values],
        }
        if delta.label is not None:
            payload["label"] = delta.label
        return payload
    return {"op": op, "axis": delta.axis, "index": delta.index}


def delta_from_dict(payload: dict) -> Delta:
    """Rebuild one delta from :func:`delta_to_dict` output."""
    if not isinstance(payload, dict):
        raise ValueError(f"delta must be a JSON object, got {payload!r}")
    op = payload.get("op")
    if op in ("set-cell", "clear-cell"):
        cls = SetCell if op == "set-cell" else ClearCell
        return cls(
            height=int(payload["height"]),
            row=int(payload["row"]),
            column=int(payload["column"]),
        )
    if op == "append-slice":
        label = payload.get("label")
        return AppendSlice(
            axis=payload["axis"],
            values=payload["values"],
            label=None if label is None else str(label),
        )
    if op == "drop-slice":
        return DropSlice(axis=payload["axis"], index=int(payload["index"]))
    raise ValueError(f"unknown delta op {op!r}")


def deltas_to_payload(deltas: "list[Delta] | tuple[Delta, ...]") -> list[dict]:
    """A delta batch as a JSON-ready list."""
    return [delta_to_dict(delta) for delta in deltas]


def deltas_from_payload(payload: list) -> list[Delta]:
    """Rebuild a delta batch from :func:`deltas_to_payload` output."""
    if not isinstance(payload, list):
        raise ValueError(f"delta batch must be a JSON list, got {payload!r}")
    return [delta_from_dict(entry) for entry in payload]


# ----------------------------------------------------------------------
# Application
# ----------------------------------------------------------------------
@dataclass
class DeltaApplication:
    """The outcome of applying one delta batch.

    ``dirty_heights`` is a bitmask over the *new* tensor's height
    indices; a clean height's slice is guaranteed identical (over
    surviving rows/columns) to its old counterpart.  The three maps
    give, per old index, the index it landed on in the new tensor — or
    ``None`` when the slice was dropped.
    """

    dataset: Dataset3D
    dirty_heights: int
    height_map: tuple
    row_map: tuple
    column_map: tuple
    n_deltas: int


def _fresh_label(axis: int, existing: list[str]) -> str:
    taken = set(existing)
    k = len(existing) + 1
    while f"{_AXIS_PREFIX[axis]}{k}" in taken:
        k += 1
    return f"{_AXIS_PREFIX[axis]}{k}"


def apply_deltas(
    dataset: Dataset3D,
    deltas: "list[Delta] | tuple[Delta, ...]",
    *,
    kernel: "str | Kernel | None" = None,
) -> DeltaApplication:
    """Apply a delta batch in order and return the edited dataset.

    Coordinates are validated against the tensor shape *at the point
    the delta applies* (earlier deltas in the batch may have resized
    it).  Dropping the last slice of an axis is rejected — a dataset
    keeps at least one slice per axis.  The new dataset inherits the
    old one's kernel unless ``kernel`` overrides it.
    """
    tensor = np.array(dataset.data, dtype=bool)
    labels = [
        list(dataset.height_labels),
        list(dataset.row_labels),
        list(dataset.column_labels),
    ]
    # origins[axis][current_index] -> old index, or None for appended.
    origins: list[list] = [list(range(d)) for d in dataset.shape]
    dirty: set[int] = set()

    for position, delta in enumerate(deltas):
        try:
            tensor, dirty = _apply_one(tensor, labels, origins, dirty, delta)
        except (ValueError, IndexError, TypeError) as error:
            raise ValueError(f"delta #{position}: {error}") from None

    new = Dataset3D(
        tensor,
        height_labels=labels[0],
        row_labels=labels[1],
        column_labels=labels[2],
        kernel=dataset.kernel if kernel is None else kernel,
    )
    maps = []
    for axis, old_size in enumerate(dataset.shape):
        forward: list = [None] * old_size
        for current, old in enumerate(origins[axis]):
            if old is not None:
                forward[old] = current
        maps.append(tuple(forward))
    dirty_mask = 0
    for k in dirty:
        dirty_mask |= 1 << k
    return DeltaApplication(
        dataset=new,
        dirty_heights=dirty_mask,
        height_map=maps[0],
        row_map=maps[1],
        column_map=maps[2],
        n_deltas=len(deltas),
    )


def _apply_one(
    tensor: np.ndarray,
    labels: list[list[str]],
    origins: list[list],
    dirty: set[int],
    delta: Delta,
) -> tuple[np.ndarray, set[int]]:
    if isinstance(delta, (SetCell, ClearCell)):
        k, i, j = int(delta.height), int(delta.row), int(delta.column)
        l, n, m = tensor.shape
        if not (0 <= k < l and 0 <= i < n and 0 <= j < m):
            raise ValueError(
                f"cell ({k}, {i}, {j}) is outside the tensor shape {(l, n, m)}"
            )
        tensor[k, i, j] = isinstance(delta, SetCell)
        dirty.add(k)
        return tensor, dirty
    if isinstance(delta, AppendSlice):
        axis = delta.axis
        values = np.asarray(delta.values, dtype=bool)
        expected = tuple(d for a, d in enumerate(tensor.shape) if a != axis)
        if values.shape != expected:
            raise ValueError(
                f"appended {AXIS_NAMES[axis]} slice has shape {values.shape}, "
                f"expected {expected}"
            )
        label = delta.label or _fresh_label(axis, labels[axis])
        if label in labels[axis]:
            raise ValueError(f"{AXIS_NAMES[axis]} label {label!r} already exists")
        tensor = np.concatenate([tensor, np.expand_dims(values, axis)], axis=axis)
        labels[axis].append(label)
        origins[axis].append(None)
        if axis == 0:
            dirty.add(tensor.shape[0] - 1)
        else:
            dirty = set(range(tensor.shape[0]))
        return tensor, dirty
    if isinstance(delta, DropSlice):
        axis, index = delta.axis, int(delta.index)
        if not 0 <= index < tensor.shape[axis]:
            raise ValueError(
                f"{AXIS_NAMES[axis]} index {index} is outside "
                f"0..{tensor.shape[axis] - 1}"
            )
        if tensor.shape[axis] == 1:
            raise ValueError(f"cannot drop the last {AXIS_NAMES[axis]} slice")
        tensor = np.delete(tensor, index, axis=axis)
        del labels[axis][index]
        del origins[axis][index]
        if axis == 0:
            dirty = {k - 1 if k > index else k for k in dirty if k != index}
        else:
            dirty = set(range(tensor.shape[0]))
        return tensor, dirty
    raise TypeError(f"not a delta: {delta!r}")


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------
class DeltaLogMismatchError(ValueError):
    """A delta log's header does not match the tensor it is bound to."""


class DeltaLog:
    """Append-only JSONL journal of delta batches over one base tensor.

    The header pins the base tensor's content fingerprint and shape;
    every batch line records its sequence number, its deltas, and the
    fingerprint of the tensor the batch produces, so
    :meth:`tip_fingerprint` names the current tensor without replaying
    anything and :meth:`replay` can verify each step it re-applies.
    """

    def __init__(
        self,
        path: Path,
        header: dict,
        batches: list[dict],
        *,
        io=None,
    ) -> None:
        from ..chaos.io import IOShim

        self.path = path
        self.io = io if io is not None else IOShim()
        self._header = header
        self._batches = batches

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: "str | Path",
        *,
        dataset: "Dataset3D | None" = None,
        fingerprint: "str | None" = None,
        shape: "tuple[int, int, int] | None" = None,
        io=None,
    ) -> "DeltaLog":
        """Open a delta log, creating it when missing.

        The base tensor is named either directly (``fingerprint`` +
        ``shape``) or via ``dataset``.  An existing log must match that
        base (:class:`DeltaLogMismatchError` otherwise); a new log
        requires it.  ``io`` is the :class:`~repro.chaos.io.IOShim`
        appends route through (the hardened default when unset).
        """
        path = Path(path)
        if dataset is not None:
            fingerprint = dataset_fingerprint(dataset)
            shape = dataset.shape
        if path.exists():
            header, batches = _load_log(path)
            if header is None:
                raise DeltaLogMismatchError(f"{path} has no readable header")
            if fingerprint is not None and header.get("fingerprint") != fingerprint:
                raise DeltaLogMismatchError(
                    f"{path} is bound to base {header.get('fingerprint')!r}, "
                    f"not {fingerprint!r}"
                )
            return cls(path, header, batches, io=io)
        if fingerprint is None or shape is None:
            raise ValueError(
                "creating a delta log needs a base dataset or a "
                "fingerprint + shape"
            )
        header = {
            "kind": "header",
            "version": DELTA_LOG_VERSION,
            "fingerprint": fingerprint,
            "shape": [int(d) for d in shape],
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        log = cls(path, header, [], io=io)
        with open(path, "a") as handle:
            log.io.append_line("delta", handle, json.dumps(header))
        return log

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the base tensor."""
        return str(self._header["fingerprint"])

    @property
    def shape(self) -> tuple[int, int, int]:
        """Shape of the base tensor."""
        return tuple(int(d) for d in self._header["shape"])  # type: ignore[return-value]

    def __len__(self) -> int:
        return len(self._batches)

    def batches(self) -> list[list[Delta]]:
        """Every journalled batch, in append order."""
        return [deltas_from_payload(b["deltas"]) for b in self._batches]

    def tip_fingerprint(self) -> str:
        """Fingerprint of the tensor after the last batch (base if none)."""
        if self._batches:
            return str(self._batches[-1]["fingerprint"])
        return self.fingerprint

    # ------------------------------------------------------------------
    # Write / replay
    # ------------------------------------------------------------------
    def append(
        self, deltas: "list[Delta] | tuple[Delta, ...]", *, fingerprint: str
    ) -> int:
        """Journal one batch; returns its sequence number.

        ``fingerprint`` is the content fingerprint of the tensor the
        batch produces (the next batch's base).  The line is flushed and
        fsynced before returning, matching the checkpoint journal's
        durability.
        """
        record = {
            "kind": "batch",
            "seq": len(self._batches),
            "deltas": deltas_to_payload(list(deltas)),
            "fingerprint": fingerprint,
        }
        with open(self.path, "a") as handle:
            self.io.append_line("delta", handle, json.dumps(record))
        self._batches.append(record)
        return record["seq"]

    def replay(self, dataset: Dataset3D) -> Dataset3D:
        """Re-apply every batch to ``dataset`` (which must be the base).

        Each step's result is verified against the journalled
        fingerprint, so a log spliced onto the wrong tensor fails at
        the first divergence instead of silently drifting.
        """
        if dataset_fingerprint(dataset) != self.fingerprint:
            raise DeltaLogMismatchError(
                "replay base does not match the log's base fingerprint"
            )
        current = dataset
        for record in self._batches:
            current = apply_deltas(
                current, deltas_from_payload(record["deltas"])
            ).dataset
            if dataset_fingerprint(current) != record["fingerprint"]:
                raise DeltaLogMismatchError(
                    f"batch {record['seq']} replayed to a different tensor "
                    "than the journal recorded"
                )
        return current


def _load_log(path: Path) -> tuple["dict | None", list[dict]]:
    """Read a delta log, tolerating a truncated trailing line."""
    header: "dict | None" = None
    batches: list[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            if not isinstance(record, dict):
                break
            if record.get("kind") == "header":
                header = record
            elif record.get("kind") == "batch":
                if record.get("seq") != len(batches) or "fingerprint" not in record:
                    break
                try:
                    deltas_from_payload(record.get("deltas"))
                except (ValueError, KeyError, TypeError):
                    break
                batches.append(record)
            else:
                break
    return header, batches
