"""Dynamic FCC maintenance and out-of-core datasets (``repro.stream``).

The paper mines a static tensor that fits in RAM.  This package covers
the two workloads beyond that setting:

* **Dynamic maintenance** — a production tensor receives cell edits and
  slice appends/drops over time.  :func:`apply_deltas` applies a typed
  delta batch (:class:`SetCell` / :class:`ClearCell` /
  :class:`AppendSlice` / :class:`DropSlice`), :class:`DeltaLog` journals
  batches with the checkpoint layer's fingerprint discipline, and
  :func:`maintain` / :class:`IncrementalMaintainer` update an existing
  FCC result to the edited tensor — patching surviving cubes and
  re-mining only the height subsets that intersect the dirty region —
  with output bit-identical to a fresh ``mine()``.
* **Out-of-core mining** — :class:`MmapDatasetStore` persists packed
  uint64 grids as memory-mapped ``.npy`` files
  (:meth:`repro.core.dataset.Dataset3D.open_mmap`), and
  :func:`stream_mine` runs RSM over such a mapping in bounded memory:
  representative slices fold chunk-by-chunk with mapped pages released
  as soon as they are consumed, optionally after a diamond-dicing
  prefilter (:func:`diamond_dice`) shrinks the active region.

See ``docs/streaming.md`` for delta semantics, the mmap layout, and the
service's cache-patching rules.
"""

from .delta import (
    AppendSlice,
    ClearCell,
    Delta,
    DeltaApplication,
    DeltaLog,
    DeltaLogMismatchError,
    DropSlice,
    SetCell,
    apply_deltas,
    delta_from_dict,
    delta_to_dict,
    deltas_from_payload,
    deltas_to_payload,
)
from .maintain import IncrementalMaintainer, maintain
from .outofcore import DiceRegion, diamond_dice, stream_mine
from .store import MmapDatasetStore, StreamingSliceWriter

__all__ = [
    "SetCell",
    "ClearCell",
    "AppendSlice",
    "DropSlice",
    "Delta",
    "DeltaApplication",
    "apply_deltas",
    "delta_to_dict",
    "delta_from_dict",
    "deltas_to_payload",
    "deltas_from_payload",
    "DeltaLog",
    "DeltaLogMismatchError",
    "maintain",
    "IncrementalMaintainer",
    "MmapDatasetStore",
    "StreamingSliceWriter",
    "stream_mine",
    "diamond_dice",
    "DiceRegion",
]
