"""Incremental FCC maintenance under arbitrary delta batches.

This module promotes :mod:`repro.rsm.incremental` (height-slice appends
only) to the general case: any batch of cell edits and slice
appends/drops along any axis.  Given the old tensor ``O`` with its
*complete* FCC set ``F`` at thresholds ``T``, and a delta batch
producing ``O'`` with dirty height set ``D``
(:func:`repro.stream.delta.apply_deltas`), every FCC of ``O'`` falls in
exactly one of two classes:

1. **Clean-heights cubes** (``H ∩ D = ∅``).  Clean slices are
   bit-identical to their old counterparts over surviving
   rows/columns, so such a cube's region was all-ones in ``O`` too;
   its closure *in the old tensor* is some ``F_old ∈ F``.  Patching
   ``F_old`` — remap its masks through the axis index maps, keep its
   clean heights, swap its dirty heights for the dirty heights that
   cover its (remapped) row×column region in ``O'``, and re-close in
   ``O'`` — lands exactly back on the cube: the patched seed contains
   its region, and no closed cube can strictly contain a closed cube
   (growing rows/columns only shrinks the height support back).  One
   linear pass over ``F`` therefore recovers every clean-heights FCC.
2. **Dirty cubes** (``H ∩ D ≠ ∅``).  RSM produces each FCC exactly
   once, from the height subset equal to its height support — which
   here intersects ``D``.  Re-running RSM restricted to subsets that
   intersect ``D`` finds all of them and skips everything else.

The union of both passes is deduplicated and closure-revalidated by the
parallel layer's :func:`~repro.parallel.sharding.merge_shard_results`,
so the returned result is bit-identical (same canonical cube list) to a
fresh ``mine()`` of ``O'`` — the property the hypothesis differential
suite in ``tests/test_stream_maintain.py`` checks on random batches.

Cost: row/column structure edits dirty every height (full re-mine, by
construction), but the common streaming workload — cell edits and
height appends/drops — re-mines only the subsets through the touched
heights, which ``BENCH_stream.json`` shows is several times cheaper
than mining from scratch.
"""

from __future__ import annotations

import time

from ..core.bitset import bit_count
from ..core.closure import ClosureCache, close
from ..core.constraints import Thresholds
from ..core.cube import Cube
from ..core.dataset import Dataset3D
from ..core.result import MiningResult, MiningStats
from ..fcp import FCPMiner, get_fcp_miner
from ..obs.metrics import MiningMetrics
from ..parallel.sharding import merge_shard_results
from ..rsm.postprune import height_closed_in
from ..rsm.slices import iter_size_slices
from .delta import Delta, DeltaApplication, apply_deltas

__all__ = ["maintain", "IncrementalMaintainer"]


def _remap(mask: int, index_map: tuple) -> int:
    """Map a bitmask through an old→new index map (dropped bits vanish)."""
    out = 0
    while mask:
        low = mask & -mask
        new_index = index_map[low.bit_length() - 1]
        if new_index is not None:
            out |= 1 << new_index
        mask ^= low
    return out


def maintain(
    dataset: Dataset3D,
    result: MiningResult,
    deltas: "list[Delta] | tuple[Delta, ...]",
    thresholds: "Thresholds | None" = None,
    *,
    fcp_miner: "str | FCPMiner" = "dminer",
    metrics: "MiningMetrics | None" = None,
) -> tuple[Dataset3D, MiningResult]:
    """Apply a delta batch and update an FCC result to the new tensor.

    Parameters
    ----------
    dataset:
        The old tensor.  ``result`` must be its *complete* FCC set at
        ``thresholds`` (not validated here; see
        :func:`repro.core.verify.verify_result`) — maintenance patches
        and extends that set, it cannot conjure cubes an incomplete
        input was missing.
    result:
        The old mining result.
    deltas:
        The batch, applied in order
        (:func:`repro.stream.delta.apply_deltas`).
    thresholds:
        Defaults to ``result.thresholds``.

    Returns ``(new_dataset, new_result)`` with ``new_result``
    bit-identical to a fresh ``mine(new_dataset, thresholds)``.
    """
    if thresholds is None:
        thresholds = result.thresholds
    if thresholds is None:
        raise ValueError("thresholds are required (argument or result metadata)")
    miner = get_fcp_miner(fcp_miner) if isinstance(fcp_miner, str) else fcp_miner
    if metrics is None:
        metrics = MiningMetrics()
    start = time.perf_counter()

    application = apply_deltas(dataset, deltas)
    new = application.dataset
    updated = _maintain_applied(
        new, result, application, thresholds, miner, metrics, start
    )
    return new, updated


def _maintain_applied(
    new: Dataset3D,
    result: MiningResult,
    application: DeltaApplication,
    thresholds: Thresholds,
    miner: FCPMiner,
    metrics: MiningMetrics,
    start: float,
) -> MiningResult:
    dirty = application.dirty_heights
    metrics.deltas_applied += application.n_deltas
    cubes_patched = 0
    subsets_remined = 0

    triples: set[tuple[int, int, int]] = set()
    kernel = new.kernel
    grid = new.ones_grid()
    cache = ClosureCache()

    # --- Pass 1: patch the surviving cubes ----------------------------
    for cube in result:
        rows = _remap(cube.rows, application.row_map)
        columns = _remap(cube.columns, application.column_map)
        if rows == 0 or columns == 0:
            continue
        clean = _remap(cube.heights, application.height_map) & ~dirty
        covering = (
            kernel.grid_supporting_heights(grid, rows, columns, candidates=dirty)
            if dirty
            else 0
        )
        heights = clean | covering
        if heights == 0:
            continue
        patched = close(new, Cube(heights, rows, columns), cache=cache)
        triples.add((patched.heights, patched.rows, patched.columns))
        cubes_patched += 1

    # --- Pass 2: re-mine the height subsets touching the dirty set ---
    # The prefix-folded enumerator amortizes slice folds across
    # neighbouring subsets exactly like a fresh RSM run; clean subsets
    # only pay that amortized fold, never the 2D mine.
    min_h, min_r, min_c = thresholds.as_tuple()
    if dirty and thresholds.feasible_for_shape(new.shape):
        slice_cells = new.n_rows * new.n_columns
        for size in range(max(min_h, 1), new.n_heights + 1):
            if size * slice_cells < thresholds.min_volume:
                continue
            for heights, rs in iter_size_slices(new, size):
                if heights & dirty == 0:
                    continue
                subsets_remined += 1
                for pattern in miner.mine(rs, min_rows=min_r, min_columns=min_c):
                    volume = size * pattern.row_support * pattern.column_support
                    if volume < thresholds.min_volume:
                        continue
                    if height_closed_in(
                        new, heights, pattern.rows, pattern.columns, metrics=metrics
                    ):
                        triples.add((heights, pattern.rows, pattern.columns))

    metrics.cubes_patched += cubes_patched
    metrics.subsets_remined += subsets_remined
    metrics.rs_slices_mined += subsets_remined

    kept = merge_shard_results(new, thresholds, sorted(triples), metrics=metrics)
    base = result.algorithm
    if base.startswith("stream[") and base.endswith("]"):
        base = base[len("stream[") : -1]
    return MiningResult(
        cubes=[Cube(*triple) for triple in kept],
        algorithm=f"stream[{base}]",
        thresholds=thresholds,
        dataset_shape=new.shape,
        elapsed_seconds=time.perf_counter() - start,
        stats=MiningStats(
            metrics=metrics,
            extra={
                "stream": {
                    "deltas_applied": application.n_deltas,
                    "dirty_heights": bit_count(dirty),
                    "cubes_patched": cubes_patched,
                    "subsets_remined": subsets_remined,
                    "old_cubes": len(result),
                }
            },
        ),
    )


class IncrementalMaintainer:
    """Stateful façade over :func:`maintain` for a long-lived tensor.

    Holds the current ``(dataset, result)`` pair and folds delta
    batches into it::

        keeper = IncrementalMaintainer(dataset, mine(dataset, t))
        result = keeper.apply([SetCell(0, 3, 5), DropSlice(0, 2)])

    Each :meth:`apply` is exact: after any number of batches,
    ``keeper.result`` is bit-identical to a fresh mine of
    ``keeper.dataset``.
    """

    def __init__(
        self,
        dataset: Dataset3D,
        result: MiningResult,
        thresholds: "Thresholds | None" = None,
        *,
        fcp_miner: "str | FCPMiner" = "dminer",
    ) -> None:
        thresholds = thresholds if thresholds is not None else result.thresholds
        if thresholds is None:
            raise ValueError(
                "thresholds are required (argument or result metadata)"
            )
        self._dataset = dataset
        self._result = result
        self.thresholds = thresholds
        self._miner = (
            get_fcp_miner(fcp_miner) if isinstance(fcp_miner, str) else fcp_miner
        )

    @property
    def dataset(self) -> Dataset3D:
        """The current tensor (after every applied batch)."""
        return self._dataset

    @property
    def result(self) -> MiningResult:
        """The current FCC set (bit-identical to a fresh mine)."""
        return self._result

    def apply(
        self,
        deltas: "list[Delta] | tuple[Delta, ...]",
        *,
        metrics: "MiningMetrics | None" = None,
    ) -> MiningResult:
        """Fold one delta batch into the maintained state."""
        self._dataset, self._result = maintain(
            self._dataset,
            self._result,
            deltas,
            self.thresholds,
            fcp_miner=self._miner,
            metrics=metrics,
        )
        return self._result
