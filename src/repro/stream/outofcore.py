"""Out-of-core RSM: bounded-memory mining over memory-mapped grids.

:func:`stream_mine` is RSM's base-height loop
(:mod:`repro.rsm.algorithm`) restructured so no step ever needs the
whole tensor resident: representative slices fold chunk-of-rows by
chunk-of-rows straight off the packed word grid — a memory-mapped
``.npy`` from :class:`repro.stream.store.MmapDatasetStore` — and the
mapped pages are released (``madvise(MADV_DONTNEED)``) as soon as each
chunk is folded.  Peak memory is the chunk buffers plus one
representative slice, independent of the tensor's packed size.

For large sparse tensors the 2D mining of full-size representative
slices still dominates, so ``dice=True`` first runs **diamond dicing**
(Webb, Kaser & Lemire — see ``PAPERS.md``): iteratively prune every
height/row/column that provably cannot belong to any
threshold-satisfying cube, using only streaming count passes.  The
conditions are necessary *and* the pruning is exact for FCC mining —
members of a surviving cube keep each other qualified in every round,
and a pruned slice can never cover a surviving cube's region (it would
have qualified) — so mining the small diced subtensor and mapping the
masks back yields exactly the FCCs of the original tensor.
"""

from __future__ import annotations

import time
from itertools import combinations

import numpy as np

from ..core.constraints import Thresholds
from ..core.cube import Cube
from ..core.dataset import Dataset3D
from ..core.kernels import (
    release_mapped_pages,
    words_from_tensor,
    words_per_row,
)
from ..core.kernels.base import WORD_DTYPE
from ..core.result import MiningResult, MiningStats
from ..fcp import FCPMiner, get_fcp_miner
from ..fcp.matrix import BinaryMatrix
from ..obs.metrics import MiningMetrics
from ..rsm.postprune import height_closed_in

__all__ = ["DiceRegion", "diamond_dice", "stream_mine"]


class DiceRegion:
    """The surviving region of a diamond-dicing pass.

    ``heights`` / ``rows`` / ``columns`` are boolean keep-vectors over
    the original axes.
    """

    def __init__(
        self, heights: np.ndarray, rows: np.ndarray, columns: np.ndarray
    ) -> None:
        self.heights = heights
        self.rows = rows
        self.columns = columns

    @property
    def shape(self) -> tuple[int, int, int]:
        """Size of the surviving subtensor."""
        return (
            int(self.heights.sum()),
            int(self.rows.sum()),
            int(self.columns.sum()),
        )

    def is_empty(self) -> bool:
        return min(self.shape) == 0


def _packed_grid(dataset: Dataset3D) -> np.ndarray:
    """The ``(l, n, words)`` word grid to stream over.

    On a words-native kernel this is the dataset's own ones-grid — for
    a dataset opened with :meth:`Dataset3D.open_mmap`, the live file
    mapping.  Other kernels pack an in-memory copy (correct, but
    without the out-of-core benefit).
    """
    if dataset.kernel.words_native:
        return np.asarray(dataset.ones_grid())
    return words_from_tensor(np.asarray(dataset.data, dtype=bool))


def _pack_keep_columns(keep: np.ndarray, words: int) -> np.ndarray:
    """A boolean column keep-vector as one packed word row."""
    bits = np.packbits(keep, bitorder="little")
    padded = np.zeros(words * 8, dtype=np.uint8)
    padded[: len(bits)] = bits
    return padded.view(WORD_DTYPE)


def _remap_up(mask: int, index: np.ndarray) -> int:
    """Lift a mask over subtensor indices back to original indices."""
    out = 0
    while mask:
        low = mask & -mask
        out |= 1 << int(index[low.bit_length() - 1])
        mask ^= low
    return out


# ----------------------------------------------------------------------
# Diamond dicing
# ----------------------------------------------------------------------
def diamond_dice(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    chunk_rows: int = 2048,
    metrics: "MiningMetrics | None" = None,
    max_rounds: int = 64,
) -> DiceRegion:
    """Prune every slice that cannot join a threshold-satisfying cube.

    Iterates three necessary conditions to a fixpoint:

    * a row survives when, in at least ``min_h`` surviving heights, it
      holds ``>= min_c`` ones within the surviving columns;
    * a column survives when at least ``min_h`` surviving heights give
      it ``>= min_r`` ones within the surviving rows;
    * a height survives when it has ``>= min_r`` qualifying rows and
      ``>= min_c`` qualifying columns.

    Each pass reads the packed grid one row-chunk at a time and
    releases the mapped pages per height slice, so the resident set
    stays ``O(chunk_rows x words)`` regardless of tensor size.
    """
    l, n, m = dataset.shape
    min_h, min_r, min_c = thresholds.as_tuple()
    grid = _packed_grid(dataset)
    words = words_per_row(m)
    kept_h = np.ones(l, dtype=bool)
    kept_r = np.ones(n, dtype=bool)
    kept_c = np.ones(m, dtype=bool)
    chunk_rows = max(int(chunk_rows), 1)

    for _ in range(max_rounds):
        column_words = _pack_keep_columns(kept_c, words)
        row_qualifies = np.zeros(n, dtype=np.int64)
        column_qualifies = np.zeros(m, dtype=np.int64)
        new_kept_h = kept_h.copy()
        for k in range(l):
            if not kept_h[k]:
                continue
            qualifying_rows = 0
            column_sum = np.zeros(m, dtype=np.int64)
            for r0 in range(0, n, chunk_rows):
                r1 = min(n, r0 + chunk_rows)
                block = np.bitwise_and(grid[k, r0:r1], column_words)
                counts = np.bitwise_count(block).sum(axis=1)
                qualifies = (counts >= min_c) & kept_r[r0:r1]
                qualifying_rows += int(qualifies.sum())
                row_qualifies[r0:r1] += qualifies
                selected = block[kept_r[r0:r1]]
                if selected.size:
                    bits = np.unpackbits(
                        selected.view(np.uint8),
                        axis=1,
                        count=m,
                        bitorder="little",
                    )
                    column_sum += bits.sum(axis=0, dtype=np.int64)
                if metrics is not None:
                    metrics.stream_chunks_read += 1
            release_mapped_pages(grid)
            qualifying_columns = column_sum >= min_r
            column_qualifies += qualifying_columns
            new_kept_h[k] = (
                qualifying_rows >= min_r
                and int(qualifying_columns.sum()) >= min_c
            )
        new_kept_r = kept_r & (row_qualifies >= min_h)
        new_kept_c = kept_c & (column_qualifies >= min_h)
        unchanged = (
            bool((new_kept_h == kept_h).all())
            and bool((new_kept_r == kept_r).all())
            and bool((new_kept_c == kept_c).all())
        )
        kept_h, kept_r, kept_c = new_kept_h, new_kept_r, new_kept_c
        if unchanged:
            break
    return DiceRegion(kept_h, kept_r, kept_c)


def _extract_region(
    dataset: Dataset3D,
    region: DiceRegion,
    metrics: "MiningMetrics | None",
) -> tuple[Dataset3D, np.ndarray, np.ndarray, np.ndarray]:
    """Materialize the diced subtensor (kept rows unpack one height at a
    time, with mapped pages released in between)."""
    grid = _packed_grid(dataset)
    m = dataset.n_columns
    height_index = np.flatnonzero(region.heights)
    row_index = np.flatnonzero(region.rows)
    column_index = np.flatnonzero(region.columns)
    small = np.empty(
        (len(height_index), len(row_index), len(column_index)), dtype=bool
    )
    for a, k in enumerate(height_index):
        selected = grid[k][region.rows]
        bits = np.unpackbits(
            selected.view(np.uint8), axis=1, count=m, bitorder="little"
        )
        small[a] = bits[:, column_index].astype(bool)
        release_mapped_pages(grid)
        if metrics is not None:
            metrics.stream_chunks_read += 1
    labels = (
        [dataset.height_labels[int(i)] for i in height_index],
        [dataset.row_labels[int(i)] for i in row_index],
        [dataset.column_labels[int(i)] for i in column_index],
    )
    diced = Dataset3D(
        small,
        height_labels=labels[0],
        row_labels=labels[1],
        column_labels=labels[2],
        kernel=dataset.kernel,
    )
    return diced, height_index, row_index, column_index


# ----------------------------------------------------------------------
# The out-of-core miner
# ----------------------------------------------------------------------
def stream_mine(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    fcp_miner: "str | FCPMiner" = "dminer",
    dice: bool = False,
    chunk_rows: int = 2048,
    metrics: "MiningMetrics | None" = None,
) -> MiningResult:
    """Mine FCCs with RSM in bounded memory over a (possibly mapped) grid.

    With ``dice=False`` every height subset's representative slice
    folds chunk-by-chunk off the packed grid; with ``dice=True`` the
    diamond-dicing prefilter shrinks the tensor first and only the
    surviving region is mined (exact — see module docstring).  Results
    are bit-identical to ``mine(dataset, thresholds, algorithm="rsm")``
    either way; ``stats.extra["stream"]`` reports the chunk traffic.
    """
    miner = get_fcp_miner(fcp_miner) if isinstance(fcp_miner, str) else fcp_miner
    if metrics is None:
        metrics = MiningMetrics()
    start = time.perf_counter()
    chunks_before = metrics.stream_chunks_read
    min_h, min_r, min_c = thresholds.as_tuple()
    cubes: list[Cube] = []
    extra: dict = {"dice": bool(dice)}

    if not thresholds.feasible_for_shape(dataset.shape):
        pass
    elif dice:
        region = diamond_dice(
            dataset, thresholds, chunk_rows=chunk_rows, metrics=metrics
        )
        extra["dice_kept_shape"] = list(region.shape)
        if not region.is_empty() and thresholds.feasible_for_shape(region.shape):
            diced, height_index, row_index, column_index = _extract_region(
                dataset, region, metrics
            )
            from ..rsm.algorithm import rsm_mine

            inner = rsm_mine(
                diced, thresholds, fcp_miner=miner, metrics=metrics
            )
            cubes = [
                Cube(
                    _remap_up(cube.heights, height_index),
                    _remap_up(cube.rows, row_index),
                    _remap_up(cube.columns, column_index),
                )
                for cube in inner
            ]
    else:
        cubes = _mine_streaming(
            dataset, thresholds, miner, chunk_rows, metrics
        )

    stream_stats = {
        "chunks_read": metrics.stream_chunks_read - chunks_before,
        "chunk_rows": int(chunk_rows),
        **extra,
    }
    return MiningResult(
        cubes=cubes,
        algorithm="stream-rsm[dice]" if dice else "stream-rsm",
        thresholds=thresholds,
        dataset_shape=dataset.shape,
        elapsed_seconds=time.perf_counter() - start,
        stats=MiningStats(metrics=metrics, extra={"stream": stream_stats}),
    )


def _mine_streaming(
    dataset: Dataset3D,
    thresholds: Thresholds,
    miner: FCPMiner,
    chunk_rows: int,
    metrics: MiningMetrics,
) -> list[Cube]:
    """RSM's base-height loop with chunk-folded representative slices."""
    l, n, m = dataset.shape
    min_h, min_r, min_c = thresholds.as_tuple()
    words = words_per_row(m)
    chunk_rows = max(int(chunk_rows), 1)
    slice_cells = n * m
    native = dataset.kernel.words_native
    grid = _packed_grid(dataset) if native else None
    cubes: list[Cube] = []
    for size in range(min_h, l + 1):
        if size * slice_cells < thresholds.min_volume:
            continue
        for subset in combinations(range(l), size):
            heights = 0
            for k in subset:
                heights |= 1 << k
            metrics.rs_slices_mined += 1
            if native:
                rs_words = np.empty((n, words), dtype=WORD_DTYPE)
                members = list(subset)
                for r0 in range(0, n, chunk_rows):
                    r1 = min(n, r0 + chunk_rows)
                    # Fold member slices one at a time through basic
                    # slicing (an advanced index materializes a
                    # members-wide copy and, on a mapped grid, faults a
                    # whole large folio per member stream), releasing
                    # pages every few members — this is what keeps peak
                    # RSS below the file size.
                    acc = np.array(grid[members[0], r0:r1])
                    for i in range(1, len(members)):
                        np.bitwise_and(acc, grid[members[i], r0:r1], out=acc)
                        if i % 8 == 0:
                            release_mapped_pages(grid)
                    rs_words[r0:r1] = acc
                    metrics.stream_chunks_read += len(members)
                    release_mapped_pages(grid)
                rs = BinaryMatrix.from_packed(rs_words, m, kernel=dataset.kernel)
            else:
                from ..rsm.slices import representative_slice

                rs = representative_slice(dataset, heights)
                metrics.stream_chunks_read += size
            for pattern in miner.mine(rs, min_rows=min_r, min_columns=min_c):
                volume = size * pattern.row_support * pattern.column_support
                if volume < thresholds.min_volume:
                    continue
                if height_closed_in(
                    dataset, heights, pattern.rows, pattern.columns, metrics=metrics
                ):
                    cubes.append(Cube(heights, pattern.rows, pattern.columns))
    return cubes
