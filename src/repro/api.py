"""Top-level convenience API.

:func:`mine` is the single entry point most users need: it picks an
algorithm by name, optionally applies CubeMiner's canonical transpose
(put the largest axis on columns, Section 5.2) while transparently
mapping thresholds and result cubes back to the caller's axis order.
"""

from __future__ import annotations

from .core.constraints import Thresholds
from .core.cube import Cube
from .core.dataset import Dataset3D
from .core.kernels import Kernel
from .core.result import MiningResult

__all__ = ["mine", "ALGORITHMS"]

#: Algorithm names accepted by :func:`mine`.
ALGORITHMS = ("cubeminer", "rsm", "reference", "parallel-cubeminer", "parallel-rsm")


def mine(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    algorithm: str = "cubeminer",
    auto_transpose: bool = False,
    kernel: str | Kernel | None = None,
    **options,
) -> MiningResult:
    """Mine all frequent closed cubes of ``dataset``.

    Parameters
    ----------
    dataset:
        The 3D boolean context (heights, rows, columns).
    thresholds:
        Minimum supports per axis, in the dataset's axis order.
    algorithm:
        One of :data:`ALGORITHMS`.  ``"cubeminer"`` (default) operates on
        the 3D tensor directly; ``"rsm"`` enumerates a base dimension and
        reuses a 2D FCP miner; ``"reference"`` is the exponential oracle
        (tiny inputs only); the ``parallel-*`` variants fan the task
        decomposition of Section 6 across worker processes.
    auto_transpose:
        When True, permute axes so the column axis is the largest before
        mining (CubeMiner's preprocessing heuristic) and map the found
        cubes back to the original axis order.
    kernel:
        Bitset backend override for this run (name or
        :class:`~repro.core.kernels.Kernel`); ``None`` keeps the
        dataset's own kernel (itself defaulting to ``REPRO_KERNEL`` /
        ``python-int``).  Backends never change the mined cubes.
    options:
        Forwarded to the selected algorithm (e.g. ``order=`` for
        CubeMiner, ``base_axis=`` / ``fcp_miner=`` for RSM,
        ``n_workers=`` for the parallel variants).
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
    if kernel is not None:
        dataset = dataset.with_kernel(kernel)

    if auto_transpose:
        return _mine_transposed(dataset, thresholds, algorithm, options)
    return _dispatch(dataset, thresholds, algorithm, options)


def _dispatch(
    dataset: Dataset3D,
    thresholds: Thresholds,
    algorithm: str,
    options: dict,
) -> MiningResult:
    # Local imports keep `import repro` light and avoid import cycles.
    if algorithm == "cubeminer":
        from .cubeminer.algorithm import cubeminer_mine

        return cubeminer_mine(dataset, thresholds, **options)
    if algorithm == "rsm":
        from .rsm.algorithm import rsm_mine

        return rsm_mine(dataset, thresholds, **options)
    if algorithm == "reference":
        from .core.reference import reference_mine

        return reference_mine(dataset, thresholds, **options)
    if algorithm == "parallel-cubeminer":
        from .parallel.executor import parallel_cubeminer_mine

        return parallel_cubeminer_mine(dataset, thresholds, **options)
    from .parallel.executor import parallel_rsm_mine

    return parallel_rsm_mine(dataset, thresholds, **options)


def _mine_transposed(
    dataset: Dataset3D,
    thresholds: Thresholds,
    algorithm: str,
    options: dict,
) -> MiningResult:
    """Mine on the canonical transpose and map cubes back."""
    import numpy as np

    order = tuple(int(axis) for axis in np.argsort(dataset.shape, kind="stable"))
    if order == (0, 1, 2):
        return _dispatch(dataset, thresholds, algorithm, options)
    transposed = dataset.transpose(order)  # type: ignore[arg-type]
    result = _dispatch(transposed, thresholds.permute(order), algorithm, options)  # type: ignore[arg-type]
    # order[new_axis] = old_axis; build the reverse map old_axis -> new_axis.
    inverse = [0, 0, 0]
    for new_axis, old_axis in enumerate(order):
        inverse[old_axis] = new_axis
    remapped = [
        Cube(*(
            (cube.heights, cube.rows, cube.columns)[inverse[old_axis]]
            for old_axis in range(3)
        ))
        for cube in result.cubes
    ]
    return MiningResult(
        cubes=remapped,
        algorithm=result.algorithm + "+transpose",
        thresholds=thresholds,
        dataset_shape=dataset.shape,
        elapsed_seconds=result.elapsed_seconds,
        stats=result.stats,
    )
