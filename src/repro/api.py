"""Top-level convenience API.

:func:`mine` is the single entry point most users need: it picks an
algorithm from a registry, applies per-algorithm typed options
(:mod:`repro.options`), threads the instrumentation surface (metrics,
events, progress, deadlines — :mod:`repro.obs`) and optionally mines on
CubeMiner's canonical transpose (largest axis on columns, Section 5.2)
while transparently mapping thresholds and result cubes back.

Third-party miners plug in through :func:`register_algorithm`; the
:data:`ALGORITHMS` tuple is derived from the registry, never
hand-maintained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .core.constraints import Thresholds
from .core.cube import Cube
from .core.dataset import Dataset3D
from .core.kernels import Kernel
from .core.result import MiningResult
from .obs import EventSink, MiningCancelled, MiningMetrics, ProgressController
from .options import (
    AlgorithmOptions,
    CubeMinerOptions,
    ParallelOptions,
    ReferenceOptions,
    RSMOptions,
)

__all__ = [
    "mine",
    "ALGORITHMS",
    "AlgorithmSpec",
    "register_algorithm",
    "unregister_algorithm",
    "get_algorithm",
]

#: A mining entry point: ``fn(dataset, thresholds, **kwargs) -> MiningResult``.
MinerFn = Callable[..., MiningResult]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registry entry for :func:`mine`.

    ``loader`` returns the mining function on first use — built-in specs
    import lazily so ``import repro`` stays light and cycle-free.
    """

    name: str
    loader: Callable[[], MinerFn]
    options_type: Optional[type] = None
    description: str = ""

    def resolve(self) -> MinerFn:
        return self.loader()


_REGISTRY: dict[str, AlgorithmSpec] = {}

#: Algorithm names accepted by :func:`mine` (derived from the registry).
ALGORITHMS: tuple[str, ...] = ()


def _refresh_names() -> None:
    global ALGORITHMS
    ALGORITHMS = tuple(_REGISTRY)


def register_algorithm(
    name: str,
    loader: Callable[[], MinerFn],
    *,
    options_type: Optional[type] = None,
    description: str = "",
    replace: bool = False,
) -> AlgorithmSpec:
    """Register a mining algorithm under ``name``.

    Parameters
    ----------
    name:
        Registry key, as passed to ``mine(..., algorithm=name)``.
    loader:
        Zero-argument callable returning the mining function
        ``fn(dataset, thresholds, **kwargs) -> MiningResult``.  Called
        on first dispatch (import your implementation inside it to keep
        registration cheap).  The function should accept the
        instrumentation keywords ``metrics`` / ``on_event`` /
        ``progress`` / ``deadline``.
    options_type:
        Optional typed options dataclass with a
        ``to_kwargs(algorithm)`` method (see :mod:`repro.options`).
    replace:
        Allow overwriting an existing entry; otherwise a duplicate name
        raises :class:`ValueError`.
    """
    if not replace and name in _REGISTRY:
        raise ValueError(f"algorithm {name!r} is already registered")
    spec = AlgorithmSpec(name, loader, options_type, description)
    _REGISTRY[name] = spec
    _refresh_names()
    return spec


def unregister_algorithm(name: str) -> None:
    """Remove a registered algorithm (KeyError if absent)."""
    del _REGISTRY[name]
    _refresh_names()


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registry entry by name (ValueError if absent)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {ALGORITHMS}"
        ) from None


def _load_cubeminer() -> MinerFn:
    from .cubeminer.algorithm import cubeminer_mine

    return cubeminer_mine


def _load_rsm() -> MinerFn:
    from .rsm.algorithm import rsm_mine

    return rsm_mine


def _load_reference() -> MinerFn:
    from .core.reference import reference_mine

    return reference_mine


def _load_parallel_cubeminer() -> MinerFn:
    from .parallel.executor import parallel_cubeminer_mine

    return parallel_cubeminer_mine


def _load_parallel_rsm() -> MinerFn:
    from .parallel.executor import parallel_rsm_mine

    return parallel_rsm_mine


register_algorithm(
    "cubeminer",
    _load_cubeminer,
    options_type=CubeMinerOptions,
    description="Direct 3D splitting-tree miner (Section 5).",
)
register_algorithm(
    "rsm",
    _load_rsm,
    options_type=RSMOptions,
    description="Representative Slice Mining over a 2D FCP miner (Section 4).",
)
register_algorithm(
    "reference",
    _load_reference,
    options_type=ReferenceOptions,
    description="Exponential brute-force oracle (tiny inputs only).",
)
register_algorithm(
    "parallel-cubeminer",
    _load_parallel_cubeminer,
    options_type=ParallelOptions,
    description="CubeMiner tree branches fanned across worker processes.",
)
register_algorithm(
    "parallel-rsm",
    _load_parallel_rsm,
    options_type=ParallelOptions,
    description="Representative slices fanned across worker processes.",
)


def mine(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    algorithm: str = "cubeminer",
    auto_transpose: bool = False,
    kernel: str | Kernel | None = None,
    options: AlgorithmOptions | None = None,
    metrics: MiningMetrics | None = None,
    on_event: EventSink | None = None,
    progress: "ProgressController | Callable | None" = None,
    deadline: float | None = None,
) -> MiningResult:
    """Mine all frequent closed cubes of ``dataset``.

    Parameters
    ----------
    dataset:
        The 3D boolean context (heights, rows, columns).
    thresholds:
        Minimum supports per axis, in the dataset's axis order.
    algorithm:
        One of :data:`ALGORITHMS` (or anything added through
        :func:`register_algorithm`).  ``"cubeminer"`` (default) operates
        on the 3D tensor directly; ``"rsm"`` enumerates a base dimension
        and reuses a 2D FCP miner; ``"reference"`` is the exponential
        oracle (tiny inputs only); the ``parallel-*`` variants fan the
        task decomposition of Section 6 across worker processes.
    auto_transpose:
        When True, permute axes so the column axis is the largest before
        mining (CubeMiner's preprocessing heuristic) and map the found
        cubes back to the original axis order.
    kernel:
        Bitset backend override for this run (name or
        :class:`~repro.core.kernels.Kernel`); ``None`` keeps the
        dataset's own kernel (itself defaulting to ``REPRO_KERNEL`` /
        ``python-int``).  Backends never change the mined cubes.
    options:
        Typed options dataclass matching the algorithm
        (:class:`~repro.options.CubeMinerOptions`,
        :class:`~repro.options.RSMOptions`,
        :class:`~repro.options.ParallelOptions`).  Passing a mismatched
        class raises :class:`TypeError`.  For the ``parallel-*``
        variants, :class:`~repro.options.ParallelOptions` also carries
        the fault-tolerance knobs (``retries``, ``task_timeout``,
        ``backoff``) and chunk-level checkpoint/resume
        (``checkpoint_path``, ``resume``) — see ``docs/robustness.md``.
    metrics:
        A :class:`~repro.obs.metrics.MiningMetrics` to accumulate into;
        a fresh counter set is attached to ``result.stats.metrics``
        either way.
    on_event:
        Optional sink receiving typed start/node/prune/slice/done
        events (:mod:`repro.obs.events`).
    progress:
        A :class:`~repro.obs.progress.ProgressController` or bare
        callback taking :class:`~repro.obs.progress.ProgressUpdate`.
    deadline:
        Wall-clock budget in seconds.  On expiry (or
        ``ProgressController.cancel()``) the run raises
        :class:`~repro.obs.progress.MiningCancelled` whose ``partial``
        attribute holds the cubes and metrics gathered so far.

    .. versionchanged:: 2.0
        The pre-1.1 loose-keyword path (``mine(..., order=...,
        n_workers=...)``) was removed after a deprecation cycle; the
        typed ``options=`` dataclasses are the only option channel.
        See ``docs/api.md`` for the keyword-by-keyword migration table.
    """
    spec = get_algorithm(algorithm)
    kwargs: dict = {}
    if options is not None:
        to_kwargs = getattr(options, "to_kwargs", None)
        if to_kwargs is None:
            raise TypeError(
                f"options must be a typed options dataclass with to_kwargs(), "
                f"got {type(options).__name__}"
            )
        kwargs.update(to_kwargs(algorithm))
    for key, value in (
        ("metrics", metrics),
        ("on_event", on_event),
        ("progress", progress),
        ("deadline", deadline),
    ):
        if value is not None:
            kwargs[key] = value
    if kernel is not None:
        dataset = dataset.with_kernel(kernel)

    # Force kernel resolution now and attribute any auto-selection
    # degradation (REPRO_KERNEL named an unavailable backend) to this
    # run's counters.  An explicitly requested unavailable kernel raises
    # KernelUnavailableError out of `dataset.kernel` instead.
    from .core.kernels import kernel_fallback_count

    before = kernel_fallback_count()
    dataset.kernel
    fallbacks = kernel_fallback_count() - before
    if fallbacks:
        run_metrics = kwargs.get("metrics")
        if run_metrics is None:
            run_metrics = kwargs["metrics"] = MiningMetrics()
        run_metrics.kernel_fallbacks += fallbacks

    if auto_transpose:
        return _mine_transposed(dataset, thresholds, spec, kwargs)
    return _dispatch(dataset, thresholds, spec, kwargs)


def _dispatch(
    dataset: Dataset3D,
    thresholds: Thresholds,
    spec: AlgorithmSpec,
    kwargs: dict,
) -> MiningResult:
    return spec.resolve()(dataset, thresholds, **kwargs)


def _mine_transposed(
    dataset: Dataset3D,
    thresholds: Thresholds,
    spec: AlgorithmSpec,
    kwargs: dict,
) -> MiningResult:
    """Mine on the canonical transpose and map cubes back.

    Cancellation still works: a ``MiningCancelled`` escaping the
    transposed run has its partial cubes mapped back to the caller's
    axis order before re-raising.
    """
    import numpy as np

    order = tuple(int(axis) for axis in np.argsort(dataset.shape, kind="stable"))
    if order == (0, 1, 2):
        return _dispatch(dataset, thresholds, spec, kwargs)
    transposed = dataset.transpose(order)  # type: ignore[arg-type]

    def map_back(result: MiningResult) -> MiningResult:
        # order[new_axis] = old_axis; build the reverse map old -> new.
        inverse = [0, 0, 0]
        for new_axis, old_axis in enumerate(order):
            inverse[old_axis] = new_axis
        remapped = [
            Cube(*(
                (cube.heights, cube.rows, cube.columns)[inverse[old_axis]]
                for old_axis in range(3)
            ))
            for cube in result.cubes
        ]
        return MiningResult(
            cubes=remapped,
            algorithm=result.algorithm + "+transpose",
            thresholds=thresholds,
            dataset_shape=dataset.shape,
            elapsed_seconds=result.elapsed_seconds,
            stats=result.stats,
        )

    try:
        result = _dispatch(transposed, thresholds.permute(order), spec, kwargs)  # type: ignore[arg-type]
    except MiningCancelled as exc:
        if exc.partial is not None:
            exc.partial = map_back(exc.partial)
        raise
    return map_back(result)
