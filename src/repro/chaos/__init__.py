"""Cross-layer chaos harness: deterministic fault injection + fsck.

This package generalizes :class:`repro.parallel.faults.FaultPlan`
beyond pool workers to the whole service stack:

* :mod:`repro.chaos.plan` — :class:`ChaosPlan`, a seedable schedule of
  filesystem, transport and worker faults addressed by (site, op).
* :mod:`repro.chaos.io` — :class:`IOShim`, the hardened atomic-write /
  journal-append surface every store routes disk traffic through, and
  :class:`ChaosShim`, the same surface with a plan deciding each call;
  :class:`StoreCorruptionError` is the typed verify-on-read failure.
* :mod:`repro.chaos.fsck` — :func:`fsck_data_dir`, the scanner/repairer
  behind ``repro-fcc fsck``.

Inject by constructing the app over a chaos shim::

    from repro.chaos import ChaosPlan, ChaosShim
    plan = ChaosPlan.single("enospc", site="cache", op="write")
    app = ServiceApp(data_dir, io=ChaosShim(plan))

``tests/test_chaos.py`` is the standing battery: under every scheduled
fault the daemon either serves a result bit-identical to a clean mine
or returns a typed error — never a crash, never silent cube loss.
"""

from .fsck import FsckIssue, FsckReport, fsck_data_dir
from .io import ChaosShim, IOShim, StoreCorruptionError, sha256_bytes, sha256_file
from .plan import CHAOS_FAULT_KINDS, ChaosPlan, ChaosRule

__all__ = [
    "CHAOS_FAULT_KINDS",
    "ChaosPlan",
    "ChaosRule",
    "IOShim",
    "ChaosShim",
    "StoreCorruptionError",
    "sha256_bytes",
    "sha256_file",
    "FsckIssue",
    "FsckReport",
    "fsck_data_dir",
]
