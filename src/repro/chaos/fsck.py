"""``repro-fcc fsck``: scan every on-disk store for damage, and repair.

One service data directory holds five stores (``datasets/``,
``cache/``, ``jobs/``, ``deltas/``, ``mmap/``), each with its own
integrity invariants.  :func:`fsck_data_dir` walks all of them and
reports every violation as a typed :class:`FsckIssue`:

* **errors** — corruption: unreadable metadata, checksum or
  fingerprint mismatches, delta logs without a readable header,
  corrupt job results.  A daemon must not serve from these
  (``repro-fcc serve`` refuses to start over them, exit 65).
* **warnings** — debris: orphaned temp files, half-registered entry
  pairs, dead job directories, delta logs whose base dataset is no
  longer registered.  Harmless to correctness, but they accumulate.

With ``repair=True`` corrupt and orphaned items are moved into
``<data_dir>/quarantined/fsck/`` (never deleted — an operator can
post-mortem them) and stale temps are removed; a second scan of the
repaired tree reports clean.  ``queued``/``running`` jobs are *not*
issues: they are the restart-recovery story and are counted in
``report.scanned["jobs_resumable"]`` instead.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from .io import sha256_file

__all__ = ["FsckIssue", "FsckReport", "fsck_data_dir"]

#: Subdirectories of a data dir that fsck never scans for issues.
_QUARANTINE_DIRS = frozenset({"quarantined"})


def _is_temp(path: Path) -> bool:
    return path.name.startswith(".") and ".tmp" in path.name


@dataclass
class FsckIssue:
    """One integrity violation found in one store."""

    store: str
    path: str
    kind: str
    detail: str
    severity: str = "error"
    repaired: bool = False

    def to_dict(self) -> dict:
        return {
            "store": self.store,
            "path": self.path,
            "kind": self.kind,
            "detail": self.detail,
            "severity": self.severity,
            "repaired": self.repaired,
        }

    def format(self) -> str:
        mark = "repaired" if self.repaired else self.severity
        return f"[{mark}] {self.store}: {self.kind}: {self.path} ({self.detail})"


@dataclass
class FsckReport:
    """Everything one scan found, plus what a repair pass did."""

    root: str
    issues: list[FsckIssue] = field(default_factory=list)
    scanned: dict[str, int] = field(default_factory=dict)
    repaired: int = 0

    @property
    def errors(self) -> list[FsckIssue]:
        return [i for i in self.issues if i.severity == "error" and not i.repaired]

    @property
    def warnings(self) -> list[FsckIssue]:
        return [i for i in self.issues if i.severity == "warn" and not i.repaired]

    @property
    def clean(self) -> bool:
        """True when nothing unrepaired remains."""
        return not self.errors and not self.warnings

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "clean": self.clean,
            "scanned": dict(self.scanned),
            "repaired": self.repaired,
            "issues": [issue.to_dict() for issue in self.issues],
        }

    def summary(self) -> str:
        lines = [
            f"fsck {self.root}: "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{self.repaired} repaired"
        ]
        for issue in self.issues:
            lines.append("  " + issue.format())
        counted = ", ".join(f"{k}={v}" for k, v in sorted(self.scanned.items()))
        if counted:
            lines.append(f"  scanned: {counted}")
        lines.append("clean" if self.clean else "NOT CLEAN")
        return "\n".join(lines)


class _Fsck:
    def __init__(self, data_dir: Path, *, repair: bool, verify_checksums: bool):
        self.root = data_dir
        self.repair = repair
        self.verify = verify_checksums
        self.report = FsckReport(root=str(data_dir))
        self._quarantine_root = data_dir / "quarantined" / "fsck"

    # ------------------------------------------------------------------
    # Issue plumbing
    # ------------------------------------------------------------------
    def _issue(
        self,
        store: str,
        path: Path,
        kind: str,
        detail: str,
        *,
        severity: str = "error",
    ) -> FsckIssue:
        issue = FsckIssue(
            store=store,
            path=str(path.relative_to(self.root)) if path.is_relative_to(self.root) else str(path),
            kind=kind,
            detail=detail,
            severity=severity,
        )
        self.report.issues.append(issue)
        return issue

    def _quarantine(self, issue: FsckIssue, *paths: Path) -> None:
        """Move the offending files out of the store (repair mode)."""
        if not self.repair:
            return
        self._quarantine_root.mkdir(parents=True, exist_ok=True)
        for path in paths:
            if not path.exists():
                continue
            dest = self._quarantine_root / path.name
            counter = 1
            while dest.exists():
                counter += 1
                dest = self._quarantine_root / f"{path.name}.{counter}"
            shutil.move(str(path), str(dest))
        issue.repaired = True
        self.report.repaired += 1

    def _remove(self, issue: FsckIssue, path: Path) -> None:
        """Delete debris outright (repair mode; temps only)."""
        if not self.repair:
            return
        try:
            path.unlink()
        except OSError:
            return
        issue.repaired = True
        self.report.repaired += 1

    def _sweep_temps(self, store: str, directory: Path) -> None:
        for path in sorted(directory.glob(".*")):
            if path.is_file() and _is_temp(path):
                issue = self._issue(
                    store, path, "stale-temp", "orphaned temporary file",
                    severity="warn",
                )
                self._remove(issue, path)

    # ------------------------------------------------------------------
    # Store scanners
    # ------------------------------------------------------------------
    def run(self) -> FsckReport:
        self._scan_registry(self.root / "datasets")
        self._scan_cache(self.root / "cache")
        self._scan_jobs(self.root / "jobs")
        self._scan_deltas(self.root / "deltas")
        self._scan_mmap(self.root / "mmap")
        quarantined = self.root / "jobs" / "quarantined"
        if quarantined.is_dir():
            self.report.scanned["jobs_quarantined"] = sum(
                1 for p in quarantined.iterdir() if p.is_dir()
            )
        return self.report

    def _scan_registry(self, root: Path) -> None:
        if not root.is_dir():
            return
        self._sweep_temps("datasets", root)
        count = 0
        for meta_path in sorted(root.glob("*.json")):
            if meta_path.name.startswith("."):
                continue
            count += 1
            fp = meta_path.stem
            npz = root / f"{fp}.npz"
            try:
                meta = json.loads(meta_path.read_text())
                recorded = str(meta["fingerprint"])
            except (ValueError, KeyError) as error:
                issue = self._issue(
                    "datasets", meta_path, "bad-meta", f"unreadable metadata: {error}"
                )
                self._quarantine(issue, meta_path, npz)
                continue
            if recorded != fp:
                issue = self._issue(
                    "datasets",
                    meta_path,
                    "fingerprint-mismatch",
                    f"metadata names {recorded[:12]}, file named {fp[:12]}",
                )
                self._quarantine(issue, meta_path, npz)
                continue
            if not npz.exists():
                issue = self._issue(
                    "datasets", meta_path, "orphan-meta",
                    "metadata without its .npz payload", severity="warn",
                )
                self._quarantine(issue, meta_path)
                continue
            if self.verify:
                try:
                    from ..core.dataset import Dataset3D
                    from ..io import dataset_fingerprint

                    actual = dataset_fingerprint(Dataset3D.load_npz(npz))
                except Exception as error:  # noqa: BLE001 - scan any garbage
                    actual = f"<unreadable: {error}>"
                if actual != fp:
                    issue = self._issue(
                        "datasets", npz, "content-mismatch",
                        f"stored tensor hashes to {actual[:24]}, not {fp[:12]}",
                    )
                    self._quarantine(issue, meta_path, npz)
        for npz in sorted(root.glob("*.npz")):
            if npz.name.startswith("."):
                continue
            if not (root / f"{npz.stem}.json").exists():
                issue = self._issue(
                    "datasets", npz, "orphan-payload",
                    ".npz without its metadata", severity="warn",
                )
                self._quarantine(issue, npz)
        self.report.scanned["datasets"] = count

    def _scan_cache(self, root: Path) -> None:
        if not root.is_dir():
            return
        count = 0
        for algo_dir in sorted(p for p in root.glob("*/*") if p.is_dir()):
            self._sweep_temps("cache", algo_dir)
        for path in sorted(root.glob("*/*/*.json")):
            if path.name.startswith("."):
                continue
            count += 1
            try:
                parts = [int(p) for p in path.stem.split("-")]
                if len(parts) != 4:
                    raise ValueError("bad threshold key")
            except (ValueError, TypeError):
                issue = self._issue(
                    "cache", path, "bad-key",
                    "filename is not a <h>-<r>-<c>-<v> threshold key",
                    severity="warn",
                )
                self._quarantine(issue, path)
                continue
            try:
                doc = json.loads(path.read_text())
            except ValueError as error:
                issue = self._issue(
                    "cache", path, "unreadable", f"not valid JSON: {error}"
                )
                self._quarantine(issue, path)
                continue
            if isinstance(doc, dict) and "sha256" in doc and "payload" in doc:
                body = json.dumps(doc["payload"]).encode()
                import hashlib

                if hashlib.sha256(body).hexdigest() != doc["sha256"]:
                    issue = self._issue(
                        "cache", path, "checksum-mismatch",
                        "payload does not match its recorded sha256",
                    )
                    self._quarantine(issue, path)
        self.report.scanned["cache_entries"] = count

    def _scan_jobs(self, root: Path) -> None:
        if not root.is_dir():
            return
        count = resumable = 0
        for job_dir in sorted(p for p in root.iterdir() if p.is_dir()):
            if job_dir.name in _QUARANTINE_DIRS:
                continue
            count += 1
            self._sweep_temps("jobs", job_dir)
            job_json = job_dir / "job.json"
            if not job_json.exists():
                issue = self._issue(
                    "jobs", job_dir, "dead-job-dir",
                    "job directory without a job.json record", severity="warn",
                )
                self._quarantine(issue, job_dir)
                continue
            try:
                record = json.loads(job_json.read_text())
                status = record["status"]
                job_id = record["id"]
            except (ValueError, KeyError) as error:
                issue = self._issue(
                    "jobs", job_json, "bad-record", f"unreadable job record: {error}"
                )
                self._quarantine(issue, job_dir)
                continue
            if job_id != job_dir.name:
                issue = self._issue(
                    "jobs", job_json, "id-mismatch",
                    f"record id {job_id!r} in directory {job_dir.name!r}",
                )
                self._quarantine(issue, job_dir)
                continue
            if status in ("queued", "running"):
                resumable += 1
            result = job_dir / "result.json"
            digest = job_dir / "result.sha256"
            if result.exists() and digest.exists():
                try:
                    recorded = digest.read_text().strip()
                except OSError:
                    recorded = ""
                if self.verify and sha256_file(result) != recorded:
                    issue = self._issue(
                        "jobs", result, "checksum-mismatch",
                        "result.json does not match its recorded sha256",
                    )
                    self._quarantine(issue, job_dir)
        self.report.scanned["jobs"] = count
        self.report.scanned["jobs_resumable"] = resumable

    def _scan_deltas(self, root: Path) -> None:
        if not root.is_dir():
            return
        self._sweep_temps("deltas", root)
        registered = set()
        datasets = self.root / "datasets"
        if datasets.is_dir():
            registered = {
                p.stem for p in datasets.glob("*.json") if not p.name.startswith(".")
            }
        count = 0
        for path in sorted(root.glob("*.jsonl")):
            count += 1
            from ..stream.delta import _load_log

            try:
                header, _batches = _load_log(path)
            except OSError as error:
                header = None
                detail = str(error)
            else:
                detail = "no readable header line"
            if header is None:
                issue = self._issue("deltas", path, "unreadable-header", detail)
                self._quarantine(issue, path)
                continue
            base = str(header.get("fingerprint", ""))
            if registered and base not in registered:
                issue = self._issue(
                    "deltas", path, "dangling-log",
                    f"base dataset {base[:12]} is not registered",
                    severity="warn",
                )
                self._quarantine(issue, path)
        self.report.scanned["delta_logs"] = count

    def _scan_mmap(self, root: Path) -> None:
        if not root.is_dir():
            return
        self._sweep_temps("mmap", root)
        count = 0
        for meta_path in sorted(root.glob("*.json")):
            if meta_path.name.startswith("."):
                continue
            count += 1
            fp = meta_path.stem
            npy = root / f"{fp}.npy"
            try:
                meta = json.loads(meta_path.read_text())
            except ValueError as error:
                issue = self._issue(
                    "mmap", meta_path, "bad-meta", f"unreadable metadata: {error}"
                )
                self._quarantine(issue, meta_path, npy)
                continue
            if not npy.exists():
                issue = self._issue(
                    "mmap", meta_path, "orphan-meta",
                    "metadata without its .npy payload", severity="warn",
                )
                self._quarantine(issue, meta_path)
                continue
            recorded = meta.get("sha256")
            if self.verify and recorded:
                if sha256_file(npy) != recorded:
                    issue = self._issue(
                        "mmap", npy, "checksum-mismatch",
                        "packed grid does not match its recorded sha256",
                    )
                    self._quarantine(issue, meta_path, npy)
        for npy in sorted(root.glob("*.npy")):
            if npy.name.startswith("."):
                continue
            if not (root / f"{npy.stem}.json").exists():
                issue = self._issue(
                    "mmap", npy, "orphan-payload",
                    ".npy without its metadata", severity="warn",
                )
                self._quarantine(issue, npy)
        self.report.scanned["mmap_entries"] = count


def fsck_data_dir(
    data_dir: "str | Path",
    *,
    repair: bool = False,
    verify_checksums: bool = True,
) -> FsckReport:
    """Scan (and optionally repair) one service data directory.

    ``verify_checksums=False`` skips the expensive payload hashing and
    dataset re-fingerprinting — the structural scan ``repro-fcc serve``
    runs at startup.  Raises :class:`OSError` only when the directory
    itself is unreadable; per-entry damage becomes issues, never
    exceptions.
    """
    root = Path(data_dir)
    if not root.exists():
        raise FileNotFoundError(f"data directory not found: {root}")
    if not root.is_dir():
        raise NotADirectoryError(f"not a directory: {root}")
    return _Fsck(root, repair=repair, verify_checksums=verify_checksums).run()
