"""The injectable IO shim: one seam between every store and the disk.

All service-layer stores (:class:`~repro.service.registry.DatasetRegistry`,
:class:`~repro.service.cache.ThresholdLatticeCache`,
:class:`~repro.service.jobs.JobManager`,
:class:`~repro.stream.store.MmapDatasetStore`,
:class:`~repro.stream.delta.DeltaLog`,
:class:`~repro.parallel.checkpoint.CheckpointJournal`) route their disk
traffic through an :class:`IOShim`.  The default shim is the hardened
production path — ENOSPC-safe atomic writes that roll back their
temporary file on any failure, fsynced journal appends — and
:class:`ChaosShim` is the same surface with a
:class:`~repro.chaos.plan.ChaosPlan` deciding, per call, whether the
operation fails (ENOSPC/EIO), commits corrupted bytes (torn write,
bit-flip), leaves debris behind (stale temp), stalls, or resets the
connection.  Because both shims share one code path, every fault the
chaos battery proves survivable is a fault the production writes are
actually structured to survive.

:class:`StoreCorruptionError` is the typed verify-on-read failure: a
store that finds a checksum or fingerprint mismatch raises it instead
of handing corrupt data up the stack, and the service degrades it to
miss-evict-requeue instead of crashing the daemon.
"""

from __future__ import annotations

import errno
import hashlib
import os
import time
import uuid
from pathlib import Path

__all__ = [
    "StoreCorruptionError",
    "IOShim",
    "ChaosShim",
    "sha256_bytes",
    "sha256_file",
]


class StoreCorruptionError(RuntimeError):
    """Verify-on-read failed: stored bytes do not match their digest."""

    def __init__(self, store: str, path: "str | Path", detail: str) -> None:
        super().__init__(f"corrupt {store} entry {Path(path).name}: {detail}")
        self.store = store
        self.path = str(path)
        self.detail = detail


def sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: "str | Path", chunk_size: int = 1 << 20) -> str:
    """Streamed file digest (bounded memory, for mmap-scale payloads)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def _flip_bit(data: bytes, bit: int) -> bytes:
    if not data:
        return data
    buf = bytearray(data)
    bit %= len(buf) * 8
    buf[bit // 8] ^= 1 << (bit % 8)
    return bytes(buf)


class IOShim:
    """Hardened default IO: atomic, rolled-back, fsynced where it counts.

    Subclasses inject faults by overriding :meth:`_draw`; the write
    helpers here already contain every fault branch, so the production
    path and the chaos path cannot drift apart.
    """

    # ------------------------------------------------------------------
    # Fault hook
    # ------------------------------------------------------------------
    def _draw(self, site: str, op: str, path: str = ""):
        """The fault striking this operation (``None`` in production)."""
        return None

    def trace(self) -> list[dict]:
        """Faults fired so far (empty for the production shim)."""
        return []

    # ------------------------------------------------------------------
    # Raise-style faults for read/transport paths
    # ------------------------------------------------------------------
    def check(self, site: str, op: str, path: str = "") -> None:
        """Apply raise/stall faults before an operation with no payload."""
        self._apply_inline(self._draw(site, op, path), path)

    @staticmethod
    def _apply_inline(fault, path: str) -> None:
        if fault is None:
            return
        if fault.kind == "enospc":
            raise OSError(errno.ENOSPC, f"injected ENOSPC at {path or fault.site}")
        if fault.kind == "eio":
            raise OSError(errno.EIO, f"injected EIO at {path or fault.site}")
        if fault.kind == "slow":
            time.sleep(fault.seconds)
        elif fault.kind == "reset":
            raise ConnectionResetError(
                errno.ECONNRESET, f"injected connection reset at {fault.site}"
            )

    # ------------------------------------------------------------------
    # Atomic writes (tmp + rename, rollback on failure)
    # ------------------------------------------------------------------
    def atomic_write_bytes(self, site: str, path: "str | Path", data: bytes) -> None:
        """Write ``path`` atomically; no temp survives a failed write."""
        path = Path(path)
        fault = self._draw(site, "write", str(path))
        if fault is not None:
            if fault.kind == "eio":
                raise OSError(errno.EIO, f"injected EIO writing {path.name}")
            if fault.kind == "slow":
                time.sleep(fault.seconds)
        payload = data
        if fault is not None:
            if fault.kind == "torn-write":
                payload = data[: len(data) // 2]
            elif fault.kind == "bit-flip":
                payload = _flip_bit(data, self._randbelow(max(1, len(data) * 8)))
        tmp = path.parent / f".{path.name}.{uuid.uuid4().hex[:8]}.tmp"
        try:
            tmp.write_bytes(payload)
            if fault is not None and fault.kind == "enospc":
                # Disk filled mid-write: the partial temp must not leak.
                raise OSError(
                    errno.ENOSPC, f"injected ENOSPC writing {path.name}"
                )
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if fault is not None and fault.kind == "stale-tmp":
            debris = path.parent / f".{path.name}.{uuid.uuid4().hex[:8]}.tmp"
            debris.write_bytes(payload)

    def atomic_write_text(self, site: str, path: "str | Path", text: str) -> None:
        self.atomic_write_bytes(site, path, text.encode())

    def atomic_finalize(
        self, site: str, tmp: "str | Path", dst: "str | Path"
    ) -> None:
        """Commit a caller-written temp (np.save/save_npz payloads).

        The caller wrote ``tmp`` itself (numpy needs a real path); this
        seals it under ``dst``.  On failure the temp is removed — the
        rollback contract matches :meth:`atomic_write_bytes`.
        """
        tmp, dst = Path(tmp), Path(dst)
        fault = self._draw(site, "finalize", str(dst))
        try:
            if fault is not None:
                if fault.kind == "eio":
                    raise OSError(errno.EIO, f"injected EIO committing {dst.name}")
                if fault.kind == "enospc":
                    raise OSError(
                        errno.ENOSPC, f"injected ENOSPC committing {dst.name}"
                    )
                if fault.kind == "slow":
                    time.sleep(fault.seconds)
                elif fault.kind == "torn-write":
                    size = tmp.stat().st_size
                    with open(tmp, "r+b") as handle:
                        handle.truncate(max(0, size // 2))
                elif fault.kind == "bit-flip":
                    size = tmp.stat().st_size
                    if size:
                        bit = self._randbelow(size * 8)
                        with open(tmp, "r+b") as handle:
                            handle.seek(bit // 8)
                            byte = handle.read(1)
                            handle.seek(bit // 8)
                            handle.write(bytes([byte[0] ^ (1 << (bit % 8))]))
            os.replace(tmp, dst)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if fault is not None and fault.kind == "stale-tmp":
            debris = dst.parent / f".{dst.stem}.{uuid.uuid4().hex[:8]}.tmp{dst.suffix}"
            debris.write_bytes(b"\x00" * 64)

    # ------------------------------------------------------------------
    # Journal appends
    # ------------------------------------------------------------------
    def append_line(
        self, site: str, handle, line: str, *, fsync: bool = True
    ) -> None:
        """Append one JSONL record; a torn append leaves a partial tail
        (which every journal reader in the library already tolerates)."""
        fault = self._draw(site, "append", getattr(handle, "name", "") or "")
        if fault is not None:
            if fault.kind == "enospc":
                raise OSError(errno.ENOSPC, "injected ENOSPC appending to journal")
            if fault.kind == "eio":
                raise OSError(errno.EIO, "injected EIO appending to journal")
            if fault.kind == "slow":
                time.sleep(fault.seconds)
            elif fault.kind == "torn-write":
                handle.write(line[: max(1, len(line) // 2)])
                handle.flush()
                raise OSError(errno.EIO, "injected torn journal append")
        handle.write(line + "\n")
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read_bytes(self, site: str, path: "str | Path") -> bytes:
        fault = self._draw(site, "read", str(path))
        if fault is not None:
            if fault.kind == "eio":
                raise OSError(errno.EIO, f"injected EIO reading {Path(path).name}")
            if fault.kind == "slow":
                time.sleep(fault.seconds)
        data = Path(path).read_bytes()
        if fault is not None and fault.kind == "bit-flip":
            data = _flip_bit(data, self._randbelow(max(1, len(data) * 8)))
        return data

    def read_text(self, site: str, path: "str | Path") -> str:
        return self.read_bytes(site, path).decode()

    # ------------------------------------------------------------------
    # Worker faults
    # ------------------------------------------------------------------
    def worker_fault(self, job_id: str) -> "dict | None":
        """A fault manifest block for one worker launch, or ``None``.

        ``crash``/``hang`` faults cross the process boundary through the
        job's ``task.json`` manifest (the worker has no shim of its
        own), extending the :class:`repro.parallel.faults.FaultPlan`
        idea from pool chunks to whole service jobs.
        """
        fault = self._draw("worker", "start", job_id)
        if fault is None or fault.kind not in ("crash", "hang", "slow"):
            return None
        if fault.kind == "crash":
            return {"kind": "crash"}
        return {"kind": "hang", "seconds": float(fault.seconds)}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _randbelow(self, n: int) -> int:
        return 0


class ChaosShim(IOShim):
    """The default shim with a :class:`ChaosPlan` deciding each call."""

    def __init__(self, plan) -> None:
        self.plan = plan

    def _draw(self, site: str, op: str, path: str = ""):
        return self.plan.draw(site, op, path)

    def _randbelow(self, n: int) -> int:
        return self.plan.randbelow(n)

    def trace(self) -> list[dict]:
        return self.plan.trace()
