"""Deterministic cross-layer fault schedules.

:class:`ChaosPlan` generalizes :class:`repro.parallel.faults.FaultPlan`
beyond pool workers: one seedable schedule drives filesystem faults
(ENOSPC, EIO, torn/truncated writes, stale temp files, bit-flip
corruption), HTTP faults (connection reset, slow handler) and worker
faults (crash, hang) across every store the service touches.  The plan
is consulted by :class:`~repro.chaos.io.ChaosShim` at each injectable
*site* (``registry``, ``cache``, ``jobs``, ``mmap``, ``delta``,
``checkpoint``, ``http``, ``worker``) and *operation* (``write``,
``finalize``, ``append``, ``read``, ``handle``, ``start``), so a fault
schedule names exactly where in the stack it strikes.

Two authoring modes:

* **Scripted** — an explicit list of :class:`ChaosRule` entries, each
  firing on selected calls of a (site, op) pair.  This is what the
  regression battery uses: the schedule is part of the test.
* **Seeded random** — :meth:`ChaosPlan.random` injects each operation
  independently with probability ``rate`` from a seeded RNG, for the
  availability sweeps in ``benchmarks/bench_robustness.py``.  Given a
  fixed call sequence the schedule is reproducible from the seed alone.

Every fault the plan hands out is recorded; :meth:`ChaosPlan.trace`
returns the firing history, which the job quarantine embeds so a
poisoned job carries the fault trace needed to replay it.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

__all__ = ["CHAOS_FAULT_KINDS", "ChaosRule", "ChaosPlan"]

#: Every injectable fault kind, by the layer it models:
#: filesystem — ``enospc`` (disk full mid-write), ``eio`` (hard I/O
#: error), ``torn-write`` (payload truncated to a prefix before commit),
#: ``bit-flip`` (one corrupted bit in the committed payload),
#: ``stale-tmp`` (orphaned temporary left behind, as after a hard
#: kill); transport — ``reset`` (connection reset), ``slow`` (stalled
#: handler/IO); worker — ``crash`` (hard exit), ``hang`` (stuck worker,
#: no heartbeat).
CHAOS_FAULT_KINDS = (
    "enospc",
    "eio",
    "torn-write",
    "bit-flip",
    "stale-tmp",
    "reset",
    "slow",
    "crash",
    "hang",
)


@dataclass(frozen=True)
class ChaosRule:
    """One scripted fault: *kind* strikes selected (site, op) calls.

    ``site``/``op`` match exactly or with the ``"*"`` wildcard;
    ``path`` (when set) must be a substring of the operation's target
    path.  ``calls`` selects which occurrences fire, counted per
    (site, op) pair from 0 — ``None`` fires on every call.  ``seconds``
    parametrizes ``slow`` and ``hang``.
    """

    kind: str
    site: str = "*"
    op: str = "*"
    path: str = ""
    calls: "frozenset[int] | None" = field(default_factory=lambda: frozenset({0}))
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {CHAOS_FAULT_KINDS}"
            )

    def matches(self, site: str, op: str, path: str, call: int) -> bool:
        if self.site != "*" and self.site != site:
            return False
        if self.op != "*" and self.op != op:
            return False
        if self.path and self.path not in path:
            return False
        return self.calls is None or call in self.calls


class ChaosPlan:
    """A seedable, thread-safe schedule of injected faults.

    Scripted rules are checked first (first match wins); when none
    fires and the plan has a ``rate``, the seeded RNG injects a random
    kind with that probability.  All bookkeeping (per-(site, op) call
    counters, the firing trace, RNG draws) is behind one lock, so a
    plan shared across the daemon's request and watcher threads stays
    consistent — though under true concurrency the interleaving of
    *which* thread draws first is scheduling-dependent.
    """

    def __init__(
        self,
        rules: "tuple[ChaosRule, ...] | list[ChaosRule]" = (),
        *,
        seed: int = 0,
        rate: float = 0.0,
        kinds: "tuple[str, ...]" = CHAOS_FAULT_KINDS,
        sites: "tuple[str, ...] | None" = None,
    ) -> None:
        self.rules = tuple(rules)
        self.seed = int(seed)
        self.rate = float(rate)
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        for kind in kinds:
            if kind not in CHAOS_FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        self.kinds = tuple(kinds)
        self.sites = tuple(sites) if sites is not None else None
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, str], int] = {}
        self._fired: list[dict] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls,
        kind: str,
        *,
        site: str = "*",
        op: str = "*",
        path: str = "",
        call: int = 0,
        seconds: float = 0.05,
        seed: int = 0,
    ) -> "ChaosPlan":
        """One fault on one call — the unit-test workhorse."""
        rule = ChaosRule(
            kind,
            site=site,
            op=op,
            path=path,
            calls=frozenset({call}),
            seconds=seconds,
        )
        return cls((rule,), seed=seed)

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        rate: float = 0.1,
        kinds: "tuple[str, ...]" = (
            "enospc",
            "eio",
            "torn-write",
            "bit-flip",
            "stale-tmp",
        ),
        sites: "tuple[str, ...] | None" = None,
    ) -> "ChaosPlan":
        """Probabilistic injection, reproducible from the seed."""
        return cls((), seed=seed, rate=rate, kinds=kinds, sites=sites)

    # ------------------------------------------------------------------
    # Drawing
    # ------------------------------------------------------------------
    def draw(self, site: str, op: str, path: str = "") -> "ChaosRule | None":
        """The fault striking this call of (site, op), or ``None``."""
        with self._lock:
            call = self._counts.get((site, op), 0)
            self._counts[(site, op)] = call + 1
            fault: "ChaosRule | None" = None
            for rule in self.rules:
                if rule.matches(site, op, path, call):
                    fault = rule
                    break
            if (
                fault is None
                and self.rate > 0.0
                and (self.sites is None or site in self.sites)
                and self._rng.random() < self.rate
            ):
                fault = ChaosRule(
                    self._rng.choice(self.kinds), site=site, op=op, calls=None
                )
            if fault is not None:
                self._fired.append(
                    {
                        "site": site,
                        "op": op,
                        "path": path,
                        "kind": fault.kind,
                        "call": call,
                    }
                )
            return fault

    def randbelow(self, n: int) -> int:
        """A seeded draw in ``[0, n)`` (bit positions for bit-flips)."""
        with self._lock:
            return self._rng.randrange(max(1, int(n)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def trace(self) -> list[dict]:
        """Every fault fired so far, in firing order."""
        with self._lock:
            return [dict(entry) for entry in self._fired]

    def fired(self) -> int:
        with self._lock:
            return len(self._fired)

    def __repr__(self) -> str:
        return (
            f"ChaosPlan(rules={len(self.rules)}, seed={self.seed}, "
            f"rate={self.rate}, fired={self.fired()})"
        )
