"""FCC-based associative classification (the paper's future work).

The paper closes with: "we plan to study 3D association rule analysis
and classifier based on frequent closed cubes."  This module builds
that classifier in the CBA (Classification Based on Associations)
style, adapted to the 3D setting:

* Training rows (e.g. tissue samples) carry class labels.  FCCs are
  mined on the training tensor; each cube's ``(heights, columns)``
  block becomes a *class association rule* whose predicted class is
  the majority label of the cube's rows, with

  - ``confidence`` — the majority label's share of the cube's rows
    (Laplace-smoothed), and
  - ``coverage``  — the fraction of training rows in the cube.

* A new sample is a ``heights x columns`` boolean slab.  Every rule
  whose block is all-ones in the slab *fires*; class scores accumulate
  ``confidence * log2(1 + block volume)`` (bigger, purer patterns count
  more), and the best score wins.  Samples no rule matches fall back
  to the training majority class.

The classifier inherits the FCC guarantees: each rule's block is a
maximal all-ones pattern of the training data, so rules are neither
redundant (closedness) nor noise-fragments (the support thresholds).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..api import mine
from ..core.bitset import bit_count, iter_bits
from ..core.constraints import Thresholds
from ..core.dataset import Dataset3D

__all__ = ["ClassRule", "FCCClassifier"]


@dataclass(frozen=True, slots=True)
class ClassRule:
    """One class association rule derived from an FCC."""

    heights: int
    columns: int
    label: object
    confidence: float
    coverage: float

    @property
    def volume(self) -> int:
        return bit_count(self.heights) * bit_count(self.columns)

    def matches(self, slab: np.ndarray) -> bool:
        """True when the rule's block is all-ones in a (l, m) slab."""
        hs = list(iter_bits(self.heights))
        cs = list(iter_bits(self.columns))
        return bool(slab[np.ix_(hs, cs)].all())

    def weight(self) -> float:
        """Voting weight: confidence scaled by pattern size."""
        return self.confidence * math.log2(1 + self.volume)

    def format(self, dataset: Dataset3D | None = None) -> str:
        if dataset is not None:
            hs = "".join(dataset.height_labels[k] for k in iter_bits(self.heights))
            cs = "".join(dataset.column_labels[j] for j in iter_bits(self.columns))
        else:
            hs = "".join(f"h{k + 1}" for k in iter_bits(self.heights))
            cs = "".join(f"c{j + 1}" for j in iter_bits(self.columns))
        return (
            f"{hs} x {cs} => {self.label!r} "
            f"(confidence={self.confidence:.3f}, coverage={self.coverage:.3f})"
        )


class FCCClassifier:
    """Classify row-samples of a 3D context by their FCC memberships.

    Parameters
    ----------
    thresholds:
        FCC mining thresholds used at fit time.  ``min_r`` acts as the
        rule-support floor: a rule needs at least that many training
        rows behind it.
    min_confidence:
        Rules whose majority-label share falls below this are dropped.
    algorithm:
        Mining algorithm forwarded to :func:`repro.api.mine`.
    """

    def __init__(
        self,
        thresholds: Thresholds,
        *,
        min_confidence: float = 0.6,
        algorithm: str = "cubeminer",
    ) -> None:
        if not 0.0 < min_confidence <= 1.0:
            raise ValueError(
                f"min_confidence must be in (0, 1], got {min_confidence}"
            )
        self.thresholds = thresholds
        self.min_confidence = min_confidence
        self.algorithm = algorithm
        self.rules: list[ClassRule] = []
        self.default_label: object = None
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset3D, labels: Sequence[object]) -> "FCCClassifier":
        """Mine FCCs on the training tensor and distill class rules."""
        if len(labels) != dataset.n_rows:
            raise ValueError(
                f"got {len(labels)} labels for {dataset.n_rows} rows"
            )
        if not labels:
            raise ValueError("cannot fit on an empty dataset")
        label_list = list(labels)
        n_classes = len(set(label_list))
        self.default_label = Counter(label_list).most_common(1)[0][0]

        result = mine(dataset, self.thresholds, algorithm=self.algorithm)
        rules: dict[tuple[int, int], ClassRule] = {}
        for cube in result:
            row_labels = [label_list[i] for i in cube.row_indices()]
            majority, majority_count = Counter(row_labels).most_common(1)[0]
            # Laplace smoothing keeps tiny pure cubes from dominating.
            confidence = (majority_count + 1) / (len(row_labels) + n_classes)
            if confidence < self.min_confidence:
                continue
            key = (cube.heights, cube.columns)
            rule = ClassRule(
                heights=cube.heights,
                columns=cube.columns,
                label=majority,
                confidence=confidence,
                coverage=len(row_labels) / dataset.n_rows,
            )
            existing = rules.get(key)
            if existing is None or rule.confidence > existing.confidence:
                rules[key] = rule
        self.rules = sorted(
            rules.values(), key=lambda r: (-r.confidence, -r.coverage)
        )
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def predict_one(self, slab: np.ndarray) -> object:
        """Predict the class of one ``(n_heights, n_columns)`` slab."""
        return self.predict_scores(slab)[0]

    def predict_scores(self, slab: np.ndarray) -> tuple[object, dict[object, float]]:
        """Predict plus the per-class vote scores (for inspection)."""
        self._require_fitted()
        slab = np.asarray(slab, dtype=bool)
        if slab.ndim != 2:
            raise ValueError(f"a sample slab must be rank-2, got rank {slab.ndim}")
        scores: dict[object, float] = {}
        for rule in self.rules:
            if rule.matches(slab):
                scores[rule.label] = scores.get(rule.label, 0.0) + rule.weight()
        if not scores:
            return self.default_label, {}
        best = max(scores.items(), key=lambda item: item[1])
        return best[0], scores

    def predict(self, dataset: Dataset3D) -> list[object]:
        """Predict every row of a tensor (each row yields one slab)."""
        self._require_fitted()
        return [
            self.predict_one(dataset.data[:, i, :])
            for i in range(dataset.n_rows)
        ]

    def score(self, dataset: Dataset3D, labels: Sequence[object]) -> float:
        """Accuracy of :meth:`predict` against the given labels."""
        if len(labels) != dataset.n_rows:
            raise ValueError(
                f"got {len(labels)} labels for {dataset.n_rows} rows"
            )
        if dataset.n_rows == 0:
            return 0.0
        predictions = self.predict(dataset)
        hits = sum(1 for p, t in zip(predictions, labels) if p == t)
        return hits / dataset.n_rows

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("classifier is not fitted; call fit() first")

    def __repr__(self) -> str:
        state = f"{len(self.rules)} rules" if self._fitted else "unfitted"
        return f"FCCClassifier({self.thresholds}, {state})"
