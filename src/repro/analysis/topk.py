"""Top-k mining: the k largest closed cubes without a full enumeration.

Analysts often want "the ten biggest patterns", not a threshold.  A
naive approach mines everything at loose thresholds and sorts — which
can mean materializing hundreds of thousands of cubes.  The volume
constraint added to the miners is exactly the right lever instead:
start from a high ``min_volume`` (little work, possibly too few cubes)
and relax it geometrically until at least ``k`` cubes exist; the search
space explored at each step is bounded by the volume pruning, and the
final answer is exact because closed cubes at a lower volume floor are
a superset of those at a higher one.
"""

from __future__ import annotations

from dataclasses import replace

from ..api import mine
from ..core.constraints import Thresholds
from ..core.cube import Cube
from ..core.dataset import Dataset3D

__all__ = ["top_k_by_volume"]


def top_k_by_volume(
    dataset: Dataset3D,
    k: int,
    base: Thresholds | None = None,
    *,
    algorithm: str = "cubeminer",
    shrink_factor: float = 0.5,
) -> list[Cube]:
    """Return up to ``k`` frequent closed cubes of largest volume.

    Parameters
    ----------
    k:
        How many cubes to return (fewer if the dataset has fewer FCCs).
    base:
        Support thresholds the cubes must additionally satisfy
        (defaults to the all-ones :class:`Thresholds`).  Any
        ``min_volume`` on it acts as a hard floor: cubes below it are
        never returned, even if fewer than ``k`` remain.
    shrink_factor:
        Geometric relaxation per round, in (0, 1); smaller = fewer,
        bigger mining rounds.

    Ties at the k-th volume are broken by the canonical cube order.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0.0 < shrink_factor < 1.0:
        raise ValueError(f"shrink_factor must be in (0, 1), got {shrink_factor}")
    if base is None:
        base = Thresholds()
    l, n, m = dataset.shape
    ceiling = l * n * m
    if ceiling == 0 or not Thresholds(
        base.min_h, base.min_r, base.min_c
    ).feasible_for_shape(dataset.shape):
        return []

    floor = base.min_volume
    # Start at the largest volume a cube could have.
    current = ceiling
    cubes: list[Cube] = []
    while True:
        thresholds = replace(base, min_volume=max(current, floor))
        cubes = list(mine(dataset, thresholds, algorithm=algorithm))
        if len(cubes) >= k or thresholds.min_volume <= floor:
            break
        current = max(floor, int(current * shrink_factor))
    ranked = sorted(cubes, key=lambda cube: (-cube.volume, cube.sort_key()))
    return ranked[:k]
