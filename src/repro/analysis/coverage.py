"""Pattern summarization: pick few cubes that explain the data.

FCC mining can return tens of thousands of cubes at loose thresholds;
an analyst usually wants a digest.  :func:`greedy_cover` runs the
classic greedy weighted set cover over the dataset's one-cells: repeat
"take the cube covering the most not-yet-covered ones" until a target
coverage or cube budget is hit.  The greedy choice is a (1 - 1/e)
approximation of the optimal cover, which is all a summary needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cube import Cube
from ..core.dataset import Dataset3D
from ..core.result import MiningResult

__all__ = ["CoverStep", "greedy_cover"]


@dataclass(frozen=True, slots=True)
class CoverStep:
    """One greedy pick: the cube, its marginal gain, running coverage."""

    cube: Cube
    new_cells: int
    cumulative_cells: int
    cumulative_fraction: float


def greedy_cover(
    dataset: Dataset3D,
    result: MiningResult,
    *,
    max_cubes: int | None = None,
    target_fraction: float = 1.0,
) -> list[CoverStep]:
    """Summarize ``result`` by greedy set cover over the one-cells.

    Parameters
    ----------
    max_cubes:
        Stop after this many picks (None = no budget).
    target_fraction:
        Stop once this fraction of the dataset's one-cells is covered.

    Returns the picks in order, each with its marginal contribution —
    the diminishing-returns profile is itself informative (how much
    structure the top handful of patterns explains).
    """
    if not 0.0 < target_fraction <= 1.0:
        raise ValueError(
            f"target_fraction must be in (0, 1], got {target_fraction}"
        )
    if max_cubes is not None and max_cubes < 1:
        raise ValueError(f"max_cubes must be >= 1, got {max_cubes}")
    total_ones = dataset.count_ones()
    if total_ones == 0 or len(result) == 0:
        return []

    # Materialize each cube's cell set as a flat index array once.
    l, n, m = dataset.shape
    remaining = dataset.data.copy()
    candidates: list[tuple[Cube, np.ndarray]] = []
    for cube in result:
        hs = list(cube.height_indices())
        rs = list(cube.row_indices())
        cs = list(cube.column_indices())
        mask = np.zeros((l, n, m), dtype=bool)
        mask[np.ix_(hs, rs, cs)] = True
        candidates.append((cube, mask))

    steps: list[CoverStep] = []
    covered = 0
    while candidates:
        if max_cubes is not None and len(steps) >= max_cubes:
            break
        gains = [int((mask & remaining).sum()) for _cube, mask in candidates]
        best_index = int(np.argmax(gains))
        best_gain = gains[best_index]
        if best_gain == 0:
            break
        cube, mask = candidates.pop(best_index)
        remaining &= ~mask
        covered += best_gain
        steps.append(
            CoverStep(
                cube=cube,
                new_cells=best_gain,
                cumulative_cells=covered,
                cumulative_fraction=covered / total_ones,
            )
        )
        if covered / total_ones >= target_fraction:
            break
    return steps
