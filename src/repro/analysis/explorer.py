"""Threshold exploration: find settings that yield a digestible answer.

Mining thresholds are awkward to choose blind: too loose floods the
analyst (hundreds of thousands of cubes), too tight returns nothing.
The number of FCCs is anti-monotone in each threshold, which makes the
search well-posed:

* :func:`find_min_c_for_budget` — binary-search the largest ``minC``
  whose answer still has at least ``target`` cubes (or, symmetrically,
  the smallest whose answer fits under a budget);
* :func:`threshold_profile` — sweep one axis and tabulate cube counts
  and times, the quick overview behind Figures 2–5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..api import mine
from ..core.constraints import Thresholds
from ..core.dataset import Dataset3D

__all__ = ["ProfilePoint", "threshold_profile", "find_min_c_for_budget"]


@dataclass(frozen=True, slots=True)
class ProfilePoint:
    """One sweep point: thresholds, answer size, wall-clock."""

    thresholds: Thresholds
    n_cubes: int
    elapsed_seconds: float


def threshold_profile(
    dataset: Dataset3D,
    base: Thresholds,
    *,
    axis: str = "min_c",
    values: list[int],
    algorithm: str = "cubeminer",
) -> list[ProfilePoint]:
    """Mine once per value of one threshold axis, keeping the others.

    ``axis`` is ``"min_h"``, ``"min_r"`` or ``"min_c"``.
    """
    if axis not in ("min_h", "min_r", "min_c"):
        raise ValueError(f"axis must be min_h/min_r/min_c, got {axis!r}")
    if not values:
        raise ValueError("need at least one value to profile")
    points = []
    for value in values:
        thresholds = Thresholds(**{**_as_kwargs(base), axis: int(value)})
        start = time.perf_counter()
        result = mine(dataset, thresholds, algorithm=algorithm)
        points.append(
            ProfilePoint(
                thresholds=thresholds,
                n_cubes=len(result),
                elapsed_seconds=time.perf_counter() - start,
            )
        )
    return points


def find_min_c_for_budget(
    dataset: Dataset3D,
    base: Thresholds,
    *,
    max_cubes: int,
    algorithm: str = "cubeminer",
) -> tuple[int, int]:
    """Smallest ``minC`` whose answer has at most ``max_cubes`` cubes.

    Uses the anti-monotonicity of the cube count in ``minC`` for a
    binary search over ``[base.min_c, n_columns]``.  Returns
    ``(min_c, n_cubes)``; if even ``minC = n_columns`` overflows the
    budget, that endpoint is returned with its (over-budget) count.
    """
    if max_cubes < 0:
        raise ValueError(f"max_cubes must be >= 0, got {max_cubes}")

    def count(min_c: int) -> int:
        thresholds = Thresholds(base.min_h, base.min_r, min_c)
        return len(mine(dataset, thresholds, algorithm=algorithm))

    low = base.min_c
    high = max(dataset.n_columns, low)
    low_count = count(low)
    if low_count <= max_cubes:
        return low, low_count
    high_count = count(high)
    if high_count > max_cubes:
        return high, high_count
    # Invariant: count(low) > max_cubes >= count(high).
    while high - low > 1:
        mid = (low + high) // 2
        if count(mid) > max_cubes:
            low = mid
        else:
            high = mid
    return high, count(high)


def _as_kwargs(thresholds: Thresholds) -> dict[str, int]:
    return {
        "min_h": thresholds.min_h,
        "min_r": thresholds.min_r,
        "min_c": thresholds.min_c,
    }
