"""Post-mining analysis.

* :mod:`repro.analysis.rules` — 3D association rules (paper future work).
* :mod:`repro.analysis.classifier` — FCC-based associative classifier
  (paper future work).
* :mod:`repro.analysis.lattice` — containment lattice of mined cubes.
* :mod:`repro.analysis.coverage` — greedy-cover pattern summarization.
* :mod:`repro.analysis.explorer` — threshold search and profiling.
* :mod:`repro.analysis.report` — one-shot text mining reports.
* :mod:`repro.analysis.topk` — the k largest cubes via volume-floor search.
* :mod:`repro.analysis.recovery` — match scores vs planted ground truth.
* :mod:`repro.analysis.stats` — dataset/result descriptive statistics.
"""

from .classifier import ClassRule, FCCClassifier
from .explorer import ProfilePoint, find_min_c_for_budget, threshold_profile
from .coverage import CoverStep, greedy_cover
from .lattice import (
    CubeLattice,
    build_containment_dag,
    maximal_cubes,
    minimal_cubes,
)
from .recovery import (
    cube_jaccard,
    recovery_report,
    relevance,
    specificity,
)
from .report import mining_report
from .rules import Rule3D, cube_implication, derive_rules
from .stats import DatasetStats, ResultStats, dataset_stats, result_stats
from .topk import top_k_by_volume

__all__ = [
    "ClassRule",
    "FCCClassifier",
    "ProfilePoint",
    "find_min_c_for_budget",
    "threshold_profile",
    "CoverStep",
    "greedy_cover",
    "CubeLattice",
    "build_containment_dag",
    "maximal_cubes",
    "minimal_cubes",
    "cube_jaccard",
    "recovery_report",
    "relevance",
    "specificity",
    "mining_report",
    "Rule3D",
    "cube_implication",
    "derive_rules",
    "DatasetStats",
    "ResultStats",
    "dataset_stats",
    "result_stats",
    "top_k_by_volume",
]
